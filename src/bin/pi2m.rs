//! `pi2m` — command-line Image-to-Mesh conversion.
//!
//! ```text
//! pi2m mesh   <input.pim|phantom:NAME> [-o out.vtk] [--delta D] [--threads N]
//!             [--cm aggressive|random|global|local] [--balancer rws|hws]
//!             [--no-removals] [--size S] [--off out.off] [--stats]
//!             [--report run.json] [--trace-out trace.json] [--metrics]
//!             [--audit] [--live[=INTERVAL]] [--contention-out c.json]
//!             [--no-flight] [--no-batch] [--force] [--deadline DUR]
//!             [--shards AxBxC [--halo N]]
//!             (a run killed by --deadline still writes its --report /
//!             --contention-out / --trace-out artifacts; --shards meshes
//!             the image as a grid of overlapping chunks and stitches the
//!             seams — see README "Sharded meshing")
//! pi2m batch  <inputs...> [--outdir DIR] [--keep-going] [--reports]
//!             [mesh options]
//!             mesh several inputs sequentially over ONE warm session
//!             (threads, kernel arenas, flight rings, and the proximity
//!             grid are reused run-to-run); --reports adds one
//!             <stem>.report.json per job next to its mesh
//! pi2m phantom <name> <out.pim> [--scale S]    generate a phantom image
//! pi2m info   <input.pim>                      print image metadata
//! pi2m bench  [--quick] [--seed N] [--out BENCH_kernel.json]
//!             [--check baseline.json] [--tolerance 0.25]
//!             [--flight-gate FRAC]
//!             [--parent-commit HASH --parent-insertion OPS_PER_SEC]
//!                                              kernel benchmark harness
//! pi2m bench --scaling [--quick] [--threads 1,2,4,8,16]
//!             [--out BENCH_scaling.json] [--check ci/scaling_baseline.json]
//!             [--tolerance 0.25]               strong-scaling record
//! pi2m analyze <artifact.json> [new.json]      offline artifact inspection:
//!             one file renders its attribution/hot-spot summary; two files
//!             diff the runs and attribute the regression to a waste category
//! pi2m serve  [--addr HOST:PORT] [--sessions N] [--threads N]
//!             [--queue-cap N] [--spool DIR] [--default-deadline DUR]
//!             [--max-retries N] [--drain-grace DUR] [--log[=PATH]]
//!             long-running meshing service: submit jobs over HTTP
//!             (POST /jobs), poll (GET /jobs/job-N), fetch artifacts and
//!             per-job traces (GET /jobs/job-N/trace), scrape /metrics;
//!             SIGTERM drains gracefully
//! pi2m --version                               crate + schema versions
//! ```
//!
//! Every command logs through a structured journal. Interactive commands
//! print human lines on stderr as before; `pi2m serve` emits JSONL.
//! `--log` forces JSONL on stderr, `--log=PATH` appends JSONL to a file
//! (`PI2M_LOG` is the env equivalent), and `PI2M_LOG_LEVEL`
//! (debug|info|warn|error) sets the minimum level.
//!
//! Input images use the `.pim` format (see `pi2m::image::io`); `phantom:NAME`
//! meshes a built-in phantom directly (sphere, nested, torus, abdominal,
//! knee, head-neck).
//!
//! Failures exit with a typed code (see [`pi2m::cli::CliError`]): 1 generic,
//! 3 cancelled (deadline), 4 I/O, 5 integrity, 6 worker loss.

use pi2m::cli::{parse_args, parse_duration, write_new, Args, CliError};
use pi2m::image::{io as img_io, phantoms, LabeledImage};
use pi2m::meshio;
use pi2m::obs::journal::{Journal, Level};
use pi2m::obs::json::Json;
use pi2m::obs::metrics::ObsEvent;
use pi2m::obs::{
    analyze, render_chrome_trace_with_flight, render_prometheus, AnalyzeOpts, OverheadBreakdown,
    RunReport,
};
use pi2m::quality;
use pi2m::refine::{
    BalancerKind, CancelTelemetry, CancelToken, CmKind, MeshOutput, MesherConfig, MeshingSession,
    OverheadKind, RunOptions,
};
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn load_input(spec: &str) -> Result<LabeledImage, String> {
    if let Some(name) = spec.strip_prefix("phantom:") {
        phantoms::by_name(name, 1.0).ok_or_else(|| format!("unknown phantom '{name}'"))
    } else {
        img_io::load(spec).map_err(|e| format!("cannot read {spec}: {e}"))
    }
}

/// Build a command's journal from `--log[=PATH]`, `PI2M_LOG`, and
/// `PI2M_LOG_LEVEL`. With none of them set, interactive commands keep
/// their human stderr lines (`default_jsonl = false`); the serve daemon
/// defaults to JSONL so its stderr is machine-parseable end to end.
fn init_journal(args: &Args, default_jsonl: bool) -> Result<Arc<Journal>, String> {
    let min = match std::env::var("PI2M_LOG_LEVEL") {
        Ok(v) => Level::parse(&v)
            .ok_or_else(|| format!("bad PI2M_LOG_LEVEL '{v}' (expected debug|info|warn|error)"))?,
        Err(_) => Level::Info,
    };
    let spec: Option<String> = if let Some(path) = args.flags.get("log") {
        Some(path.clone())
    } else if args.switches.contains("log") {
        Some(String::new()) // bare --log: JSONL on stderr
    } else {
        std::env::var("PI2M_LOG").ok()
    };
    Journal::from_spec(spec.as_deref(), min, default_jsonl)
}

/// Mesh options shared by `pi2m mesh` and `pi2m batch`, parsed once. `delta`
/// stays optional here because its default depends on each input image's
/// voxel spacing.
struct MeshOpts {
    delta: Option<f64>,
    threads: usize,
    cm: CmKind,
    balancer: BalancerKind,
    size_fn: Option<Arc<dyn pi2m::oracle::SizeFn>>,
    enable_removals: bool,
    force: bool,
    live: Option<f64>,
    trace: bool,
    flight: bool,
    batch: bool,
    faults: Option<Arc<pi2m::faults::FaultPlan>>,
}

fn parse_mesh_opts(args: &Args, journal: &Journal) -> Result<MeshOpts, String> {
    let delta = args
        .flags
        .get("delta")
        .map(|v| v.parse().map_err(|_| "bad --delta"))
        .transpose()?;
    let threads: usize = args
        .flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| "bad --threads"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let cm = match args.flags.get("cm").map(String::as_str) {
        None | Some("local") => CmKind::Local,
        Some("global") => CmKind::Global,
        Some("random") => CmKind::Random,
        Some("aggressive") => CmKind::Aggressive,
        Some(other) => return Err(format!("unknown --cm '{other}'")),
    };
    let balancer = match args.flags.get("balancer").map(String::as_str) {
        None | Some("hws") => BalancerKind::Hws,
        Some("rws") => BalancerKind::Rws,
        Some(other) => return Err(format!("unknown --balancer '{other}'")),
    };
    let size_fn = args
        .flags
        .get("size")
        .map(|v| -> Result<_, String> {
            let s: f64 = v.parse().map_err(|_| "bad --size")?;
            Ok(Arc::new(pi2m::oracle::UniformSize(s)) as Arc<dyn pi2m::oracle::SizeFn>)
        })
        .transpose()?;
    let live = if let Some(v) = args.flags.get("live") {
        Some(parse_duration(v).map_err(|e| format!("bad --live interval: {e}"))?)
    } else if args.switches.contains("live") {
        Some(1.0)
    } else {
        None
    };
    // Deterministic fault injection (testing): armed only when the
    // PI2M_FAULT_PLAN / PI2M_FAULT_SEED environment variables are set.
    let faults = pi2m::faults::FaultPlan::from_env()
        .map_err(|e| format!("bad fault plan: {e}"))?
        .map(Arc::new);
    if let Some(f) = &faults {
        journal.info(
            "faults.armed",
            &[
                (
                    "msg",
                    Json::str(format!("fault injection armed: {}", f.describe())),
                ),
                ("plan", Json::str(f.describe())),
            ],
        );
    }
    Ok(MeshOpts {
        delta,
        threads,
        cm,
        balancer,
        size_fn,
        enable_removals: !args.switches.contains("no-removals"),
        force: args.switches.contains("force"),
        live,
        // per-episode overhead events are needed for the Chrome trace
        trace: args.flags.contains_key("trace-out"),
        flight: !args.switches.contains("no-flight"),
        batch: !args.switches.contains("no-batch"),
        faults,
    })
}

fn config_for(o: &MeshOpts, img: &LabeledImage) -> MesherConfig {
    MesherConfig {
        delta: o.delta.unwrap_or(2.0 * img.min_spacing()),
        threads: o.threads,
        cm: o.cm,
        balancer: o.balancer,
        size_fn: o.size_fn.clone(),
        enable_removals: o.enable_removals,
        faults: o.faults.clone(),
        topology: pi2m::refine::MachineTopology::flat(o.threads),
        trace: o.trace,
        flight: o.flight,
        batch: o.batch,
        live: o.live,
        ..Default::default()
    }
}

fn write_vtk(out: &MeshOutput, path: &str, journal: &Journal) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
    meshio::write_vtk(&out.mesh, &mut BufWriter::new(f)).map_err(|e| e.to_string())?;
    wrote(journal, path);
    Ok(())
}

/// The `wrote <path>` artifact confirmation, as a journal event.
fn wrote(journal: &Journal, path: &str) {
    journal.info(
        "artifact.written",
        &[
            ("msg", Json::str(format!("wrote {path}"))),
            ("path", Json::str(path)),
        ],
    );
}

fn cmd_mesh(args: &Args) -> Result<(), CliError> {
    let input = args
        .positional
        .get(1)
        .ok_or("usage: pi2m mesh <input.pim|phantom:NAME> [options]")?;
    let img = load_input(input).map_err(CliError::Io)?;
    let journal = init_journal(args, false)?;
    let o = parse_mesh_opts(args, &journal)?;
    let cfg = config_for(&o, &img);
    let (delta, threads, cm, balancer, force) = (cfg.delta, o.threads, o.cm, o.balancer, o.force);

    journal.info(
        "mesh.start",
        &[
            (
                "msg",
                Json::str(format!(
                    "meshing {input}: δ={delta}, {threads} threads, {cm:?}-CM, {balancer:?}"
                )),
            ),
            ("input", Json::str(input)),
            ("delta", Json::num(delta)),
            ("threads", Json::int(threads as u64)),
        ],
    );
    let mut session = MeshingSession::new(threads);
    let run_opts = RunOptions {
        cancel: args
            .flags
            .get("deadline")
            .map(|v| -> Result<_, String> {
                let secs = parse_duration(v).map_err(|e| format!("bad --deadline: {e}"))?;
                Ok(CancelToken::with_deadline(
                    std::time::Duration::from_secs_f64(secs),
                ))
            })
            .transpose()?,
        on_stage: None,
    };
    let shard_spec = args
        .flags
        .get("shards")
        .map(|v| -> Result<pi2m::refine::ShardSpec, String> {
            let grid = pi2m::refine::parse_shard_grid(v).map_err(|e| e.to_string())?;
            let halo = args
                .flags
                .get("halo")
                .map(|h| h.parse().map_err(|_| "bad --halo".to_string()))
                .transpose()?;
            Ok(pi2m::refine::ShardSpec {
                grid,
                halo,
                lanes: None,
            })
        })
        .transpose()?;

    let t0 = Instant::now();
    let (out, shard) = if let Some(spec) = &shard_spec {
        match pi2m::refine::mesh_sharded(&mut session, img, cfg, &run_opts, spec) {
            Ok(run) => {
                journal.info(
                    "mesh.sharded",
                    &[
                        (
                            "msg",
                            Json::str(format!(
                                "sharded: {} chunks over {} lane(s), halo {} voxels, {} seed \
                                 vertices ({} duplicates dropped)",
                                run.chunks.len(),
                                run.lanes,
                                run.halo,
                                run.seed_points,
                                run.seed_duplicates
                            )),
                        ),
                        ("chunks", Json::int(run.chunks.len() as u64)),
                        ("lanes", Json::int(run.lanes as u64)),
                        ("halo", Json::int(run.halo as u64)),
                    ],
                );
                let section = pi2m::obs::ShardSection {
                    grid: format!("{}x{}x{}", run.grid[0], run.grid[1], run.grid[2]),
                    halo: run.halo,
                    lanes: run.lanes,
                    seed_points: run.seed_points,
                    seed_duplicates: run.seed_duplicates,
                    chunks: run
                        .chunks
                        .iter()
                        .map(|c| pi2m::obs::ShardChunk {
                            index: c.index,
                            tets: c.tets,
                            vertices: c.vertices,
                            wall_s: c.wall_s,
                        })
                        .collect(),
                };
                (run.out, Some(section))
            }
            Err(pi2m::refine::ShardError::Run(pi2m::refine::RefineError::Cancelled)) => {
                write_cancelled_artifacts(
                    args,
                    input,
                    &o,
                    delta,
                    threads,
                    session.take_cancel_telemetry(),
                    &journal,
                )?;
                return Err(CliError::Cancelled(
                    "run cancelled (deadline); observability artifacts written".into(),
                ));
            }
            Err(pi2m::refine::ShardError::Run(e)) => return Err(CliError::from_refine(&e)),
            Err(e) => return Err(CliError::Generic(e.to_string())),
        }
    } else {
        match session.mesh_with(img, cfg, &run_opts) {
            Ok(out) => (out, None),
            Err(pi2m::refine::RefineError::Cancelled) => {
                // a killed run still reports: write the observability artifacts
                // from the telemetry salvaged at the cancellation point
                write_cancelled_artifacts(
                    args,
                    input,
                    &o,
                    delta,
                    threads,
                    session.take_cancel_telemetry(),
                    &journal,
                )?;
                return Err(CliError::Cancelled(
                    "run cancelled (deadline); observability artifacts written".into(),
                ));
            }
            Err(e) => return Err(CliError::from_refine(&e)),
        }
    };
    let dt = t0.elapsed().as_secs_f64();
    journal.info(
        "mesh.result",
        &[
            (
                "msg",
                Json::str(format!(
                    "{} tets / {} points in {:.2}s ({:.0} elements/s), {} rollbacks, {} removals",
                    out.mesh.num_tets(),
                    out.mesh.num_points(),
                    dt,
                    out.mesh.num_tets() as f64 / dt,
                    out.stats.total_rollbacks(),
                    out.stats.total_removals()
                )),
            ),
            ("tets", Json::int(out.mesh.num_tets() as u64)),
            ("points", Json::int(out.mesh.num_points() as u64)),
            ("wall_s", Json::num(dt)),
        ],
    );
    if out.stats.total_panics() > 0 || out.stats.workers_died > 0 {
        journal.warn(
            "mesh.recovered",
            &[
                (
                    "msg",
                    Json::str(format!(
                        "recovered: {} op panics, {} quarantined, {} recovery rollbacks, \
                         {} workers died",
                        out.stats.total_panics(),
                        out.stats.total_quarantined(),
                        out.stats.total_recovery_rollbacks(),
                        out.stats.workers_died
                    )),
                ),
                ("panics", Json::int(out.stats.total_panics())),
                ("workers_died", Json::int(out.stats.workers_died as u64)),
            ],
        );
    }

    if args.switches.contains("audit") {
        let report = pi2m::refine::audit_mesh(&out.shared, 42);
        journal.info(
            "mesh.audit",
            &[
                ("msg", Json::str(report.summary().trim_end())),
                ("violations", Json::int(report.violations.len() as u64)),
            ],
        );
        if !report.clean() {
            return Err(CliError::Integrity(format!(
                "mesh integrity audit failed with {} violation(s)",
                report.violations.len()
            )));
        }
    }

    if args.switches.contains("stats") {
        let q = quality::mesh_quality(&out.mesh);
        let b = quality::boundary_report(&out.mesh);
        let tris = out.mesh.boundary_triangles();
        let hd = quality::hausdorff_distance(&out.mesh.points, &tris, &out.oracle, 7);
        journal.info(
            "mesh.quality",
            &[
                (
                    "msg",
                    Json::str(format!(
                        "quality: max radius-edge {:.3}, dihedral ({:.1}°,{:.1}°), \
                         min boundary angle {:.1}°, Hausdorff {:.3}",
                        q.max_radius_edge,
                        q.min_dihedral_deg,
                        q.max_dihedral_deg,
                        b.min_planar_angle_deg,
                        hd
                    )),
                ),
                ("max_radius_edge", Json::num(q.max_radius_edge)),
                ("hausdorff", Json::num(hd)),
            ],
        );
    }

    // --- observability exports -------------------------------------------
    // Contention analysis from the flight-recorder log (empty when the
    // recorder was off: the report section is then all zeros).
    let contention = analyze(
        &out.flight,
        AnalyzeOpts {
            threads,
            wall_s: out.stats.wall_time,
            dropped: out.flight_dropped,
            ..Default::default()
        },
    );
    if let Some(path) = args.flags.get("contention-out") {
        write_new(path, &(contention.to_json().dump_pretty() + "\n"), force)
            .map_err(CliError::Io)?;
        wrote(&journal, path);
    }
    if args.flags.contains_key("report")
        || args.flags.contains_key("trace-out")
        || args.switches.contains("metrics")
    {
        let mut report = build_run_report(input, &o, delta, threads, &out, dt, &contention);
        if let Some(s) = &shard {
            report.config("shards", &s.grid).config("halo", s.halo);
            report.shard = Some(s.clone());
        }

        if let Some(path) = args.flags.get("report") {
            write_new(path, &report.to_json_string(), force).map_err(CliError::Io)?;
            wrote(&journal, path);
        }
        if let Some(path) = args.flags.get("trace-out") {
            // worker lifetime events are already in the run time base;
            // overhead episodes carry refinement-clock stamps and shift by
            // the recorded origin.
            let mut events = out.metrics.events.clone();
            for ev in out.stats.merged_trace() {
                let name = match ev.kind {
                    OverheadKind::Contention => "contention",
                    OverheadKind::LoadBalance => "load_balance",
                    OverheadKind::Rollback => "rollback",
                };
                events.push((
                    ev.tid,
                    ObsEvent {
                        name,
                        cat: "overhead",
                        at_s: out.stats.trace_origin + ev.at,
                        dur_s: ev.dur,
                    },
                ));
            }
            write_new(
                path,
                &render_chrome_trace_with_flight(&out.phases, &events, &out.flight),
                force,
            )
            .map_err(CliError::Io)?;
            wrote(&journal, path);
        }
        if args.switches.contains("metrics") {
            print!("{}", render_prometheus(&report));
        }
    }

    let out_path = args
        .flags
        .get("o")
        .cloned()
        .unwrap_or_else(|| "mesh.vtk".into());
    write_vtk(&out, &out_path, &journal).map_err(CliError::Io)?;
    if let Some(off) = args.flags.get("off") {
        let f = std::fs::File::create(off).map_err(|e| CliError::Io(format!("{off}: {e}")))?;
        meshio::write_off(&out.mesh, &mut BufWriter::new(f))
            .map_err(|e| CliError::Io(e.to_string()))?;
        wrote(&journal, off);
    }
    Ok(())
}

/// Assemble the schema-v3 run report for one finished run — shared by
/// `pi2m mesh --report` and the per-job reports of `pi2m batch --reports`.
fn build_run_report(
    input: &str,
    o: &MeshOpts,
    delta: f64,
    threads: usize,
    out: &MeshOutput,
    wall_s: f64,
    contention: &pi2m::obs::ContentionReport,
) -> RunReport {
    let mut report = RunReport::new("pi2m");
    report
        .config("input", input)
        .config("delta", delta)
        .config("threads", threads)
        .config("cm", format!("{:?}", o.cm))
        .config("balancer", format!("{:?}", o.balancer))
        .config("enable_removals", o.enable_removals);
    report.set_phases(&out.phases);
    report.overheads = OverheadBreakdown {
        contention_s: out.stats.contention_overhead(),
        load_balance_s: out.stats.load_balance_overhead(),
        rollback_s: out.stats.rollback_overhead(),
        rollbacks: out.stats.total_rollbacks(),
        livelock: out.stats.livelock,
    };
    report.threads = threads;
    report.wall_s = wall_s;
    report.elements = out.mesh.num_tets() as u64;
    report.metrics = out.metrics.clone();
    report.attribution = Some(contention.attribution.clone());
    report.contention = Some(contention.clone());
    report
}

/// Honor `--contention-out` / `--report` / `--trace-out` for a run that was
/// cancelled, using the telemetry the session salvaged at the cancellation
/// point (`None` / empty when the run died before refinement started — the
/// artifacts are then structurally complete but all-zero).
fn write_cancelled_artifacts(
    args: &Args,
    input: &str,
    o: &MeshOpts,
    delta: f64,
    threads: usize,
    tel: Option<CancelTelemetry>,
    journal: &Journal,
) -> Result<(), String> {
    let wrote_cancelled = |path: &str| {
        journal.info(
            "artifact.written",
            &[
                ("msg", Json::str(format!("wrote {path} (cancelled run)"))),
                ("path", Json::str(path)),
                ("cancelled", Json::Bool(true)),
            ],
        );
    };
    let tel = tel.unwrap_or_else(|| CancelTelemetry {
        flight: Vec::new(),
        flight_dropped: 0,
        metrics: pi2m::obs::MetricsSnapshot::new(),
        phases: Vec::new(),
        wall_s: 0.0,
        threads,
    });
    let contention = analyze(
        &tel.flight,
        AnalyzeOpts {
            threads: tel.threads,
            wall_s: tel.wall_s,
            dropped: tel.flight_dropped,
            ..Default::default()
        },
    );
    if let Some(path) = args.flags.get("contention-out") {
        write_new(path, &(contention.to_json().dump_pretty() + "\n"), o.force)?;
        wrote_cancelled(path);
    }
    if args.flags.contains_key("report") || args.flags.contains_key("trace-out") {
        let mut report = RunReport::new("pi2m");
        report
            .config("input", input)
            .config("delta", delta)
            .config("threads", threads)
            .config("cm", format!("{:?}", o.cm))
            .config("balancer", format!("{:?}", o.balancer))
            .config("cancelled", true);
        report.set_phases(&tel.phases);
        report.threads = tel.threads;
        report.wall_s = tel.wall_s;
        report.metrics = tel.metrics;
        // the usual per-thread overhead stats died with the run; the flight
        // log still knows how many operations were rolled back
        report.overheads.rollbacks = contention.rollbacks;
        report.attribution = Some(contention.attribution.clone());
        report.contention = Some(contention);
        if let Some(path) = args.flags.get("report") {
            write_new(path, &report.to_json_string(), o.force)?;
            wrote_cancelled(path);
        }
        if let Some(path) = args.flags.get("trace-out") {
            write_new(
                path,
                &render_chrome_trace_with_flight(&tel.phases, &report.metrics.events, &tel.flight),
                o.force,
            )?;
            wrote_cancelled(path);
        }
    }
    Ok(())
}

/// The output stem for one batch input: `phantom:torus` → `torus`,
/// `scans/knee.pim` → `knee`.
fn batch_stem(input: &str) -> String {
    match input.strip_prefix("phantom:") {
        Some(name) => name.to_string(),
        None => std::path::Path::new(input)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "mesh".into()),
    }
}

/// The output filename for one batch input: `phantom:torus` → `torus.vtk`,
/// `scans/knee.pim` → `knee.vtk`.
fn batch_output_name(input: &str) -> String {
    format!("{}.vtk", batch_stem(input))
}

/// `pi2m batch`: mesh every input sequentially over ONE warm
/// [`MeshingSession`] — worker threads, kernel scratch arenas, flight rings,
/// and the proximity grid are created once and reused run-to-run instead of
/// being torn down after every image like repeated `pi2m mesh` calls.
fn cmd_batch(args: &Args) -> Result<(), CliError> {
    let inputs = &args.positional[1..];
    if inputs.is_empty() {
        return Err(
            "usage: pi2m batch <inputs...> [--outdir DIR] [--keep-going] [--reports] \
             [mesh options]"
                .into(),
        );
    }
    let journal = init_journal(args, false)?;
    let o = parse_mesh_opts(args, &journal)?;
    let keep_going = args.switches.contains("keep-going");
    let write_reports = args.switches.contains("reports");
    let outdir = std::path::PathBuf::from(
        args.flags
            .get("outdir")
            .cloned()
            .unwrap_or_else(|| ".".into()),
    );
    std::fs::create_dir_all(&outdir)
        .map_err(|e| CliError::Io(format!("{}: {e}", outdir.display())))?;

    let mut session = MeshingSession::new(o.threads);
    let t_all = Instant::now();
    let (mut done, mut tets) = (0usize, 0u64);
    let mut failures: Vec<(String, CliError)> = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let mut run = || -> Result<(), CliError> {
            let path = outdir.join(batch_output_name(input));
            let path = path.to_string_lossy().into_owned();
            if !o.force && std::path::Path::new(&path).exists() {
                return Err(CliError::Io(format!(
                    "{path} already exists; pass --force to overwrite it"
                )));
            }
            // fail the clobber check BEFORE meshing, not after the work
            let rpath = outdir.join(format!("{}.report.json", batch_stem(input)));
            let rpath = rpath.to_string_lossy().into_owned();
            if write_reports && !o.force && std::path::Path::new(&rpath).exists() {
                return Err(CliError::Io(format!(
                    "{rpath} already exists; pass --force to overwrite it"
                )));
            }
            let img = load_input(input).map_err(CliError::Io)?;
            let cfg = config_for(&o, &img);
            let delta = cfg.delta;
            let t0 = Instant::now();
            let out = session
                .mesh(img, cfg)
                .map_err(|e| CliError::from_refine(&e))?;
            let dt = t0.elapsed().as_secs_f64();
            journal.info(
                "batch.job",
                &[
                    (
                        "msg",
                        Json::str(format!(
                            "[{}/{}] {input}: δ={delta}, {} tets in {dt:.2}s ({:.0} elements/s)",
                            i + 1,
                            inputs.len(),
                            out.mesh.num_tets(),
                            out.mesh.num_tets() as f64 / dt,
                        )),
                    ),
                    ("input", Json::str(input.as_str())),
                    ("tets", Json::int(out.mesh.num_tets() as u64)),
                    ("wall_s", Json::num(dt)),
                ],
            );
            tets += out.mesh.num_tets() as u64;
            write_vtk(&out, &path, &journal).map_err(CliError::Io)?;
            if write_reports {
                // one schema-v3 run report per job, next to its mesh
                let contention = analyze(
                    &out.flight,
                    AnalyzeOpts {
                        threads: o.threads,
                        wall_s: out.stats.wall_time,
                        dropped: out.flight_dropped,
                        ..Default::default()
                    },
                );
                let report = build_run_report(input, &o, delta, o.threads, &out, dt, &contention);
                write_new(&rpath, &report.to_json_string(), o.force).map_err(CliError::Io)?;
                wrote(&journal, &rpath);
            }
            Ok(())
        };
        match run() {
            Ok(()) => done += 1,
            Err(e) if keep_going => {
                journal.error(
                    "batch.job_failed",
                    &[
                        ("msg", Json::str(format!("error: {input}: {e}"))),
                        ("input", Json::str(input.as_str())),
                        ("kind", Json::str(e.kind())),
                        ("error", Json::str(e.to_string())),
                    ],
                );
                failures.push((input.clone(), e));
            }
            Err(e) => {
                return Err(match e {
                    CliError::Generic(m) => CliError::Generic(format!("{input}: {m}")),
                    CliError::Cancelled(m) => CliError::Cancelled(format!("{input}: {m}")),
                    CliError::Io(m) => CliError::Io(format!("{input}: {m}")),
                    CliError::Integrity(m) => CliError::Integrity(format!("{input}: {m}")),
                    CliError::WorkerLoss(m) => CliError::WorkerLoss(format!("{input}: {m}")),
                })
            }
        }
    }
    journal.info(
        "batch.done",
        &[
            (
                "msg",
                Json::str(format!(
                    "batch: {done}/{} inputs, {tets} tets in {:.2}s over one warm session \
                     ({} threads)",
                    inputs.len(),
                    t_all.elapsed().as_secs_f64(),
                    session.threads(),
                )),
            ),
            ("done", Json::int(done as u64)),
            ("inputs", Json::int(inputs.len() as u64)),
            ("tets", Json::int(tets)),
        ],
    );
    if !failures.is_empty() {
        // --keep-going already logged each error inline as it happened;
        // repeat them as one summary block so a long run ends with the
        // complete casualty list in one place.
        let mut block = format!(
            "batch: {} of {} input(s) failed:",
            failures.len(),
            inputs.len()
        );
        for (input, e) in &failures {
            block.push_str(&format!("\n  {input}: [{}] {e}", e.kind()));
        }
        journal.error(
            "batch.failures",
            &[
                ("msg", Json::str(block)),
                ("failed", Json::int(failures.len() as u64)),
                ("inputs", Json::int(inputs.len() as u64)),
            ],
        );
        // exit with the class of the first failure so scripts can branch
        let (_, first) = failures.swap_remove(0);
        return Err(first);
    }
    Ok(())
}

/// `pi2m serve`: the long-running meshing service (see `crates/serve`).
/// Binds the HTTP front door, spawns the warm session slots, then blocks
/// until SIGTERM/SIGINT (or `POST /drain`) starts a graceful drain: stop
/// admitting, finish or deadline-cancel in-flight jobs, flush artifacts,
/// exit 0 on a clean drain.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    use pi2m::serve::{self, HttpServer, MeshService, ServiceConfig};

    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        args.flags
            .get(name)
            .map(|v| v.parse().map_err(|_| format!("bad --{name} '{v}'")))
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let addr = args
        .flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7473".into());
    let sessions = parse_usize("sessions", 2)?.max(1);
    let threads = parse_usize("threads", 2)?.max(1);
    let queue_capacity = parse_usize("queue-cap", 16)?.max(1);
    let max_retries = parse_usize("max-retries", 2)? as u32;
    let spool = std::path::PathBuf::from(
        args.flags
            .get("spool")
            .cloned()
            .unwrap_or_else(|| "pi2m-spool".into()),
    );
    let default_deadline_s = args
        .flags
        .get("default-deadline")
        .map(|v| parse_duration(v).map_err(|e| format!("bad --default-deadline: {e}")))
        .transpose()?;
    let drain_grace = args
        .flags
        .get("drain-grace")
        .map(|v| parse_duration(v).map_err(|e| format!("bad --drain-grace: {e}")))
        .transpose()?
        .unwrap_or(30.0);
    let faults = pi2m::faults::FaultPlan::from_env()
        .map_err(|e| format!("bad fault plan: {e}"))?
        .map(Arc::new);
    // the daemon's stderr defaults to JSONL so every line is machine-parseable
    let journal = init_journal(args, true)?;
    if let Some(f) = &faults {
        journal.info(
            "faults.armed",
            &[
                (
                    "msg",
                    Json::str(format!("fault injection armed: {}", f.describe())),
                ),
                ("plan", Json::str(f.describe())),
            ],
        );
    }

    let svc = MeshService::start(ServiceConfig {
        sessions,
        threads,
        queue_capacity,
        spool: spool.clone(),
        default_deadline_s,
        max_retries,
        faults,
        journal: Arc::clone(&journal),
        ..Default::default()
    })?;
    serve::signal::install();
    let server =
        HttpServer::bind(&addr).map_err(|e| CliError::Io(format!("cannot bind {addr}: {e}")))?;
    let local = server
        .local_addr()
        .map_err(|e| CliError::Io(e.to_string()))?;
    // stdout on purpose: wrappers parse this line for the resolved port
    println!("pi2m serve: listening on {local}");
    journal.info(
        "serve.config",
        &[
            (
                "msg",
                Json::str(format!(
                    "serve: {sessions} session(s) x {threads} thread(s), queue capacity \
                     {queue_capacity}, spool {}, retries {max_retries}, deadline {}",
                    spool.display(),
                    default_deadline_s.map_or("none".into(), |d| format!("{d}s")),
                )),
            ),
            ("addr", Json::str(local.to_string())),
            ("sessions", Json::int(sessions as u64)),
            ("threads", Json::int(threads as u64)),
            ("queue_capacity", Json::int(queue_capacity as u64)),
            ("max_retries", Json::int(max_retries as u64)),
        ],
    );

    // The accept loop runs on its own thread so the HTTP API stays up
    // DURING the drain: late submits get the typed 503, pollers see their
    // jobs reach terminal states, artifacts stay fetchable.
    let http_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let server_thread = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&http_stop);
        std::thread::Builder::new()
            .name("pi2m-http".into())
            .spawn(move || server.serve(svc, || stop.load(std::sync::atomic::Ordering::SeqCst)))
            .map_err(|e| format!("cannot spawn http thread: {e}"))?
    };
    while !serve::signal::requested() && !svc.is_draining() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    journal.info(
        "serve.drain",
        &[
            (
                "msg",
                Json::str(format!(
                    "serve: drain requested ({} queued, {} running); grace {drain_grace}s",
                    svc.queue_depth(),
                    svc.busy_slots()
                )),
            ),
            ("queued", Json::int(svc.queue_depth() as u64)),
            ("running", Json::int(svc.busy_slots() as u64)),
            ("grace_s", Json::num(drain_grace)),
        ],
    );
    let clean = svc.drain(std::time::Duration::from_secs_f64(drain_grace));
    http_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = server_thread.join();
    let (succeeded, failed, cancelled, shed, retries, recycles) = (
        svc.counter(pi2m::obs::metrics::SERVE_JOBS_SUCCEEDED),
        svc.counter(pi2m::obs::metrics::SERVE_JOBS_FAILED),
        svc.counter(pi2m::obs::metrics::SERVE_JOBS_CANCELLED),
        svc.counter(pi2m::obs::metrics::SERVE_JOBS_SHED),
        svc.counter(pi2m::obs::metrics::SERVE_JOB_RETRIES),
        svc.counter(pi2m::obs::metrics::SERVE_SESSIONS_RECYCLED),
    );
    journal.info(
        "serve.drained",
        &[
            (
                "msg",
                Json::str(format!(
                    "serve: drained: {succeeded} succeeded, {failed} failed, \
                     {cancelled} cancelled, {shed} shed, {retries} retries, {recycles} recycles"
                )),
            ),
            ("succeeded", Json::int(succeeded)),
            ("failed", Json::int(failed)),
            ("cancelled", Json::int(cancelled)),
            ("shed", Json::int(shed)),
            ("retries", Json::int(retries)),
            ("recycles", Json::int(recycles)),
        ],
    );
    if clean {
        Ok(())
    } else {
        Err(CliError::Cancelled(format!(
            "drain grace of {drain_grace}s expired; remaining jobs were force-cancelled"
        )))
    }
}

fn cmd_phantom(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .ok_or("usage: pi2m phantom <name> <out.pim>")?;
    let out = args
        .positional
        .get(2)
        .ok_or("usage: pi2m phantom <name> <out.pim>")?;
    let scale: f64 = args
        .flags
        .get("scale")
        .map(|v| v.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(1.0);
    let img = phantoms::by_name(name, scale).ok_or_else(|| {
        format!("unknown phantom '{name}' (try sphere, nested, torus, abdominal, knee, head-neck)")
    })?;
    img_io::save(&img, out).map_err(|e| e.to_string())?;
    let d = img.dims();
    eprintln!(
        "wrote {out}: {}x{}x{}, {} tissues",
        d[0],
        d[1],
        d[2],
        img.num_tissues()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .get(1)
        .ok_or("usage: pi2m info <input.pim>")?;
    let img = load_input(input)?;
    let d = img.dims();
    let s = img.spacing();
    println!("dims     : {} x {} x {}", d[0], d[1], d[2]);
    println!("spacing  : {} x {} x {} mm", s[0], s[1], s[2]);
    println!("tissues  : {}", img.num_tissues());
    println!("volume   : {:.1} mm^3 foreground", img.foreground_volume());
    let h = img.label_histogram();
    for (l, &c) in h.iter().enumerate().skip(1) {
        if c > 0 {
            println!("  label {l:>3}: {c:>9} voxels");
        }
    }
    Ok(())
}

/// `pi2m bench`: run the fixed-seed kernel workloads (insertion, removal,
/// refinement), print the throughput summary, optionally write
/// `BENCH_kernel.json` and/or gate against a checked-in baseline.
fn cmd_bench(args: &Args) -> Result<(), String> {
    use pi2m_bench::kernel::{
        check_against_baseline, check_flight_overhead, run_kernel_bench, KernelBenchOpts,
    };

    if args.switches.contains("scaling") {
        return cmd_bench_scaling(args);
    }

    let opts = KernelBenchOpts {
        quick: args.switches.contains("quick"),
        seed: args
            .flags
            .get("seed")
            .map(|v| v.parse().map_err(|_| "bad --seed"))
            .transpose()?
            .unwrap_or(42),
    };
    let mode = if opts.quick { "quick" } else { "full" };
    eprintln!("running kernel benchmark ({mode}, seed {})...", opts.seed);
    let mut report = run_kernel_bench(opts);

    // optional A/B record: an older kernel's measured insertion throughput
    // on the identical workload (see README "Benchmarking")
    if let Some(ops) = args.flags.get("parent-insertion") {
        let insertion_ops_per_sec: f64 = ops.parse().map_err(|_| "bad --parent-insertion")?;
        let commit = args
            .flags
            .get("parent-commit")
            .cloned()
            .ok_or("--parent-insertion requires --parent-commit")?;
        report.parent = Some(pi2m_bench::kernel::ParentComparison {
            commit,
            insertion_ops_per_sec,
        });
    }

    println!("workload     ops         seconds     ops/sec");
    for (name, w) in [
        ("insertion", report.insertion),
        ("removal", report.removal),
        ("refinement", report.refinement),
    ] {
        println!(
            "{name:<12} {:>10}  {:>9.3}  {:>10.0}",
            w.ops,
            w.seconds,
            w.ops_per_sec()
        );
    }
    let p = &report.pred;
    let ot = p.orient_total().max(1);
    let it = p.insphere_total().max(1);
    println!(
        "predicates   orient: {:.1}% semi-static, {:.1}% filtered, {:.1}% exact ({} calls)",
        100.0 * p.orient_semi_static as f64 / ot as f64,
        100.0 * p.orient_filtered as f64 / ot as f64,
        100.0 * p.orient_exact as f64 / ot as f64,
        p.orient_total(),
    );
    println!(
        "             insphere: {:.1}% semi-static, {:.1}% filtered, {:.1}% exact ({} calls)",
        100.0 * p.insphere_semi_static as f64 / it as f64,
        100.0 * p.insphere_filtered as f64 / it as f64,
        100.0 * p.insphere_exact as f64 / it as f64,
        p.insphere_total(),
    );
    println!(
        "scratch      {} reuses, {} cold allocs, footprint {} elems",
        report.scratch_reuses, report.scratch_allocs, report.scratch_footprint
    );
    println!(
        "flight       recorder on {:.0} vs off {:.0} ops/s ({:+.2}% overhead)",
        report.flight.on.ops_per_sec(),
        report.flight.off.ops_per_sec(),
        report.flight.overhead_frac() * 100.0
    );
    println!(
        "batch        insertion on {:.0} vs off {:.0} ops/s (x{:.2}, occupancy {:.2}, fallback {:.1}%)",
        report.batch.on.ops_per_sec(),
        report.batch.off.ops_per_sec(),
        report.batch.speedup(),
        report.batch.occupancy,
        report.batch.fallback_rate * 100.0
    );
    println!(
        "session      warm {:.0} vs cold {:.0} runs/s (setup saving {:.1}%/run)",
        report.session.warm.ops_per_sec(),
        report.session.cold.ops_per_sec(),
        report.session.setup_saving_frac() * 100.0
    );
    if let Some(parent) = &report.parent {
        println!(
            "parent       {}: {:.0} insert ops/s -> x{:.2}",
            parent.commit,
            parent.insertion_ops_per_sec,
            report.insertion.ops_per_sec() / parent.insertion_ops_per_sec
        );
    }

    if let Some(out) = args.flags.get("out") {
        std::fs::write(out, report.to_json_string() + "\n")
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }

    if let Some(baseline_path) = args.flags.get("check") {
        let tolerance: f64 = args
            .flags
            .get("tolerance")
            .map(|v| v.parse().map_err(|_| "bad --tolerance"))
            .transpose()?
            .unwrap_or(0.25);
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let lines = check_against_baseline(&report, &baseline, tolerance)
            .map_err(|e| format!("throughput regression: {e}"))?;
        for l in lines {
            println!("check        {l}");
        }
        println!("check        OK (tolerance {:.0}%)", tolerance * 100.0);
    }

    if let Some(gate) = args.flags.get("flight-gate") {
        let max_frac: f64 = gate.parse().map_err(|_| "bad --flight-gate")?;
        let line = check_flight_overhead(&report, max_frac)
            .map_err(|l| format!("flight recorder too expensive: {l}"))?;
        println!("check        {line}");
    }
    Ok(())
}

/// `pi2m analyze`: offline inspection of saved observability artifacts.
/// One file renders its attribution / hot-spot summary; two files diff the
/// runs (base first) and attribute the regression to a waste category.
fn cmd_analyze(args: &Args) -> Result<(), String> {
    use pi2m::obs::{load_artifact, render_diff, render_summary};

    let load = |path: &str| -> Result<pi2m::obs::Artifact, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        load_artifact(&text).map_err(|e| format!("{path}: {e}"))
    };
    match (args.positional.get(1), args.positional.get(2)) {
        (Some(one), None) => {
            print!("{}", render_summary(&load(one)?));
            Ok(())
        }
        (Some(base), Some(new)) => {
            let (base, new) = (load(base)?, load(new)?);
            print!("{}", render_diff(&base, &new));
            Ok(())
        }
        _ => Err("usage: pi2m analyze <artifact.json> [new.json]  \
                  (one file: summary; two files: diff base -> new)"
            .into()),
    }
}

/// `pi2m bench --scaling`: run the refinement workload up a thread ladder
/// over one warm session, print the speedup/efficiency table with the
/// wall-time attribution, optionally write `BENCH_scaling.json` and/or gate
/// parallel efficiency against `ci/scaling_baseline.json`.
fn cmd_bench_scaling(args: &Args) -> Result<(), String> {
    use pi2m_bench::scaling::{
        check_scaling_baseline, render_scaling_table, run_scaling_bench, ScalingBenchOpts,
    };

    let threads = args
        .flags
        .get("threads")
        .map(|v| -> Result<Vec<usize>, String> {
            v.split(',')
                .map(|t| t.trim().parse().map_err(|_| format!("bad --threads '{v}'")))
                .collect()
        })
        .transpose()?;
    let opts = ScalingBenchOpts {
        quick: args.switches.contains("quick"),
        threads,
        ..Default::default()
    };
    let mode = if opts.quick { "quick" } else { "full" };
    eprintln!("running strong-scaling benchmark ({mode})...");
    let report = run_scaling_bench(opts);
    print!("{}", render_scaling_table(&report));

    if let Some(out) = args.flags.get("out") {
        std::fs::write(out, report.to_json_string() + "\n")
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }

    if let Some(baseline_path) = args.flags.get("check") {
        let tolerance: f64 = args
            .flags
            .get("tolerance")
            .map(|v| v.parse().map_err(|_| "bad --tolerance"))
            .transpose()?
            .unwrap_or(0.25);
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let lines = check_scaling_baseline(&report, &baseline, tolerance)
            .map_err(|e| format!("scaling regression: {e}"))?;
        for l in lines {
            println!("check        {l}");
        }
        println!("check        OK (tolerance {:.0}%)", tolerance * 100.0);
    }
    Ok(())
}

/// `pi2m --version`: the crate version plus the versions of the two stable
/// on-disk layouts tools may depend on — the run-report JSON schema and the
/// flight-recorder event layout.
fn print_version() {
    println!("pi2m {}", env!("CARGO_PKG_VERSION"));
    println!("report-schema {}", RunReport::SCHEMA_VERSION);
    println!("flight-layout {}", pi2m::obs::flight::LAYOUT_VERSION);
    println!("journal-schema {}", pi2m::obs::journal::SCHEMA_VERSION);
    println!("job-trace-schema {}", pi2m::serve::TRACE_SCHEMA_VERSION);
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw);
    if args.switches.contains("version") {
        print_version();
        return ExitCode::SUCCESS;
    }
    let r: Result<(), CliError> = match args.positional.first().map(String::as_str) {
        Some("mesh") => cmd_mesh(&args),
        Some("batch") => cmd_batch(&args),
        Some("serve") => cmd_serve(&args),
        Some("phantom") => cmd_phantom(&args).map_err(CliError::from),
        Some("info") => cmd_info(&args).map_err(CliError::from),
        Some("bench") => cmd_bench(&args).map_err(CliError::from),
        Some("analyze") => cmd_analyze(&args).map_err(CliError::from),
        Some("version") => {
            print_version();
            Ok(())
        }
        _ => Err(
            "usage: pi2m <mesh|batch|serve|phantom|info|bench|analyze|version> ... (see README)"
                .into(),
        ),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // typed: scripts branch on the exit code, humans on the prefix
            eprintln!("error[{}]: {e}", e.kind());
            ExitCode::from(e.exit_code())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_output_names() {
        assert_eq!(batch_output_name("phantom:torus"), "torus.vtk");
        assert_eq!(batch_output_name("scans/knee.pim"), "knee.vtk");
        assert_eq!(batch_output_name("plain"), "plain.vtk");
    }
}
