//! `pi2m` — command-line Image-to-Mesh conversion.
//!
//! ```text
//! pi2m mesh   <input.pim|phantom:NAME> [-o out.vtk] [--delta D] [--threads N]
//!             [--cm aggressive|random|global|local] [--balancer rws|hws]
//!             [--no-removals] [--size S] [--off out.off] [--stats]
//!             [--report run.json] [--trace-out trace.json] [--metrics]
//!             [--audit] [--live[=INTERVAL]] [--contention-out c.json]
//!             [--no-flight] [--force]
//! pi2m phantom <name> <out.pim> [--scale S]    generate a phantom image
//! pi2m info   <input.pim>                      print image metadata
//! pi2m bench  [--quick] [--seed N] [--out BENCH_kernel.json]
//!             [--check baseline.json] [--tolerance 0.25]
//!             [--flight-gate FRAC]
//!             [--parent-commit HASH --parent-insertion OPS_PER_SEC]
//!                                              kernel benchmark harness
//! ```
//!
//! Input images use the `.pim` format (see `pi2m::image::io`); `phantom:NAME`
//! meshes a built-in phantom directly (sphere, nested, torus, abdominal,
//! knee, head-neck).

use pi2m::image::{io as img_io, phantoms, LabeledImage};
use pi2m::meshio;
use pi2m::obs::metrics::ObsEvent;
use pi2m::obs::{
    analyze, render_chrome_trace_with_flight, render_prometheus, AnalyzeOpts, OverheadBreakdown,
    RunReport,
};
use pi2m::quality;
use pi2m::refine::{BalancerKind, CmKind, Mesher, MesherConfig, OverheadKind};
use std::io::BufWriter;
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

/// Boolean options that never take a value — without this list, a switch
/// followed by another short option (`--metrics -o out.vtk`) would greedily
/// swallow it as a value. (`--live` doubles as a switch: an interval rides
/// in `--live=INTERVAL` form only.)
const SWITCHES: &[&str] = &[
    "stats",
    "no-removals",
    "metrics",
    "audit",
    "quick",
    "live",
    "no-flight",
    "force",
];

fn parse_args(raw: &[String]) -> Args {
    let mut a = Args {
        positional: Vec::new(),
        flags: Default::default(),
        switches: Default::default(),
    };
    let mut it = raw.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if let Some((k, v)) = name.split_once('=') {
                a.flags.insert(k.to_string(), v.to_string());
                continue;
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") && !SWITCHES.contains(&name) => {
                    a.flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    a.switches.insert(name.to_string());
                }
            }
        } else if let Some(name) = arg.strip_prefix("-") {
            if let Some(v) = it.next() {
                a.flags.insert(name.to_string(), v.clone());
            }
        } else {
            a.positional.push(arg.clone());
        }
    }
    a
}

/// Parse `"1s"`, `"500ms"`, or a plain number of seconds.
fn parse_duration(v: &str) -> Option<f64> {
    let v = v.trim();
    let (num, mult) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1.0)
    } else {
        (v, 1.0)
    };
    num.trim()
        .parse::<f64>()
        .ok()
        .map(|x| x * mult)
        .filter(|s| *s > 0.0)
}

/// Write an output artifact, refusing to clobber an existing file unless the
/// user passed `--force`.
fn write_new(path: &str, contents: &str, force: bool) -> Result<(), String> {
    if !force && std::path::Path::new(path).exists() {
        return Err(format!(
            "{path} already exists; pass --force to overwrite it"
        ));
    }
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

fn load_input(spec: &str) -> Result<LabeledImage, String> {
    if let Some(name) = spec.strip_prefix("phantom:") {
        phantoms::by_name(name, 1.0).ok_or_else(|| format!("unknown phantom '{name}'"))
    } else {
        img_io::load(spec).map_err(|e| format!("cannot read {spec}: {e}"))
    }
}

fn cmd_mesh(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .get(1)
        .ok_or("usage: pi2m mesh <input.pim|phantom:NAME> [options]")?;
    let img = load_input(input)?;

    let delta: f64 = args
        .flags
        .get("delta")
        .map(|v| v.parse().map_err(|_| "bad --delta"))
        .transpose()?
        .unwrap_or(2.0 * img.min_spacing());
    let threads: usize = args
        .flags
        .get("threads")
        .map(|v| v.parse().map_err(|_| "bad --threads"))
        .transpose()?
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let cm = match args.flags.get("cm").map(String::as_str) {
        None | Some("local") => CmKind::Local,
        Some("global") => CmKind::Global,
        Some("random") => CmKind::Random,
        Some("aggressive") => CmKind::Aggressive,
        Some(other) => return Err(format!("unknown --cm '{other}'")),
    };
    let balancer = match args.flags.get("balancer").map(String::as_str) {
        None | Some("hws") => BalancerKind::Hws,
        Some("rws") => BalancerKind::Rws,
        Some(other) => return Err(format!("unknown --balancer '{other}'")),
    };
    let size_fn = args
        .flags
        .get("size")
        .map(|v| -> Result<_, String> {
            let s: f64 = v.parse().map_err(|_| "bad --size")?;
            Ok(Arc::new(pi2m::oracle::UniformSize(s)) as Arc<dyn pi2m::oracle::SizeFn>)
        })
        .transpose()?;

    let enable_removals = !args.switches.contains("no-removals");
    let force = args.switches.contains("force");
    let live = if let Some(v) = args.flags.get("live") {
        Some(parse_duration(v).ok_or_else(|| format!("bad --live interval '{v}'"))?)
    } else if args.switches.contains("live") {
        Some(1.0)
    } else {
        None
    };
    // Deterministic fault injection (testing): armed only when the
    // PI2M_FAULT_PLAN / PI2M_FAULT_SEED environment variables are set.
    let faults = pi2m::faults::FaultPlan::from_env()
        .map_err(|e| format!("bad fault plan: {e}"))?
        .map(Arc::new);
    if let Some(f) = &faults {
        eprintln!("fault injection armed: {}", f.describe());
    }
    let cfg = MesherConfig {
        delta,
        threads,
        cm,
        balancer,
        size_fn,
        enable_removals,
        faults,
        topology: pi2m::refine::MachineTopology::flat(threads),
        // per-episode overhead events are needed for the Chrome trace
        trace: args.flags.contains_key("trace-out"),
        flight: !args.switches.contains("no-flight"),
        live,
        ..Default::default()
    };
    eprintln!("meshing {input}: δ={delta}, {threads} threads, {cm:?}-CM, {balancer:?}");
    let t0 = std::time::Instant::now();
    let out = Mesher::new(img, cfg).run();
    let dt = t0.elapsed().as_secs_f64();
    eprintln!(
        "{} tets / {} points in {:.2}s ({:.0} elements/s), {} rollbacks, {} removals",
        out.mesh.num_tets(),
        out.mesh.num_points(),
        dt,
        out.mesh.num_tets() as f64 / dt,
        out.stats.total_rollbacks(),
        out.stats.total_removals()
    );
    if out.stats.total_panics() > 0 || out.stats.workers_died > 0 {
        eprintln!(
            "recovered: {} op panics, {} quarantined, {} recovery rollbacks, {} workers died",
            out.stats.total_panics(),
            out.stats.total_quarantined(),
            out.stats.total_recovery_rollbacks(),
            out.stats.workers_died
        );
    }

    if args.switches.contains("audit") {
        let report = pi2m::refine::audit_mesh(&out.shared, 42);
        eprintln!("{}", report.summary().trim_end());
        if !report.clean() {
            return Err(format!(
                "mesh integrity audit failed with {} violation(s)",
                report.violations.len()
            ));
        }
    }

    if args.switches.contains("stats") {
        let q = quality::mesh_quality(&out.mesh);
        let b = quality::boundary_report(&out.mesh);
        let tris = out.mesh.boundary_triangles();
        let hd = quality::hausdorff_distance(&out.mesh.points, &tris, &out.oracle, 7);
        eprintln!(
            "quality: max radius-edge {:.3}, dihedral ({:.1}°,{:.1}°), min boundary angle {:.1}°, Hausdorff {:.3}",
            q.max_radius_edge, q.min_dihedral_deg, q.max_dihedral_deg, b.min_planar_angle_deg, hd
        );
    }

    // --- observability exports -------------------------------------------
    // Contention analysis from the flight-recorder log (empty when the
    // recorder was off: the report section is then all zeros).
    let contention = analyze(
        &out.flight,
        AnalyzeOpts {
            threads,
            wall_s: out.stats.wall_time,
            dropped: out.flight_dropped,
            ..Default::default()
        },
    );
    if let Some(path) = args.flags.get("contention-out") {
        write_new(path, &(contention.to_json().dump_pretty() + "\n"), force)?;
        eprintln!("wrote {path}");
    }
    if args.flags.contains_key("report")
        || args.flags.contains_key("trace-out")
        || args.switches.contains("metrics")
    {
        let mut report = RunReport::new("pi2m");
        report
            .config("input", input)
            .config("delta", delta)
            .config("threads", threads)
            .config("cm", format!("{cm:?}"))
            .config("balancer", format!("{balancer:?}"))
            .config("enable_removals", enable_removals);
        report.set_phases(&out.phases);
        report.overheads = OverheadBreakdown {
            contention_s: out.stats.contention_overhead(),
            load_balance_s: out.stats.load_balance_overhead(),
            rollback_s: out.stats.rollback_overhead(),
            rollbacks: out.stats.total_rollbacks(),
            livelock: out.stats.livelock,
        };
        report.threads = threads;
        report.wall_s = dt;
        report.elements = out.mesh.num_tets() as u64;
        report.metrics = out.metrics.clone();
        report.contention = Some(contention.clone());

        if let Some(path) = args.flags.get("report") {
            write_new(path, &report.to_json_string(), force)?;
            eprintln!("wrote {path}");
        }
        if let Some(path) = args.flags.get("trace-out") {
            // worker lifetime events are already in the run time base;
            // overhead episodes carry refinement-clock stamps and shift by
            // the recorded origin.
            let mut events = out.metrics.events.clone();
            for ev in out.stats.merged_trace() {
                let name = match ev.kind {
                    OverheadKind::Contention => "contention",
                    OverheadKind::LoadBalance => "load_balance",
                    OverheadKind::Rollback => "rollback",
                };
                events.push((
                    ev.tid,
                    ObsEvent {
                        name,
                        cat: "overhead",
                        at_s: out.stats.trace_origin + ev.at,
                        dur_s: ev.dur,
                    },
                ));
            }
            write_new(
                path,
                &render_chrome_trace_with_flight(&out.phases, &events, &out.flight),
                force,
            )?;
            eprintln!("wrote {path}");
        }
        if args.switches.contains("metrics") {
            print!("{}", render_prometheus(&report));
        }
    }

    let out_path = args
        .flags
        .get("o")
        .cloned()
        .unwrap_or_else(|| "mesh.vtk".into());
    let f = std::fs::File::create(&out_path).map_err(|e| format!("{out_path}: {e}"))?;
    meshio::write_vtk(&out.mesh, &mut BufWriter::new(f)).map_err(|e| e.to_string())?;
    eprintln!("wrote {out_path}");
    if let Some(off) = args.flags.get("off") {
        let f = std::fs::File::create(off).map_err(|e| format!("{off}: {e}"))?;
        meshio::write_off(&out.mesh, &mut BufWriter::new(f)).map_err(|e| e.to_string())?;
        eprintln!("wrote {off}");
    }
    Ok(())
}

fn cmd_phantom(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .ok_or("usage: pi2m phantom <name> <out.pim>")?;
    let out = args
        .positional
        .get(2)
        .ok_or("usage: pi2m phantom <name> <out.pim>")?;
    let scale: f64 = args
        .flags
        .get("scale")
        .map(|v| v.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(1.0);
    let img = phantoms::by_name(name, scale).ok_or_else(|| {
        format!("unknown phantom '{name}' (try sphere, nested, torus, abdominal, knee, head-neck)")
    })?;
    img_io::save(&img, out).map_err(|e| e.to_string())?;
    let d = img.dims();
    eprintln!(
        "wrote {out}: {}x{}x{}, {} tissues",
        d[0],
        d[1],
        d[2],
        img.num_tissues()
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let input = args
        .positional
        .get(1)
        .ok_or("usage: pi2m info <input.pim>")?;
    let img = load_input(input)?;
    let d = img.dims();
    let s = img.spacing();
    println!("dims     : {} x {} x {}", d[0], d[1], d[2]);
    println!("spacing  : {} x {} x {} mm", s[0], s[1], s[2]);
    println!("tissues  : {}", img.num_tissues());
    println!("volume   : {:.1} mm^3 foreground", img.foreground_volume());
    let h = img.label_histogram();
    for (l, &c) in h.iter().enumerate().skip(1) {
        if c > 0 {
            println!("  label {l:>3}: {c:>9} voxels");
        }
    }
    Ok(())
}

/// `pi2m bench`: run the fixed-seed kernel workloads (insertion, removal,
/// refinement), print the throughput summary, optionally write
/// `BENCH_kernel.json` and/or gate against a checked-in baseline.
fn cmd_bench(args: &Args) -> Result<(), String> {
    use pi2m_bench::kernel::{
        check_against_baseline, check_flight_overhead, run_kernel_bench, KernelBenchOpts,
    };

    let opts = KernelBenchOpts {
        quick: args.switches.contains("quick"),
        seed: args
            .flags
            .get("seed")
            .map(|v| v.parse().map_err(|_| "bad --seed"))
            .transpose()?
            .unwrap_or(42),
    };
    let mode = if opts.quick { "quick" } else { "full" };
    eprintln!("running kernel benchmark ({mode}, seed {})...", opts.seed);
    let mut report = run_kernel_bench(opts);

    // optional A/B record: an older kernel's measured insertion throughput
    // on the identical workload (see README "Benchmarking")
    if let Some(ops) = args.flags.get("parent-insertion") {
        let insertion_ops_per_sec: f64 = ops.parse().map_err(|_| "bad --parent-insertion")?;
        let commit = args
            .flags
            .get("parent-commit")
            .cloned()
            .ok_or("--parent-insertion requires --parent-commit")?;
        report.parent = Some(pi2m_bench::kernel::ParentComparison {
            commit,
            insertion_ops_per_sec,
        });
    }

    println!("workload     ops         seconds     ops/sec");
    for (name, w) in [
        ("insertion", report.insertion),
        ("removal", report.removal),
        ("refinement", report.refinement),
    ] {
        println!(
            "{name:<12} {:>10}  {:>9.3}  {:>10.0}",
            w.ops,
            w.seconds,
            w.ops_per_sec()
        );
    }
    let p = &report.pred;
    let ot = p.orient_total().max(1);
    let it = p.insphere_total().max(1);
    println!(
        "predicates   orient: {:.1}% semi-static, {:.1}% filtered, {:.1}% exact ({} calls)",
        100.0 * p.orient_semi_static as f64 / ot as f64,
        100.0 * p.orient_filtered as f64 / ot as f64,
        100.0 * p.orient_exact as f64 / ot as f64,
        p.orient_total(),
    );
    println!(
        "             insphere: {:.1}% semi-static, {:.1}% filtered, {:.1}% exact ({} calls)",
        100.0 * p.insphere_semi_static as f64 / it as f64,
        100.0 * p.insphere_filtered as f64 / it as f64,
        100.0 * p.insphere_exact as f64 / it as f64,
        p.insphere_total(),
    );
    println!(
        "scratch      {} reuses, {} cold allocs, footprint {} elems",
        report.scratch_reuses, report.scratch_allocs, report.scratch_footprint
    );
    println!(
        "flight       recorder on {:.0} vs off {:.0} ops/s ({:+.2}% overhead)",
        report.flight.on.ops_per_sec(),
        report.flight.off.ops_per_sec(),
        report.flight.overhead_frac() * 100.0
    );
    if let Some(parent) = &report.parent {
        println!(
            "parent       {}: {:.0} insert ops/s -> x{:.2}",
            parent.commit,
            parent.insertion_ops_per_sec,
            report.insertion.ops_per_sec() / parent.insertion_ops_per_sec
        );
    }

    if let Some(out) = args.flags.get("out") {
        std::fs::write(out, report.to_json_string() + "\n")
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        eprintln!("wrote {out}");
    }

    if let Some(baseline_path) = args.flags.get("check") {
        let tolerance: f64 = args
            .flags
            .get("tolerance")
            .map(|v| v.parse().map_err(|_| "bad --tolerance"))
            .transpose()?
            .unwrap_or(0.25);
        let baseline = std::fs::read_to_string(baseline_path)
            .map_err(|e| format!("cannot read {baseline_path}: {e}"))?;
        let lines = check_against_baseline(&report, &baseline, tolerance)
            .map_err(|e| format!("throughput regression: {e}"))?;
        for l in lines {
            println!("check        {l}");
        }
        println!("check        OK (tolerance {:.0}%)", tolerance * 100.0);
    }

    if let Some(gate) = args.flags.get("flight-gate") {
        let max_frac: f64 = gate.parse().map_err(|_| "bad --flight-gate")?;
        let line = check_flight_overhead(&report, max_frac)
            .map_err(|l| format!("flight recorder too expensive: {l}"))?;
        println!("check        {line}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&raw);
    let r = match args.positional.first().map(String::as_str) {
        Some("mesh") => cmd_mesh(&args),
        Some("phantom") => cmd_phantom(&args),
        Some("info") => cmd_info(&args),
        Some("bench") => cmd_bench(&args),
        _ => Err("usage: pi2m <mesh|phantom|info|bench> ... (see --help in README)".into()),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_equals_form_and_switches() {
        let a = parse_args(&argv(&[
            "mesh",
            "phantom:sphere",
            "--live=500ms",
            "--delta=1.5",
            "--force",
            "--metrics",
            "-o",
            "out.vtk",
        ]));
        assert_eq!(a.positional, vec!["mesh", "phantom:sphere"]);
        assert_eq!(a.flags.get("live").map(String::as_str), Some("500ms"));
        assert_eq!(a.flags.get("delta").map(String::as_str), Some("1.5"));
        assert_eq!(a.flags.get("o").map(String::as_str), Some("out.vtk"));
        assert!(a.switches.contains("force"));
        assert!(a.switches.contains("metrics"));
    }

    #[test]
    fn live_switch_without_value() {
        let a = parse_args(&argv(&["mesh", "x.pim", "--live", "--stats"]));
        assert!(a.switches.contains("live"));
        assert!(!a.flags.contains_key("live"));
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("1s"), Some(1.0));
        assert_eq!(parse_duration("500ms"), Some(0.5));
        assert_eq!(parse_duration("2"), Some(2.0));
        assert_eq!(parse_duration("0.25"), Some(0.25));
        assert_eq!(parse_duration("0"), None);
        assert_eq!(parse_duration("-1s"), None);
        assert_eq!(parse_duration("junk"), None);
    }

    #[test]
    fn write_new_refuses_clobber_without_force() {
        let dir = std::env::temp_dir().join("pi2m-write-new-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        write_new(path, "first", false).unwrap();
        let err = write_new(path, "second", false).unwrap_err();
        assert!(err.contains("--force"), "unexpected error: {err}");
        assert_eq!(std::fs::read_to_string(path).unwrap(), "first");

        write_new(path, "second", true).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "second");
        let _ = std::fs::remove_file(path);
    }
}
