//! # PI2M — Parallel Image-to-Mesh Conversion
//!
//! A Rust reproduction of *"High Quality Real-Time Image-to-Mesh Conversion
//! for Finite Element Simulations"* (Foteinos & Chrisochoides, SC 2012):
//! speculative shared-memory parallel 3D Delaunay refinement that starts
//! directly from a multi-labeled segmented image, recovers the isosurface
//! with fidelity guarantees, and meshes the volume with radius-edge quality
//! guarantees — supporting both parallel point *insertions* and *removals*.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | contents |
//! |--------|----------|
//! | [`predicates`] | robust orient3d / insphere (expansion arithmetic) |
//! | [`geometry`] | points, tetrahedron measures, quality functionals |
//! | [`image`] | multi-label voxel images + synthetic atlas phantoms |
//! | [`edt`] | parallel exact Euclidean distance/feature transform |
//! | [`oracle`] | isosurface queries (closest surface point, surface centers) |
//! | [`delaunay`] | concurrent Delaunay kernel (insertions and removals) |
//! | [`faults`] | deterministic fault-injection plans (DST-style testing) |
//! | [`refine`] | PI2M refinement engine: rules R1–R6, contention managers, work stealing |
//! | [`obs`] | observability: metric catalog, phase spans, run reports, trace exporters |
//! | [`sim`] | discrete-event simulated cc-NUMA machine for scaling studies |
//! | [`baseline`] | sequential "CGAL-like" and "TetGen-like" comparison meshers |
//! | [`quality`] | mesh statistics, Hausdorff fidelity measurement |
//! | [`meshio`] | VTK / OFF / node-ele exporters |
//! | [`serve`] | fault-tolerant meshing service (`pi2m serve`): job queue, admission control, HTTP front door |
//!
//! ## Quickstart
//!
//! A [`MeshingSession`](refine::MeshingSession) holds a warm worker pool;
//! create it once and mesh any number of images over it:
//!
//! ```
//! use pi2m::image::phantoms;
//! use pi2m::refine::{MesherConfig, MeshingSession};
//!
//! let cfg = MesherConfig {
//!     delta: 4.0,
//!     threads: 2,
//!     ..MesherConfig::default()
//! };
//! let mut session = MeshingSession::new(cfg.threads);
//! // A small two-label sphere phantom (label 1 = tissue).
//! let out = session.mesh(phantoms::sphere(32, 1.0), cfg.clone()).unwrap();
//! assert!(out.mesh.num_tets() > 100);
//! // ...the next mesh() reuses the pool's threads, arenas, and grid.
//! ```
//!
//! One-shot callers can use [`Mesher::run`](refine::Mesher::run), a thin
//! wrapper over a single-use session.
pub mod cli;

pub use pi2m_baseline as baseline;
pub use pi2m_delaunay as delaunay;
pub use pi2m_edt as edt;
pub use pi2m_faults as faults;
pub use pi2m_geometry as geometry;
pub use pi2m_image as image;
pub use pi2m_meshio as meshio;
pub use pi2m_obs as obs;
pub use pi2m_oracle as oracle;
pub use pi2m_predicates as predicates;
pub use pi2m_quality as quality;
pub use pi2m_refine as refine;
pub use pi2m_serve as serve;
pub use pi2m_sim as sim;
