//! Shared command-line plumbing for the `pi2m` binary (and any tool built on
//! the facade crate): flag parsing, duration parsing, and the output clobber
//! guard. Kept in the library so it is unit-tested like everything else.

use std::collections::{HashMap, HashSet};

/// A parsed command line: positionals in order, `--name value` /
/// `--name=value` flags, and boolean switches.
pub struct Args {
    pub positional: Vec<String>,
    pub flags: HashMap<String, String>,
    pub switches: HashSet<String>,
}

/// Boolean options that never take a value — without this list, a switch
/// followed by another short option (`--metrics -o out.vtk`) would greedily
/// swallow it as a value. (`--live` and `--log` double as switches: an
/// interval/path rides in `--live=INTERVAL` / `--log=PATH` form only.)
pub const SWITCHES: &[&str] = &[
    "stats",
    "no-removals",
    "metrics",
    "audit",
    "quick",
    "scaling",
    "reports",
    "live",
    "log",
    "no-flight",
    "no-batch",
    "force",
    "keep-going",
    "version",
];

/// Split a raw argument vector into [`Args`]. `--name=value` always binds;
/// `--name value` binds unless `name` is a known switch; `-x value` always
/// binds; everything else is positional.
pub fn parse_args(raw: &[String]) -> Args {
    let mut a = Args {
        positional: Vec::new(),
        flags: Default::default(),
        switches: Default::default(),
    };
    let mut it = raw.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if let Some((k, v)) = name.split_once('=') {
                a.flags.insert(k.to_string(), v.to_string());
                continue;
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") && !SWITCHES.contains(&name) => {
                    a.flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    a.switches.insert(name.to_string());
                }
            }
        } else if let Some(name) = arg.strip_prefix("-") {
            if let Some(v) = it.next() {
                a.flags.insert(name.to_string(), v.clone());
            }
        } else {
            a.positional.push(arg.clone());
        }
    }
    a
}

/// Parse `"1s"`, `"500ms"`, `"2m"`, or a plain number of seconds into
/// seconds. Rejects zero, negative, non-finite, and overflowing values
/// with a message naming the offending input.
pub fn parse_duration(v: &str) -> Result<f64, String> {
    let t = v.trim();
    let (num, mult) = if let Some(n) = t.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = t.strip_suffix('s') {
        (n, 1.0)
    } else if let Some(n) = t.strip_suffix('m') {
        (n, 60.0)
    } else {
        (t, 1.0)
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("invalid duration '{v}' (expected e.g. 30, 1.5s, 500ms, 2m)"))?;
    let secs = x * mult;
    if !secs.is_finite() {
        return Err(format!("duration '{v}' overflows (must be finite)"));
    }
    if secs <= 0.0 {
        return Err(format!("duration '{v}' must be positive"));
    }
    Ok(secs)
}

/// A typed CLI failure, so scripts can branch on the process exit code
/// instead of scraping stderr. The mapping is part of the CLI contract:
///
/// | code | class | meaning |
/// |------|-------|---------|
/// | 1 | `error` | generic failure (bad flags, unknown input, ...) |
/// | 3 | `cancelled` | a deadline killed the run ([`RefineError::Cancelled`]) |
/// | 4 | `io` | an input or artifact could not be read/written |
/// | 5 | `integrity` | typed kernel/invariant violation or failed `--audit` |
/// | 6 | `worker-loss` | worker threads died past quorum, or livelock |
///
/// (2 is left alone: shells use it for their own usage errors.)
///
/// [`RefineError::Cancelled`]: crate::refine::RefineError::Cancelled
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Anything without a more specific class; exit code 1.
    Generic(String),
    /// The run was cancelled by a deadline; exit code 3.
    Cancelled(String),
    /// Reading an input or writing an artifact failed; exit code 4.
    Io(String),
    /// A typed integrity failure (kernel invariant, audit); exit code 5.
    Integrity(String),
    /// Worker deaths past quorum or livelock; exit code 6.
    WorkerLoss(String),
}

impl CliError {
    /// The process exit code for this class (see the table above).
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Generic(_) => 1,
            CliError::Cancelled(_) => 3,
            CliError::Io(_) => 4,
            CliError::Integrity(_) => 5,
            CliError::WorkerLoss(_) => 6,
        }
    }

    /// Short class label prefixed to the stderr message.
    pub fn kind(&self) -> &'static str {
        match self {
            CliError::Generic(_) => "error",
            CliError::Cancelled(_) => "cancelled",
            CliError::Io(_) => "io",
            CliError::Integrity(_) => "integrity",
            CliError::WorkerLoss(_) => "worker-loss",
        }
    }

    /// Classify an engine error into its CLI exit class.
    pub fn from_refine(e: &crate::refine::RefineError) -> CliError {
        use crate::refine::RefineError;
        match e {
            RefineError::Cancelled => CliError::Cancelled(e.to_string()),
            RefineError::Kernel(_) => CliError::Integrity(e.to_string()),
            RefineError::WorkerQuorumLost { .. } | RefineError::Livelock => {
                CliError::WorkerLoss(e.to_string())
            }
        }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Generic(m)
            | CliError::Cancelled(m)
            | CliError::Io(m)
            | CliError::Integrity(m)
            | CliError::WorkerLoss(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Generic(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> CliError {
        CliError::Generic(m.to_string())
    }
}

/// Write an output artifact, refusing to clobber an existing file unless the
/// user passed `--force`.
pub fn write_new(path: &str, contents: &str, force: bool) -> Result<(), String> {
    if !force && std::path::Path::new(path).exists() {
        return Err(format!(
            "{path} already exists; pass --force to overwrite it"
        ));
    }
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_equals_form_and_switches() {
        let a = parse_args(&argv(&[
            "mesh",
            "phantom:sphere",
            "--live=500ms",
            "--delta=1.5",
            "--force",
            "--metrics",
            "-o",
            "out.vtk",
        ]));
        assert_eq!(a.positional, vec!["mesh", "phantom:sphere"]);
        assert_eq!(a.flags.get("live").map(String::as_str), Some("500ms"));
        assert_eq!(a.flags.get("delta").map(String::as_str), Some("1.5"));
        assert_eq!(a.flags.get("o").map(String::as_str), Some("out.vtk"));
        assert!(a.switches.contains("force"));
        assert!(a.switches.contains("metrics"));
    }

    #[test]
    fn live_switch_without_value() {
        let a = parse_args(&argv(&["mesh", "x.pim", "--live", "--stats"]));
        assert!(a.switches.contains("live"));
        assert!(!a.flags.contains_key("live"));
    }

    #[test]
    fn log_switch_doubles_like_live() {
        let a = parse_args(&argv(&["serve", "--log", "--queue-cap", "8"]));
        assert!(a.switches.contains("log"));
        assert_eq!(a.flags.get("queue-cap").map(String::as_str), Some("8"));
        let a = parse_args(&argv(&["serve", "--log=/tmp/pi2m.jsonl"]));
        assert_eq!(
            a.flags.get("log").map(String::as_str),
            Some("/tmp/pi2m.jsonl")
        );
    }

    #[test]
    fn switch_does_not_swallow_following_positional() {
        let a = parse_args(&argv(&["batch", "--keep-going", "a.pim", "b.pim"]));
        assert!(a.switches.contains("keep-going"));
        assert_eq!(a.positional, vec!["batch", "a.pim", "b.pim"]);
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("1s"), Ok(1.0));
        assert_eq!(parse_duration("500ms"), Ok(0.5));
        assert_eq!(parse_duration("2"), Ok(2.0));
        assert_eq!(parse_duration("0.25"), Ok(0.25));
        assert_eq!(parse_duration("2m"), Ok(120.0));
        assert_eq!(parse_duration(" 1.5s "), Ok(1.5));
    }

    #[test]
    fn duration_rejects_degenerate_values_with_clear_messages() {
        for (bad, expect) in [
            ("0", "positive"),
            ("0ms", "positive"),
            ("-1s", "positive"),
            ("-0.5", "positive"),
            ("1e400", "overflow"), // parses as +inf
            ("inf", "overflow"),
            ("-inf", "overflow"),
            ("nan", "overflow"),
            ("junk", "invalid duration"),
            ("", "invalid duration"),
            ("ms", "invalid duration"),
            ("1h", "invalid duration"), // no hour suffix; be explicit
        ] {
            let err = parse_duration(bad).unwrap_err();
            assert!(
                err.contains(expect),
                "'{bad}' should mention '{expect}', got: {err}"
            );
        }
    }

    #[test]
    fn cli_error_exit_codes_are_distinct_and_stable() {
        let cases = [
            (CliError::Generic("x".into()), 1, "error"),
            (CliError::Cancelled("x".into()), 3, "cancelled"),
            (CliError::Io("x".into()), 4, "io"),
            (CliError::Integrity("x".into()), 5, "integrity"),
            (CliError::WorkerLoss("x".into()), 6, "worker-loss"),
        ];
        let mut seen = HashSet::new();
        for (e, code, kind) in cases {
            assert_eq!(e.exit_code(), code);
            assert_eq!(e.kind(), kind);
            assert!(seen.insert(code), "duplicate exit code {code}");
        }
    }

    #[test]
    fn cli_error_classifies_refine_errors() {
        use crate::refine::RefineError;
        assert_eq!(
            CliError::from_refine(&RefineError::Cancelled).exit_code(),
            3
        );
        assert_eq!(
            CliError::from_refine(&RefineError::WorkerQuorumLost {
                died: 2,
                threads: 2
            })
            .exit_code(),
            6
        );
        assert_eq!(CliError::from_refine(&RefineError::Livelock).exit_code(), 6);
    }

    #[test]
    fn write_new_refuses_clobber_without_force() {
        let dir = std::env::temp_dir().join("pi2m-write-new-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        write_new(path, "first", false).unwrap();
        let err = write_new(path, "second", false).unwrap_err();
        assert!(err.contains("--force"), "unexpected error: {err}");
        assert_eq!(std::fs::read_to_string(path).unwrap(), "first");

        write_new(path, "second", true).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "second");
        let _ = std::fs::remove_file(path);
    }
}
