//! Shared command-line plumbing for the `pi2m` binary (and any tool built on
//! the facade crate): flag parsing, duration parsing, and the output clobber
//! guard. Kept in the library so it is unit-tested like everything else.

use std::collections::{HashMap, HashSet};

/// A parsed command line: positionals in order, `--name value` /
/// `--name=value` flags, and boolean switches.
pub struct Args {
    pub positional: Vec<String>,
    pub flags: HashMap<String, String>,
    pub switches: HashSet<String>,
}

/// Boolean options that never take a value — without this list, a switch
/// followed by another short option (`--metrics -o out.vtk`) would greedily
/// swallow it as a value. (`--live` doubles as a switch: an interval rides
/// in `--live=INTERVAL` form only.)
pub const SWITCHES: &[&str] = &[
    "stats",
    "no-removals",
    "metrics",
    "audit",
    "quick",
    "scaling",
    "reports",
    "live",
    "no-flight",
    "force",
    "keep-going",
    "version",
];

/// Split a raw argument vector into [`Args`]. `--name=value` always binds;
/// `--name value` binds unless `name` is a known switch; `-x value` always
/// binds; everything else is positional.
pub fn parse_args(raw: &[String]) -> Args {
    let mut a = Args {
        positional: Vec::new(),
        flags: Default::default(),
        switches: Default::default(),
    };
    let mut it = raw.iter().peekable();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if let Some((k, v)) = name.split_once('=') {
                a.flags.insert(k.to_string(), v.to_string());
                continue;
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") && !SWITCHES.contains(&name) => {
                    a.flags.insert(name.to_string(), it.next().unwrap().clone());
                }
                _ => {
                    a.switches.insert(name.to_string());
                }
            }
        } else if let Some(name) = arg.strip_prefix("-") {
            if let Some(v) = it.next() {
                a.flags.insert(name.to_string(), v.clone());
            }
        } else {
            a.positional.push(arg.clone());
        }
    }
    a
}

/// Parse `"1s"`, `"500ms"`, or a plain number of seconds. Rejects zero and
/// negative durations.
pub fn parse_duration(v: &str) -> Option<f64> {
    let v = v.trim();
    let (num, mult) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1.0)
    } else {
        (v, 1.0)
    };
    num.trim()
        .parse::<f64>()
        .ok()
        .map(|x| x * mult)
        .filter(|s| *s > 0.0)
}

/// Write an output artifact, refusing to clobber an existing file unless the
/// user passed `--force`.
pub fn write_new(path: &str, contents: &str, force: bool) -> Result<(), String> {
    if !force && std::path::Path::new(path).exists() {
        return Err(format!(
            "{path} already exists; pass --force to overwrite it"
        ));
    }
    std::fs::write(path, contents).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_equals_form_and_switches() {
        let a = parse_args(&argv(&[
            "mesh",
            "phantom:sphere",
            "--live=500ms",
            "--delta=1.5",
            "--force",
            "--metrics",
            "-o",
            "out.vtk",
        ]));
        assert_eq!(a.positional, vec!["mesh", "phantom:sphere"]);
        assert_eq!(a.flags.get("live").map(String::as_str), Some("500ms"));
        assert_eq!(a.flags.get("delta").map(String::as_str), Some("1.5"));
        assert_eq!(a.flags.get("o").map(String::as_str), Some("out.vtk"));
        assert!(a.switches.contains("force"));
        assert!(a.switches.contains("metrics"));
    }

    #[test]
    fn live_switch_without_value() {
        let a = parse_args(&argv(&["mesh", "x.pim", "--live", "--stats"]));
        assert!(a.switches.contains("live"));
        assert!(!a.flags.contains_key("live"));
    }

    #[test]
    fn switch_does_not_swallow_following_positional() {
        let a = parse_args(&argv(&["batch", "--keep-going", "a.pim", "b.pim"]));
        assert!(a.switches.contains("keep-going"));
        assert_eq!(a.positional, vec!["batch", "a.pim", "b.pim"]);
    }

    #[test]
    fn duration_parsing() {
        assert_eq!(parse_duration("1s"), Some(1.0));
        assert_eq!(parse_duration("500ms"), Some(0.5));
        assert_eq!(parse_duration("2"), Some(2.0));
        assert_eq!(parse_duration("0.25"), Some(0.25));
        assert_eq!(parse_duration("0"), None);
        assert_eq!(parse_duration("-1s"), None);
        assert_eq!(parse_duration("junk"), None);
    }

    #[test]
    fn write_new_refuses_clobber_without_force() {
        let dir = std::env::temp_dir().join("pi2m-write-new-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.json");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        write_new(path, "first", false).unwrap();
        let err = write_new(path, "second", false).unwrap_err();
        assert!(err.contains("--force"), "unexpected error: {err}");
        assert_eq!(std::fs::read_to_string(path).unwrap(), "first");

        write_new(path, "second", true).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "second");
        let _ = std::fs::remove_file(path);
    }
}
