//! Multi-tissue atlas meshing — the Figures 7–9 workflow.
//!
//! Meshes the knee and head-neck phantoms (stand-ins for the SPL atlases)
//! with PI2M, the CGAL-like baseline, and the TetGen-like baseline, exports
//! every mesh as VTK (load in ParaView, color by the `tissue` scalar to
//! reproduce the renderings), and prints per-tissue element tables.
//!
//! ```sh
//! cargo run --release --example atlas_meshing [scale]
//! ```

use pi2m::baseline::plc::PlcBaselineConfig;
use pi2m::baseline::{isosurface::IsosurfaceBaselineConfig, IsosurfaceBaseline, PlcBaseline};
use pi2m::image::phantoms;
use pi2m::meshio;
use pi2m::refine::{FinalMesh, MesherConfig, MeshingSession};
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

fn tissue_table(name: &str, mesh: &FinalMesh) {
    let mut counts = [0usize; 256];
    for &l in &mesh.labels {
        counts[l as usize] += 1;
    }
    println!("  {name}: {} tets across tissues:", mesh.num_tets());
    for (l, &c) in counts.iter().enumerate() {
        if c > 0 {
            println!("    tissue {l:>3}: {c:>8} elements");
        }
    }
}

fn export(dir: &std::path::Path, name: &str, mesh: &FinalMesh) -> std::io::Result<()> {
    let path = dir.join(format!("{name}.vtk"));
    meshio::write_vtk(mesh, &mut BufWriter::new(File::create(&path)?))?;
    println!("  wrote {}", path.display());
    Ok(())
}

fn main() -> std::io::Result<()> {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let out_dir = std::path::Path::new("target/atlas");
    std::fs::create_dir_all(out_dir)?;
    let delta = 2.0;

    // Both atlases mesh over one warm session (the batch workflow the CLI's
    // `pi2m batch` exposes); the baselines below stay one-shot by design.
    let mut session = MeshingSession::new(4);
    for (name, img) in [
        ("knee", phantoms::knee(scale)),
        ("head_neck", phantoms::head_neck(scale)),
    ] {
        println!("=== {name} atlas (scale {scale}) ===");

        // PI2M (Figure 7)
        let pi2m_out = session
            .mesh(
                img.clone(),
                MesherConfig {
                    delta,
                    threads: 4,
                    ..Default::default()
                },
            )
            .expect("PI2M run failed");
        tissue_table("PI2M", &pi2m_out.mesh);
        export(out_dir, &format!("{name}_pi2m"), &pi2m_out.mesh)?;

        // CGAL-like (Figure 8)
        let cgal = IsosurfaceBaseline::new(
            img.clone(),
            IsosurfaceBaselineConfig {
                delta,
                ..Default::default()
            },
        )
        .run();
        tissue_table("CGAL-like", &cgal.mesh);
        export(out_dir, &format!("{name}_cgal_like"), &cgal.mesh)?;

        // TetGen-like, fed the PI2M-recovered surface (Figure 9)
        let tetgen = PlcBaseline::from_surface(
            pi2m_out.mesh.points.clone(),
            pi2m_out.mesh.boundary_triangles(),
            Arc::clone(&pi2m_out.oracle),
            PlcBaselineConfig::default(),
        )
        .run();
        tissue_table("TetGen-like", &tetgen.mesh);
        export(out_dir, &format!("{name}_tetgen_like"), &tetgen.mesh)?;
        println!();
    }
    Ok(())
}
