//! Custom size functions (rule R5): graded meshes with fine elements near a
//! region of interest — the control the paper highlights over voxel-pitch
//! meshing ("parts of the isosurface of high curvature can be meshed with
//! more elements", §2).
//!
//! ```sh
//! cargo run --release --example custom_sizing
//! ```

use pi2m::geometry::Point3;
use pi2m::image::phantoms;
use pi2m::meshio;
use pi2m::oracle::RadialSize;
use pi2m::refine::{Mesher, MesherConfig};
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("target/sizing");
    std::fs::create_dir_all(out_dir)?;
    let img = phantoms::nested_spheres(40, 1.0);
    let center = img.bounds().center();

    // uniform sizing
    let uniform = Mesher::new(
        img.clone(),
        MesherConfig {
            delta: 2.0,
            threads: 2,
            size_fn: Some(Arc::new(pi2m::oracle::UniformSize(4.0))),
            ..Default::default()
        },
    )
    .run();

    // graded: fine near a "lesion" on the inner sphere, coarse elsewhere
    let focus = center + Point3::new(7.0, 0.0, 0.0);
    let graded = Mesher::new(
        img,
        MesherConfig {
            delta: 2.0,
            threads: 2,
            size_fn: Some(Arc::new(RadialSize {
                focus,
                near: 1.0,
                growth: 0.6,
                far: 6.0,
            })),
            ..Default::default()
        },
    )
    .run();

    // surface grading: dense isosurface sampling near the lesion only
    let surface_graded = Mesher::new(
        phantoms::nested_spheres(40, 1.0),
        MesherConfig {
            delta: 3.0,
            threads: 2,
            surface_size_fn: Some(Arc::new(RadialSize {
                focus,
                near: 0.8,
                growth: 0.5,
                far: 3.0,
            })),
            ..Default::default()
        },
    )
    .run();

    println!("uniform sizing : {} elements", uniform.mesh.num_tets());
    println!("graded sizing  : {} elements", graded.mesh.num_tets());
    println!(
        "surface-graded : {} elements ({} boundary triangles)",
        surface_graded.mesh.num_tets(),
        surface_graded.mesh.boundary_triangles().len()
    );

    // demonstrate the grading: mean element volume near vs far from focus
    let mean_vol_near = |mesh: &pi2m::refine::FinalMesh, radius: f64| {
        let mut v = 0.0;
        let mut n = 0usize;
        for t in &mesh.tets {
            let c = (mesh.points[t[0] as usize]
                + mesh.points[t[1] as usize]
                + mesh.points[t[2] as usize]
                + mesh.points[t[3] as usize])
                / 4.0;
            if c.distance(focus) < radius {
                v += pi2m::geometry::signed_volume(
                    mesh.points[t[0] as usize],
                    mesh.points[t[1] as usize],
                    mesh.points[t[2] as usize],
                    mesh.points[t[3] as usize],
                )
                .abs();
                n += 1;
            }
        }
        if n > 0 {
            v / n as f64
        } else {
            f64::NAN
        }
    };
    println!(
        "graded mesh: mean element volume near focus {:.3}, far {:.3}",
        mean_vol_near(&graded.mesh, 6.0),
        mean_vol_near(&graded.mesh, f64::INFINITY)
    );

    for (name, mesh) in [("uniform", &uniform.mesh), ("graded", &graded.mesh)] {
        let path = out_dir.join(format!("{name}.vtk"));
        meshio::write_vtk(mesh, &mut BufWriter::new(File::create(&path)?))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
