//! Contention-manager laboratory: a desk-sized rerun of the paper's §5.5
//! comparison on the simulated Blacklight.
//!
//! ```sh
//! cargo run --release --example contention_lab [vthreads]
//! ```

use pi2m::image::phantoms;
use pi2m::refine::CmKind;
use pi2m::sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let vthreads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let delta: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.2);

    println!("CM comparison on simulated Blacklight, {vthreads} virtual cores");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "CM", "vtime(s)", "rollbacks", "contention", "loadbal", "rollback-ovh", "livelock"
    );
    for cm in [CmKind::Aggressive, CmKind::Random, CmKind::Global, CmKind::Local] {
        let cfg = SimConfig {
            vthreads,
            machine: SimMachine::blacklight(),
            delta,
            cm,
            livelock_vtime: 0.25,
            max_events: 40_000_000,
            max_real_seconds: 90.0,
            ..Default::default()
        };
        let out = SimMesher::new(phantoms::abdominal(1.0), cfg).run();
        println!(
            "{:<12} {:>10.4} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>9}",
            format!("{cm:?}"),
            out.stats.vtime,
            out.stats.total_rollbacks(),
            out.stats.contention_overhead(),
            out.stats.load_balance_overhead(),
            out.stats.rollback_overhead(),
            if out.stats.livelock { "YES" } else { "no" },
        );
    }
}
