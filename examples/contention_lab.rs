//! Contention-manager laboratory: a desk-sized rerun of the paper's §5.5
//! comparison on the simulated Blacklight, printed through the shared
//! `pi2m::obs` overhead exporter (same rendering the CLI and bench
//! harnesses use).
//!
//! ```sh
//! cargo run --release --example contention_lab [vthreads] [delta]
//! ```

use pi2m::image::phantoms;
use pi2m::obs::{render_overhead_table, OverheadBreakdown};
use pi2m::refine::CmKind;
use pi2m::sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let vthreads: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let delta: f64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.2);

    println!("CM comparison on simulated Blacklight, {vthreads} virtual cores");
    let mut rows: Vec<(String, OverheadBreakdown, f64)> = Vec::new();
    for cm in [
        CmKind::Aggressive,
        CmKind::Random,
        CmKind::Global,
        CmKind::Local,
    ] {
        let cfg = SimConfig {
            vthreads,
            machine: SimMachine::blacklight(),
            delta,
            cm,
            livelock_vtime: 0.25,
            max_events: 40_000_000,
            max_real_seconds: 90.0,
            ..Default::default()
        };
        let out = SimMesher::new(phantoms::abdominal(1.0), cfg).run();
        rows.push((
            format!("{cm:?}"),
            OverheadBreakdown {
                contention_s: out.stats.contention_overhead(),
                load_balance_s: out.stats.load_balance_overhead(),
                rollback_s: out.stats.rollback_overhead(),
                rollbacks: out.stats.total_rollbacks(),
                livelock: out.stats.livelock,
            },
            out.stats.vtime,
        ));
    }
    print!("{}", render_overhead_table(&rows));
}
