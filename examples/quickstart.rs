//! Quickstart: mesh a sphere phantom over a warm [`MeshingSession`] and
//! export the result, with per-stage progress reporting.
//!
//! Also reproduces the spirit of paper Figure 1 (the virtual box being
//! "carved" towards the final mesh) by exporting snapshots at increasing
//! operation budgets — all over the same session, so only the first run pays
//! pool setup.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pi2m::image::phantoms;
use pi2m::meshio;
use pi2m::quality;
use pi2m::refine::{MesherConfig, MeshingSession, RunOptions, StageStatus};
use std::fs::File;
use std::io::BufWriter;
use std::sync::Arc;

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("target/quickstart");
    std::fs::create_dir_all(out_dir)?;

    // One session for everything below: the worker pool, kernel arenas, and
    // proximity grid stay warm across all four runs.
    let mut session = MeshingSession::new(4);

    // Figure 1: snapshots of the carving at growing operation budgets.
    for (stage, max_ops) in [(1usize, 40u64), (2, 400), (3, 0)] {
        let img = phantoms::sphere(32, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            max_operations: max_ops,
            ..Default::default()
        };
        let out = session.mesh(img, cfg).expect("carving run failed");
        let path = out_dir.join(format!("carving_stage{stage}.vtk"));
        meshio::write_vtk(&out.mesh, &mut BufWriter::new(File::create(&path)?))?;
        println!(
            "stage {stage}: {:>6} ops -> {:>6} tets  ({})",
            out.stats.total_operations(),
            out.mesh.num_tets(),
            path.display()
        );
    }

    // The real run, with live pipeline-stage progress plus quality and
    // fidelity reporting.
    let img = phantoms::sphere(32, 1.0);
    let opts = RunOptions {
        cancel: None,
        on_stage: Some(Arc::new(|e| {
            if e.status == StageStatus::Finished {
                println!("  [{:>6.3}s] {} done", e.elapsed_s, e.stage);
            }
        })),
    };
    let t0 = std::time::Instant::now();
    let out = session
        .mesh_with(
            img,
            MesherConfig {
                delta: 1.5,
                threads: 4,
                ..Default::default()
            },
            &opts,
        )
        .expect("final run failed");
    let elapsed = t0.elapsed().as_secs_f64();

    let q = quality::mesh_quality(&out.mesh);
    let b = quality::boundary_report(&out.mesh);
    let tris = out.mesh.boundary_triangles();
    let hausdorff = quality::hausdorff_distance(&out.mesh.points, &tris, &out.oracle, 7);

    println!("\n=== PI2M quickstart (sphere phantom, 32^3) ===");
    println!("elements            : {}", out.mesh.num_tets());
    println!("points              : {}", out.mesh.num_points());
    println!(
        "wall time           : {elapsed:.3} s ({:.0} elements/s)",
        out.mesh.num_tets() as f64 / elapsed
    );
    println!(
        "operations          : {} ({} removals)",
        out.stats.total_operations(),
        out.stats.total_removals()
    );
    println!("rollbacks           : {}", out.stats.total_rollbacks());
    println!("max radius-edge     : {:.3}", q.max_radius_edge);
    println!(
        "dihedral (min, max) : ({:.1}°, {:.1}°)",
        q.min_dihedral_deg, q.max_dihedral_deg
    );
    println!("min boundary angle  : {:.1}°", b.min_planar_angle_deg);
    println!("Hausdorff distance  : {hausdorff:.2} (voxel = 1.0)");

    let final_path = out_dir.join("sphere.vtk");
    meshio::write_vtk(&out.mesh, &mut BufWriter::new(File::create(&final_path)?))?;
    let off_path = out_dir.join("sphere_boundary.off");
    meshio::write_off(&out.mesh, &mut BufWriter::new(File::create(&off_path)?))?;
    println!(
        "\nwrote {} and {}",
        final_path.display(),
        off_path.display()
    );
    Ok(())
}
