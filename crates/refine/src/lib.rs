//! # pi2m-refine
//!
//! The PI2M refinement engine: the paper's primary contribution. Starting
//! from a multi-label segmented image, it triangulates a virtual box,
//! recovers the isosurface(s) and meshes the volume by parallel speculative
//! Delaunay **insertions and removals** driven by rules R1–R6, with
//! pluggable contention managers (Aggressive / Random / Global / Local,
//! paper §5) and work-stealing balancers (flat RWS / hierarchical HWS,
//! paper §6.1), full wasted-cycle accounting, and livelock watchdogging.
//!
//! The engine runs as a staged pipeline (Load → EDT → Oracle →
//! SurfaceRecovery → VolumeRefine → Quality → Export) over a persistent
//! [`MeshingSession`]: create the session once and mesh many images over the
//! same warm worker pool.
//!
//! ```no_run
//! use pi2m_refine::{MesherConfig, MeshingSession};
//! use pi2m_image::phantoms;
//!
//! let cfg = MesherConfig {
//!     delta: 2.0,
//!     threads: 4,
//!     ..Default::default()
//! };
//! let mut session = MeshingSession::new(cfg.threads);
//! for img in [phantoms::abdominal(1.0), phantoms::sphere(48, 1.0)] {
//!     let out = session.mesh(img, cfg.clone())?;
//!     println!(
//!         "{} tets at {:.0} elements/sec, {} rollbacks",
//!         out.mesh.num_tets(),
//!         out.stats.elements_per_second(),
//!         out.stats.total_rollbacks()
//!     );
//! }
//! # Ok::<(), pi2m_refine::RefineError>(())
//! ```
//!
//! One-shot callers can keep using [`Mesher::run`] / [`Mesher::try_run`],
//! which wrap a single-use session.

pub mod balancer;
pub mod cm;
pub mod engine;
pub mod error;
pub mod grid;
pub mod integrity;
pub mod output;
pub mod rules;
pub mod shard;
pub mod stats;
pub mod sync;
pub mod topology;

pub use balancer::{BalancerKind, LoadBalancer, DONATE_THRESHOLD};
pub use cm::{CmKind, ContentionManager, R_PLUS, S_PLUS};
pub use engine::{
    CancelTelemetry, MeshOutput, Mesher, MesherConfig, MeshingSession, RunOptions, Stage,
    StageCallback, StageEvent, StageStatus,
};
pub use error::RefineError;
pub use grid::PointGrid;
pub use integrity::{audit_mesh, AuditReport, Violation};
pub use output::FinalMesh;
pub use pi2m_obs::{CancelToken, Cancelled};
pub use rules::{InsertAction, RuleConfig, Rules};
pub use shard::{
    mesh_sharded, parse_shard_grid, split_plan, ChunkRun, ChunkSpec, ShardError, ShardRun,
    ShardSpec,
};
pub use stats::{OverheadKind, RefineStats, ThreadStats, TraceEvent};
pub use sync::EngineSync;
pub use topology::MachineTopology;
