//! Machine topology descriptions (paper Table 2).
//!
//! The hierarchical work stealing balancer and the NUMA cost models need to
//! know how threads map onto sockets and blades. On the real engine the
//! mapping is logical (thread index → socket/blade); on the simulator it
//! also drives the memory latency model.

/// A cc-NUMA machine shape: `cores_per_socket × sockets_per_blade × blades`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MachineTopology {
    pub cores_per_socket: usize,
    pub sockets_per_blade: usize,
    pub blades: usize,
    /// Hardware threads per core (1 = no SMT, 2 = hyper-threading).
    pub smt: usize,
}

impl MachineTopology {
    /// PSC Blacklight (Table 2): Intel Xeon X7560, 8 cores/socket,
    /// 2 sockets/blade, 128 blades, 64 GB/socket, ≤5 hops.
    pub fn blacklight() -> Self {
        MachineTopology {
            cores_per_socket: 8,
            sockets_per_blade: 2,
            blades: 128,
            smt: 1,
        }
    }

    /// CRTC (Table 2): Intel Xeon X5690, 6 cores/socket, 2 sockets/blade,
    /// 1 blade.
    pub fn crtc() -> Self {
        MachineTopology {
            cores_per_socket: 6,
            sockets_per_blade: 2,
            blades: 1,
            smt: 1,
        }
    }

    /// A single-socket shape big enough for `n` threads (useful for tests
    /// and for running on ordinary hosts).
    pub fn flat(n: usize) -> Self {
        MachineTopology {
            cores_per_socket: n.max(1),
            sockets_per_blade: 1,
            blades: 1,
            smt: 1,
        }
    }

    /// Same machine with two hardware threads per core.
    pub fn with_smt(mut self, smt: usize) -> Self {
        self.smt = smt.max(1);
        self
    }

    /// Total hardware thread capacity.
    pub fn capacity(&self) -> usize {
        self.cores_per_socket * self.sockets_per_blade * self.blades * self.smt
    }

    /// Hardware threads per socket.
    #[inline]
    pub fn threads_per_socket(&self) -> usize {
        self.cores_per_socket * self.smt
    }

    /// Hardware threads per blade.
    #[inline]
    pub fn threads_per_blade(&self) -> usize {
        self.threads_per_socket() * self.sockets_per_blade
    }

    /// Socket index (global) of a thread.
    #[inline]
    pub fn socket_of(&self, tid: usize) -> usize {
        tid / self.threads_per_socket()
    }

    /// Blade index of a thread.
    #[inline]
    pub fn blade_of(&self, tid: usize) -> usize {
        tid / self.threads_per_blade()
    }

    /// Physical core index of a thread (relevant under SMT).
    #[inline]
    pub fn core_of(&self, tid: usize) -> usize {
        tid / self.smt
    }

    /// Number of router hops between two blades, matching the fat-tree
    /// behaviour the paper reports (§6.3): 0 within a blade, 3 between
    /// blades under the same lower-level switch (groups of 8, enough for
    /// 128 cores), 5 through the root switches beyond that — "the maximum
    /// number of hops for up to 128 cores was 3, while for 144, 160 and 176
    /// cores this number became 5".
    pub fn hops_between(&self, blade_a: usize, blade_b: usize) -> usize {
        if blade_a == blade_b {
            0
        } else if blade_a / 8 == blade_b / 8 {
            3
        } else {
            5
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blacklight_shape() {
        let t = MachineTopology::blacklight();
        assert_eq!(t.capacity(), 2048);
        assert_eq!(t.threads_per_blade(), 16);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(8), 1);
        assert_eq!(t.blade_of(15), 0);
        assert_eq!(t.blade_of(16), 1);
    }

    #[test]
    fn smt_mapping() {
        let t = MachineTopology::blacklight().with_smt(2);
        assert_eq!(t.threads_per_socket(), 16);
        assert_eq!(t.core_of(0), 0);
        assert_eq!(t.core_of(1), 0);
        assert_eq!(t.core_of(2), 1);
    }

    #[test]
    fn hops_are_bounded_and_symmetric() {
        let t = MachineTopology::blacklight();
        assert_eq!(t.hops_between(3, 3), 0);
        for (a, b) in [(0, 1), (0, 5), (0, 64), (17, 113)] {
            let h = t.hops_between(a, b);
            assert!((1..=6).contains(&h));
            assert_eq!(h, t.hops_between(b, a));
        }
        // far blades route through more switches than near ones
        assert!(t.hops_between(0, 127) > t.hops_between(0, 1));
    }

    #[test]
    fn flat_topology() {
        let t = MachineTopology::flat(7);
        assert_eq!(t.capacity(), 7);
        assert_eq!(t.socket_of(6), 0);
        assert_eq!(t.blade_of(6), 0);
    }
}
