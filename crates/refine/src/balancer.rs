//! Load balancing via begging lists (paper §4.4 and §6.1).
//!
//! Idle threads park themselves in a begging list; working threads, after
//! each completed operation, donate newly created poor elements to the first
//! parked beggar they can find. RWS uses a single global list; HWS splits it
//! into three levels — socket (BL1), blade (BL2), machine (BL3) — so work
//! preferentially stays close in the memory hierarchy, cutting inter-blade
//! transfers (paper Figure 5b).

use crate::cm::ContentionManager;
use crate::sync::EngineSync;
use crate::topology::MachineTopology;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pi2m_obs::flight::{cause as flight_cause, EventKind};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Minimum own-PEL population before a thread may donate (paper: 5).
pub const DONATE_THRESHOLD: i64 = 5;

/// Which balancer to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalancerKind {
    /// Random (flat) work stealing: one global begging list.
    Rws,
    /// Hierarchical work stealing over the machine topology.
    Hws,
}

/// Result of parking in a begging list.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BegOutcome {
    /// Woken with fresh work in the PEL.
    GotWork,
    /// Refinement is complete (or aborted).
    Finished,
}

/// The begging-list interface.
pub trait LoadBalancer: Send + Sync {
    fn name(&self) -> &'static str;

    /// Park until donated work arrives or the run terminates. Also performs
    /// global termination detection and deadlock-breaking release of
    /// CM-parked threads. Returns the outcome and the seconds spent parked.
    fn beg(&self, tid: usize, sync: &EngineSync, cm: &dyn ContentionManager) -> (BegOutcome, f64);

    /// Select (and unpark-reserve) a beggar for `donor` to feed; the donor
    /// must push work to the beggar's PEL and then call [`LoadBalancer::wake`].
    fn pick_beggar(&self, donor: usize) -> Option<usize>;

    /// Signal `target` that work has been pushed to its PEL.
    fn wake(&self, target: usize);

    /// Wake every parked beggar (termination).
    fn release_all(&self);
}

pub fn make_balancer(
    kind: BalancerKind,
    topo: MachineTopology,
    threads: usize,
) -> Box<dyn LoadBalancer> {
    match kind {
        BalancerKind::Rws => Box::new(RwsBalancer::new(threads)),
        BalancerKind::Hws => Box::new(HwsBalancer::new(topo, threads)),
    }
}

/// The common parked-wait loop with termination detection.
fn beg_wait(
    tid: usize,
    has_work: &AtomicBool,
    sync: &EngineSync,
    cm: &dyn ContentionManager,
    bal: &dyn LoadBalancer,
) -> (BegOutcome, f64) {
    let t0 = Instant::now();
    sync.flight_emit(tid, EventKind::BegPark, 0, 0, 0, 0);
    sync.enter_begging();
    let outcome = loop {
        if sync.is_done() {
            break BegOutcome::Finished;
        }
        if has_work.load(Ordering::Acquire) {
            has_work.store(false, Ordering::Release);
            break BegOutcome::GotWork;
        }
        if sync.quiescent() {
            // last ones out: settle termination
            sync.set_done();
            cm.release_all();
            bal.release_all();
            break BegOutcome::Finished;
        }
        // Deadlock-breaking fallback: if every non-begging live thread is
        // parked in a contention list, wake one so the system keeps moving.
        if sync.cm_blocked() > 0 && sync.begging() + sync.cm_blocked() + sync.dead() >= sync.threads
        {
            cm.release_one();
        }
        std::hint::spin_loop();
        std::thread::yield_now();
    };
    sync.exit_begging();
    let waited = t0.elapsed().as_secs_f64();
    let cause = match outcome {
        BegOutcome::GotWork => flight_cause::BEG_GOT_WORK,
        BegOutcome::Finished => flight_cause::BEG_FINISHED,
    };
    let wait_ns = (waited * 1e9).min(u32::MAX as f64) as u32;
    sync.flight_emit(tid, EventKind::BegUnpark, cause, 0, 0, wait_ns);
    (outcome, waited)
}

// --------------------------------------------------------------------------

/// Flat begging list (paper §4.4's base scheme).
pub struct RwsBalancer {
    list: Mutex<VecDeque<usize>>,
    has_work: Vec<CachePadded<AtomicBool>>,
}

impl RwsBalancer {
    pub fn new(threads: usize) -> Self {
        RwsBalancer {
            list: Mutex::new(VecDeque::new()),
            has_work: (0..threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl LoadBalancer for RwsBalancer {
    fn name(&self) -> &'static str {
        "rws"
    }

    fn beg(&self, tid: usize, sync: &EngineSync, cm: &dyn ContentionManager) -> (BegOutcome, f64) {
        self.list.lock().push_back(tid);
        beg_wait(tid, &self.has_work[tid], sync, cm, self)
    }

    fn pick_beggar(&self, donor: usize) -> Option<usize> {
        let mut l = self.list.lock();
        while let Some(t) = l.pop_front() {
            if t != donor {
                return Some(t);
            }
        }
        None
    }

    fn wake(&self, target: usize) {
        self.has_work[target].store(true, Ordering::Release);
    }

    fn release_all(&self) {
        for f in &self.has_work {
            f.store(true, Ordering::Release);
        }
    }
}

// --------------------------------------------------------------------------

/// Three-level hierarchical begging lists (paper §6.1): BL1 per socket,
/// BL2 per blade, BL3 global. Donors serve BL1 of their socket first, then
/// BL2 of their blade, then BL3.
pub struct HwsBalancer {
    topo: MachineTopology,
    bl1: Vec<Mutex<VecDeque<usize>>>,
    bl2: Vec<Mutex<VecDeque<usize>>>,
    bl3: Mutex<VecDeque<usize>>,
    has_work: Vec<CachePadded<AtomicBool>>,
}

impl HwsBalancer {
    pub fn new(topo: MachineTopology, threads: usize) -> Self {
        let sockets = threads.div_ceil(topo.threads_per_socket());
        let blades = threads.div_ceil(topo.threads_per_blade());
        HwsBalancer {
            topo,
            bl1: (0..sockets.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            bl2: (0..blades.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            bl3: Mutex::new(VecDeque::new()),
            has_work: (0..threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl LoadBalancer for HwsBalancer {
    fn name(&self) -> &'static str {
        "hws"
    }

    fn beg(&self, tid: usize, sync: &EngineSync, cm: &dyn ContentionManager) -> (BegOutcome, f64) {
        let socket = self.topo.socket_of(tid);
        let blade = self.topo.blade_of(tid);
        // Choose the level: BL1 unless the socket's other threads are all
        // already waiting there; BL2 unless it already hosts a thread from
        // this blade's other socket; BL3 otherwise (paper §6.1).
        {
            let mut l1 = self.bl1[socket].lock();
            if l1.len() < self.topo.threads_per_socket().saturating_sub(1) {
                l1.push_back(tid);
                drop(l1);
                return beg_wait(tid, &self.has_work[tid], sync, cm, self);
            }
        }
        {
            let mut l2 = self.bl2[blade].lock();
            if l2.len() < self.topo.sockets_per_blade.saturating_sub(1) {
                l2.push_back(tid);
                drop(l2);
                return beg_wait(tid, &self.has_work[tid], sync, cm, self);
            }
        }
        self.bl3.lock().push_back(tid);
        beg_wait(tid, &self.has_work[tid], sync, cm, self)
    }

    fn pick_beggar(&self, donor: usize) -> Option<usize> {
        let socket = self.topo.socket_of(donor);
        let blade = self.topo.blade_of(donor);
        if let Some(t) = self.bl1.get(socket).and_then(|l| {
            let mut l = l.lock();
            while let Some(t) = l.pop_front() {
                if t != donor {
                    return Some(t);
                }
            }
            None
        }) {
            return Some(t);
        }
        if let Some(t) = self.bl2.get(blade).and_then(|l| {
            let mut l = l.lock();
            while let Some(t) = l.pop_front() {
                if t != donor {
                    return Some(t);
                }
            }
            None
        }) {
            return Some(t);
        }
        let mut l3 = self.bl3.lock();
        while let Some(t) = l3.pop_front() {
            if t != donor {
                return Some(t);
            }
        }
        // Last resort: raid another socket's BL1 / another blade's BL2 so no
        // beggar waits forever when its own neighborhood has no producers.
        drop(l3);
        for (s, l) in self.bl1.iter().enumerate() {
            if s == socket {
                continue;
            }
            let mut l = l.lock();
            while let Some(t) = l.pop_front() {
                if t != donor {
                    return Some(t);
                }
            }
        }
        for (b, l) in self.bl2.iter().enumerate() {
            if b == blade {
                continue;
            }
            let mut l = l.lock();
            while let Some(t) = l.pop_front() {
                if t != donor {
                    return Some(t);
                }
            }
        }
        None
    }

    fn wake(&self, target: usize) {
        self.has_work[target].store(true, Ordering::Release);
    }

    fn release_all(&self) {
        for f in &self.has_work {
            f.store(true, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cm::AggressiveCm;
    use std::sync::Arc;

    #[test]
    fn rws_pick_skips_donor() {
        let b = RwsBalancer::new(3);
        b.list.lock().push_back(1);
        b.list.lock().push_back(2);
        assert_eq!(b.pick_beggar(1), Some(2));
    }

    #[test]
    fn rws_beg_wakes_on_work() {
        let b = Arc::new(RwsBalancer::new(2));
        let sync = Arc::new(EngineSync::new(2));
        sync.poor_added(1); // pretend pending work exists so no termination
        let b2 = Arc::clone(&b);
        let sync2 = Arc::clone(&sync);
        let h = std::thread::spawn(move || b2.beg(0, &sync2, &AggressiveCm));
        while sync.begging() == 0 {
            std::thread::yield_now();
        }
        let t = b.pick_beggar(1).unwrap();
        assert_eq!(t, 0);
        b.wake(t);
        let (outcome, _) = h.join().unwrap();
        assert_eq!(outcome, BegOutcome::GotWork);
    }

    #[test]
    fn termination_when_quiescent() {
        let b = Arc::new(RwsBalancer::new(1));
        let sync = Arc::new(EngineSync::new(1));
        // no poor work at all: the only thread begging must terminate
        let (outcome, _) = b.beg(0, &sync, &AggressiveCm);
        assert_eq!(outcome, BegOutcome::Finished);
        assert!(sync.is_done());
    }

    #[test]
    fn hws_prefers_local_socket() {
        let topo = MachineTopology {
            cores_per_socket: 2,
            sockets_per_blade: 2,
            blades: 2,
            smt: 1,
        };
        let b = HwsBalancer::new(topo, 8);
        // thread 1 (socket 0) and thread 3 (socket 1) wait in their BL1s
        b.bl1[0].lock().push_back(1);
        b.bl1[1].lock().push_back(3);
        // donor 0 is socket 0: picks its socket-mate first
        assert_eq!(b.pick_beggar(0), Some(1));
        // donor 2 (socket 1): picks thread 3
        assert_eq!(b.pick_beggar(2), Some(3));
    }

    #[test]
    fn hws_falls_back_to_lower_levels() {
        let topo = MachineTopology {
            cores_per_socket: 2,
            sockets_per_blade: 2,
            blades: 2,
            smt: 1,
        };
        let b = HwsBalancer::new(topo, 8);
        b.bl3.lock().push_back(7);
        assert_eq!(b.pick_beggar(0), Some(7));
        // raid: beggar waiting in a foreign BL1 is still findable
        b.bl1[1].lock().push_back(2);
        assert_eq!(b.pick_beggar(0), Some(2));
    }

    #[test]
    fn hws_beg_level_selection() {
        let topo = MachineTopology {
            cores_per_socket: 2,
            sockets_per_blade: 2,
            blades: 1,
            smt: 1,
        };
        let b = Arc::new(HwsBalancer::new(topo, 4));
        let sync = Arc::new(EngineSync::new(4));
        sync.poor_added(1);
        // BL1 of socket 0 holds at most 1 (threads_per_socket - 1)
        let b2 = Arc::clone(&b);
        let sync2 = Arc::clone(&sync);
        let h0 = std::thread::spawn(move || b2.beg(0, &sync2, &AggressiveCm));
        while b.bl1[0].lock().len() != 1 {
            std::thread::yield_now();
        }
        // next beggar of socket 0 overflows to BL2
        let b3 = Arc::clone(&b);
        let sync3 = Arc::clone(&sync);
        let h1 = std::thread::spawn(move || b3.beg(1, &sync3, &AggressiveCm));
        while b.bl2[0].lock().len() != 1 {
            std::thread::yield_now();
        }
        b.release_all();
        sync.set_done();
        h0.join().unwrap();
        h1.join().unwrap();
    }
}
