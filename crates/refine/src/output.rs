//! The reported mesh: the subset of tetrahedra whose circumcenter lies
//! inside the object O (paper Figure 1c / Algorithm 1 line 49), compacted
//! into plain arrays for analysis and export.

use pi2m_delaunay::{CellId, SharedMesh, VertexKind};
use pi2m_geometry::{circumcenter, Point3};
use pi2m_image::Label;
use pi2m_oracle::IsosurfaceOracle;
use std::collections::HashMap;

/// A compact tetrahedral mesh with per-element tissue labels.
#[derive(Clone, Debug, Default)]
pub struct FinalMesh {
    pub points: Vec<Point3>,
    /// Kind of each point (isosurface sample, circumcenter, ...).
    pub point_kinds: Vec<VertexKind>,
    /// Tetrahedra as indices into `points`, positively oriented.
    pub tets: Vec<[u32; 4]>,
    /// Tissue label of each tetrahedron (label at its circumcenter).
    pub labels: Vec<Label>,
}

impl FinalMesh {
    pub fn num_tets(&self) -> usize {
        self.tets.len()
    }

    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Distinct tissue labels present.
    pub fn tissues(&self) -> Vec<Label> {
        let mut seen = [false; 256];
        for &l in &self.labels {
            seen[l as usize] = true;
        }
        (0u16..256)
            .filter(|&l| seen[l as usize])
            .map(|l| l as Label)
            .collect()
    }

    /// Extract from the shared triangulation at quiescence: keep alive cells
    /// whose circumcenter lies inside O, labeling each by the tissue at its
    /// circumcenter. `candidates` restricts the scan (pass the union of the
    /// per-thread final lists for the paper's constant-time collection, or
    /// `None` to scan every alive cell).
    pub fn extract(
        mesh: &SharedMesh,
        oracle: &IsosurfaceOracle,
        candidates: Option<&[(CellId, u32)]>,
    ) -> FinalMesh {
        let mut out = FinalMesh::default();
        let mut vmap: HashMap<u32, u32> = HashMap::new();

        let process = |c: CellId, out: &mut FinalMesh, vmap: &mut HashMap<u32, u32>| {
            let cell = mesh.cell(c);
            let p = mesh.cell_points(c);
            let cc = match circumcenter(p[0], p[1], p[2], p[3]) {
                Some(x) => x,
                None => return,
            };
            let label = oracle.label_at(cc);
            if label == pi2m_image::BACKGROUND {
                return;
            }
            let mut tet = [0u32; 4];
            for (slot, k) in tet.iter_mut().zip(0..4) {
                let v = cell.vert(k);
                let next = vmap.len() as u32;
                let idx = *vmap.entry(v.0).or_insert(next);
                if idx == next {
                    out.points.push(mesh.position(v));
                    out.point_kinds.push(mesh.vertex(v).kind());
                }
                *slot = idx;
            }
            out.tets.push(tet);
            out.labels.push(label);
        };

        match candidates {
            Some(list) => {
                for &(c, gen) in list {
                    let cell = mesh.cell(c);
                    if cell.is_alive() && cell.gen() == gen {
                        process(c, &mut out, &mut vmap);
                    }
                }
            }
            None => {
                for c in mesh.alive_cells() {
                    process(c, &mut out, &mut vmap);
                }
            }
        }
        out
    }

    /// The boundary triangles of the mesh: faces incident to exactly one
    /// tetrahedron, plus interior faces separating tetrahedra of different
    /// tissue labels (multi-material interfaces). Oriented arbitrarily.
    pub fn boundary_triangles(&self) -> Vec<[u32; 3]> {
        use std::collections::HashMap;
        // sorted face key -> (first label, count)
        let mut faces: HashMap<[u32; 3], (Label, u8, [u32; 3])> = HashMap::new();
        for (t, &label) in self.tets.iter().zip(&self.labels) {
            for f in pi2m_geometry::TET_FACES {
                let tri = [t[f[0]], t[f[1]], t[f[2]]];
                let mut key = tri;
                key.sort_unstable();
                faces
                    .entry(key)
                    .and_modify(|e| {
                        e.1 += 1;
                        if e.0 != label {
                            e.1 |= 0x80; // mark label mismatch
                        }
                    })
                    .or_insert((label, 1, tri));
            }
        }
        faces
            .into_values()
            .filter(|&(_, count, _)| count == 1 || count & 0x80 != 0)
            .map(|(_, _, tri)| tri)
            .collect()
    }

    /// Per-label volume sums (world units³), sorted by label. The unit of
    /// comparison for differential tests: two meshes of the same image agree
    /// when every tissue's volume matches within tolerance.
    pub fn label_volumes(&self) -> Vec<(Label, f64)> {
        let mut vols: HashMap<Label, f64> = HashMap::new();
        for (t, &label) in self.tets.iter().zip(&self.labels) {
            *vols.entry(label).or_insert(0.0) += pi2m_geometry::signed_volume(
                self.points[t[0] as usize],
                self.points[t[1] as usize],
                self.points[t[2] as usize],
                self.points[t[3] as usize],
            );
        }
        let mut out: Vec<(Label, f64)> = vols.into_iter().collect();
        out.sort_by_key(|&(l, _)| l);
        out
    }

    /// Total volume of the mesh (world units³).
    pub fn volume(&self) -> f64 {
        self.tets
            .iter()
            .map(|t| {
                pi2m_geometry::signed_volume(
                    self.points[t[0] as usize],
                    self.points[t[1] as usize],
                    self.points[t[2] as usize],
                    self.points[t[3] as usize],
                )
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_delaunay::SharedMesh;
    use pi2m_image::phantoms;
    use std::sync::Arc;

    #[test]
    fn extract_keeps_only_inside_cells() {
        let img = phantoms::sphere(16, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let bb = oracle.image().foreground_bounds().unwrap();
        let mesh = SharedMesh::enclosing(&bb);
        let mut ctx = mesh.make_ctx(0);
        // sprinkle points inside the sphere so some tets have interior ccs
        let c = oracle.image().bounds().center();
        for d in [
            [0.0, 0.0, 0.0],
            [3.0, 0.0, 0.0],
            [0.0, 3.0, 0.0],
            [0.0, 0.0, 3.0],
            [-3.0, -2.0, 1.0],
        ] {
            ctx.insert(
                [c.x + d[0], c.y + d[1], c.z + d[2]],
                VertexKind::Circumcenter,
            )
            .unwrap();
        }
        let fm = FinalMesh::extract(&mesh, &oracle, None);
        assert!(fm.num_tets() > 0);
        assert_eq!(fm.tets.len(), fm.labels.len());
        // every reported tet's circumcenter must be inside
        for t in &fm.tets {
            let cc = circumcenter(
                fm.points[t[0] as usize],
                fm.points[t[1] as usize],
                fm.points[t[2] as usize],
                fm.points[t[3] as usize],
            )
            .unwrap();
            assert!(oracle.is_inside(cc));
        }
        // volume bounded by the sphere's volume (plus slop: tets can stick out)
        assert!(fm.volume() > 0.0);
        // per-label volumes partition the total
        let by_label: f64 = fm.label_volumes().iter().map(|&(_, v)| v).sum();
        assert!((by_label - fm.volume()).abs() < 1e-9);
    }

    #[test]
    fn candidate_list_extraction_matches_full_scan() {
        let img = phantoms::sphere(16, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let bb = oracle.image().foreground_bounds().unwrap();
        let mesh = SharedMesh::enclosing(&bb);
        let mut ctx = mesh.make_ctx(0);
        let c = oracle.image().bounds().center();
        for d in [[0.0, 0.0, 0.0], [2.0, 1.0, 0.0], [0.0, 2.0, 2.0]] {
            ctx.insert(
                [c.x + d[0], c.y + d[1], c.z + d[2]],
                VertexKind::Circumcenter,
            )
            .unwrap();
        }
        let full = FinalMesh::extract(&mesh, &oracle, None);
        let all: Vec<(CellId, u32)> = mesh
            .alive_cells()
            .map(|c| (c, mesh.cell(c).gen()))
            .collect();
        let listed = FinalMesh::extract(&mesh, &oracle, Some(&all));
        assert_eq!(full.num_tets(), listed.num_tets());
    }
}
