//! Post-run mesh-integrity auditing.
//!
//! After a refinement run — and especially after one that absorbed injected
//! faults or recovered from worker panics — the triangulation must still
//! satisfy every structural invariant the speculative kernel promises:
//! symmetric adjacency, positive orientation, the (symbolically perturbed)
//! Delaunay property, no references to dead vertices, no leaked vertex
//! locks, and the volume identity of the virtual box. [`audit_mesh`] checks
//! all of them and returns a typed report instead of panicking, so it can
//! run inside tests, after fault-injection runs, and behind `pi2m --audit`.

use pi2m_delaunay::{SharedMesh, VertexId};
use pi2m_geometry::insphere_sos;

/// Cap on recorded violations per check (the audit keeps scanning for the
/// per-check counts but stops accumulating detail strings).
const MAX_DETAILS: usize = 32;

/// One broken invariant found by the audit.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Which check found it (`adjacency`, `orientation`, `delaunay`,
    /// `dead-vertex`, `lock-leak`, `volume`, `insphere-sample`).
    pub check: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.check, self.detail)
    }
}

/// Result of a full mesh audit.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    pub violations: Vec<Violation>,
    pub cells_checked: usize,
    pub vertices_checked: usize,
    /// Random (seeded) vertex-in-circumsphere probes performed beyond the
    /// neighbor-based Delaunay check.
    pub insphere_samples: usize,
}

impl AuditReport {
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Multi-line human summary (one line per violation, or "clean").
    pub fn summary(&self) -> String {
        if self.clean() {
            format!(
                "audit clean: {} cells, {} vertices, {} in-sphere samples",
                self.cells_checked, self.vertices_checked, self.insphere_samples
            )
        } else {
            let mut s = format!("audit found {} violation(s):\n", self.violations.len());
            for v in &self.violations {
                s.push_str(&format!("  {v}\n"));
            }
            s
        }
    }
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Audit every structural invariant of a (quiescent) shared mesh.
///
/// The mesh must not be under concurrent mutation: run it after the engine
/// joined its workers. `seed` drives the extra in-sphere sampling
/// deterministically.
pub fn audit_mesh(mesh: &SharedMesh, seed: u64) -> AuditReport {
    let mut report = AuditReport::default();
    let push = |report: &mut AuditReport, check: &'static str, detail: String| {
        if report.violations.len() < MAX_DETAILS {
            report.violations.push(Violation { check, detail });
        }
    };

    // 1–3: the kernel's own exhaustive invariant sweeps (adjacency symmetry
    // + face match, orientation sign, neighbor-based Delaunay with SoS).
    if let Err(e) = mesh.check_adjacency() {
        push(&mut report, "adjacency", e);
    }
    if let Err(e) = mesh.check_orientation() {
        push(&mut report, "orientation", e);
    }
    if let Err(e) = mesh.check_delaunay_sos() {
        push(&mut report, "delaunay", e);
    }

    // 4: no alive cell may reference a dead (removed) vertex.
    let alive_cells: Vec<_> = mesh.alive_cells().collect();
    report.cells_checked = alive_cells.len();
    for &c in &alive_cells {
        let cell = mesh.cell(c);
        for k in 0..4 {
            let v = cell.vert(k);
            if !mesh.vertex(v).is_alive() {
                push(
                    &mut report,
                    "dead-vertex",
                    format!("alive cell {} references dead vertex {}", c.0, v.0),
                );
            }
        }
    }

    // 5: every per-vertex try-lock must be free once the engine is quiescent
    // (a leak means some rollback or recovery path forgot an unlock).
    let nverts = mesh.num_vertices();
    report.vertices_checked = nverts;
    for i in 0..nverts {
        let v = VertexId(i as u32);
        if let Some(owner) = mesh.vertex(v).lock_owner() {
            push(
                &mut report,
                "lock-leak",
                format!("vertex {} still locked by thread {}", v.0, owner),
            );
        }
    }

    // 6: volume identity — the alive cells must tile the virtual box exactly.
    {
        let corners = mesh.corner_ids();
        let (mut lo, mut hi) = (mesh.pos3(corners[0]), mesh.pos3(corners[0]));
        for &cv in &corners {
            let p = mesh.pos3(cv);
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let expected = (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
        let actual = mesh.total_volume();
        if expected > 0.0 && ((actual - expected).abs() > 1e-6 * expected) {
            push(
                &mut report,
                "volume",
                format!("alive cells tile {actual} of the box volume {expected}"),
            );
        }
    }

    // 7: sampled in-sphere probes beyond the neighbor check — random alive
    // vertices tested against random cells' circumspheres (a genuinely
    // non-local Delaunay spot check; deterministic under `seed`).
    if !alive_cells.is_empty() && nverts > 4 {
        let cell_samples = alive_cells.len().min(64);
        let probes_per_cell = 16usize;
        let mut rng = splitmix(seed ^ 0xa0d1_7e5f);
        for s in 0..cell_samples {
            rng = splitmix(rng);
            let c = alive_cells[(rng % alive_cells.len() as u64) as usize];
            let cv = mesh.cell(c).verts();
            let pts = mesh.cell_points(c);
            let p = [
                pts[0].to_array(),
                pts[1].to_array(),
                pts[2].to_array(),
                pts[3].to_array(),
            ];
            for _ in 0..probes_per_cell {
                rng = splitmix(rng);
                let v = VertexId((rng % nverts as u64) as u32);
                if !mesh.vertex(v).is_alive() || cv.contains(&v) {
                    continue;
                }
                report.insphere_samples += 1;
                let q = mesh.pos3(v);
                let inside = insphere_sos(
                    &p[0],
                    &p[1],
                    &p[2],
                    &p[3],
                    &q,
                    [
                        cv[0].0 as u64,
                        cv[1].0 as u64,
                        cv[2].0 as u64,
                        cv[3].0 as u64,
                        v.0 as u64,
                    ],
                ) > 0;
                if inside {
                    push(
                        &mut report,
                        "insphere-sample",
                        format!(
                            "vertex {} lies inside the circumsphere of cell {} (sample {s})",
                            v.0, c.0
                        ),
                    );
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_delaunay::VertexKind;
    use pi2m_geometry::{Aabb, Point3};

    fn unit_mesh() -> SharedMesh {
        SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)))
    }

    #[test]
    fn fresh_box_audits_clean() {
        let m = unit_mesh();
        let r = audit_mesh(&m, 42);
        assert!(r.clean(), "{}", r.summary());
        assert_eq!(r.cells_checked, 6);
        assert!(r.summary().contains("clean"));
    }

    #[test]
    fn refined_mesh_audits_clean_and_samples() {
        let m = unit_mesh();
        let mut ctx = m.make_ctx(0);
        let mut s = 99u64;
        for _ in 0..60 {
            s = super::splitmix(s);
            let f = |x: u64| (x % 1000) as f64 / 1000.0 * 0.9 + 0.05;
            let p = [f(s), f(super::splitmix(s ^ 1)), f(super::splitmix(s ^ 2))];
            let _ = ctx.insert(p, VertexKind::Circumcenter);
        }
        let r = audit_mesh(&m, 7);
        assert!(r.clean(), "{}", r.summary());
        assert!(r.insphere_samples > 0);
    }

    #[test]
    fn leaked_lock_is_reported() {
        let m = unit_mesh();
        let v = m.corner_ids()[2];
        assert_eq!(m.vertex(v).try_lock(3), Ok(true));
        let r = audit_mesh(&m, 1);
        assert!(!r.clean());
        assert!(r.violations.iter().any(|x| x.check == "lock-leak"));
        assert!(r.summary().contains("lock-leak"));
        m.vertex(v).unlock(3);
        assert!(audit_mesh(&m, 1).clean());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let m = unit_mesh();
        let a = audit_mesh(&m, 5);
        let b = audit_mesh(&m, 5);
        assert_eq!(a.insphere_samples, b.insphere_samples);
    }
}
