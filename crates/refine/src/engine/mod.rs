//! The PI2M parallel mesher (paper Algorithm 1), as a staged pipeline over a
//! persistent worker pool.
//!
//! The engine is split along its natural seams:
//!
//! - `config` — [`MesherConfig`] and the assembled [`MeshOutput`].
//! - `op` — the unified `SpeculativeOp` lifecycle: insertions and removals
//!   share one begin/commit/rollback protocol that the scheduler, contention
//!   manager, balancer, and flight recorder observe.
//! - `worker` — the shared `RunState`, the worker loop, and its helpers
//!   (death cleanup, donation, the live telemetry tap).
//! - `pool` — persistent worker threads plus the warm resources (kernel
//!   arenas, flight rings, proximity grid) they reuse across runs.
//! - `stage` — the typed [`Stage`] sequence with per-stage phase spans and
//!   progress callbacks.
//! - `session` — [`MeshingSession`] and the staged pipeline itself.
//!
//! [`Mesher`] remains as the one-shot compatibility entry point: each
//! `run()` builds a fresh single-use session and discards it, which is
//! exactly the old behavior (and the old cost).

mod config;
mod op;
mod pool;
mod session;
mod stage;
mod worker;

pub use config::{MeshOutput, MesherConfig};
pub use session::{CancelTelemetry, MeshingSession, RunOptions};
pub use stage::{Stage, StageCallback, StageEvent, StageStatus};

use crate::error::RefineError;
use pi2m_image::LabeledImage;
use session::run_pipeline;

/// The one-shot parallel Image-to-Mesh converter.
///
/// Thin wrapper over a single-use [`MeshingSession`]: construction is cheap,
/// and every `run()` pays full pool setup. Batch callers meshing several
/// images should hold a session instead and let it keep the worker threads
/// and arenas warm.
pub struct Mesher {
    img: LabeledImage,
    cfg: MesherConfig,
}

impl Mesher {
    pub fn new(img: LabeledImage, cfg: MesherConfig) -> Self {
        assert!(cfg.threads >= 1, "need at least one thread");
        assert!(cfg.delta > 0.0, "delta must be positive");
        Mesher { img, cfg }
    }

    /// Run the full pipeline: parallel EDT, virtual-box triangulation,
    /// parallel refinement, final-mesh extraction.
    ///
    /// Individual worker panics are isolated: the poisoned operation is
    /// rolled back and quarantined, and if the panic escapes the operation
    /// boundary the worker is retired while the run completes on the
    /// survivors. Panics only if a *majority* of workers die (use
    /// [`Mesher::try_run`] for a typed error instead).
    pub fn run(self) -> MeshOutput {
        let out = self.run_inner();
        let (died, threads) = (out.stats.workers_died, out.stats.threads());
        assert!(
            died * 2 <= threads,
            "worker quorum lost: {died} of {threads} workers died"
        );
        out
    }

    /// Like [`Mesher::run`], but global failures — a majority of workers
    /// dead, or the livelock watchdog firing — surface as a typed
    /// [`RefineError`] instead of a panic / a flag on the stats.
    pub fn try_run(self) -> Result<MeshOutput, RefineError> {
        let out = self.run_inner();
        let (died, threads) = (out.stats.workers_died, out.stats.threads());
        if died * 2 > threads {
            return Err(RefineError::WorkerQuorumLost { died, threads });
        }
        if out.stats.livelock {
            return Err(RefineError::Livelock);
        }
        Ok(out)
    }

    fn run_inner(self) -> MeshOutput {
        let mut pool = pool::WorkerPool::new(self.cfg.threads);
        run_pipeline(&mut pool, self.img, self.cfg, &RunOptions::default(), &[])
            .expect("a run without a cancel token cannot be cancelled")
    }
}

#[cfg(test)]
mod tests {
    use super::op::RegionMap;
    use super::*;
    use crate::balancer::BalancerKind;
    use crate::cm::CmKind;
    use crate::topology::MachineTopology;
    use pi2m_geometry::Aabb;
    use pi2m_image::phantoms;
    use pi2m_obs::flight::EventKind;
    use pi2m_obs::metrics;

    fn small_run(threads: usize, cm: CmKind, bal: BalancerKind) -> MeshOutput {
        let img = phantoms::sphere(16, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads,
            cm,
            balancer: bal,
            topology: MachineTopology::flat(threads.max(1)),
            ..Default::default()
        };
        Mesher::new(img, cfg).run()
    }

    #[test]
    fn single_threaded_sphere() {
        let out = small_run(1, CmKind::Local, BalancerKind::Rws);
        assert!(!out.stats.livelock);
        assert!(out.mesh.num_tets() > 50, "got {}", out.mesh.num_tets());
        assert_eq!(out.stats.total_rollbacks(), 0);
        out.shared.check_adjacency().unwrap();
        out.shared.check_delaunay_sos().unwrap();
        // fidelity smoke check: mesh volume within 25% of the sphere volume
        let sphere_vol = out.oracle.image().foreground_volume();
        let v = out.mesh.volume();
        assert!(
            (v - sphere_vol).abs() / sphere_vol < 0.25,
            "mesh volume {v} vs sphere {sphere_vol}"
        );
    }

    #[test]
    fn multi_threaded_matches_structurally() {
        let a = small_run(1, CmKind::Local, BalancerKind::Rws);
        let b = small_run(4, CmKind::Local, BalancerKind::Hws);
        assert!(!b.stats.livelock);
        // same rules, different schedules: sizes in the same ballpark
        let (na, nb) = (a.mesh.num_tets() as f64, b.mesh.num_tets() as f64);
        assert!(
            (na - nb).abs() / na < 0.5,
            "1-thread {na} vs 4-thread {nb} elements"
        );
        b.shared.check_adjacency().unwrap();
        b.shared.check_delaunay_sos().unwrap();
    }

    #[test]
    fn all_cms_terminate_on_small_input() {
        for cm in [
            CmKind::Aggressive,
            CmKind::Random,
            CmKind::Global,
            CmKind::Local,
        ] {
            let out = small_run(3, cm, BalancerKind::Rws);
            assert!(out.mesh.num_tets() > 0, "cm {cm:?} produced an empty mesh");
        }
    }

    #[test]
    fn removals_happen() {
        let img = phantoms::sphere(20, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        // R6 should fire at least occasionally on a curved surface
        assert!(out.stats.total_removals() > 0, "no removals occurred");
        // and removals stay a small fraction of operations (paper: ~2%)
        let frac = out.stats.total_removals() as f64 / out.stats.total_operations().max(1) as f64;
        assert!(frac < 0.35, "removal fraction {frac}");
    }

    #[test]
    fn metrics_snapshot_mirrors_stats() {
        let out = small_run(2, CmKind::Local, BalancerKind::Rws);
        let m = &out.metrics;
        // bridged ThreadStats counters agree with the legacy accessors
        assert_eq!(m.counter(metrics::OPS_TOTAL), out.stats.total_operations());
        assert_eq!(
            m.counter(metrics::OPS_ROLLBACKS),
            out.stats.total_rollbacks()
        );
        assert_eq!(m.counter(metrics::OPS_REMOVALS), out.stats.total_removals());
        // EDT preprocessing recorded its three separable passes
        assert_eq!(m.counter(metrics::EDT_PASSES), 3);
        assert!(m.counter(metrics::EDT_VOXELS) > 0);
        assert!(m.counter(metrics::ORACLE_SURFACE_VOXELS) > 0);
        // one cavity sample per successful insertion, and walks were counted
        let insertions: u64 = out.stats.per_thread.iter().map(|t| t.insertions).sum();
        assert_eq!(m.hist(metrics::CAVITY_CELLS).count, insertions);
        assert!(m.counter(metrics::WALK_LOCATES) > 0);
        assert!(m.counter(metrics::WALK_STEPS) >= m.counter(metrics::WALK_LOCATES));
        // every worker leaves a lifetime event on its own track
        let mut tids: Vec<u32> = m
            .events
            .iter()
            .filter(|(_, e)| e.name == "worker")
            .map(|(t, _)| *t)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1]);
        // pipeline phases are spanned — one per stage, legacy names intact
        for stage in Stage::ALL {
            let phase = stage.phase_name();
            assert!(
                out.phases.iter().any(|s| s.name == phase && s.dur_s >= 0.0),
                "missing phase {phase}"
            );
        }
    }

    #[test]
    fn flight_records_op_lifecycle() {
        let out = small_run(2, CmKind::Local, BalancerKind::Rws);
        assert!(!out.flight.is_empty(), "recorder on by default");
        // drained log is time-sorted
        assert!(out.flight.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let commits = out
            .flight
            .iter()
            .filter(|e| e.kind == EventKind::OpCommit)
            .count() as u64;
        let total = out.stats.total_operations();
        assert!(commits > 0, "no commits recorded");
        assert!(commits <= total, "more commits than operations");
        // without ring wrap, one commit per completed operation
        if out.flight_dropped == 0 {
            assert_eq!(commits, total, "commits {commits} vs operations {total}");
        }
    }

    #[test]
    fn flight_off_records_nothing() {
        let img = phantoms::sphere(16, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            flight: false,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        assert!(out.flight.is_empty());
        assert_eq!(out.flight_dropped, 0);
    }

    #[test]
    fn region_map_codes_are_stable() {
        let domain = Aabb {
            min: [0.0, 0.0, 0.0].into(),
            max: [16.0, 16.0, 16.0].into(),
        };
        let rm = RegionMap::new(&domain);
        assert_eq!(rm.code([0.0, 0.0, 0.0]), 0);
        assert_eq!(rm.code([15.99, 0.0, 0.0]), 15);
        assert_eq!(rm.code([0.0, 15.99, 15.99]), (15 << 4) | (15 << 8));
        // out-of-domain points clamp instead of wrapping
        assert_eq!(rm.code([-5.0, 99.0, 8.0]), (15 << 4) | (8 << 8));
    }

    #[test]
    fn op_cap_stops_early() {
        let img = phantoms::sphere(24, 1.0);
        let cfg = MesherConfig {
            delta: 0.8,
            threads: 2,
            max_operations: 100,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        assert!(out.stats.total_operations() <= 120);
    }
}
