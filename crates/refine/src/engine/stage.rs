//! The typed stage sequence of the meshing pipeline.
//!
//! Every run walks the same seven stages in order. Each stage opens an obs
//! phase span under its [`phase_name`](Stage::phase_name) (so reports,
//! traces, and tests see one canonical naming) and fires the run's optional
//! progress callback on entry and exit. The
//! [`CancelToken`](pi2m_obs::CancelToken) is checked between stages, inside
//! the EDT's scan passes, and at every worker loop boundary during
//! [`VolumeRefine`](Stage::VolumeRefine).

/// One stage of the meshing pipeline, in execution order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Image intake: config validation and voxel accounting.
    Load,
    /// The parallel Euclidean distance / surface feature transform.
    Edt,
    /// Isosurface oracle assembly over the feature transform.
    Oracle,
    /// Surface-domain recovery: the virtual-box triangulation enclosing the
    /// object, the proximity grid, the refinement rules, and the initial
    /// poor-element seed.
    SurfaceRecovery,
    /// Speculative parallel Delaunay refinement (rules R1–R6).
    VolumeRefine,
    /// Quality/observability assembly: flight-ring drain and per-thread
    /// metric merge.
    Quality,
    /// Final-mesh extraction and output assembly.
    Export,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 7] = [
        Stage::Load,
        Stage::Edt,
        Stage::Oracle,
        Stage::SurfaceRecovery,
        Stage::VolumeRefine,
        Stage::Quality,
        Stage::Export,
    ];

    /// The obs phase-span name this stage records under. The `edt`,
    /// `volume_refinement`, and `extract` names predate the staged pipeline
    /// and are part of the report schema; the rest are additive.
    pub fn phase_name(self) -> &'static str {
        match self {
            Stage::Load => "load",
            Stage::Edt => "edt",
            Stage::Oracle => "oracle",
            Stage::SurfaceRecovery => "surface_recovery",
            Stage::VolumeRefine => "volume_refinement",
            Stage::Quality => "quality",
            Stage::Export => "extract",
        }
    }

    /// Position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        Stage::ALL.iter().position(|s| *s == self).unwrap()
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.phase_name())
    }
}

/// Did the stage just start or just finish?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageStatus {
    Started,
    Finished,
}

/// One progress notification from a running pipeline.
#[derive(Clone, Copy, Debug)]
pub struct StageEvent {
    pub stage: Stage,
    pub status: StageStatus,
    /// Seconds since the run origin.
    pub elapsed_s: f64,
}

/// A run's progress callback. Invoked synchronously from the pipeline
/// thread, twice per stage; keep it cheap.
pub type StageCallback = std::sync::Arc<dyn Fn(StageEvent) + Send + Sync>;

/// Fires the stage callback (when present) around stage bodies.
pub(crate) struct StageReporter {
    cb: Option<StageCallback>,
}

impl StageReporter {
    pub(crate) fn new(cb: Option<StageCallback>) -> Self {
        StageReporter { cb }
    }

    pub(crate) fn started(&self, stage: Stage, elapsed_s: f64) {
        if let Some(cb) = &self.cb {
            cb(StageEvent {
                stage,
                status: StageStatus::Started,
                elapsed_s,
            });
        }
    }

    pub(crate) fn finished(&self, stage: Stage, elapsed_s: f64) {
        if let Some(cb) = &self.cb {
            cb(StageEvent {
                stage,
                status: StageStatus::Finished,
                elapsed_s,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_names() {
        assert_eq!(Stage::ALL.len(), 7);
        assert_eq!(Stage::Load.index(), 0);
        assert_eq!(Stage::Export.index(), 6);
        assert!(Stage::Edt < Stage::VolumeRefine);
        // schema-stable legacy names
        assert_eq!(Stage::Edt.phase_name(), "edt");
        assert_eq!(Stage::VolumeRefine.phase_name(), "volume_refinement");
        assert_eq!(Stage::Export.phase_name(), "extract");
        // all names distinct
        let mut names: Vec<_> = Stage::ALL.iter().map(|s| s.phase_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
