//! Run configuration and the assembled run output.

use crate::balancer::BalancerKind;
use crate::cm::CmKind;
use crate::output::FinalMesh;
use crate::stats::RefineStats;
use crate::topology::MachineTopology;
use pi2m_delaunay::SharedMesh;
use pi2m_faults::FaultPlan;
use pi2m_obs::flight::{FlightEvent, DEFAULT_RING_CAPACITY};
use pi2m_obs::metrics::MetricsSnapshot;
use pi2m_obs::TraceSpan;
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use std::sync::Arc;

/// Configuration of a PI2M run.
#[derive(Clone)]
pub struct MesherConfig {
    /// Isosurface sampling density δ (world units, typically a small
    /// multiple of the voxel size).
    pub delta: f64,
    pub threads: usize,
    /// Radius-edge quality bound (paper: 2).
    pub radius_edge_bound: f64,
    /// Boundary planar angle bound in degrees (paper: 30).
    pub planar_angle_min_deg: f64,
    /// Optional volume size function (rule R5).
    pub size_fn: Option<Arc<dyn SizeFn>>,
    /// Optional surface density function (spatially varying δ, clamped to
    /// `delta`).
    pub surface_size_fn: Option<Arc<dyn SizeFn>>,
    /// Contention manager policy.
    pub cm: CmKind,
    /// Work-stealing policy.
    pub balancer: BalancerKind,
    /// Machine shape for HWS (logical on the real engine).
    pub topology: MachineTopology,
    /// Enable rule R6 removals.
    pub enable_removals: bool,
    /// Watchdog: seconds without any completed operation before a livelock
    /// is declared.
    pub livelock_timeout: f64,
    /// Record per-thread overhead traces (Figure 6).
    pub trace: bool,
    /// Safety cap on total operations (0 = unlimited).
    pub max_operations: u64,
    /// Deterministic fault-injection plan (testing/DST only; `None` in
    /// production). Threaded into every kernel context and consulted at the
    /// engine's own named sites.
    pub faults: Option<Arc<FaultPlan>>,
    /// Always-on concurrency flight recorder (per-worker SPSC event rings).
    /// Can also be killed at runtime with `PI2M_FLIGHT=0`.
    pub flight: bool,
    /// Batched SoA kernel path: wide-lane predicate filters, SoA cavity
    /// staging, and the batched EDT row sweep. Result-identical to the scalar
    /// path (bit-for-bit at one thread); exists as a performance mode with a
    /// kill switch. Can also be killed at runtime with `PI2M_BATCH=0`
    /// (mirroring `--no-batch`).
    pub batch: bool,
    /// Per-worker ring capacity in events (rounded up to a power of two).
    pub flight_capacity: usize,
    /// Live telemetry tap: emit one JSONL heartbeat line to stderr every
    /// this-many seconds while refinement runs. `PI2M_LIVE` also enables it.
    pub live: Option<f64>,
    /// This run is the seam-stitch pass of a sharded run: the worker loop
    /// additionally consults the `shard.stitch` fault site. Set by the shard
    /// orchestrator only.
    pub shard_stitch: bool,
}

impl MesherConfig {
    /// Effective batched-path switch: the config flag gated by the
    /// `PI2M_BATCH=0` runtime kill switch (same pattern as `PI2M_FLIGHT`).
    pub fn batch_runtime_enabled(&self) -> bool {
        self.batch && std::env::var("PI2M_BATCH").map_or(true, |v| v != "0")
    }
}

impl Default for MesherConfig {
    fn default() -> Self {
        MesherConfig {
            delta: 2.0,
            threads: 1,
            radius_edge_bound: 2.0,
            planar_angle_min_deg: 30.0,
            size_fn: None,
            surface_size_fn: None,
            cm: CmKind::Local,
            balancer: BalancerKind::Hws,
            topology: MachineTopology::flat(64),
            enable_removals: true,
            livelock_timeout: 30.0,
            trace: false,
            max_operations: 0,
            faults: None,
            flight: true,
            batch: true,
            flight_capacity: DEFAULT_RING_CAPACITY,
            live: None,
            shard_stitch: false,
        }
    }
}

/// Result of a PI2M run.
pub struct MeshOutput {
    /// The reported mesh (tets whose circumcenter lies inside O).
    pub mesh: FinalMesh,
    pub stats: RefineStats,
    /// The full triangulation of the virtual box (for inspection/tests).
    pub shared: SharedMesh,
    pub oracle: Arc<IsosurfaceOracle>,
    /// Merged observability metrics (counters, histograms, worker events),
    /// drained from the per-thread recorders at join.
    pub metrics: MetricsSnapshot,
    /// Pipeline phase spans (one per [`Stage`](crate::engine::Stage), e.g.
    /// `edt`, `volume_refinement`, `extract`), in seconds since the run
    /// origin.
    pub phases: Vec<TraceSpan>,
    /// Flight-recorder events (time-sorted, shifted into the run-origin time
    /// base). Empty when the recorder was disabled.
    pub flight: Vec<FlightEvent>,
    /// Events lost to ring overwrites (rings keep the newest window).
    pub flight_dropped: u64,
}

/// `PI2M_LIVE=1` (or `=true`) enables the live tap at 1 Hz; any positive
/// number is an interval in seconds; anything else disables it.
pub(crate) fn live_interval_from_env() -> Option<f64> {
    let v = std::env::var("PI2M_LIVE").ok()?;
    let v = v.trim();
    if v.eq_ignore_ascii_case("true") {
        return Some(1.0);
    }
    v.parse::<f64>().ok().filter(|s| *s > 0.0)
}
