//! The unified speculative-operation lifecycle.
//!
//! Insertions (rules R1–R5) and removals (rule R6) used to be two
//! hand-inlined copies of the same protocol. [`SpeculativeOp`] isolates what
//! genuinely differs between them — kernel entry point, per-kind counters,
//! conflict disposition (requeue vs. drop), and rejection accounting — while
//! [`run_op`] owns the single shared lifecycle that the scheduler, the
//! contention manager, the load balancer, and the flight recorder observe:
//!
//! ```text
//! OpBegin → execute → OpCommit  → progress → CM success → enqueue created
//!                   ↘ Rollback  → overheads → op conflict hook → CM rollback
//!                   ↘ rejection → per-kind counters (quarantine / skip / block)
//! ```

use super::worker::{handle_created, Env};
use crate::stats::{OverheadKind, ThreadStats};
use pi2m_delaunay::{CellId, InsertResult, OpCtx, OpError, RemoveResult, VertexId, VertexKind};
use pi2m_faults::sites;
use pi2m_geometry::Aabb;
use pi2m_obs::flight::{cause as flight_cause, pack_owner_region, EventKind};
use pi2m_obs::metrics::{self, ThreadRecorder};
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

/// Duration → saturated u32 nanoseconds for a flight-event payload word.
#[inline]
pub(crate) fn dur_ns_u32(d: Duration) -> u32 {
    d.as_nanos().min(u32::MAX as u128) as u32
}

/// Maps world points onto a coarse 16×16×16 grid over the image domain; the
/// 12-bit cell code rides in flight-event payloads so the contention analyzer
/// can attribute rollbacks to spatial hot spots.
pub(crate) struct RegionMap {
    min: [f64; 3],
    inv: [f64; 3],
}

impl RegionMap {
    const CELLS: usize = 16;

    pub(crate) fn new(domain: &Aabb) -> Self {
        let min = [domain.min.x, domain.min.y, domain.min.z];
        let ext = [
            domain.max.x - domain.min.x,
            domain.max.y - domain.min.y,
            domain.max.z - domain.min.z,
        ];
        let inv = ext.map(|e| if e > 0.0 { Self::CELLS as f64 / e } else { 0.0 });
        RegionMap { min, inv }
    }

    pub(crate) fn code(&self, p: [f64; 3]) -> u16 {
        let cell = |axis: usize| -> u16 {
            let c = (p[axis] - self.min[axis]) * self.inv[axis];
            (c as i64).clamp(0, Self::CELLS as i64 - 1) as u16
        };
        cell(0) | cell(1) << 4 | cell(2) << 8
    }
}

/// A committed kernel operation, in either flavor.
pub(crate) enum OpResult {
    Inserted(InsertResult),
    Removed(RemoveResult),
}

impl OpResult {
    fn created(&self) -> &[CellId] {
        match self {
            OpResult::Inserted(r) => &r.created,
            OpResult::Removed(r) => &r.created,
        }
    }

    fn killed_len(&self) -> usize {
        match self {
            OpResult::Inserted(r) => r.killed.len(),
            OpResult::Removed(r) => r.killed.len(),
        }
    }
}

/// How one [`run_op`] attempt ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum OpOutcome {
    /// Kernel commit: the mesh changed.
    Committed,
    /// Speculative conflict: rolled back, contention manager consulted.
    Conflicted,
    /// Typed kernel rejection (duplicate, degenerate, blocked, invariant).
    Rejected,
}

/// One speculative operation kind. Implementations provide only what
/// genuinely differs between insertions and removals; everything the rest of
/// the system observes (flight events, progress, CM calls, overhead
/// accounting, created-cell handling) lives once, in [`run_op`].
pub(crate) trait SpeculativeOp {
    /// Flight cause byte tagging OpBegin/OpCommit events
    /// ([`flight_cause::OP_INSERT`] / [`flight_cause::OP_REMOVE`]).
    fn kind_cause(&self) -> u8;

    /// Flight cause byte tagging a conflict rollback.
    fn conflict_cause(&self) -> u8;

    /// Payload word `a` of the OpBegin event (poor cell / victim vertex).
    fn begin_id(&self) -> u32;

    /// Run the operation through the kernel.
    fn execute(&self, ctx: &mut OpCtx<'_>) -> Result<OpResult, OpError>;

    /// Payload word `a` of the OpCommit event.
    fn commit_id(&self, res: &OpResult) -> u32;

    /// Per-kind commit counters/histograms (`operations` and cell counts are
    /// common and counted by [`run_op`]).
    fn count_commit(&self, stats: &mut ThreadStats, rec: &mut ThreadRecorder, res: &OpResult);

    /// Post-commit hook running before created-cell handling (the insert op
    /// registers its new vertex in the proximity grid here).
    fn after_commit(&self, env: &Env<'_>, res: &OpResult);

    /// Conflict disposition, after rollback accounting and before the
    /// contention manager is consulted: an insert requeues its still-poor
    /// element; a removal drops the victim (best effort).
    fn on_conflict(&self, env: &Env<'_>, tid: usize);

    /// Typed-rejection accounting (`Err` other than `Conflict`).
    fn count_rejected(&self, stats: &mut ThreadStats, err: &OpError);

    /// Return the result's buffers to the context's scratch pools.
    fn recycle(&self, ctx: &mut OpCtx<'_>, res: OpResult);
}

/// Rule R1–R5 remedy: insert a point (isosurface sample or circumcenter).
pub(crate) struct InsertOp {
    /// The poor element this op remedies (requeued on conflict).
    pub cid: u32,
    pub gen: u32,
    pub point: [f64; 3],
    pub kind: VertexKind,
}

impl SpeculativeOp for InsertOp {
    fn kind_cause(&self) -> u8 {
        flight_cause::OP_INSERT
    }

    fn conflict_cause(&self) -> u8 {
        flight_cause::INSERT_CONFLICT
    }

    fn begin_id(&self) -> u32 {
        self.cid
    }

    fn execute(&self, ctx: &mut OpCtx<'_>) -> Result<OpResult, OpError> {
        ctx.insert(self.point, self.kind).map(OpResult::Inserted)
    }

    fn commit_id(&self, res: &OpResult) -> u32 {
        match res {
            OpResult::Inserted(r) => r.vertex.0,
            OpResult::Removed(_) => unreachable!("insert op yielded a removal result"),
        }
    }

    fn count_commit(&self, stats: &mut ThreadStats, rec: &mut ThreadRecorder, res: &OpResult) {
        stats.insertions += 1;
        rec.observe(metrics::CAVITY_CELLS, res.killed_len() as f64);
    }

    fn after_commit(&self, env: &Env<'_>, res: &OpResult) {
        if let OpResult::Inserted(r) = res {
            env.rules.grid.insert(r.vertex, self.point);
        }
    }

    fn on_conflict(&self, env: &Env<'_>, tid: usize) {
        // the element is still poor: requeue it, then consult the CM
        env.pels[tid].lock().push_back((self.cid, self.gen));
        env.counters[tid].fetch_add(1, Ordering::AcqRel);
        env.sync.poor_added(1);
        if let Some(f) = &env.cfg.faults {
            let _ = f.fire(sites::CM_ROLLBACK, tid as u32);
        }
    }

    fn count_rejected(&self, stats: &mut ThreadStats, err: &OpError) {
        match err {
            // a broken kernel invariant: the operation was abandoned without
            // structural change; quarantine the element
            OpError::Kernel(_) => {
                stats.kernel_errors += 1;
                stats.quarantined += 1;
            }
            // the rule's remedy is not realizable; drop the element
            _ => stats.skipped += 1,
        }
    }

    fn recycle(&self, ctx: &mut OpCtx<'_>, res: OpResult) {
        if let OpResult::Inserted(r) = res {
            ctx.recycle_insert(r);
        }
    }
}

/// Rule R6 remedy: remove a circumcenter vertex near a fresh isosurface
/// sample.
pub(crate) struct RemoveOp {
    pub victim: VertexId,
}

impl SpeculativeOp for RemoveOp {
    fn kind_cause(&self) -> u8 {
        flight_cause::OP_REMOVE
    }

    fn conflict_cause(&self) -> u8 {
        flight_cause::REMOVE_CONFLICT
    }

    fn begin_id(&self) -> u32 {
        self.victim.0
    }

    fn execute(&self, ctx: &mut OpCtx<'_>) -> Result<OpResult, OpError> {
        ctx.remove(self.victim).map(OpResult::Removed)
    }

    fn commit_id(&self, _res: &OpResult) -> u32 {
        self.victim.0
    }

    fn count_commit(&self, stats: &mut ThreadStats, _rec: &mut ThreadRecorder, _res: &OpResult) {
        stats.removals += 1;
    }

    fn after_commit(&self, _env: &Env<'_>, _res: &OpResult) {}

    fn on_conflict(&self, _env: &Env<'_>, _tid: usize) {
        // best-effort: drop this victim
    }

    fn count_rejected(&self, stats: &mut ThreadStats, err: &OpError) {
        if let OpError::Kernel(_) = err {
            stats.kernel_errors += 1;
        }
        stats.removals_blocked += 1;
    }

    fn recycle(&self, ctx: &mut OpCtx<'_>, res: OpResult) {
        if let OpResult::Removed(r) = res {
            ctx.recycle_remove(r);
        }
    }
}

/// Execute one speculative operation through the shared lifecycle: flight
/// begin/commit/rollback events, progress notes, contention-manager
/// consultation, overhead accounting, and created-cell enqueueing all happen
/// here, identically for every op kind.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_op(
    env: &Env<'_>,
    tid: usize,
    ctx: &mut OpCtx<'_>,
    stats: &mut ThreadStats,
    rec: &mut ThreadRecorder,
    final_list: &mut Vec<(CellId, u32)>,
    region: u16,
    op: &dyn SpeculativeOp,
) -> OpOutcome {
    let t0 = Instant::now();
    env.sync.flight_emit_at(
        tid,
        t0,
        EventKind::OpBegin,
        op.kind_cause(),
        op.begin_id(),
        0,
        0,
    );
    match op.execute(ctx) {
        Ok(res) => {
            let t_end = Instant::now();
            stats.operations += 1;
            stats.cells_created += res.created().len() as u64;
            stats.cells_killed += res.killed_len() as u64;
            op.count_commit(stats, rec, &res);
            env.sync.flight_emit_at(
                tid,
                t_end,
                EventKind::OpCommit,
                op.kind_cause(),
                op.commit_id(&res),
                region as u32,
                dur_ns_u32(t_end - t0),
            );
            env.sync.note_progress();
            env.cm.on_success(tid);
            op.after_commit(env, &res);
            handle_created(env, tid, stats, final_list, res.created());
            op.recycle(ctx, res);
            OpOutcome::Committed
        }
        Err(OpError::Conflict { owner, vertex, .. }) => {
            stats.rollbacks += 1;
            let t_end = Instant::now();
            let rolled = (t_end - t0).as_secs_f64();
            env.sync.flight_emit_at(
                tid,
                t_end,
                EventKind::Rollback,
                op.conflict_cause(),
                vertex.0,
                pack_owner_region(owner as u16, region),
                dur_ns_u32(t_end - t0),
            );
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::Rollback, rolled, at);
            rec.observe(metrics::ROLLBACK_SECONDS, rolled);
            op.on_conflict(env, tid);
            let waited = env.cm.on_rollback(tid, owner as usize, env.sync);
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::Contention, waited, at);
            rec.observe(metrics::LOCK_WAIT_SECONDS, waited);
            OpOutcome::Conflicted
        }
        Err(e) => {
            op.count_rejected(stats, &e);
            OpOutcome::Rejected
        }
    }
}
