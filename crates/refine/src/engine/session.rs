//! The persistent, reusable meshing session and the staged pipeline it runs.
//!
//! A [`MeshingSession`] is created once and then meshes any number of images:
//! its [`WorkerPool`] keeps the worker threads, per-thread kernel scratch
//! arenas, flight-recorder rings, and the proximity grid warm across runs,
//! so repeated `session.mesh(...)` calls skip the per-run setup a one-shot
//! [`Mesher`](super::Mesher) pays every time.
//!
//! Every run walks the typed [`Stage`] sequence (Load → EDT → Oracle →
//! SurfaceRecovery → VolumeRefine → Quality → Export), records one obs phase
//! span per stage, reports progress through an optional callback, and honors
//! a cooperative [`CancelToken`] between stages, inside the EDT scan passes,
//! and at every worker loop boundary.

use super::config::{live_interval_from_env, MeshOutput, MesherConfig};
use super::op::RegionMap;
use super::pool::WorkerPool;
use super::stage::{Stage, StageCallback, StageReporter};
use super::worker::{bridge_thread_stats, live_tap, Pel, RunState};
use crate::balancer::make_balancer;
use crate::cm::make_cm;
use crate::error::RefineError;
use crate::output::FinalMesh;
use crate::rules::{RuleConfig, Rules};
use crate::stats::{RefineStats, ThreadStats};
use crate::sync::EngineSync;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pi2m_delaunay::{CellId, SharedMesh, VertexKind};
use pi2m_image::LabeledImage;
use pi2m_obs::metrics::{self, MetricsSnapshot, ThreadRecorder};
use pi2m_obs::{CancelToken, Phases};
use pi2m_oracle::IsosurfaceOracle;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Per-run options beyond the [`MesherConfig`]: cancellation and progress
/// reporting.
#[derive(Clone, Default)]
pub struct RunOptions {
    /// Cooperative cancellation token (explicit trip or deadline). When it
    /// fires, the run returns [`RefineError::Cancelled`] at the next
    /// cancellation point; no locks or pool resources leak, and the session
    /// stays usable.
    pub cancel: Option<CancelToken>,
    /// Stage progress callback, fired on every stage entry and exit from the
    /// pipeline thread.
    pub on_stage: Option<StageCallback>,
}

/// Telemetry salvaged from a cancelled run: the drained flight events (in
/// the run time base), the merged metric snapshot, and the phase spans
/// recorded up to the cancellation point. A run that is killed by a deadline
/// is exactly the run whose observability artifacts matter most — this is
/// what lets the CLI still write `--report` / `--contention-out` after
/// [`RefineError::Cancelled`].
#[derive(Clone, Debug)]
pub struct CancelTelemetry {
    /// Flight events drained at cancellation, re-based onto the run clock.
    pub flight: Vec<pi2m_obs::FlightEvent>,
    /// Events lost to ring overwrites during this run.
    pub flight_dropped: u64,
    /// Metrics merged from the pipeline thread and every worker.
    pub metrics: MetricsSnapshot,
    /// Phase spans recorded up to the cancellation point.
    pub phases: Vec<pi2m_obs::TraceSpan>,
    /// Wall time of the (truncated) refinement section, seconds.
    pub wall_s: f64,
    /// Worker thread count of the cancelled run.
    pub threads: usize,
}

/// A persistent meshing session: create once, mesh many images.
///
/// ```no_run
/// use pi2m_refine::{MesherConfig, MeshingSession};
/// # let images: Vec<pi2m_image::LabeledImage> = vec![];
/// let mut session = MeshingSession::new(8);
/// for img in images {
///     let out = session.mesh(img, MesherConfig { threads: 8, ..Default::default() })?;
///     println!("{} tets", out.mesh.num_tets());
/// }
/// # Ok::<(), pi2m_refine::RefineError>(())
/// ```
pub struct MeshingSession {
    pool: WorkerPool,
    generation: u64,
}

impl MeshingSession {
    /// Create a session with `threads` pooled worker threads. Runs may ask
    /// for more threads than this; the pool grows on demand (and never
    /// shrinks).
    pub fn new(threads: usize) -> Self {
        MeshingSession {
            pool: WorkerPool::new(threads),
            generation: 0,
        }
    }

    /// Number of pooled worker threads currently alive.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Replace the warm worker pool with a fresh one of the same width,
    /// discarding every parked resource (threads, arenas, flight rings,
    /// proximity grid). This is the quarantine path for a session that
    /// served a poisoned run — e.g. one whose workers died or that returned
    /// [`RefineError::WorkerQuorumLost`] — where a caller like `pi2m serve`
    /// wants the next job to start from provably clean state. Blocks until
    /// the old pool's threads have joined.
    pub fn recycle(&mut self) {
        let threads = self.pool.threads();
        self.pool = WorkerPool::new(threads);
        self.generation += 1;
    }

    /// How many times [`recycle`](Self::recycle) replaced the pool. A fresh
    /// session is generation 0.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Take the telemetry salvaged from the last cancelled run, if any.
    /// Cleared by the take and overwritten by the next cancelled run.
    pub fn take_cancel_telemetry(&mut self) -> Option<CancelTelemetry> {
        self.pool.take_cancel_telemetry()
    }

    /// Mesh one image over the warm pool. Global failures (cancellation, a
    /// worker-quorum loss, a contention-manager livelock) surface as typed
    /// errors; the session stays usable after any of them.
    pub fn mesh(
        &mut self,
        img: LabeledImage,
        cfg: MesherConfig,
    ) -> Result<MeshOutput, RefineError> {
        self.mesh_with(img, cfg, &RunOptions::default())
    }

    /// [`mesh`](Self::mesh) with per-run cancellation / progress options.
    pub fn mesh_with(
        &mut self,
        img: LabeledImage,
        cfg: MesherConfig,
        opts: &RunOptions,
    ) -> Result<MeshOutput, RefineError> {
        self.mesh_seeded(img, cfg, opts, &[])
    }

    /// [`mesh_with`](Self::mesh_with) over a pre-seeded triangulation: the
    /// given points are inserted into the fresh virtual-box mesh before
    /// refinement starts, so the workers only repair where the seeded mesh
    /// violates R1–R6. This is the stitch pass of a sharded run: the seed is
    /// the union of the chunk meshes' vertices, and the repair work
    /// concentrates on the seam bands between chunks.
    pub(crate) fn mesh_seeded(
        &mut self,
        img: LabeledImage,
        cfg: MesherConfig,
        opts: &RunOptions,
        seed: &[([f64; 3], VertexKind)],
    ) -> Result<MeshOutput, RefineError> {
        let out = run_pipeline(&mut self.pool, img, cfg, opts, seed)?;
        let (died, threads) = (out.stats.workers_died, out.stats.threads());
        if died * 2 > threads {
            return Err(RefineError::WorkerQuorumLost { died, threads });
        }
        if out.stats.livelock {
            return Err(RefineError::Livelock);
        }
        Ok(out)
    }
}

/// Run the staged pipeline once over `pool`. Returns `Err` only for
/// cancellation — livelock and worker deaths are reported in the output's
/// stats, so the [`Mesher`](super::Mesher) wrappers can reproduce their
/// historical semantics exactly.
pub(crate) fn run_pipeline(
    pool: &mut WorkerPool,
    img: LabeledImage,
    cfg: MesherConfig,
    opts: &RunOptions,
    seed: &[([f64; 3], VertexKind)],
) -> Result<MeshOutput, RefineError> {
    let cancel = opts.cancel.clone().unwrap_or_default();
    let reporter = StageReporter::new(opts.on_stage.clone());
    let mut phases = Phases::new();
    let t0 = Instant::now();
    // Pipeline-thread recorder: EDT/oracle preprocessing metrics.
    let mut pipeline_rec = ThreadRecorder::new();

    // ---- Stage: Load ----
    reporter.started(Stage::Load, t0.elapsed().as_secs_f64());
    {
        let _g = phases.span(Stage::Load.phase_name());
        assert!(cfg.threads >= 1, "need at least one thread");
        assert!(cfg.delta > 0.0, "delta must be positive");
    }
    reporter.finished(Stage::Load, t0.elapsed().as_secs_f64());
    cancel.check().map_err(|_| RefineError::Cancelled)?;

    // ---- Stage: EDT ----
    reporter.started(Stage::Edt, t0.elapsed().as_secs_f64());
    let t_edt = Instant::now();
    let ft = {
        let _g = phases.span(Stage::Edt.phase_name());
        pi2m_edt::try_surface_feature_transform_opts(
            &img,
            cfg.threads,
            Some(&mut pipeline_rec),
            Some(&cancel),
            cfg.batch_runtime_enabled(),
        )
        .map_err(|_| RefineError::Cancelled)?
    };
    let edt_time = t_edt.elapsed().as_secs_f64();
    reporter.finished(Stage::Edt, t0.elapsed().as_secs_f64());

    // ---- Stage: Oracle ----
    reporter.started(Stage::Oracle, t0.elapsed().as_secs_f64());
    let oracle = {
        let _g = phases.span(Stage::Oracle.phase_name());
        pipeline_rec.inc(metrics::ORACLE_SURFACE_VOXELS, ft.num_sites() as u64);
        Arc::new(IsosurfaceOracle::from_parts(img, ft))
    };
    reporter.finished(Stage::Oracle, t0.elapsed().as_secs_f64());
    cancel.check().map_err(|_| RefineError::Cancelled)?;

    // ---- Stage: SurfaceRecovery ----
    // The virtual-box triangulation enclosing the object, the (recycled)
    // proximity grid, the refinement rules, and the initial PEL seed.
    reporter.started(Stage::SurfaceRecovery, t0.elapsed().as_secs_f64());
    // Final-mesh candidates contributed by the seed pre-insertion. Worker
    // operations record candidates as they create cells (`handle_created`),
    // but a seeded region the workers never touch again would otherwise be
    // invisible to extraction — so every post-seed cell with an inside
    // circumcenter is listed here under the same lazy (cell, generation)
    // discipline: entries killed by later refinement go stale and are
    // filtered at extract time.
    let mut seed_candidates: Vec<(CellId, u32)> = Vec::new();
    let (mesh, rules, grid_park, regions, pels, counters, dead_flags) = {
        let _g = phases.span(Stage::SurfaceRecovery.phase_name());
        let domain = oracle
            .image()
            .foreground_bounds()
            .unwrap_or_else(|| oracle.image().bounds());
        let mesh = SharedMesh::enclosing(&domain);
        let grid = pool.checkout_grid(cfg.delta);
        let grid_park = Arc::clone(&grid);
        let rules = Rules::new(
            RuleConfig {
                delta: cfg.delta,
                radius_edge_bound: cfg.radius_edge_bound,
                planar_angle_min_deg: cfg.planar_angle_min_deg,
                size_fn: cfg.size_fn.clone(),
                surface_size_fn: cfg.surface_size_fn.clone(),
            },
            Arc::clone(&oracle),
            grid,
        );
        // Pre-seed the triangulation (stitch pass of a sharded run): insert
        // the union of the chunk vertices sequentially, registering each in
        // the proximity grid exactly as a committed refinement insertion
        // would. Duplicates (identical halo copies from adjacent chunks) and
        // points outside the virtual box are dropped — the kernel's typed
        // rejections are the backstop behind the caller's own dedup.
        if !seed.is_empty() {
            let mut ctx = mesh.make_ctx(0);
            let (mut kept, mut dropped) = (0u64, 0u64);
            for &(p, kind) in seed {
                match ctx.insert(p, kind) {
                    Ok(r) => {
                        rules.grid.insert(r.vertex, p);
                        kept += 1;
                    }
                    Err(_) => dropped += 1,
                }
            }
            pipeline_rec.inc(metrics::SHARD_SEED_VERTICES, kept);
            pipeline_rec.inc(metrics::SHARD_SEED_DUPLICATES, dropped);
            for c in mesh.alive_cells() {
                let p = mesh.cell_points(c);
                if let Some(cc) = pi2m_geometry::circumcenter(p[0], p[1], p[2], p[3]) {
                    if rules.oracle.is_inside(cc) {
                        seed_candidates.push((c, mesh.cell(c).gen()));
                    }
                }
            }
        }
        let regions = RegionMap::new(&domain);
        let pels: Vec<Pel> = (0..cfg.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let counters: Vec<CachePadded<AtomicI64>> = (0..cfg.threads)
            .map(|_| CachePadded::new(AtomicI64::new(0)))
            .collect();
        let dead_flags: Vec<CachePadded<AtomicBool>> = (0..cfg.threads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect();
        (mesh, rules, grid_park, regions, pels, counters, dead_flags)
    };
    reporter.finished(Stage::SurfaceRecovery, t0.elapsed().as_secs_f64());
    cancel.check().map_err(|_| RefineError::Cancelled)?;

    // ---- Stage: VolumeRefine ----
    let mut sync = EngineSync::new(cfg.threads);
    // Offset between the refinement clock (EngineSync, which timestamps
    // overhead traces and worker events) and the run origin, so all exported
    // timelines share one time base.
    let sync_origin = phases.now();
    let flight_enabled = cfg.flight && std::env::var("PI2M_FLIGHT").map_or(true, |v| v != "0");
    // A warm recorder's clock starts at *its* creation, which may be runs
    // ago. Note where this run's origin sits on the recorder clock so
    // drained events can be re-based onto the run clock.
    let (flight_rec, mut flight_cursors, flight_base) = if flight_enabled {
        let (rec, cursors) = pool.checkout_flight(cfg.threads, cfg.flight_capacity);
        let base = rec.now_ns() as i128 - (phases.now() * 1e9) as i128;
        sync.set_flight(Arc::clone(&rec));
        (Some(rec), cursors, base)
    } else {
        (None, Vec::new(), 0i128)
    };
    let live_interval = cfg.live.or_else(live_interval_from_env);

    // Seed: the initial box cells go to the main thread's PEL (paper §4.4:
    // "only the main thread might have a non-empty PEL").
    {
        let mut pel0 = pels[0].lock();
        for c in mesh.alive_cells() {
            pel0.push_back((c.0, mesh.cell(c).gen()));
        }
        let n = pel0.len() as i64;
        counters[0].fetch_add(n, Ordering::AcqRel);
        sync.poor_added(n);
    }

    let state = Arc::new(RunState {
        mesh,
        rules,
        pels,
        counters,
        sync,
        cm: make_cm(cfg.cm, cfg.threads),
        bal: make_balancer(cfg.balancer, cfg.topology, cfg.threads),
        cfg: cfg.clone(),
        ops_total: AtomicU64::new(0),
        dead_flags,
        regions,
        cancel: cancel.clone(),
    });
    pool.ensure_threads(cfg.threads);

    let t_refine = Instant::now();
    reporter.started(Stage::VolumeRefine, t0.elapsed().as_secs_f64());
    let mut per_thread: Vec<ThreadStats> =
        (0..cfg.threads).map(|_| ThreadStats::default()).collect();
    let mut recorders: Vec<ThreadRecorder> =
        (0..cfg.threads).map(|_| ThreadRecorder::new()).collect();
    let mut final_lists: Vec<Vec<(CellId, u32)>> = (0..cfg.threads).map(|_| Vec::new()).collect();
    let mut workers_died = 0usize;
    {
        let _g = phases.span(Stage::VolumeRefine.phase_name());
        let done_rx = pool.dispatch(&state);
        // Live telemetry tap: a sampler thread drains the rings
        // incrementally and prints one JSONL heartbeat per interval.
        let tap = live_interval
            .zip(flight_rec.clone())
            .map(|(interval, rec)| {
                let st = Arc::clone(&state);
                std::thread::spawn(move || live_tap(&rec, &st.sync, interval))
            });
        for _ in 0..cfg.threads {
            // The pool thread's own catch_unwind boundaries make this recv
            // infallible for any panic raised inside the worker loop itself.
            let d = done_rx.recv().expect("pool worker thread lost");
            workers_died += d.died as usize;
            per_thread[d.tid] = d.stats;
            recorders[d.tid] = d.rec;
            final_lists[d.tid] = d.final_list;
        }
        if let Some(h) = tap {
            let _ = h.join();
        }
    }
    reporter.finished(Stage::VolumeRefine, t0.elapsed().as_secs_f64());
    let wall_time = t_refine.elapsed().as_secs_f64();
    // Candidates in tid order, matching the old scoped-thread join order;
    // seed-time candidates first (they predate every worker operation).
    let final_list: Vec<(CellId, u32)> = seed_candidates
        .into_iter()
        .chain(final_lists.into_iter().flatten())
        .collect();

    // All Arc holders (workers, tap) have finished and dropped theirs.
    let RunState {
        mesh, rules, sync, ..
    } = unwrap_state(state);

    // A cancelled run cleans up and returns the typed error, but its
    // telemetry is salvaged first: the drain advances the flight cursors
    // past this run's events (so the next run on these rings doesn't replay
    // them) AND keeps them — re-based onto the run clock and stashed in the
    // pool with the merged metrics — so the caller can still produce
    // complete `--report` / `--contention-out` artifacts for the run it had
    // to kill. The warm resources are parked; the pool comes back reusable.
    if sync.was_cancelled() {
        let (flight_events, flight_dropped) = match &flight_rec {
            Some(rec) => {
                let mut log = rec.drain_from(&mut flight_cursors);
                for e in &mut log.events {
                    // recorder clock → run clock
                    e.t_ns = (e.t_ns as i128 - flight_base).max(0) as u64;
                }
                (log.events, log.dropped + log.torn)
            }
            None => (Vec::new(), 0),
        };
        let mut snap = MetricsSnapshot::new();
        pipeline_rec.merge_into(cfg.threads as u32, &mut snap);
        for (tid, rec) in recorders.iter_mut().enumerate() {
            for e in &mut rec.events {
                e.at_s += sync_origin;
            }
            rec.merge_into(tid as u32, &mut snap);
        }
        for st in &per_thread {
            bridge_thread_stats(st, &mut snap);
        }
        pool.stash_cancel_telemetry(CancelTelemetry {
            flight: flight_events,
            flight_dropped,
            metrics: snap,
            phases: phases.spans().to_vec(),
            wall_s: wall_time,
            threads: cfg.threads,
        });
        if let Some(rec) = flight_rec {
            pool.park_flight(rec, flight_cursors, cfg.flight_capacity);
        }
        drop(rules);
        pool.park_grid(grid_park);
        return Err(RefineError::Cancelled);
    }

    // ---- Stage: Quality ----
    // Flight-ring drain plus the merge of every per-thread recorder into one
    // snapshot (join-time drain: workers are done, so plain reads — the
    // whole run records without a single atomic RMW).
    reporter.started(Stage::Quality, t0.elapsed().as_secs_f64());
    let (flight_events, flight_dropped, snap) = {
        let _g = phases.span(Stage::Quality.phase_name());
        let (flight_events, flight_dropped) = match &flight_rec {
            Some(rec) => {
                let mut log = rec.drain_from(&mut flight_cursors);
                for e in &mut log.events {
                    // recorder clock → run clock
                    e.t_ns = (e.t_ns as i128 - flight_base).max(0) as u64;
                }
                (log.events, log.dropped + log.torn)
            }
            None => (Vec::new(), 0),
        };
        let mut snap = MetricsSnapshot::new();
        pipeline_rec.merge_into(cfg.threads as u32, &mut snap);
        for (tid, rec) in recorders.iter_mut().enumerate() {
            for e in &mut rec.events {
                e.at_s += sync_origin; // shift into the run-origin time base
            }
            rec.merge_into(tid as u32, &mut snap);
        }
        for st in &per_thread {
            bridge_thread_stats(st, &mut snap);
        }
        if let Some(f) = &cfg.faults {
            snap.add_counter(metrics::FAULTS_INJECTED, f.injected());
        }
        (flight_events, flight_dropped, snap)
    };
    reporter.finished(Stage::Quality, t0.elapsed().as_secs_f64());

    // ---- Stage: Export ----
    reporter.started(Stage::Export, t0.elapsed().as_secs_f64());
    let final_mesh = phases.time(Stage::Export.phase_name(), || {
        FinalMesh::extract(&mesh, &oracle, Some(&final_list))
    });
    reporter.finished(Stage::Export, t0.elapsed().as_secs_f64());

    // Park the warm resources for the next run. The rules held the last
    // other grid Arc; drop them first so the parked grid is sole-owned and
    // the next checkout can reset it in place.
    if let Some(rec) = flight_rec {
        pool.park_flight(rec, flight_cursors, cfg.flight_capacity);
    }
    drop(rules);
    pool.park_grid(grid_park);

    let stats = RefineStats {
        final_elements: final_mesh.num_tets(),
        vertices_allocated: mesh.num_vertices(),
        per_thread,
        wall_time,
        edt_time,
        livelock: sync.livelocked(),
        workers_died,
        trace_origin: sync_origin,
    };
    Ok(MeshOutput {
        mesh: final_mesh,
        stats,
        shared: mesh,
        oracle,
        metrics: snap,
        phases: phases.spans().to_vec(),
        flight: flight_events,
        flight_dropped,
    })
}

/// Reclaim sole ownership of the run state after the workers and the tap
/// finished. The pool threads drop their Arcs *before* signalling done, so
/// this succeeds immediately in practice; the spin is a defense against the
/// tiny window a scheduler could still be unwinding a frame.
fn unwrap_state(mut state: Arc<RunState>) -> RunState {
    let mut spins = 0u32;
    loop {
        match Arc::try_unwrap(state) {
            Ok(s) => return s,
            Err(back) => {
                state = back;
                spins += 1;
                if spins > 1_000 {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}
