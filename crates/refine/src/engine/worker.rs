//! Worker-side machinery of the refinement engine: the shared run state, the
//! worker loop (paper Algorithm 1), and its helpers.
//!
//! Each worker loops: pop an element from its Poor Element List, classify it
//! against rules R1–R6, and execute the remedy through the speculative
//! Delaunay kernel (one [`run_op`] per remedy). Rollbacks report to the
//! contention manager; empty PELs park in the load balancer's begging list;
//! newly created cells are enqueued locally or donated to beggars;
//! termination is detected when every thread is parked and no work remains.
//! A watchdog aborts runs whose contention manager livelocks
//! (Aggressive/Random, paper Table 1), and a cooperative [`CancelToken`]
//! checked at the same loop boundary stops a run on demand.

use super::config::MesherConfig;
use super::op::{run_op, InsertOp, OpOutcome, RegionMap, RemoveOp};
use crate::balancer::{BegOutcome, LoadBalancer, DONATE_THRESHOLD};
use crate::cm::ContentionManager;
use crate::rules::Rules;
use crate::stats::{OverheadKind, ThreadStats};
use crate::sync::EngineSync;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pi2m_delaunay::{CellId, KernelScratch, OpCtx, SharedMesh, VertexKind};
use pi2m_faults::sites;
use pi2m_geometry::circumcenter;
use pi2m_obs::flight::{cause as flight_cause, EventKind, FlightRecorder, FlightSampler};
use pi2m_obs::metrics::{self, MetricsSnapshot, ThreadRecorder};
use pi2m_obs::CancelToken;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One thread's Poor Element List: `(cell id, generation)` pairs.
pub(crate) type Pel = Mutex<VecDeque<(u32, u32)>>;

/// Everything one refinement run shares between its workers. Owned (no
/// borrows) so it can live in an `Arc` handed to a persistent
/// [`WorkerPool`](super::pool::WorkerPool) whose threads outlive any single
/// run's stack frame.
pub(crate) struct RunState {
    pub mesh: SharedMesh,
    pub rules: Rules,
    pub pels: Vec<Pel>,
    pub counters: Vec<CachePadded<AtomicI64>>,
    pub sync: EngineSync,
    pub cm: Box<dyn ContentionManager>,
    pub bal: Box<dyn LoadBalancer>,
    pub cfg: MesherConfig,
    pub ops_total: AtomicU64,
    /// Per-worker death flags: set exactly once when a worker's panic escapes
    /// the per-operation isolation boundary. Heir selection for a dead
    /// worker's PEL skips flagged threads.
    pub dead_flags: Vec<CachePadded<AtomicBool>>,
    /// Spatial region codes for rollback attribution.
    pub regions: RegionMap,
    /// Cooperative cancellation (explicit trip or deadline), checked at every
    /// worker loop boundary.
    pub cancel: CancelToken,
}

impl RunState {
    /// Borrowed view of the run state, in the shape the worker helpers take.
    pub(crate) fn env(&self) -> Env<'_> {
        Env {
            mesh: &self.mesh,
            rules: &self.rules,
            pels: &self.pels,
            counters: &self.counters,
            sync: &self.sync,
            cm: self.cm.as_ref(),
            bal: self.bal.as_ref(),
            cfg: &self.cfg,
            ops_total: &self.ops_total,
            dead_flags: &self.dead_flags,
            regions: &self.regions,
            cancel: &self.cancel,
        }
    }
}

pub(crate) struct Env<'a> {
    pub mesh: &'a SharedMesh,
    pub rules: &'a Rules,
    pub pels: &'a [Pel],
    pub counters: &'a [CachePadded<AtomicI64>],
    pub sync: &'a EngineSync,
    pub cm: &'a dyn ContentionManager,
    pub bal: &'a dyn LoadBalancer,
    pub cfg: &'a MesherConfig,
    pub ops_total: &'a AtomicU64,
    pub dead_flags: &'a [CachePadded<AtomicBool>],
    pub regions: &'a RegionMap,
    pub cancel: &'a CancelToken,
}

pub(crate) fn worker(
    env: &Env<'_>,
    tid: usize,
    stats: &mut ThreadStats,
    // Exclusively owned by this worker — every inc/observe below is a plain
    // load/store, merged into the run snapshot after join.
    rec: &mut ThreadRecorder,
    final_list: &mut Vec<(CellId, u32)>,
    // The pool thread's persistent kernel arena: installed into the fresh
    // per-run context here, handed back at the bottom so the next run on
    // this thread starts with warm scratch buffers.
    arena: &mut KernelScratch,
) {
    let mut ctx = env
        .mesh
        .make_ctx_with_faults(tid as u32, env.cfg.faults.clone());
    ctx.install_scratch(std::mem::take(arena));
    // Hand the kernel this worker's ring so lock-path events (conflicts,
    // commit-time lock batches) land on the same per-thread timeline.
    if let Some(rec) = env.sync.flight() {
        ctx.set_flight(rec.handle(tid));
    }
    ctx.set_batch(env.cfg.batch_runtime_enabled());
    let t_spawn = env.sync.now();

    loop {
        if env.sync.is_done() {
            break;
        }
        // Cooperative cancellation: the first worker that sees the token
        // tripped settles the run exactly like the op cap does — everyone
        // else exits at the `is_done` check or is woken out of a park.
        if env.cancel.is_cancelled() {
            env.sync.declare_cancelled();
            env.cm.release_all();
            env.bal.release_all();
            break;
        }
        // Livelock watchdog (paper §5.5: Aggressive/Random can livelock).
        if env.sync.since_progress() > env.cfg.livelock_timeout
            && (env.sync.total_poor() > 0 || env.sync.cm_blocked() > 0)
        {
            env.sync.declare_livelock();
            env.cm.release_all();
            env.bal.release_all();
            break;
        }
        // Worker-scope injection: a `panic` here escapes the per-operation
        // isolation below and kills this worker (the death-cleanup path).
        if let Some(f) = &env.cfg.faults {
            let _ = f.fire(sites::ENGINE_WORKER, tid as u32);
            // The stitch pass of a sharded run exposes its own worker-scope
            // site so shard drills can kill a worker mid-seam without also
            // firing in the surrounding (monolithic or chunk) runs.
            if env.cfg.shard_stitch {
                let _ = f.fire(sites::SHARD_STITCH, tid as u32);
            }
        }

        let item = env.pels[tid].lock().pop_front();
        let Some((cid, gen)) = item else {
            env.cm.before_beg(tid, env.sync);
            if let Some(f) = &env.cfg.faults {
                let _ = f.fire(sites::BALANCER_BEG, tid as u32);
            }
            let (outcome, waited) = env.bal.beg(tid, env.sync, env.cm);
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::LoadBalance, waited, at);
            rec.observe(metrics::LB_WAIT_SECONDS, waited);
            match outcome {
                BegOutcome::Finished => break,
                BegOutcome::GotWork => {
                    stats.donations_received += 1;
                    env.sync.flight_emit(
                        tid,
                        EventKind::Steal,
                        0,
                        0,
                        0,
                        (waited * 1e9).min(u32::MAX as f64) as u32,
                    );
                    continue;
                }
            }
        };
        env.counters[tid].fetch_sub(1, Ordering::AcqRel);
        env.sync.poor_taken(1);

        // ---- per-operation panic isolation ----
        // Classification + remedy run under `catch_unwind`: a panic rolls
        // back whatever locks the operation still holds and quarantines the
        // work item (it is never requeued), and the worker keeps going.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            process_item(env, tid, &mut ctx, stats, rec, final_list, cid, gen)
        }));
        if caught.is_err() {
            stats.panics += 1;
            stats.quarantined += 1;
            if ctx.locks_held() > 0 {
                ctx.abort();
                stats.recovery_rollbacks += 1;
            }
            // Quarantining the poison item is progress: the watchdog must
            // not blame the recovery for the missing completions.
            env.sync.note_progress();
        }

        // Drain the kernel's walk-effort counters for this operation (plain
        // u64 reads from our own ctx — the kernel stays obs-free).
        let ws = ctx.take_walk_stats();
        if ws.locates > 0 {
            rec.inc(metrics::WALK_LOCATES, ws.locates);
            rec.inc(metrics::WALK_STEPS, ws.steps);
            rec.observe(
                metrics::WALK_STEPS_PER_LOCATE,
                ws.steps as f64 / ws.locates as f64,
            );
        }
        let ps = ctx.take_pred_stats();
        if ps.orient_total() > 0 {
            rec.inc(metrics::PRED_ORIENT_SEMI_STATIC, ps.orient_semi_static);
            rec.inc(metrics::PRED_ORIENT_FILTERED, ps.orient_filtered);
            rec.inc(metrics::PRED_ORIENT_EXACT, ps.orient_exact);
        }
        if ps.insphere_total() > 0 {
            rec.inc(metrics::PRED_INSPHERE_SEMI_STATIC, ps.insphere_semi_static);
            rec.inc(metrics::PRED_INSPHERE_FILTERED, ps.insphere_filtered);
            rec.inc(metrics::PRED_INSPHERE_EXACT, ps.insphere_exact);
        }
        let bs = ctx.take_batch_stats();
        if bs.orient_batches > 0 {
            rec.inc(metrics::PRED_BATCH_ORIENT_BATCHES, bs.orient_batches);
            rec.inc(metrics::PRED_BATCH_ORIENT_LANES, bs.orient_lanes);
            rec.inc(metrics::PRED_BATCH_ORIENT_FALLBACKS, bs.orient_fallbacks);
        }
        if bs.insphere_batches > 0 {
            rec.inc(metrics::PRED_BATCH_INSPHERE_BATCHES, bs.insphere_batches);
            rec.inc(metrics::PRED_BATCH_INSPHERE_LANES, bs.insphere_lanes);
            rec.inc(
                metrics::PRED_BATCH_INSPHERE_FALLBACKS,
                bs.insphere_fallbacks,
            );
        }
        let ss = ctx.take_scratch_stats();
        if ss.reuses + ss.allocs > 0 {
            rec.inc(metrics::SCRATCH_REUSES, ss.reuses);
            rec.inc(metrics::SCRATCH_ALLOCS, ss.allocs);
        }
        if ss.soa_gathers > 0 {
            rec.inc(metrics::SCRATCH_SOA_GATHERS, ss.soa_gathers);
            rec.inc(metrics::SCRATCH_SOA_POINTS, ss.soa_points);
        }

        if env.cfg.max_operations > 0 {
            let done = env.ops_total.fetch_add(1, Ordering::Relaxed) + 1;
            if done >= env.cfg.max_operations {
                env.sync.set_done();
                env.cm.release_all();
                env.bal.release_all();
                break;
            }
        }
    }

    // A finished worker must leave nobody parked on its contention list.
    env.cm.before_beg(tid, env.sync);
    // Every worker contributes at least this lifetime event to the trace.
    rec.event("worker", "worker", t_spawn, env.sync.now() - t_spawn);
    // Hand the (now warm) kernel arena back to the pool thread.
    *arena = ctx.take_scratch();
}

/// Classify one PEL item and execute its remedy. Runs inside the worker's
/// per-operation `catch_unwind` boundary.
#[allow(clippy::too_many_arguments)]
fn process_item(
    env: &Env<'_>,
    tid: usize,
    ctx: &mut OpCtx<'_>,
    stats: &mut ThreadStats,
    rec: &mut ThreadRecorder,
    final_list: &mut Vec<(CellId, u32)>,
    cid: u32,
    gen: u32,
) {
    // Operation-scope injection: deny re-queues the item through the normal
    // rollback path (a synthetic self-conflict), fail quarantines it.
    if let Some(f) = &env.cfg.faults {
        match f.fire(sites::ENGINE_OP, tid as u32) {
            Some(pi2m_faults::Injected::Deny) => {
                stats.rollbacks += 1;
                env.sync.flight_emit(
                    tid,
                    EventKind::Rollback,
                    flight_cause::INJECTED,
                    cid,
                    pi2m_obs::flight::pack_owner_region(tid as u16, 0),
                    0,
                );
                env.pels[tid].lock().push_back((cid, gen));
                env.counters[tid].fetch_add(1, Ordering::AcqRel);
                env.sync.poor_added(1);
                let waited = env.cm.on_rollback(tid, tid, env.sync);
                let at = env.cfg.trace.then(|| env.sync.now());
                stats.add_overhead(OverheadKind::Contention, waited, at);
                rec.observe(metrics::LOCK_WAIT_SECONDS, waited);
                return;
            }
            Some(pi2m_faults::Injected::Fail) => {
                stats.quarantined += 1;
                return;
            }
            None => {}
        }
    }

    let c = CellId(cid);
    rec.inc(metrics::CLASSIFY_CALLS, 1);
    let Some(action) = env.rules.classify(env.mesh, c, gen) else {
        return; // satisfied (or stale) — drop
    };

    let region = env.regions.code(action.point);
    let insert = InsertOp {
        cid,
        gen,
        point: action.point,
        kind: action.kind,
    };
    let outcome = run_op(env, tid, ctx, stats, rec, final_list, region, &insert);

    // R6: an isosurface vertex evicts nearby circumcenters. The removals are
    // attributed to the insertion's region — they happen within 2δ of it.
    if outcome == OpOutcome::Committed
        && action.kind == VertexKind::Isosurface
        && env.cfg.enable_removals
    {
        for victim in env.rules.r6_victims(env.mesh, action.point) {
            let remove = RemoveOp { victim };
            run_op(env, tid, ctx, stats, rec, final_list, region, &remove);
        }
    }
}

/// Retire a worker whose panic escaped the per-operation isolation: mark it
/// dead for termination detection, bequeath its queued work to a surviving
/// heir, and wake anyone parked on its contention list.
pub(crate) fn worker_death_cleanup(env: &Env<'_>, tid: usize, rec: &mut ThreadRecorder) {
    env.dead_flags[tid].store(true, Ordering::Release);
    env.sync.worker_died();
    rec.inc(metrics::WORKER_DEATHS, 1);
    // This still runs on the dying thread itself, so the SPSC discipline
    // holds — the ring (and everything recorded before the panic) survives
    // because the recorder is owned by the engine, not the worker closure.
    env.sync
        .flight_emit(tid, EventKind::WorkerDeath, 0, 0, 0, 0);

    // Bequeath the dead worker's PEL to the nearest surviving thread so no
    // queued element is silently lost.
    let drained: Vec<(u32, u32)> = {
        let mut pel = env.pels[tid].lock();
        pel.drain(..).collect()
    };
    if !drained.is_empty() {
        let n = drained.len() as i64;
        env.counters[tid].fetch_sub(n, Ordering::AcqRel);
        let heir = (1..env.cfg.threads)
            .map(|k| (tid + k) % env.cfg.threads)
            .find(|&h| !env.dead_flags[h].load(Ordering::Acquire));
        match heir {
            Some(h) => {
                {
                    let mut pel = env.pels[h].lock();
                    for it in drained {
                        pel.push_back(it);
                    }
                }
                env.counters[h].fetch_add(n, Ordering::AcqRel);
                env.bal.wake(h);
                env.sync
                    .flight_emit(tid, EventKind::HeirBequest, 0, h as u32, n as u32, 0);
            }
            None => {
                // no survivors: the work is lost, but so is the run — keep
                // the poor count consistent so nothing spins on it
                env.sync.poor_taken(n);
            }
        }
    }
    // Nobody may stay parked on a dead thread's contention list, and the
    // termination condition (begging + dead >= threads) may have just
    // become true — wake the beggars so one of them settles it.
    env.cm.before_beg(tid, env.sync);
    env.sync.note_progress();
}

/// Enqueue newly created cells for (lazy) classification, donating to a
/// beggar when this thread has enough work of its own (paper §4.4), and
/// record final-mesh candidates (paper §4.3's per-thread linked lists).
pub(crate) fn handle_created(
    env: &Env<'_>,
    tid: usize,
    stats: &mut ThreadStats,
    final_list: &mut Vec<(CellId, u32)>,
    created: &[CellId],
) {
    if created.is_empty() {
        return;
    }
    // final-mesh candidates
    for &nc in created {
        let cell = env.mesh.cell(nc);
        let gen = cell.gen();
        let p = env.mesh.cell_points(nc);
        if let Some(cc) = circumcenter(p[0], p[1], p[2], p[3]) {
            if env.rules.oracle.is_inside(cc) {
                final_list.push((nc, gen));
            }
        }
    }
    // enqueue / donate
    let own = env.counters[tid].load(Ordering::Acquire);
    let target = if own >= DONATE_THRESHOLD {
        env.bal.pick_beggar(tid)
    } else {
        None
    };
    let n = created.len() as i64;
    match target {
        Some(b) => {
            let t_donate = Instant::now();
            {
                let mut pel = env.pels[b].lock();
                for &nc in created {
                    pel.push_back((nc.0, env.mesh.cell(nc).gen()));
                }
            }
            env.counters[b].fetch_add(n, Ordering::AcqRel);
            env.sync.poor_added(n);
            env.bal.wake(b);
            // `c` carries the measured handoff cost (beggar-PEL lock, push,
            // wake) so time attribution can charge the donor for it.
            let handoff_ns = t_donate.elapsed().as_nanos().min(u32::MAX as u128) as u32;
            env.sync
                .flight_emit(tid, EventKind::Donate, 0, b as u32, n as u32, handoff_ns);
            stats.donations_made += 1;
            if env.cfg.topology.blade_of(tid) != env.cfg.topology.blade_of(b) {
                stats.inter_blade_donations += 1;
            }
        }
        None => {
            {
                let mut pel = env.pels[tid].lock();
                for &nc in created {
                    pel.push_back((nc.0, env.mesh.cell(nc).gen()));
                }
            }
            env.counters[tid].fetch_add(n, Ordering::AcqRel);
            env.sync.poor_added(n);
        }
    }
}

/// Mirror the engine's own `ThreadStats` counters into the shared metric
/// catalog, so exporters see one unified namespace.
pub(crate) fn bridge_thread_stats(st: &ThreadStats, snap: &mut MetricsSnapshot) {
    use metrics as m;
    for (id, n) in [
        (m::OPS_TOTAL, st.operations),
        (m::OPS_INSERTIONS, st.insertions),
        (m::OPS_REMOVALS, st.removals),
        (m::OPS_ROLLBACKS, st.rollbacks),
        (m::OPS_SKIPPED, st.skipped),
        (m::REMOVALS_BLOCKED, st.removals_blocked),
        (m::CELLS_CREATED, st.cells_created),
        (m::CELLS_KILLED, st.cells_killed),
        (m::DONATIONS_MADE, st.donations_made),
        (m::DONATIONS_RECEIVED, st.donations_received),
        (m::INTER_BLADE_DONATIONS, st.inter_blade_donations),
        (m::WORKER_PANICS, st.panics),
        (m::QUARANTINED_OPS, st.quarantined),
        (m::RECOVERY_ROLLBACKS, st.recovery_rollbacks),
        (m::KERNEL_ERRORS, st.kernel_errors),
    ] {
        snap.add_counter(id, n);
    }
}

/// The live-telemetry sampler loop: once per interval (and once at the end),
/// drain the rings incrementally and print a JSONL heartbeat to stderr. The
/// sampler never touches worker state — it only reads the SPSC rings (which
/// tolerate a single concurrent reader via per-event checksums) and the
/// engine-wide atomic gauges. Starts at the rings' current heads so a warm
/// session's earlier runs are not replayed into the tallies.
pub(crate) fn live_tap(rec: &Arc<FlightRecorder>, sync: &EngineSync, interval: f64) {
    let mut sampler = FlightSampler::starting_at_head(rec);
    let t0 = Instant::now();
    let mut prev_ops = 0u64;
    let mut prev_t = 0.0f64;
    loop {
        let done = sleep_until_done(sync, interval);
        sampler.sample(rec);
        let ta = sampler.tallies();
        let t = t0.elapsed().as_secs_f64();
        let ops = ta.ops();
        let rate = (ops - prev_ops) as f64 / (t - prev_t).max(1e-9);
        eprintln!(
            "{{\"t_s\":{t:.3},\"ops\":{ops},\"commits\":{},\"rollbacks\":{},\
             \"rollback_ratio\":{:.4},\"ops_per_sec\":{rate:.1},\"cm_blocked\":{},\
             \"begging\":{},\"dead\":{},\"queue_depth\":{},\"ring_dropped\":{}}}",
            ta.commits,
            ta.rollbacks,
            ta.rollback_ratio(),
            sync.cm_blocked(),
            sync.begging(),
            sync.dead(),
            sync.total_poor().max(0),
            ta.dropped,
        );
        prev_ops = ops;
        prev_t = t;
        if done {
            break;
        }
    }
}

/// Sleep for `interval` seconds in short slices so the tap exits promptly at
/// termination. Returns whether the run is done.
fn sleep_until_done(sync: &EngineSync, interval: f64) -> bool {
    let deadline = Instant::now() + Duration::from_secs_f64(interval.max(0.01));
    while Instant::now() < deadline {
        if sync.is_done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    sync.is_done()
}
