//! The persistent worker pool behind a [`MeshingSession`](super::MeshingSession).
//!
//! A cold `Mesher::run()` pays per-run setup that a session amortizes:
//! spawning OS threads, growing each worker's kernel scratch arenas to their
//! steady-state footprint, allocating the flight-recorder rings, and
//! allocating the proximity grid's 32 Ki bucket shards. The pool owns all
//! four. Threads live across runs and receive one [`Job`] per run; the warm
//! resources are checked out at run start and parked again at run end.
//!
//! Correctness of reuse:
//! - **Arenas** are capacity-only caches ([`KernelScratch`] buffers are
//!   cleared before use by the kernel) — no behavioral effect.
//! - **The grid** is [`reset`](PointGrid::reset) (all shards cleared, cell
//!   size re-keyed to the run's δ) at checkout.
//! - **Flight rings** keep old events in place; per-run drains read from
//!   saved cursors ([`FlightRecorder::drain_from`]) so each run sees only its
//!   own events and its drop accounting stays per-run.

use super::session::CancelTelemetry;
use super::worker::{worker, worker_death_cleanup, RunState};
use crate::grid::PointGrid;
use crate::stats::ThreadStats;
use pi2m_delaunay::{CellId, KernelScratch};
use pi2m_obs::flight::FlightRecorder;
use pi2m_obs::metrics::ThreadRecorder;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One run's worth of work for one pool thread.
pub(crate) struct Job {
    state: Arc<RunState>,
    tid: usize,
    done: mpsc::Sender<WorkerDone>,
}

/// What a pool thread hands back when its worker finishes a run.
pub(crate) struct WorkerDone {
    pub tid: usize,
    pub stats: ThreadStats,
    pub final_list: Vec<(CellId, u32)>,
    pub rec: ThreadRecorder,
    pub died: bool,
}

struct PoolThread {
    job_tx: Option<mpsc::Sender<Job>>,
    handle: Option<JoinHandle<()>>,
}

/// Persistent worker threads plus the warm resources they use across runs.
pub(crate) struct WorkerPool {
    threads: Vec<PoolThread>,
    grid: Option<Arc<PointGrid>>,
    flight: Option<FlightSlot>,
    /// Telemetry salvaged from the last cancelled run (the typed
    /// `RefineError::Cancelled` cannot carry it — the error derives `Eq`).
    cancel_telemetry: Option<CancelTelemetry>,
}

struct FlightSlot {
    rec: Arc<FlightRecorder>,
    /// Per-ring read cursors: where the previous run's drain stopped.
    cursors: Vec<u64>,
    capacity: usize,
}

impl WorkerPool {
    pub(crate) fn new(threads: usize) -> Self {
        let mut pool = WorkerPool {
            threads: Vec::new(),
            grid: None,
            flight: None,
            cancel_telemetry: None,
        };
        pool.ensure_threads(threads.max(1));
        pool
    }

    pub(crate) fn threads(&self) -> usize {
        self.threads.len()
    }

    /// Grow the pool to at least `n` threads (runs may ask for more threads
    /// than the session was created with; the pool never shrinks).
    pub(crate) fn ensure_threads(&mut self, n: usize) {
        while self.threads.len() < n {
            let (tx, rx) = mpsc::channel::<Job>();
            let handle = std::thread::Builder::new()
                .name(format!("pi2m-worker-{}", self.threads.len()))
                .spawn(move || pool_thread_main(rx))
                .expect("failed to spawn pool worker thread");
            self.threads.push(PoolThread {
                job_tx: Some(tx),
                handle: Some(handle),
            });
        }
    }

    /// Hand one job per participating thread to the pool; results arrive on
    /// the returned channel, one [`WorkerDone`] per thread, in completion
    /// order.
    pub(crate) fn dispatch(&self, state: &Arc<RunState>) -> mpsc::Receiver<WorkerDone> {
        let n = state.cfg.threads;
        assert!(n <= self.threads.len(), "pool not grown to run width");
        let (done_tx, done_rx) = mpsc::channel();
        for (tid, t) in self.threads.iter().enumerate().take(n) {
            t.job_tx
                .as_ref()
                .expect("pool thread already shut down")
                .send(Job {
                    state: Arc::clone(state),
                    tid,
                    done: done_tx.clone(),
                })
                .expect("pool worker thread vanished");
        }
        done_rx
    }

    /// Check out the proximity grid, re-keyed to this run's δ with every
    /// shard cleared (allocations kept). Falls back to a fresh grid if the
    /// parked one is still referenced (it never should be).
    pub(crate) fn checkout_grid(&mut self, delta: f64) -> Arc<PointGrid> {
        match self.grid.take().map(Arc::try_unwrap) {
            Some(Ok(mut g)) => {
                g.reset(delta);
                Arc::new(g)
            }
            _ => Arc::new(PointGrid::new(delta)),
        }
    }

    /// Park the grid for the next run. Call after the run's other holders
    /// (the rules) have dropped their clones.
    pub(crate) fn park_grid(&mut self, grid: Arc<PointGrid>) {
        self.grid = Some(grid);
    }

    /// Check out the flight recorder and its per-ring drain cursors. The
    /// parked recorder is reused only when its shape (ring count, capacity)
    /// matches this run; otherwise a fresh one is built with zeroed cursors.
    pub(crate) fn checkout_flight(
        &mut self,
        threads: usize,
        capacity: usize,
    ) -> (Arc<FlightRecorder>, Vec<u64>) {
        if let Some(slot) = self.flight.take() {
            if slot.rec.threads() == threads && slot.capacity == capacity {
                return (slot.rec, slot.cursors);
            }
        }
        (
            Arc::new(FlightRecorder::new(threads, capacity)),
            vec![0; threads.max(1)],
        )
    }

    /// Stash the telemetry of a cancelled run for the caller to collect.
    pub(crate) fn stash_cancel_telemetry(&mut self, t: CancelTelemetry) {
        self.cancel_telemetry = Some(t);
    }

    /// Take (and clear) the last cancelled run's telemetry.
    pub(crate) fn take_cancel_telemetry(&mut self) -> Option<CancelTelemetry> {
        self.cancel_telemetry.take()
    }

    /// Park the recorder with the cursors advanced past this run's events.
    pub(crate) fn park_flight(
        &mut self,
        rec: Arc<FlightRecorder>,
        cursors: Vec<u64>,
        capacity: usize,
    ) {
        self.flight = Some(FlightSlot {
            rec,
            cursors,
            capacity,
        });
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close every job channel first so all threads exit their recv loop,
        // then join them.
        for t in &mut self.threads {
            t.job_tx.take();
        }
        for t in &mut self.threads {
            if let Some(h) = t.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// A pool thread's main loop: one persistent kernel arena, one job per run.
fn pool_thread_main(rx: mpsc::Receiver<Job>) {
    let mut arena = KernelScratch::default();
    while let Ok(job) = rx.recv() {
        let Job { state, tid, done } = job;
        let mut stats = ThreadStats::default();
        let mut rec = ThreadRecorder::new();
        let mut final_list: Vec<(CellId, u32)> = Vec::new();
        let died;
        {
            let env = state.env();
            // Same isolation contract as the scoped-thread engine had: a
            // panic escaping the worker's per-operation boundary retires the
            // worker *for this run*; the pool thread itself survives and can
            // serve the next run. (The warm arena is lost with the panicked
            // context — `mem::take` left a fresh default in its place.)
            died = catch_unwind(AssertUnwindSafe(|| {
                worker(&env, tid, &mut stats, &mut rec, &mut final_list, &mut arena)
            }))
            .is_err();
            if died {
                // Cleanup must not take the pool thread down with it — a
                // dead thread would leave the session hanging on the done
                // channel. (It has never panicked in the scoped engine
                // either; this is the pool's containment boundary.)
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    worker_death_cleanup(&env, tid, &mut rec)
                }));
            }
        }
        // Drop our Arc BEFORE signalling completion so the session's
        // `Arc::try_unwrap` on the run state succeeds immediately.
        drop(state);
        let _ = done.send(WorkerDone {
            tid,
            stats,
            final_list,
            rec,
            died,
        });
    }
}
