//! A concurrent uniform spatial hash grid over refinement vertices.
//!
//! Rule R1 needs "is there an isosurface vertex within δ of z?"; rule R6
//! needs "which circumcenter vertices lie within 2δ of z?". Both are
//! answered by this grid, keyed at cell size δ. Buckets are sharded mutexes;
//! entries are never physically removed (removed vertices are filtered by
//! their alive flag at query time), which keeps the hot insert path cheap.

use parking_lot::Mutex;
use pi2m_delaunay::{SharedMesh, VertexId, VertexKind};
use pi2m_geometry::Point3;

const BUCKETS: usize = 1 << 15;

type Shard = Mutex<Vec<(VertexId, [f64; 3])>>;

/// Sharded spatial hash over vertex positions.
pub struct PointGrid {
    cell: f64,
    shards: Vec<Shard>,
}

impl PointGrid {
    /// Build a grid with spatial cell size `cell` (use δ).
    pub fn new(cell: f64) -> Self {
        assert!(cell > 0.0 && cell.is_finite());
        let mut shards = Vec::with_capacity(BUCKETS);
        shards.resize_with(BUCKETS, || Mutex::new(Vec::new()));
        PointGrid { cell, shards }
    }

    #[inline]
    fn cell_of(&self, p: [f64; 3]) -> [i64; 3] {
        [
            (p[0] / self.cell).floor() as i64,
            (p[1] / self.cell).floor() as i64,
            (p[2] / self.cell).floor() as i64,
        ]
    }

    #[inline]
    fn bucket(&self, c: [i64; 3]) -> usize {
        // Fx-style integer mix
        let mut h = 0u64;
        for v in c {
            h = (h.rotate_left(5) ^ (v as u64)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95);
        }
        (h as usize) & (BUCKETS - 1)
    }

    /// Reset the grid for a new run at cell size `cell`, clearing every
    /// shard while *keeping* the shard vectors' allocations — a warm
    /// session's pool recycles one grid across runs instead of reallocating
    /// its 32 Ki buckets each time.
    pub fn reset(&mut self, cell: f64) {
        assert!(cell > 0.0 && cell.is_finite());
        self.cell = cell;
        for shard in &mut self.shards {
            shard.get_mut().clear();
        }
    }

    /// Register a vertex at position `p`.
    pub fn insert(&self, v: VertexId, p: [f64; 3]) {
        let b = self.bucket(self.cell_of(p));
        self.shards[b].lock().push((v, p));
    }

    /// Visit every *alive* vertex of the given kind within `radius` of `p`.
    /// Stops early if `visit` returns `false`.
    pub fn for_each_near(
        &self,
        mesh: &SharedMesh,
        p: [f64; 3],
        radius: f64,
        kind: VertexKind,
        mut visit: impl FnMut(VertexId, [f64; 3]) -> bool,
    ) {
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let c0 = self.cell_of(p);
        let q = Point3::from_array(p);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    let b = self.bucket([c0[0] + dx, c0[1] + dy, c0[2] + dz]);
                    let shard = self.shards[b].lock();
                    for &(v, vp) in shard.iter() {
                        if q.distance_squared(Point3::from_array(vp)) > r2 {
                            continue;
                        }
                        let vx = mesh.vertex(v);
                        if !vx.is_alive() || vx.kind() != kind {
                            continue;
                        }
                        if !visit(v, vp) {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Visit every alive vertex within `radius` whose kind satisfies
    /// `filter`.
    pub fn for_each_near_with(
        &self,
        mesh: &SharedMesh,
        p: [f64; 3],
        radius: f64,
        filter: impl Fn(VertexKind) -> bool,
        mut visit: impl FnMut(VertexId, [f64; 3]) -> bool,
    ) {
        let r2 = radius * radius;
        let reach = (radius / self.cell).ceil() as i64;
        let c0 = self.cell_of(p);
        let q = Point3::from_array(p);
        for dx in -reach..=reach {
            for dy in -reach..=reach {
                for dz in -reach..=reach {
                    let b = self.bucket([c0[0] + dx, c0[1] + dy, c0[2] + dz]);
                    let shard = self.shards[b].lock();
                    for &(v, vp) in shard.iter() {
                        if q.distance_squared(Point3::from_array(vp)) > r2 {
                            continue;
                        }
                        let vx = mesh.vertex(v);
                        if !vx.is_alive() || !filter(vx.kind()) {
                            continue;
                        }
                        if !visit(v, vp) {
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Is any alive *surface sample* (isosurface vertex or surface-center —
    /// both lie precisely on ∂O) within `radius` of `p`? Used by rule R1's
    /// δ-separation.
    pub fn any_surface_sample_near(&self, mesh: &SharedMesh, p: [f64; 3], radius: f64) -> bool {
        let mut found = false;
        self.for_each_near_with(
            mesh,
            p,
            radius,
            |k| matches!(k, VertexKind::Isosurface | VertexKind::SurfaceCenter),
            |_, _| {
                found = true;
                false
            },
        );
        found
    }

    /// Is any alive vertex of `kind` within `radius` of `p`?
    pub fn any_near(&self, mesh: &SharedMesh, p: [f64; 3], radius: f64, kind: VertexKind) -> bool {
        let mut found = false;
        self.for_each_near(mesh, p, radius, kind, |_, _| {
            found = true;
            false
        });
        found
    }

    /// Collect alive vertices of `kind` within `radius` of `p`.
    pub fn collect_near(
        &self,
        mesh: &SharedMesh,
        p: [f64; 3],
        radius: f64,
        kind: VertexKind,
    ) -> Vec<VertexId> {
        let mut out = Vec::new();
        self.for_each_near(mesh, p, radius, kind, |v, _| {
            out.push(v);
            true
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_geometry::Aabb;

    fn mesh_with_points() -> (SharedMesh, Vec<VertexId>) {
        let m = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(10.0, 10.0, 10.0)));
        let mut vs = Vec::new();
        {
            let mut ctx = m.make_ctx(0);
            for (p, kind) in [
                ([2.0, 2.0, 2.0], VertexKind::Isosurface),
                ([2.5, 2.0, 2.0], VertexKind::Circumcenter),
                ([8.0, 8.0, 8.0], VertexKind::Isosurface),
            ] {
                vs.push(ctx.insert(p, kind).unwrap().vertex);
            }
        }
        (m, vs)
    }

    #[test]
    fn insert_and_query_by_kind() {
        let (m, vs) = mesh_with_points();
        let g = PointGrid::new(1.0);
        for &v in &vs {
            g.insert(v, m.pos3(v));
        }
        assert!(g.any_near(&m, [2.1, 2.0, 2.0], 0.5, VertexKind::Isosurface));
        assert!(!g.any_near(&m, [2.1, 2.0, 2.0], 0.2, VertexKind::SurfaceCenter));
        let near = g.collect_near(&m, [2.0, 2.0, 2.0], 1.0, VertexKind::Circumcenter);
        assert_eq!(near, vec![vs[1]]);
        // far point only sees its own neighborhood
        assert!(!g.any_near(&m, [8.0, 8.0, 8.0], 2.0, VertexKind::Circumcenter));
        assert!(g.any_near(&m, [8.0, 8.0, 8.0], 0.1, VertexKind::Isosurface));
    }

    #[test]
    fn dead_vertices_filtered() {
        let (m, vs) = mesh_with_points();
        let g = PointGrid::new(1.0);
        for &v in &vs {
            g.insert(v, m.pos3(v));
        }
        let mut ctx = m.make_ctx(0);
        ctx.remove(vs[1]).unwrap();
        assert!(g
            .collect_near(&m, [2.5, 2.0, 2.0], 0.5, VertexKind::Circumcenter)
            .is_empty());
    }

    #[test]
    fn radius_larger_than_cell() {
        let (m, vs) = mesh_with_points();
        let g = PointGrid::new(0.25); // small cells, big query radius
        for &v in &vs {
            g.insert(v, m.pos3(v));
        }
        let near = g.collect_near(&m, [2.0, 2.0, 2.0], 3.0, VertexKind::Circumcenter);
        assert_eq!(near.len(), 1);
    }

    #[test]
    fn negative_coordinates() {
        let m = SharedMesh::with_box(Aabb::new(
            Point3::new(-10.0, -10.0, -10.0),
            Point3::new(10.0, 10.0, 10.0),
        ));
        let mut ctx = m.make_ctx(0);
        let v = ctx
            .insert([-5.0, -5.0, -5.0], VertexKind::Isosurface)
            .unwrap()
            .vertex;
        let g = PointGrid::new(1.0);
        g.insert(v, m.pos3(v));
        assert!(g.any_near(&m, [-5.2, -5.0, -5.0], 0.5, VertexKind::Isosurface));
    }
}
