//! Overhead accounting, mirroring the paper's three direct sources of wasted
//! cycles (§5.5): contention overhead, load-balance overhead, and rollback
//! overhead — plus throughput counters and an optional event trace for the
//! Figure-6 style overhead-vs-wall-time breakdown.

/// Categories of wasted time tracked per thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverheadKind {
    /// Busy-waiting in a contention list / CM backoff sleep, plus CM access.
    Contention,
    /// Waiting in a begging list for work, plus begging-list access.
    LoadBalance,
    /// Time spent on partially completed operations that rolled back.
    Rollback,
}

/// One trace event: (wall-clock seconds since start, kind, duration seconds).
///
/// Timestamps are `f64`: at f32 precision a timestamp one hour into a run
/// quantizes to ~0.25 ms, coarser than many individual overhead episodes,
/// which scrambles event ordering in long traces.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    pub at: f64,
    pub kind: OverheadKind,
    pub dur: f64,
    /// Originating worker thread; filled in by [`RefineStats::merged_trace`]
    /// (a `ThreadStats` does not know its own index).
    pub tid: u32,
}

/// Per-thread counters; owned exclusively by its worker, merged at join.
#[derive(Clone, Debug, Default)]
pub struct ThreadStats {
    pub operations: u64,
    pub insertions: u64,
    pub removals: u64,
    pub rollbacks: u64,
    /// Insertions rejected as duplicates / outside-domain / degenerate.
    pub skipped: u64,
    pub removals_blocked: u64,
    pub cells_created: u64,
    pub cells_killed: u64,
    pub donations_made: u64,
    pub donations_received: u64,
    /// Donations that crossed a blade boundary (Figure 5b).
    pub inter_blade_donations: u64,
    /// Operations that panicked and were caught by the per-op isolation.
    pub panics: u64,
    /// Poison work items dropped after a caught panic (never requeued).
    pub quarantined: u64,
    /// Lock sets force-released while recovering from a caught panic.
    pub recovery_rollbacks: u64,
    /// Operations abandoned on a typed kernel-invariant error.
    pub kernel_errors: u64,
    pub contention_overhead: f64,
    pub load_balance_overhead: f64,
    pub rollback_overhead: f64,
    /// Optional event trace (enabled by `MesherConfig::trace`).
    pub trace: Vec<TraceEvent>,
}

impl ThreadStats {
    pub fn total_overhead(&self) -> f64 {
        self.contention_overhead + self.load_balance_overhead + self.rollback_overhead
    }

    pub fn add_overhead(&mut self, kind: OverheadKind, secs: f64, trace_at: Option<f64>) {
        match kind {
            OverheadKind::Contention => self.contention_overhead += secs,
            OverheadKind::LoadBalance => self.load_balance_overhead += secs,
            OverheadKind::Rollback => self.rollback_overhead += secs,
        }
        if let Some(at) = trace_at {
            self.trace.push(TraceEvent {
                at,
                kind,
                dur: secs,
                tid: 0,
            });
        }
    }
}

/// Aggregated statistics of a refinement run.
#[derive(Clone, Debug, Default)]
pub struct RefineStats {
    pub per_thread: Vec<ThreadStats>,
    /// Wall-clock duration of the parallel refinement phase (seconds).
    pub wall_time: f64,
    /// Wall-clock duration of the EDT preprocessing (seconds).
    pub edt_time: f64,
    /// Whether the livelock watchdog fired (Aggressive/Random CMs can
    /// livelock; see paper §5.5).
    pub livelock: bool,
    /// Elements in the reported final mesh.
    pub final_elements: usize,
    /// Workers that died to an un-recovered panic; the run completed on the
    /// survivors.
    pub workers_died: usize,
    /// Vertices allocated (including removed ones).
    pub vertices_allocated: usize,
    /// Seconds from the pipeline run origin at which the refinement clock
    /// (the `at` field of trace events) started; exporters add this to align
    /// overhead traces with phase spans.
    pub trace_origin: f64,
}

impl RefineStats {
    pub fn threads(&self) -> usize {
        self.per_thread.len()
    }

    pub fn total_rollbacks(&self) -> u64 {
        self.per_thread.iter().map(|t| t.rollbacks).sum()
    }

    pub fn total_operations(&self) -> u64 {
        self.per_thread.iter().map(|t| t.operations).sum()
    }

    pub fn total_removals(&self) -> u64 {
        self.per_thread.iter().map(|t| t.removals).sum()
    }

    pub fn total_panics(&self) -> u64 {
        self.per_thread.iter().map(|t| t.panics).sum()
    }

    pub fn total_quarantined(&self) -> u64 {
        self.per_thread.iter().map(|t| t.quarantined).sum()
    }

    pub fn total_recovery_rollbacks(&self) -> u64 {
        self.per_thread.iter().map(|t| t.recovery_rollbacks).sum()
    }

    pub fn total_kernel_errors(&self) -> u64 {
        self.per_thread.iter().map(|t| t.kernel_errors).sum()
    }

    pub fn contention_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.contention_overhead).sum()
    }

    pub fn load_balance_overhead(&self) -> f64 {
        self.per_thread
            .iter()
            .map(|t| t.load_balance_overhead)
            .sum()
    }

    pub fn rollback_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.rollback_overhead).sum()
    }

    /// Sum of the three wasted-cycle categories over all threads (the
    /// paper's "total overhead").
    pub fn total_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.total_overhead()).sum()
    }

    pub fn total_inter_blade_donations(&self) -> u64 {
        self.per_thread
            .iter()
            .map(|t| t.inter_blade_donations)
            .sum()
    }

    pub fn total_donations(&self) -> u64 {
        self.per_thread.iter().map(|t| t.donations_made).sum()
    }

    /// Elements generated per second of wall time.
    pub fn elements_per_second(&self) -> f64 {
        if self.wall_time > 0.0 {
            self.final_elements as f64 / self.wall_time
        } else {
            0.0
        }
    }

    /// Merged, time-sorted trace across threads, with `tid` stamped from the
    /// per-thread index. Simultaneous events tie-break by thread id so the
    /// merged order (and any export built from it) is deterministic.
    pub fn merged_trace(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self
            .per_thread
            .iter()
            .enumerate()
            .flat_map(|(tid, t)| {
                t.trace.iter().map(move |e| TraceEvent {
                    tid: tid as u32,
                    ..*e
                })
            })
            .collect();
        all.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.tid.cmp(&b.tid)));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_accumulates() {
        let mut s = ThreadStats::default();
        s.add_overhead(OverheadKind::Contention, 0.5, None);
        s.add_overhead(OverheadKind::Rollback, 0.25, Some(1.0));
        s.add_overhead(OverheadKind::LoadBalance, 0.125, None);
        assert_eq!(s.total_overhead(), 0.875);
        assert_eq!(s.trace.len(), 1);
        assert_eq!(s.trace[0].kind, OverheadKind::Rollback);
    }

    #[test]
    fn aggregation() {
        let a = ThreadStats {
            rollbacks: 3,
            contention_overhead: 1.0,
            ..Default::default()
        };
        let b = ThreadStats {
            rollbacks: 5,
            rollback_overhead: 2.0,
            ..Default::default()
        };
        let stats = RefineStats {
            per_thread: vec![a, b],
            wall_time: 2.0,
            final_elements: 100,
            ..Default::default()
        };
        assert_eq!(stats.total_rollbacks(), 8);
        assert_eq!(stats.total_overhead(), 3.0);
        assert_eq!(stats.elements_per_second(), 50.0);
    }

    #[test]
    fn trace_merges_sorted() {
        let mut a = ThreadStats::default();
        a.add_overhead(OverheadKind::Contention, 0.1, Some(2.0));
        let mut b = ThreadStats::default();
        b.add_overhead(OverheadKind::Rollback, 0.1, Some(1.0));
        let stats = RefineStats {
            per_thread: vec![a, b],
            ..Default::default()
        };
        let t = stats.merged_trace();
        assert_eq!(t.len(), 2);
        assert!(t[0].at <= t[1].at);
        assert_eq!((t[0].tid, t[1].tid), (1, 0));
    }

    #[test]
    fn trace_ties_break_by_thread_id() {
        let mk = |kinds: &[OverheadKind]| {
            let mut s = ThreadStats::default();
            for &k in kinds {
                s.add_overhead(k, 0.1, Some(1.0)); // identical timestamps
            }
            s
        };
        let stats = RefineStats {
            per_thread: vec![
                mk(&[OverheadKind::Rollback, OverheadKind::Contention]),
                mk(&[OverheadKind::LoadBalance]),
            ],
            ..Default::default()
        };
        let t = stats.merged_trace();
        let tids: Vec<u32> = t.iter().map(|e| e.tid).collect();
        assert_eq!(tids, vec![0, 0, 1]);
        // stable within a thread: insertion order preserved
        assert_eq!(t[0].kind, OverheadKind::Rollback);
        assert_eq!(t[1].kind, OverheadKind::Contention);
    }
}
