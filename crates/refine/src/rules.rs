//! The refinement rules R1–R6 (paper §3).
//!
//! A tetrahedron is *poor* when some rule applies to it; classification
//! computes the corresponding remedy:
//!
//! * **R1** — circumball intersects ∂O and the closest isosurface point `z`
//!   is ≥ δ from every existing isosurface vertex ⇒ insert `z`.
//! * **R2** — circumball intersects ∂O and circumradius > 2δ ⇒ insert the
//!   circumcenter.
//! * **R3** — a facet's Voronoi edge crosses ∂O and the facet has a small
//!   planar angle (< 30°) or a non-isosurface vertex ⇒ insert the
//!   surface-center.
//! * **R4** — circumcenter inside O and radius-edge ratio > 2 ⇒ insert the
//!   circumcenter.
//! * **R5** — circumcenter inside O and circumradius > sf(c) ⇒ insert the
//!   circumcenter.
//! * **R6** — on insertion of an isosurface vertex `z`, already-inserted
//!   circumcenters within 2δ of `z` are deleted (termination guarantee);
//!   realized by the engine as removal actions after R1 commits.

use crate::grid::PointGrid;
use pi2m_delaunay::{CellId, SharedMesh, VertexKind};
use pi2m_geometry::{circumcenter, min_triangle_angle, Point3, TET_EDGES, TET_FACES};
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use std::sync::Arc;

/// Rule parameters.
pub struct RuleConfig {
    /// Base sampling density δ (world units); lower δ ⇒ denser surface
    /// sampling and better fidelity (Theorem 1).
    pub delta: f64,
    /// Radius-edge ratio bound (paper: 2).
    pub radius_edge_bound: f64,
    /// Boundary planar angle bound in degrees (paper: 30°).
    pub planar_angle_min_deg: f64,
    /// Optional volume size function (rule R5).
    pub size_fn: Option<Arc<dyn SizeFn>>,
    /// Optional *surface* density function: a spatially varying δ, letting
    /// high-curvature or high-interest parts of the isosurface be sampled
    /// more densely (paper §2: "our method is able to satisfy both surface
    /// and volume custom element densities"). Values are clamped to
    /// `[0, delta]`; `None` means uniform δ.
    pub surface_size_fn: Option<Arc<dyn SizeFn>>,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            delta: 1.0,
            radius_edge_bound: 2.0,
            planar_angle_min_deg: 30.0,
            size_fn: None,
            surface_size_fn: None,
        }
    }
}

impl RuleConfig {
    /// The effective sampling density at `p`.
    #[inline]
    pub fn delta_at(&self, p: Point3) -> f64 {
        match &self.surface_size_fn {
            Some(sf) => sf.size_at(p).clamp(f64::MIN_POSITIVE, self.delta),
            None => self.delta,
        }
    }
}

/// Remedy for a poor element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InsertAction {
    pub point: [f64; 3],
    pub kind: VertexKind,
    /// Which rule fired (1..=5), for diagnostics.
    pub rule: u8,
}

/// Shared, immutable rule evaluator.
pub struct Rules {
    pub cfg: RuleConfig,
    pub oracle: Arc<IsosurfaceOracle>,
    pub grid: Arc<PointGrid>,
}

impl Rules {
    pub fn new(cfg: RuleConfig, oracle: Arc<IsosurfaceOracle>, grid: Arc<PointGrid>) -> Self {
        Rules { cfg, oracle, grid }
    }

    /// Classify a cell; `None` means the cell satisfies all rules. The cell
    /// must be alive with the given generation when called (the result may
    /// race with concurrent kills — the kernel re-validates on execution).
    pub fn classify(&self, mesh: &SharedMesh, c: CellId, gen: u32) -> Option<InsertAction> {
        let cell = mesh.cell(c);
        if !cell.is_alive() || cell.gen() != gen {
            return None;
        }
        let verts = cell.verts();
        let p: [Point3; 4] = [
            mesh.position(verts[0]),
            mesh.position(verts[1]),
            mesh.position(verts[2]),
            mesh.position(verts[3]),
        ];
        let cc = circumcenter(p[0], p[1], p[2], p[3])?;
        let r = cc.distance(p[0]);

        if self.oracle.ball_intersects_surface(cc, r) {
            // R1: sample the isosurface near this circumball, at the local
            // target density.
            if let Some(z) = self.oracle.closest_surface_point(cc) {
                let za = z.to_array();
                let dz = self.cfg.delta_at(z);
                if !self.grid.any_surface_sample_near(mesh, za, dz) {
                    return Some(InsertAction {
                        point: za,
                        kind: VertexKind::Isosurface,
                        rule: 1,
                    });
                }
            }
            // R2: surface-crossing ball too big.
            if r > 2.0 * self.cfg.delta_at(cc) {
                return Some(InsertAction {
                    point: cc.to_array(),
                    kind: VertexKind::Circumcenter,
                    rule: 2,
                });
            }
        }

        // R3: facet surface-centers.
        for (i, &f) in TET_FACES.iter().enumerate() {
            let n = cell.nei(i);
            if n.is_none() {
                continue;
            }
            let nsnap = match mesh.cell(n).snapshot() {
                Some(s) => s,
                None => continue,
            };
            let np: [Point3; 4] = [
                mesh.position(nsnap.verts[0]),
                mesh.position(nsnap.verts[1]),
                mesh.position(nsnap.verts[2]),
                mesh.position(nsnap.verts[3]),
            ];
            let ncc = match circumcenter(np[0], np[1], np[2], np[3]) {
                Some(x) => x,
                None => continue,
            };
            // Voronoi edge of the shared facet.
            if let Some(cs) = self.oracle.segment_surface_intersection(cc, ncc) {
                let fv = [verts[f[0]], verts[f[1]], verts[f[2]]];
                let angle = min_triangle_angle(p[f[0]], p[f[1]], p[f[2]]);
                // both isosurface vertices and surface-centers lie
                // precisely on the isosurface
                let all_iso = fv.iter().all(|&v| {
                    matches!(
                        mesh.vertex(v).kind(),
                        VertexKind::Isosurface | VertexKind::SurfaceCenter
                    )
                });
                if angle < self.cfg.planar_angle_min_deg || !all_iso {
                    return Some(InsertAction {
                        point: cs.to_array(),
                        kind: VertexKind::SurfaceCenter,
                        rule: 3,
                    });
                }
            }
        }

        if self.oracle.is_inside(cc) {
            // R4: radius-edge quality.
            let mut shortest = f64::INFINITY;
            for (a, b) in TET_EDGES {
                shortest = shortest.min(p[a].distance(p[b]));
            }
            if shortest > 0.0 && r / shortest > self.cfg.radius_edge_bound {
                return Some(InsertAction {
                    point: cc.to_array(),
                    kind: VertexKind::Circumcenter,
                    rule: 4,
                });
            }
            // R5: user sizing.
            if let Some(sf) = &self.cfg.size_fn {
                if r > sf.size_at(cc) {
                    return Some(InsertAction {
                        point: cc.to_array(),
                        kind: VertexKind::Circumcenter,
                        rule: 5,
                    });
                }
            }
        }

        None
    }

    /// R6 targets: circumcenter vertices within 2δ of a freshly inserted
    /// isosurface vertex at `z` (local δ when a surface density is set).
    pub fn r6_victims(&self, mesh: &SharedMesh, z: [f64; 3]) -> Vec<pi2m_delaunay::VertexId> {
        let dz = self.cfg.delta_at(Point3::from_array(z));
        self.grid
            .collect_near(mesh, z, 2.0 * dz, VertexKind::Circumcenter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_geometry::Aabb;
    use pi2m_image::phantoms;

    fn setup(delta: f64) -> (SharedMesh, Rules) {
        let img = phantoms::sphere(24, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let bb = oracle.image().foreground_bounds().unwrap();
        let mesh = SharedMesh::enclosing(&bb);
        let grid = Arc::new(PointGrid::new(delta));
        let rules = Rules::new(
            RuleConfig {
                delta,
                ..Default::default()
            },
            oracle,
            grid,
        );
        (mesh, rules)
    }

    #[test]
    fn initial_cells_are_poor() {
        let (mesh, rules) = setup(2.0);
        // the huge initial box cells must trigger a surface rule
        let mut poor = 0;
        for c in mesh.alive_cells() {
            let gen = mesh.cell(c).gen();
            if rules.classify(&mesh, c, gen).is_some() {
                poor += 1;
            }
        }
        assert!(poor > 0, "at least one initial cell must be refinable");
    }

    #[test]
    fn r1_respects_existing_samples() {
        let (mesh, rules) = setup(2.0);
        let c = mesh.alive_cells().next().unwrap();
        let gen = mesh.cell(c).gen();
        if let Some(act) = rules.classify(&mesh, c, gen) {
            if act.rule == 1 {
                // plant an isosurface vertex exactly at the proposed point:
                // re-classification must not propose R1 there again
                let mut ctx = mesh.make_ctx(0);
                let r = ctx.insert(act.point, VertexKind::Isosurface).unwrap();
                rules.grid.insert(r.vertex, act.point);
                for c2 in mesh.alive_cells() {
                    let g2 = mesh.cell(c2).gen();
                    if let Some(a2) = rules.classify(&mesh, c2, g2) {
                        if a2.rule == 1 {
                            let d = Point3::from_array(a2.point)
                                .distance(Point3::from_array(act.point));
                            assert!(
                                d >= rules.cfg.delta * 0.999,
                                "R1 proposed a sample {d} away from an existing one"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn stale_generation_not_classified() {
        let (mesh, rules) = setup(2.0);
        let c = mesh.alive_cells().next().unwrap();
        let gen = mesh.cell(c).gen();
        assert!(rules.classify(&mesh, c, gen + 1).is_none());
    }

    #[test]
    fn sizing_rule_fires_inside() {
        let img = phantoms::sphere(24, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let bb = oracle.image().foreground_bounds().unwrap();
        let mesh = SharedMesh::enclosing(&bb);
        let grid = Arc::new(PointGrid::new(1.0));
        let rules = Rules::new(
            RuleConfig {
                delta: 1.0,
                size_fn: Some(Arc::new(pi2m_oracle::UniformSize(0.5))),
                ..Default::default()
            },
            oracle.clone(),
            grid,
        );
        // insert a few interior points to make an interior tet whose cc is
        // inside; then any such tet bigger than 0.5 must be classified poor
        let mut ctx = mesh.make_ctx(0);
        let center = oracle.image().bounds().center();
        for d in [
            [0.0, 0.0, 0.0],
            [2.0, 0.0, 0.0],
            [0.0, 2.0, 0.0],
            [0.0, 0.0, 2.0],
        ] {
            let p = [center.x + d[0], center.y + d[1], center.z + d[2]];
            ctx.insert(p, VertexKind::Circumcenter).unwrap();
        }
        let mut fired = false;
        for c in mesh.alive_cells() {
            let gen = mesh.cell(c).gen();
            if let Some(a) = rules.classify(&mesh, c, gen) {
                if a.rule == 5 || a.rule == 4 || a.rule <= 3 {
                    fired = true;
                }
            }
        }
        assert!(fired);
        let _ = Aabb::empty();
    }

    #[test]
    fn surface_size_fn_controls_local_density() {
        use pi2m_oracle::RadialSize;
        let img = phantoms::sphere(24, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let center = oracle.image().bounds().center();
        // fine sampling near +x pole of the sphere, coarse elsewhere
        let focus = center + Point3::new(0.7 * 12.0, 0.0, 0.0);
        let cfg = RuleConfig {
            delta: 4.0,
            surface_size_fn: Some(Arc::new(RadialSize {
                focus,
                near: 1.0,
                growth: 1.0,
                far: 4.0,
            })),
            ..Default::default()
        };
        assert!((cfg.delta_at(focus) - 1.0).abs() < 1e-12);
        assert_eq!(cfg.delta_at(focus + Point3::new(-100.0, 0.0, 0.0)), 4.0);
        // clamped to the base delta
        let cfg2 = RuleConfig {
            delta: 2.0,
            surface_size_fn: Some(Arc::new(pi2m_oracle::UniformSize(10.0))),
            ..Default::default()
        };
        assert_eq!(cfg2.delta_at(focus), 2.0);
    }

    #[test]
    fn r6_victims_respect_radius() {
        let (mesh, rules) = setup(1.0);
        let mut ctx = mesh.make_ctx(0);
        let center = rules.oracle.image().bounds().center().to_array();
        let near = [center[0] + 1.0, center[1], center[2]];
        let far = [center[0] + 10.0, center[1], center[2]];
        let v1 = ctx.insert(near, VertexKind::Circumcenter).unwrap().vertex;
        let v2 = ctx.insert(far, VertexKind::Circumcenter).unwrap().vertex;
        rules.grid.insert(v1, near);
        rules.grid.insert(v2, far);
        let victims = rules.r6_victims(&mesh, center);
        assert!(victims.contains(&v1));
        assert!(!victims.contains(&v2));
    }
}
