//! The PI2M parallel mesher (paper Algorithm 1).
//!
//! Each worker thread loops: pop an element from its Poor Element List,
//! classify it against rules R1–R6, and execute the remedy through the
//! speculative Delaunay kernel. Rollbacks report to the contention manager;
//! empty PELs park in the load balancer's begging list; newly created cells
//! are enqueued locally or donated to beggars; termination is detected when
//! every thread is parked and no work remains. A watchdog aborts runs whose
//! contention manager livelocks (Aggressive/Random, paper Table 1).

use crate::balancer::{make_balancer, BalancerKind, BegOutcome, LoadBalancer, DONATE_THRESHOLD};
use crate::cm::{make_cm, CmKind, ContentionManager};
use crate::error::RefineError;
use crate::grid::PointGrid;
use crate::output::FinalMesh;
use crate::rules::{RuleConfig, Rules};
use crate::stats::{OverheadKind, RefineStats, ThreadStats};
use crate::sync::EngineSync;
use crate::topology::MachineTopology;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pi2m_delaunay::{CellId, OpCtx, OpError, SharedMesh, VertexKind};
use pi2m_faults::{sites, FaultPlan};
use pi2m_geometry::{circumcenter, Aabb};
use pi2m_image::LabeledImage;
use pi2m_obs::flight::{
    cause as flight_cause, EventKind, FlightEvent, FlightRecorder, FlightSampler,
    DEFAULT_RING_CAPACITY,
};
use pi2m_obs::metrics::{self, MetricsSnapshot, ThreadRecorder};
use pi2m_obs::{Phases, TraceSpan};
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Configuration of a PI2M run.
#[derive(Clone)]
pub struct MesherConfig {
    /// Isosurface sampling density δ (world units, typically a small
    /// multiple of the voxel size).
    pub delta: f64,
    pub threads: usize,
    /// Radius-edge quality bound (paper: 2).
    pub radius_edge_bound: f64,
    /// Boundary planar angle bound in degrees (paper: 30).
    pub planar_angle_min_deg: f64,
    /// Optional volume size function (rule R5).
    pub size_fn: Option<Arc<dyn SizeFn>>,
    /// Optional surface density function (spatially varying δ, clamped to
    /// `delta`).
    pub surface_size_fn: Option<Arc<dyn SizeFn>>,
    /// Contention manager policy.
    pub cm: CmKind,
    /// Work-stealing policy.
    pub balancer: BalancerKind,
    /// Machine shape for HWS (logical on the real engine).
    pub topology: MachineTopology,
    /// Enable rule R6 removals.
    pub enable_removals: bool,
    /// Watchdog: seconds without any completed operation before a livelock
    /// is declared.
    pub livelock_timeout: f64,
    /// Record per-thread overhead traces (Figure 6).
    pub trace: bool,
    /// Safety cap on total operations (0 = unlimited).
    pub max_operations: u64,
    /// Deterministic fault-injection plan (testing/DST only; `None` in
    /// production). Threaded into every kernel context and consulted at the
    /// engine's own named sites.
    pub faults: Option<Arc<FaultPlan>>,
    /// Always-on concurrency flight recorder (per-worker SPSC event rings).
    /// Can also be killed at runtime with `PI2M_FLIGHT=0`.
    pub flight: bool,
    /// Per-worker ring capacity in events (rounded up to a power of two).
    pub flight_capacity: usize,
    /// Live telemetry tap: emit one JSONL heartbeat line to stderr every
    /// this-many seconds while refinement runs. `PI2M_LIVE` also enables it.
    pub live: Option<f64>,
}

impl Default for MesherConfig {
    fn default() -> Self {
        MesherConfig {
            delta: 2.0,
            threads: 1,
            radius_edge_bound: 2.0,
            planar_angle_min_deg: 30.0,
            size_fn: None,
            surface_size_fn: None,
            cm: CmKind::Local,
            balancer: BalancerKind::Hws,
            topology: MachineTopology::flat(64),
            enable_removals: true,
            livelock_timeout: 30.0,
            trace: false,
            max_operations: 0,
            faults: None,
            flight: true,
            flight_capacity: DEFAULT_RING_CAPACITY,
            live: None,
        }
    }
}

/// Result of a PI2M run.
pub struct MeshOutput {
    /// The reported mesh (tets whose circumcenter lies inside O).
    pub mesh: FinalMesh,
    pub stats: RefineStats,
    /// The full triangulation of the virtual box (for inspection/tests).
    pub shared: SharedMesh,
    pub oracle: Arc<IsosurfaceOracle>,
    /// Merged observability metrics (counters, histograms, worker events),
    /// drained from the per-thread recorders at join.
    pub metrics: MetricsSnapshot,
    /// Pipeline phase spans (`edt`, `volume_refinement`, `extract`), in
    /// seconds since the run origin.
    pub phases: Vec<TraceSpan>,
    /// Flight-recorder events (time-sorted, shifted into the run-origin time
    /// base). Empty when the recorder was disabled.
    pub flight: Vec<FlightEvent>,
    /// Events lost to ring overwrites (rings keep the newest window).
    pub flight_dropped: u64,
}

/// The parallel Image-to-Mesh converter.
pub struct Mesher {
    img: LabeledImage,
    cfg: MesherConfig,
}

type Pel = Mutex<VecDeque<(u32, u32)>>;

struct Env<'a> {
    mesh: &'a SharedMesh,
    rules: &'a Rules,
    pels: &'a [Pel],
    counters: &'a [CachePadded<AtomicI64>],
    sync: &'a EngineSync,
    cm: &'a dyn ContentionManager,
    bal: &'a dyn LoadBalancer,
    cfg: &'a MesherConfig,
    ops_total: &'a AtomicU64,
    /// Per-worker death flags: set exactly once when a worker's panic escapes
    /// the per-operation isolation boundary. Heir selection for a dead
    /// worker's PEL skips flagged threads.
    dead_flags: &'a [CachePadded<AtomicBool>],
    /// Spatial region codes for rollback attribution.
    regions: &'a RegionMap,
}

/// Maps world points onto a coarse 16×16×16 grid over the image domain; the
/// 12-bit cell code rides in flight-event payloads so the contention analyzer
/// can attribute rollbacks to spatial hot spots.
pub(crate) struct RegionMap {
    min: [f64; 3],
    inv: [f64; 3],
}

impl RegionMap {
    const CELLS: usize = 16;

    pub(crate) fn new(domain: &Aabb) -> Self {
        let min = [domain.min.x, domain.min.y, domain.min.z];
        let ext = [
            domain.max.x - domain.min.x,
            domain.max.y - domain.min.y,
            domain.max.z - domain.min.z,
        ];
        let inv = ext.map(|e| if e > 0.0 { Self::CELLS as f64 / e } else { 0.0 });
        RegionMap { min, inv }
    }

    pub(crate) fn code(&self, p: [f64; 3]) -> u16 {
        let cell = |axis: usize| -> u16 {
            let c = (p[axis] - self.min[axis]) * self.inv[axis];
            (c as i64).clamp(0, Self::CELLS as i64 - 1) as u16
        };
        cell(0) | cell(1) << 4 | cell(2) << 8
    }
}

/// `PI2M_LIVE=1` (or `=true`) enables the live tap at 1 Hz; any positive
/// number is an interval in seconds; anything else disables it.
fn live_interval_from_env() -> Option<f64> {
    let v = std::env::var("PI2M_LIVE").ok()?;
    let v = v.trim();
    if v.eq_ignore_ascii_case("true") {
        return Some(1.0);
    }
    v.parse::<f64>().ok().filter(|s| *s > 0.0)
}

/// Duration → saturated u32 nanoseconds for a flight-event payload word.
#[inline]
fn dur_ns_u32(d: Duration) -> u32 {
    d.as_nanos().min(u32::MAX as u128) as u32
}

impl Mesher {
    pub fn new(img: LabeledImage, cfg: MesherConfig) -> Self {
        assert!(cfg.threads >= 1, "need at least one thread");
        assert!(cfg.delta > 0.0, "delta must be positive");
        Mesher { img, cfg }
    }

    /// Run the full pipeline: parallel EDT, virtual-box triangulation,
    /// parallel refinement, final-mesh extraction.
    ///
    /// Individual worker panics are isolated: the poisoned operation is
    /// rolled back and quarantined, and if the panic escapes the operation
    /// boundary the worker is retired while the run completes on the
    /// survivors. Panics only if a *majority* of workers die (use
    /// [`Mesher::try_run`] for a typed error instead).
    pub fn run(self) -> MeshOutput {
        let out = self.run_inner();
        let (died, threads) = (out.stats.workers_died, out.stats.threads());
        assert!(
            died * 2 <= threads,
            "worker quorum lost: {died} of {threads} workers died"
        );
        out
    }

    /// Like [`Mesher::run`], but global failures — a majority of workers
    /// dead, or the livelock watchdog firing — surface as a typed
    /// [`RefineError`] instead of a panic / a flag on the stats.
    pub fn try_run(self) -> Result<MeshOutput, RefineError> {
        let out = self.run_inner();
        let (died, threads) = (out.stats.workers_died, out.stats.threads());
        if died * 2 > threads {
            return Err(RefineError::WorkerQuorumLost { died, threads });
        }
        if out.stats.livelock {
            return Err(RefineError::Livelock);
        }
        Ok(out)
    }

    fn run_inner(self) -> MeshOutput {
        let cfg = self.cfg;
        let mut phases = Phases::new();
        // Pipeline-thread recorder: EDT/oracle preprocessing metrics.
        let mut pipeline_rec = ThreadRecorder::new();
        let t_edt = Instant::now();
        let oracle = {
            let _g = phases.span("edt");
            Arc::new(IsosurfaceOracle::new_with_obs(
                self.img,
                cfg.threads,
                &mut pipeline_rec,
            ))
        };
        let edt_time = t_edt.elapsed().as_secs_f64();

        let domain = oracle
            .image()
            .foreground_bounds()
            .unwrap_or_else(|| oracle.image().bounds());
        let mesh = SharedMesh::enclosing(&domain);
        let grid = Arc::new(PointGrid::new(cfg.delta));
        let rules = Rules::new(
            RuleConfig {
                delta: cfg.delta,
                radius_edge_bound: cfg.radius_edge_bound,
                planar_angle_min_deg: cfg.planar_angle_min_deg,
                size_fn: cfg.size_fn.clone(),
                surface_size_fn: cfg.surface_size_fn.clone(),
            },
            Arc::clone(&oracle),
            grid,
        );

        let mut sync = EngineSync::new(cfg.threads);
        // Offset between the refinement clock (EngineSync, which timestamps
        // overhead traces and worker events) and the run origin, so all
        // exported timelines share one time base.
        let sync_origin = phases.now();
        let flight_enabled = cfg.flight && std::env::var("PI2M_FLIGHT").map_or(true, |v| v != "0");
        // The recorder's event clock starts at its creation; remember where
        // that is on the run clock so drained events can be re-based.
        let flight_origin = phases.now();
        let flight_rec =
            flight_enabled.then(|| Arc::new(FlightRecorder::new(cfg.threads, cfg.flight_capacity)));
        if let Some(rec) = &flight_rec {
            sync.set_flight(Arc::clone(rec));
        }
        let regions = RegionMap::new(&domain);
        let live_interval = cfg.live.or_else(live_interval_from_env);
        let cm = make_cm(cfg.cm, cfg.threads);
        let bal = make_balancer(cfg.balancer, cfg.topology, cfg.threads);
        let pels: Vec<Pel> = (0..cfg.threads)
            .map(|_| Mutex::new(VecDeque::new()))
            .collect();
        let counters: Vec<CachePadded<AtomicI64>> = (0..cfg.threads)
            .map(|_| CachePadded::new(AtomicI64::new(0)))
            .collect();
        let ops_total = AtomicU64::new(0);
        let dead_flags: Vec<CachePadded<AtomicBool>> = (0..cfg.threads)
            .map(|_| CachePadded::new(AtomicBool::new(false)))
            .collect();

        // Seed: the initial box cells go to the main thread's PEL (paper
        // §4.4: "only the main thread might have a non-empty PEL").
        {
            let mut pel0 = pels[0].lock();
            for c in mesh.alive_cells() {
                pel0.push_back((c.0, mesh.cell(c).gen()));
            }
            let n = pel0.len() as i64;
            counters[0].fetch_add(n, Ordering::AcqRel);
            sync.poor_added(n);
        }

        let env = Env {
            mesh: &mesh,
            rules: &rules,
            pels: &pels,
            counters: &counters,
            sync: &sync,
            cm: cm.as_ref(),
            bal: bal.as_ref(),
            cfg: &cfg,
            ops_total: &ops_total,
            dead_flags: &dead_flags,
            regions: &regions,
        };

        let t_refine = Instant::now();
        let mut per_thread: Vec<ThreadStats> = Vec::new();
        let mut recorders: Vec<ThreadRecorder> = Vec::new();
        let mut final_list: Vec<(CellId, u32)> = Vec::new();
        let mut workers_died = 0usize;
        {
            let _g = phases.span("volume_refinement");
            std::thread::scope(|s| {
                // Live telemetry tap: a sampler thread drains the rings
                // incrementally and prints one JSONL heartbeat per interval.
                if let (Some(interval), Some(rec)) = (live_interval, flight_rec.as_ref()) {
                    let sync = &sync;
                    s.spawn(move || live_tap(rec, sync, interval));
                }
                let mut handles = Vec::new();
                for tid in 0..cfg.threads {
                    let env = &env;
                    // Stats, recorder, and final-list live OUTSIDE the panic
                    // boundary so a dying worker's partial results survive.
                    handles.push(s.spawn(move || {
                        let mut stats = ThreadStats::default();
                        let mut rec = ThreadRecorder::new();
                        let mut fl: Vec<(CellId, u32)> = Vec::new();
                        let died = catch_unwind(AssertUnwindSafe(|| {
                            worker(env, tid, &mut stats, &mut rec, &mut fl)
                        }))
                        .is_err();
                        if died {
                            worker_death_cleanup(env, tid, &mut rec);
                        }
                        (stats, fl, rec, died)
                    }));
                }
                for h in handles {
                    // The inner catch_unwind makes this join infallible for
                    // any panic raised inside the worker loop itself.
                    let (st, fl, rec, died) = h.join().expect("worker harness panicked");
                    per_thread.push(st);
                    recorders.push(rec);
                    final_list.extend(fl);
                    workers_died += died as usize;
                }
            });
        }
        let wall_time = t_refine.elapsed().as_secs_f64();

        // Drain the flight rings into one time-sorted log, re-based onto the
        // run origin so it lines up with phase spans and worker events.
        let (flight_events, flight_dropped) = match &flight_rec {
            Some(rec) => {
                let mut log = rec.drain();
                let shift = (flight_origin * 1e9) as u64;
                for e in &mut log.events {
                    e.t_ns += shift;
                }
                (log.events, log.dropped + log.torn)
            }
            None => (Vec::new(), 0),
        };

        let final_mesh = phases.time("extract", || {
            FinalMesh::extract(&mesh, &oracle, Some(&final_list))
        });

        // Merge per-thread recorders (join-time drain: workers are done, so
        // plain reads — the whole run records without a single atomic RMW)
        // and bridge the ThreadStats counters into the same snapshot.
        let mut snap = MetricsSnapshot::new();
        pipeline_rec.merge_into(cfg.threads as u32, &mut snap);
        for (tid, rec) in recorders.iter_mut().enumerate() {
            for e in &mut rec.events {
                e.at_s += sync_origin; // shift into the run-origin time base
            }
            rec.merge_into(tid as u32, &mut snap);
        }
        for st in &per_thread {
            bridge_thread_stats(st, &mut snap);
        }
        if let Some(f) = &cfg.faults {
            snap.add_counter(metrics::FAULTS_INJECTED, f.injected());
        }

        let stats = RefineStats {
            final_elements: final_mesh.num_tets(),
            vertices_allocated: mesh.num_vertices(),
            per_thread,
            wall_time,
            edt_time,
            livelock: sync.livelocked(),
            workers_died,
            trace_origin: sync_origin,
        };
        MeshOutput {
            mesh: final_mesh,
            stats,
            shared: mesh,
            oracle,
            metrics: snap,
            phases: phases.spans().to_vec(),
            flight: flight_events,
            flight_dropped,
        }
    }
}

/// The live-telemetry sampler loop: once per interval (and once at the end),
/// drain the rings incrementally and print a JSONL heartbeat to stderr. The
/// sampler never touches worker state — it only reads the SPSC rings (which
/// tolerate a single concurrent reader via per-event checksums) and the
/// engine-wide atomic gauges.
fn live_tap(rec: &Arc<FlightRecorder>, sync: &EngineSync, interval: f64) {
    let mut sampler = FlightSampler::new(rec);
    let t0 = Instant::now();
    let mut prev_ops = 0u64;
    let mut prev_t = 0.0f64;
    loop {
        let done = sleep_until_done(sync, interval);
        sampler.sample(rec);
        let ta = sampler.tallies();
        let t = t0.elapsed().as_secs_f64();
        let ops = ta.ops();
        let rate = (ops - prev_ops) as f64 / (t - prev_t).max(1e-9);
        eprintln!(
            "{{\"t_s\":{t:.3},\"ops\":{ops},\"commits\":{},\"rollbacks\":{},\
             \"rollback_ratio\":{:.4},\"ops_per_sec\":{rate:.1},\"cm_blocked\":{},\
             \"begging\":{},\"dead\":{},\"queue_depth\":{},\"ring_dropped\":{}}}",
            ta.commits,
            ta.rollbacks,
            ta.rollback_ratio(),
            sync.cm_blocked(),
            sync.begging(),
            sync.dead(),
            sync.total_poor().max(0),
            ta.dropped,
        );
        prev_ops = ops;
        prev_t = t;
        if done {
            break;
        }
    }
}

/// Sleep for `interval` seconds in short slices so the tap exits promptly at
/// termination. Returns whether the run is done.
fn sleep_until_done(sync: &EngineSync, interval: f64) -> bool {
    let deadline = Instant::now() + Duration::from_secs_f64(interval.max(0.01));
    while Instant::now() < deadline {
        if sync.is_done() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    sync.is_done()
}

/// Mirror the engine's own `ThreadStats` counters into the shared metric
/// catalog, so exporters see one unified namespace.
fn bridge_thread_stats(st: &ThreadStats, snap: &mut MetricsSnapshot) {
    use metrics as m;
    for (id, n) in [
        (m::OPS_TOTAL, st.operations),
        (m::OPS_INSERTIONS, st.insertions),
        (m::OPS_REMOVALS, st.removals),
        (m::OPS_ROLLBACKS, st.rollbacks),
        (m::OPS_SKIPPED, st.skipped),
        (m::REMOVALS_BLOCKED, st.removals_blocked),
        (m::CELLS_CREATED, st.cells_created),
        (m::CELLS_KILLED, st.cells_killed),
        (m::DONATIONS_MADE, st.donations_made),
        (m::DONATIONS_RECEIVED, st.donations_received),
        (m::INTER_BLADE_DONATIONS, st.inter_blade_donations),
        (m::WORKER_PANICS, st.panics),
        (m::QUARANTINED_OPS, st.quarantined),
        (m::RECOVERY_ROLLBACKS, st.recovery_rollbacks),
        (m::KERNEL_ERRORS, st.kernel_errors),
    ] {
        snap.add_counter(id, n);
    }
}

fn worker(
    env: &Env<'_>,
    tid: usize,
    stats: &mut ThreadStats,
    // Exclusively owned by this worker — every inc/observe below is a plain
    // load/store, merged into the run snapshot after join.
    rec: &mut ThreadRecorder,
    final_list: &mut Vec<(CellId, u32)>,
) {
    let mut ctx = env
        .mesh
        .make_ctx_with_faults(tid as u32, env.cfg.faults.clone());
    // Hand the kernel this worker's ring so lock-path events (conflicts,
    // commit-time lock batches) land on the same per-thread timeline.
    if let Some(rec) = env.sync.flight() {
        ctx.set_flight(rec.handle(tid));
    }
    let t_spawn = env.sync.now();

    loop {
        if env.sync.is_done() {
            break;
        }
        // Livelock watchdog (paper §5.5: Aggressive/Random can livelock).
        if env.sync.since_progress() > env.cfg.livelock_timeout
            && (env.sync.total_poor() > 0 || env.sync.cm_blocked() > 0)
        {
            env.sync.declare_livelock();
            env.cm.release_all();
            env.bal.release_all();
            break;
        }
        // Worker-scope injection: a `panic` here escapes the per-operation
        // isolation below and kills this worker (the death-cleanup path).
        if let Some(f) = &env.cfg.faults {
            let _ = f.fire(sites::ENGINE_WORKER, tid as u32);
        }

        let item = env.pels[tid].lock().pop_front();
        let Some((cid, gen)) = item else {
            env.cm.before_beg(tid, env.sync);
            if let Some(f) = &env.cfg.faults {
                let _ = f.fire(sites::BALANCER_BEG, tid as u32);
            }
            let (outcome, waited) = env.bal.beg(tid, env.sync, env.cm);
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::LoadBalance, waited, at);
            rec.observe(metrics::LB_WAIT_SECONDS, waited);
            match outcome {
                BegOutcome::Finished => break,
                BegOutcome::GotWork => {
                    stats.donations_received += 1;
                    env.sync.flight_emit(
                        tid,
                        EventKind::Steal,
                        0,
                        0,
                        0,
                        (waited * 1e9).min(u32::MAX as f64) as u32,
                    );
                    continue;
                }
            }
        };
        env.counters[tid].fetch_sub(1, Ordering::AcqRel);
        env.sync.poor_taken(1);

        // ---- per-operation panic isolation ----
        // Classification + remedy run under `catch_unwind`: a panic rolls
        // back whatever locks the operation still holds and quarantines the
        // work item (it is never requeued), and the worker keeps going.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            process_item(env, tid, &mut ctx, stats, rec, final_list, cid, gen)
        }));
        if caught.is_err() {
            stats.panics += 1;
            stats.quarantined += 1;
            if ctx.locks_held() > 0 {
                ctx.abort();
                stats.recovery_rollbacks += 1;
            }
            // Quarantining the poison item is progress: the watchdog must
            // not blame the recovery for the missing completions.
            env.sync.note_progress();
        }

        // Drain the kernel's walk-effort counters for this operation (plain
        // u64 reads from our own ctx — the kernel stays obs-free).
        let ws = ctx.take_walk_stats();
        if ws.locates > 0 {
            rec.inc(metrics::WALK_LOCATES, ws.locates);
            rec.inc(metrics::WALK_STEPS, ws.steps);
            rec.observe(
                metrics::WALK_STEPS_PER_LOCATE,
                ws.steps as f64 / ws.locates as f64,
            );
        }
        let ps = ctx.take_pred_stats();
        if ps.orient_total() > 0 {
            rec.inc(metrics::PRED_ORIENT_SEMI_STATIC, ps.orient_semi_static);
            rec.inc(metrics::PRED_ORIENT_FILTERED, ps.orient_filtered);
            rec.inc(metrics::PRED_ORIENT_EXACT, ps.orient_exact);
        }
        if ps.insphere_total() > 0 {
            rec.inc(metrics::PRED_INSPHERE_SEMI_STATIC, ps.insphere_semi_static);
            rec.inc(metrics::PRED_INSPHERE_FILTERED, ps.insphere_filtered);
            rec.inc(metrics::PRED_INSPHERE_EXACT, ps.insphere_exact);
        }
        let ss = ctx.take_scratch_stats();
        if ss.reuses + ss.allocs > 0 {
            rec.inc(metrics::SCRATCH_REUSES, ss.reuses);
            rec.inc(metrics::SCRATCH_ALLOCS, ss.allocs);
        }

        if env.cfg.max_operations > 0 {
            let done = env.ops_total.fetch_add(1, Ordering::Relaxed) + 1;
            if done >= env.cfg.max_operations {
                env.sync.set_done();
                env.cm.release_all();
                env.bal.release_all();
                break;
            }
        }
    }

    // A finished worker must leave nobody parked on its contention list.
    env.cm.before_beg(tid, env.sync);
    // Every worker contributes at least this lifetime event to the trace.
    rec.event("worker", "worker", t_spawn, env.sync.now() - t_spawn);
}

/// Classify one PEL item and execute its remedy. Runs inside the worker's
/// per-operation `catch_unwind` boundary.
#[allow(clippy::too_many_arguments)]
fn process_item(
    env: &Env<'_>,
    tid: usize,
    ctx: &mut OpCtx<'_>,
    stats: &mut ThreadStats,
    rec: &mut ThreadRecorder,
    final_list: &mut Vec<(CellId, u32)>,
    cid: u32,
    gen: u32,
) {
    // Operation-scope injection: deny re-queues the item through the normal
    // rollback path (a synthetic self-conflict), fail quarantines it.
    if let Some(f) = &env.cfg.faults {
        match f.fire(sites::ENGINE_OP, tid as u32) {
            Some(pi2m_faults::Injected::Deny) => {
                stats.rollbacks += 1;
                env.sync.flight_emit(
                    tid,
                    EventKind::Rollback,
                    flight_cause::INJECTED,
                    cid,
                    pi2m_obs::flight::pack_owner_region(tid as u16, 0),
                    0,
                );
                env.pels[tid].lock().push_back((cid, gen));
                env.counters[tid].fetch_add(1, Ordering::AcqRel);
                env.sync.poor_added(1);
                let waited = env.cm.on_rollback(tid, tid, env.sync);
                let at = env.cfg.trace.then(|| env.sync.now());
                stats.add_overhead(OverheadKind::Contention, waited, at);
                rec.observe(metrics::LOCK_WAIT_SECONDS, waited);
                return;
            }
            Some(pi2m_faults::Injected::Fail) => {
                stats.quarantined += 1;
                return;
            }
            None => {}
        }
    }

    let c = CellId(cid);
    rec.inc(metrics::CLASSIFY_CALLS, 1);
    let Some(action) = env.rules.classify(env.mesh, c, gen) else {
        return; // satisfied (or stale) — drop
    };

    let region = env.regions.code(action.point);
    let t0 = Instant::now();
    env.sync.flight_emit_at(
        tid,
        t0,
        EventKind::OpBegin,
        flight_cause::OP_INSERT,
        cid,
        0,
        0,
    );
    match ctx.insert(action.point, action.kind) {
        Ok(res) => {
            let t_end = Instant::now();
            let op_dur = t_end - t0;
            stats.operations += 1;
            stats.insertions += 1;
            stats.cells_created += res.created.len() as u64;
            stats.cells_killed += res.killed.len() as u64;
            rec.observe(metrics::CAVITY_CELLS, res.killed.len() as f64);
            env.sync.flight_emit_at(
                tid,
                t_end,
                EventKind::OpCommit,
                flight_cause::OP_INSERT,
                res.vertex.0,
                region as u32,
                dur_ns_u32(op_dur),
            );
            env.sync.note_progress();
            env.cm.on_success(tid);
            env.rules.grid.insert(res.vertex, action.point);
            handle_created(env, tid, stats, final_list, &res.created);

            // R6: an isosurface vertex evicts nearby circumcenters.
            if action.kind == VertexKind::Isosurface && env.cfg.enable_removals {
                for victim in env.rules.r6_victims(env.mesh, action.point) {
                    let t1 = Instant::now();
                    env.sync.flight_emit_at(
                        tid,
                        t1,
                        EventKind::OpBegin,
                        flight_cause::OP_REMOVE,
                        victim.0,
                        0,
                        0,
                    );
                    match ctx.remove(victim) {
                        Ok(rres) => {
                            let t_end = Instant::now();
                            let op_dur = t_end - t1;
                            stats.operations += 1;
                            stats.removals += 1;
                            stats.cells_created += rres.created.len() as u64;
                            stats.cells_killed += rres.killed.len() as u64;
                            env.sync.flight_emit_at(
                                tid,
                                t_end,
                                EventKind::OpCommit,
                                flight_cause::OP_REMOVE,
                                victim.0,
                                region as u32,
                                dur_ns_u32(op_dur),
                            );
                            env.sync.note_progress();
                            env.cm.on_success(tid);
                            handle_created(env, tid, stats, final_list, &rres.created);
                            ctx.recycle_remove(rres);
                        }
                        Err(OpError::Conflict { owner, vertex, .. }) => {
                            stats.rollbacks += 1;
                            let t_end = Instant::now();
                            let rolled = (t_end - t1).as_secs_f64();
                            env.sync.flight_emit_at(
                                tid,
                                t_end,
                                EventKind::Rollback,
                                flight_cause::REMOVE_CONFLICT,
                                vertex.0,
                                pi2m_obs::flight::pack_owner_region(owner as u16, region),
                                dur_ns_u32(t_end - t1),
                            );
                            let at = env.cfg.trace.then(|| env.sync.now());
                            stats.add_overhead(OverheadKind::Rollback, rolled, at);
                            rec.observe(metrics::ROLLBACK_SECONDS, rolled);
                            let waited = env.cm.on_rollback(tid, owner as usize, env.sync);
                            let at = env.cfg.trace.then(|| env.sync.now());
                            stats.add_overhead(OverheadKind::Contention, waited, at);
                            rec.observe(metrics::LOCK_WAIT_SECONDS, waited);
                            // best-effort: drop this victim
                        }
                        Err(OpError::Kernel(_)) => {
                            stats.kernel_errors += 1;
                            stats.removals_blocked += 1;
                        }
                        Err(_) => stats.removals_blocked += 1,
                    }
                }
            }
            ctx.recycle_insert(res);
        }
        Err(OpError::Conflict { owner, vertex, .. }) => {
            stats.rollbacks += 1;
            let t_end = Instant::now();
            let rolled = (t_end - t0).as_secs_f64();
            env.sync.flight_emit_at(
                tid,
                t_end,
                EventKind::Rollback,
                flight_cause::INSERT_CONFLICT,
                vertex.0,
                pi2m_obs::flight::pack_owner_region(owner as u16, region),
                dur_ns_u32(t_end - t0),
            );
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::Rollback, rolled, at);
            rec.observe(metrics::ROLLBACK_SECONDS, rolled);
            // the element is still poor: requeue it, then consult the CM
            env.pels[tid].lock().push_back((cid, gen));
            env.counters[tid].fetch_add(1, Ordering::AcqRel);
            env.sync.poor_added(1);
            if let Some(f) = &env.cfg.faults {
                let _ = f.fire(sites::CM_ROLLBACK, tid as u32);
            }
            let waited = env.cm.on_rollback(tid, owner as usize, env.sync);
            let at = env.cfg.trace.then(|| env.sync.now());
            stats.add_overhead(OverheadKind::Contention, waited, at);
            rec.observe(metrics::LOCK_WAIT_SECONDS, waited);
        }
        Err(OpError::Kernel(_)) => {
            // a broken kernel invariant: the operation was abandoned without
            // structural change; quarantine the element
            stats.kernel_errors += 1;
            stats.quarantined += 1;
        }
        Err(
            OpError::Duplicate(_)
            | OpError::OutsideDomain
            | OpError::Degenerate
            | OpError::RemovalBlocked,
        ) => {
            // the rule's remedy is not realizable; drop the element
            stats.skipped += 1;
        }
    }
}

/// Retire a worker whose panic escaped the per-operation isolation: mark it
/// dead for termination detection, bequeath its queued work to a surviving
/// heir, and wake anyone parked on its contention list.
fn worker_death_cleanup(env: &Env<'_>, tid: usize, rec: &mut ThreadRecorder) {
    env.dead_flags[tid].store(true, Ordering::Release);
    env.sync.worker_died();
    rec.inc(metrics::WORKER_DEATHS, 1);
    // This still runs on the dying thread itself, so the SPSC discipline
    // holds — the ring (and everything recorded before the panic) survives
    // because the recorder is owned by the engine, not the worker closure.
    env.sync
        .flight_emit(tid, EventKind::WorkerDeath, 0, 0, 0, 0);

    // Bequeath the dead worker's PEL to the nearest surviving thread so no
    // queued element is silently lost.
    let drained: Vec<(u32, u32)> = {
        let mut pel = env.pels[tid].lock();
        pel.drain(..).collect()
    };
    if !drained.is_empty() {
        let n = drained.len() as i64;
        env.counters[tid].fetch_sub(n, Ordering::AcqRel);
        let heir = (1..env.cfg.threads)
            .map(|k| (tid + k) % env.cfg.threads)
            .find(|&h| !env.dead_flags[h].load(Ordering::Acquire));
        match heir {
            Some(h) => {
                {
                    let mut pel = env.pels[h].lock();
                    for it in drained {
                        pel.push_back(it);
                    }
                }
                env.counters[h].fetch_add(n, Ordering::AcqRel);
                env.bal.wake(h);
                env.sync
                    .flight_emit(tid, EventKind::HeirBequest, 0, h as u32, n as u32, 0);
            }
            None => {
                // no survivors: the work is lost, but so is the run — keep
                // the poor count consistent so nothing spins on it
                env.sync.poor_taken(n);
            }
        }
    }
    // Nobody may stay parked on a dead thread's contention list, and the
    // termination condition (begging + dead >= threads) may have just
    // become true — wake the beggars so one of them settles it.
    env.cm.before_beg(tid, env.sync);
    env.sync.note_progress();
}

/// Enqueue newly created cells for (lazy) classification, donating to a
/// beggar when this thread has enough work of its own (paper §4.4), and
/// record final-mesh candidates (paper §4.3's per-thread linked lists).
fn handle_created(
    env: &Env<'_>,
    tid: usize,
    stats: &mut ThreadStats,
    final_list: &mut Vec<(CellId, u32)>,
    created: &[CellId],
) {
    if created.is_empty() {
        return;
    }
    // final-mesh candidates
    for &nc in created {
        let cell = env.mesh.cell(nc);
        let gen = cell.gen();
        let p = env.mesh.cell_points(nc);
        if let Some(cc) = circumcenter(p[0], p[1], p[2], p[3]) {
            if env.rules.oracle.is_inside(cc) {
                final_list.push((nc, gen));
            }
        }
    }
    // enqueue / donate
    let own = env.counters[tid].load(Ordering::Acquire);
    let target = if own >= DONATE_THRESHOLD {
        env.bal.pick_beggar(tid)
    } else {
        None
    };
    let n = created.len() as i64;
    match target {
        Some(b) => {
            {
                let mut pel = env.pels[b].lock();
                for &nc in created {
                    pel.push_back((nc.0, env.mesh.cell(nc).gen()));
                }
            }
            env.counters[b].fetch_add(n, Ordering::AcqRel);
            env.sync.poor_added(n);
            env.bal.wake(b);
            env.sync
                .flight_emit(tid, EventKind::Donate, 0, b as u32, n as u32, 0);
            stats.donations_made += 1;
            if env.cfg.topology.blade_of(tid) != env.cfg.topology.blade_of(b) {
                stats.inter_blade_donations += 1;
            }
        }
        None => {
            {
                let mut pel = env.pels[tid].lock();
                for &nc in created {
                    pel.push_back((nc.0, env.mesh.cell(nc).gen()));
                }
            }
            env.counters[tid].fetch_add(n, Ordering::AcqRel);
            env.sync.poor_added(n);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_image::phantoms;

    fn small_run(threads: usize, cm: CmKind, bal: BalancerKind) -> MeshOutput {
        let img = phantoms::sphere(16, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads,
            cm,
            balancer: bal,
            topology: MachineTopology::flat(threads.max(1)),
            ..Default::default()
        };
        Mesher::new(img, cfg).run()
    }

    #[test]
    fn single_threaded_sphere() {
        let out = small_run(1, CmKind::Local, BalancerKind::Rws);
        assert!(!out.stats.livelock);
        assert!(out.mesh.num_tets() > 50, "got {}", out.mesh.num_tets());
        assert_eq!(out.stats.total_rollbacks(), 0);
        out.shared.check_adjacency().unwrap();
        out.shared.check_delaunay_sos().unwrap();
        // fidelity smoke check: mesh volume within 25% of the sphere volume
        let sphere_vol = out.oracle.image().foreground_volume();
        let v = out.mesh.volume();
        assert!(
            (v - sphere_vol).abs() / sphere_vol < 0.25,
            "mesh volume {v} vs sphere {sphere_vol}"
        );
    }

    #[test]
    fn multi_threaded_matches_structurally() {
        let a = small_run(1, CmKind::Local, BalancerKind::Rws);
        let b = small_run(4, CmKind::Local, BalancerKind::Hws);
        assert!(!b.stats.livelock);
        // same rules, different schedules: sizes in the same ballpark
        let (na, nb) = (a.mesh.num_tets() as f64, b.mesh.num_tets() as f64);
        assert!(
            (na - nb).abs() / na < 0.5,
            "1-thread {na} vs 4-thread {nb} elements"
        );
        b.shared.check_adjacency().unwrap();
        b.shared.check_delaunay_sos().unwrap();
    }

    #[test]
    fn all_cms_terminate_on_small_input() {
        for cm in [
            CmKind::Aggressive,
            CmKind::Random,
            CmKind::Global,
            CmKind::Local,
        ] {
            let out = small_run(3, cm, BalancerKind::Rws);
            assert!(out.mesh.num_tets() > 0, "cm {cm:?} produced an empty mesh");
        }
    }

    #[test]
    fn removals_happen() {
        let img = phantoms::sphere(20, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        // R6 should fire at least occasionally on a curved surface
        assert!(out.stats.total_removals() > 0, "no removals occurred");
        // and removals stay a small fraction of operations (paper: ~2%)
        let frac = out.stats.total_removals() as f64 / out.stats.total_operations().max(1) as f64;
        assert!(frac < 0.35, "removal fraction {frac}");
    }

    #[test]
    fn metrics_snapshot_mirrors_stats() {
        let out = small_run(2, CmKind::Local, BalancerKind::Rws);
        let m = &out.metrics;
        // bridged ThreadStats counters agree with the legacy accessors
        assert_eq!(m.counter(metrics::OPS_TOTAL), out.stats.total_operations());
        assert_eq!(
            m.counter(metrics::OPS_ROLLBACKS),
            out.stats.total_rollbacks()
        );
        assert_eq!(m.counter(metrics::OPS_REMOVALS), out.stats.total_removals());
        // EDT preprocessing recorded its three separable passes
        assert_eq!(m.counter(metrics::EDT_PASSES), 3);
        assert!(m.counter(metrics::EDT_VOXELS) > 0);
        assert!(m.counter(metrics::ORACLE_SURFACE_VOXELS) > 0);
        // one cavity sample per successful insertion, and walks were counted
        let insertions: u64 = out.stats.per_thread.iter().map(|t| t.insertions).sum();
        assert_eq!(m.hist(metrics::CAVITY_CELLS).count, insertions);
        assert!(m.counter(metrics::WALK_LOCATES) > 0);
        assert!(m.counter(metrics::WALK_STEPS) >= m.counter(metrics::WALK_LOCATES));
        // every worker leaves a lifetime event on its own track
        let mut tids: Vec<u32> = m
            .events
            .iter()
            .filter(|(_, e)| e.name == "worker")
            .map(|(t, _)| *t)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids, vec![0, 1]);
        // pipeline phases are spanned
        for phase in ["edt", "volume_refinement", "extract"] {
            assert!(
                out.phases.iter().any(|s| s.name == phase && s.dur_s >= 0.0),
                "missing phase {phase}"
            );
        }
    }

    #[test]
    fn flight_records_op_lifecycle() {
        let out = small_run(2, CmKind::Local, BalancerKind::Rws);
        assert!(!out.flight.is_empty(), "recorder on by default");
        // drained log is time-sorted
        assert!(out.flight.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        let commits = out
            .flight
            .iter()
            .filter(|e| e.kind == EventKind::OpCommit)
            .count() as u64;
        let total = out.stats.total_operations();
        assert!(commits > 0, "no commits recorded");
        assert!(commits <= total, "more commits than operations");
        // without ring wrap, one commit per completed operation
        if out.flight_dropped == 0 {
            assert_eq!(commits, total, "commits {commits} vs operations {total}");
        }
    }

    #[test]
    fn flight_off_records_nothing() {
        let img = phantoms::sphere(16, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            flight: false,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        assert!(out.flight.is_empty());
        assert_eq!(out.flight_dropped, 0);
    }

    #[test]
    fn region_map_codes_are_stable() {
        let domain = Aabb {
            min: [0.0, 0.0, 0.0].into(),
            max: [16.0, 16.0, 16.0].into(),
        };
        let rm = RegionMap::new(&domain);
        assert_eq!(rm.code([0.0, 0.0, 0.0]), 0);
        assert_eq!(rm.code([15.99, 0.0, 0.0]), 15);
        assert_eq!(rm.code([0.0, 15.99, 15.99]), (15 << 4) | (15 << 8));
        // out-of-domain points clamp instead of wrapping
        assert_eq!(rm.code([-5.0, 99.0, 8.0]), (15 << 4) | (8 << 8));
    }

    #[test]
    fn op_cap_stops_early() {
        let img = phantoms::sphere(24, 1.0);
        let cfg = MesherConfig {
            delta: 0.8,
            threads: 2,
            max_operations: 100,
            ..Default::default()
        };
        let out = Mesher::new(img, cfg).run();
        assert!(out.stats.total_operations() <= 120);
    }
}
