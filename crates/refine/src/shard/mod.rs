//! Sharded meshing: chunked domain decomposition with seam stitching.
//!
//! A sharded run splits the labeled image into a grid of overlapping
//! axis-aligned chunks ([`split_plan`]), meshes every chunk independently,
//! and then *stitches*: the union of the chunk meshes' owned vertices is
//! inserted into one fresh virtual-box triangulation over the full image, and
//! the ordinary R1–R6 refinement loop runs over it to quiescence. Chunk
//! interiors already satisfy the rules, so the repair work concentrates on
//! the seam bands; the stitched mesh passes the exact same audit as a
//! monolithic one because it *is* an ordinary insertion-built mesh.
//!
//! Parallelism contract: chunks are meshed single-threaded (making each
//! chunk's mesh schedule-independent, hence the whole chunk phase
//! deterministic for a given plan), fanned out over `lanes` concurrent lane
//! sessions; the stitch pass uses the caller's full `threads` budget. The
//! caller's [`CancelToken`](pi2m_obs::CancelToken) covers every chunk run and
//! the stitch.

mod split;
mod stitch;

pub use split::{parse_shard_grid, split_plan, ChunkSpec, ShardError};

use crate::engine::{MeshOutput, MesherConfig, MeshingSession, RunOptions};
use crate::error::RefineError;
use crate::output::FinalMesh;
use crate::topology::MachineTopology;
use parking_lot::Mutex;
use pi2m_image::LabeledImage;
use pi2m_obs::metrics::{self, MetricsSnapshot};
use pi2m_obs::Phases;
use std::time::Instant;

/// How to shard a run: the chunk grid, the halo width, and the fan-out.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Chunk grid (`[x, y, z]` counts), e.g. `[2, 2, 1]`.
    pub grid: [usize; 3],
    /// Halo overlap in voxels per seam side. `None` derives one from δ:
    /// `max(2, ceil(2δ / min_spacing))`, the reach of the R1/R2 proximity
    /// checks in voxels.
    pub halo: Option<usize>,
    /// Concurrent chunk lanes (each lane is its own single-threaded warm
    /// session). `None` uses `min(chunk count, cfg.threads)`.
    pub lanes: Option<usize>,
}

impl ShardSpec {
    /// A spec for `grid` with derived halo and fan-out.
    pub fn new(grid: [usize; 3]) -> ShardSpec {
        ShardSpec {
            grid,
            halo: None,
            lanes: None,
        }
    }
}

/// Per-chunk record of a sharded run.
#[derive(Clone, Copy, Debug)]
pub struct ChunkRun {
    /// Position in the shard grid.
    pub index: [usize; 3],
    /// Tetrahedra in the chunk's (pre-stitch) mesh.
    pub tets: u64,
    /// Vertices this chunk contributed to the stitch seed's candidate pool.
    pub vertices: u64,
    /// Wall time of the chunk's pipeline run, seconds.
    pub wall_s: f64,
}

/// Result of a sharded run: the stitched [`MeshOutput`] plus the shard-level
/// accounting the run report's `shard` section is built from.
pub struct ShardRun {
    /// The stitched mesh, with `phases` covering the whole sharded run
    /// (`shard_split`, one `shard_chunk` span per chunk, `shard_stitch`, and
    /// the stitch pipeline's own stage spans shifted onto the same clock) and
    /// `metrics` merged over every chunk run and the stitch.
    pub out: MeshOutput,
    /// The grid actually used.
    pub grid: [usize; 3],
    /// The halo actually used (voxels).
    pub halo: usize,
    /// The lane count actually used.
    pub lanes: usize,
    /// Per-chunk records, in plan (x-fastest) order.
    pub chunks: Vec<ChunkRun>,
    /// Vertices offered to the stitch seed after ownership filtering.
    pub seed_points: u64,
    /// Bit-exact duplicates dropped while gathering the seed.
    pub seed_duplicates: u64,
}

/// The δ-derived default halo: the R1/R2 proximity checks reach 2δ, so the
/// halo must cover at least that many voxels of context past the seam.
pub fn auto_halo(delta: f64, min_spacing: f64) -> usize {
    ((2.0 * delta / min_spacing).ceil() as usize).max(2)
}

struct ChunkOut {
    mesh: FinalMesh,
    metrics: MetricsSnapshot,
    start_s: f64,
    wall_s: f64,
}

/// Mesh `img` sharded per `spec` over `session`'s warm pool (used for the
/// stitch pass), fanning chunk meshing out across fresh single-threaded lane
/// sessions. See the module docs for the decomposition and determinism
/// contract; degenerate specs and engine failures surface as one typed
/// [`ShardError`].
pub fn mesh_sharded(
    session: &mut MeshingSession,
    img: LabeledImage,
    cfg: MesherConfig,
    opts: &RunOptions,
    spec: &ShardSpec,
) -> Result<ShardRun, ShardError> {
    let mut phases = Phases::new();
    let origin = Instant::now();
    let halo = spec
        .halo
        .unwrap_or_else(|| auto_halo(cfg.delta, img.min_spacing()));
    let plan = {
        let _g = phases.span("shard_split");
        split_plan(img.dims(), spec.grid, halo)?
    };
    let lanes = spec
        .lanes
        .unwrap_or_else(|| cfg.threads.min(plan.len()))
        .clamp(1, plan.len());
    let cancel = opts.cancel.clone().unwrap_or_default();

    // Chunk meshing: intra-chunk single-threaded (schedule-independent),
    // cross-chunk parallel over the lanes. Flight/live/trace are stitch-run
    // concerns; chunk runs keep only their metric snapshots.
    let chunk_cfg = MesherConfig {
        threads: 1,
        topology: MachineTopology::flat(1),
        flight: false,
        live: None,
        trace: false,
        shard_stitch: false,
        ..cfg.clone()
    };
    let results: Vec<Mutex<Option<Result<ChunkOut, RefineError>>>> =
        plan.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for lane in 0..lanes {
            let (plan, results, img, chunk_cfg, cancel) =
                (&plan, &results, &img, &chunk_cfg, &cancel);
            s.spawn(move || {
                let mut lane_session = MeshingSession::new(1);
                let chunk_opts = RunOptions {
                    cancel: Some(cancel.clone()),
                    on_stage: None,
                };
                let mut i = lane;
                while i < plan.len() {
                    if cancel.is_cancelled() {
                        *results[i].lock() = Some(Err(RefineError::Cancelled));
                        i += lanes;
                        continue;
                    }
                    let c = &plan[i];
                    let chunk_img = img.crop(c.lo, c.hi);
                    let start_s = origin.elapsed().as_secs_f64();
                    let t0 = Instant::now();
                    let r = lane_session
                        .mesh_with(chunk_img, chunk_cfg.clone(), &chunk_opts)
                        .map(|out| ChunkOut {
                            mesh: out.mesh,
                            metrics: out.metrics,
                            start_s,
                            wall_s: t0.elapsed().as_secs_f64(),
                        });
                    *results[i].lock() = Some(r);
                    i += lanes;
                }
            });
        }
    });
    // First failure in plan order wins (deterministic error reporting).
    let mut chunk_outs = Vec::with_capacity(plan.len());
    for cell in results {
        match cell.into_inner() {
            Some(Ok(out)) => chunk_outs.push(out),
            Some(Err(e)) => return Err(ShardError::Run(e)),
            None => return Err(ShardError::Run(RefineError::Cancelled)),
        }
    }
    for out in &chunk_outs {
        phases.record("shard_chunk", out.start_s, out.wall_s);
    }

    // Gather the seed (owned, deduplicated chunk vertices) and stitch: one
    // full-image pipeline run seeded with it, on the caller's session, with
    // the caller's thread budget and progress callback.
    let chunk_meshes: Vec<FinalMesh> = chunk_outs.iter().map(|c| c.mesh.clone()).collect();
    let (seed, seed_duplicates) = stitch::gather_seed_points(&img, &plan, &chunk_meshes);
    let stitch_cfg = MesherConfig {
        shard_stitch: true,
        ..cfg.clone()
    };
    let stitch_start = phases.now();
    let mut out = session.mesh_seeded(img, stitch_cfg, opts, &seed)?;
    phases.record("shard_stitch", stitch_start, phases.now() - stitch_start);

    // One timeline: shift the stitch pipeline's stage spans onto the sharded
    // run's clock and prepend the shard phases.
    let mut spans = phases.spans().to_vec();
    for s in &out.phases {
        let mut s = *s;
        s.start_s += stitch_start;
        spans.push(s);
    }
    out.phases = spans;

    // One metric namespace: the stitch snapshot plus every chunk's, plus the
    // shard-level counters.
    let mut chunks = Vec::with_capacity(plan.len());
    for (spec, c) in plan.iter().zip(&chunk_outs) {
        out.metrics.merge(&c.metrics);
        out.metrics.add_counter(metrics::SHARD_CHUNKS_MESHED, 1);
        out.metrics.observe(metrics::SHARD_CHUNK_SECONDS, c.wall_s);
        chunks.push(ChunkRun {
            index: spec.index,
            tets: c.mesh.num_tets() as u64,
            vertices: c.mesh.points.len() as u64,
            wall_s: c.wall_s,
        });
    }
    let stitch_insertions: u64 = out.stats.per_thread.iter().map(|t| t.insertions).sum();
    out.metrics
        .add_counter(metrics::SHARD_STITCH_INSERTIONS, stitch_insertions);

    Ok(ShardRun {
        out,
        grid: spec.grid,
        halo,
        lanes,
        chunks,
        seed_points: seed.len() as u64,
        seed_duplicates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_halo_covers_the_rule_reach() {
        assert_eq!(auto_halo(2.0, 1.0), 4);
        assert_eq!(auto_halo(0.5, 1.0), 2); // floor of 2 voxels
        assert_eq!(auto_halo(1.0, 0.5), 4);
    }

    #[test]
    fn sharded_sphere_stitches_and_audits() {
        let img = pi2m_image::phantoms::sphere(16, 1.0);
        let cfg = MesherConfig {
            delta: 2.0,
            threads: 2,
            topology: MachineTopology::flat(2),
            ..Default::default()
        };
        let mut session = MeshingSession::new(2);
        let run = mesh_sharded(
            &mut session,
            img,
            cfg,
            &RunOptions::default(),
            &ShardSpec::new([2, 1, 1]),
        )
        .unwrap();
        assert_eq!(run.chunks.len(), 2);
        assert!(run.seed_points > 0);
        assert!(run.out.mesh.num_tets() > 50);
        let report = crate::integrity::audit_mesh(&run.out.shared, 42);
        assert!(report.clean(), "{}", report.summary());
        // the combined timeline carries the shard phases and the stitch's
        let names: Vec<&str> = run.out.phases.iter().map(|s| s.name).collect();
        for want in ["shard_split", "shard_chunk", "shard_stitch", "edt"] {
            assert!(names.contains(&want), "missing phase {want} in {names:?}");
        }
        assert_eq!(run.out.metrics.counter(metrics::SHARD_CHUNKS_MESHED), 2);
        assert!(run.out.metrics.counter(metrics::SHARD_SEED_VERTICES) > 0);
    }
}
