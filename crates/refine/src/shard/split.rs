//! Splitting a labeled image into overlapping axis-aligned chunks.
//!
//! The split is a *plan* over voxel indices, not data: each [`ChunkSpec`]
//! names the half-open voxel box the chunk **owns** (its core) and the
//! halo-padded half-open box it **sees** (core grown by `halo` voxels per
//! side, clamped to the image). Cores tile the image exactly — every voxel
//! belongs to exactly one core — while halos overlap so each chunk meshes
//! its core with full isosurface context across the seam.

/// One chunk of a shard plan, in parent-image voxel coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkSpec {
    /// Position in the shard grid (`[ix, iy, iz]`).
    pub index: [usize; 3],
    /// Inclusive lower corner of the owned core box.
    pub core_lo: [usize; 3],
    /// Exclusive upper corner of the owned core box.
    pub core_hi: [usize; 3],
    /// Inclusive lower corner of the halo-padded view (clamped to the image).
    pub lo: [usize; 3],
    /// Exclusive upper corner of the halo-padded view (clamped to the image).
    pub hi: [usize; 3],
}

impl ChunkSpec {
    /// Voxel dimensions of the owned core.
    pub fn core_dims(&self) -> [usize; 3] {
        [
            self.core_hi[0] - self.core_lo[0],
            self.core_hi[1] - self.core_lo[1],
            self.core_hi[2] - self.core_lo[2],
        ]
    }

    /// Voxel dimensions of the halo-padded view.
    pub fn dims(&self) -> [usize; 3] {
        [
            self.hi[0] - self.lo[0],
            self.hi[1] - self.lo[1],
            self.hi[2] - self.lo[2],
        ]
    }
}

/// Typed failures of shard planning (and of parsing a `AxBxC` grid spec).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// A grid axis was zero.
    EmptyAxis { axis: usize },
    /// More shards than voxels along an axis: some chunk would own nothing.
    GridExceedsDim {
        axis: usize,
        shards: usize,
        dim: usize,
    },
    /// The halo is at least as wide as the narrowest chunk core on a seamed
    /// axis, so a chunk's halo would swallow its neighbor's whole core.
    HaloTooWide {
        axis: usize,
        halo: usize,
        chunk: usize,
    },
    /// A `AxBxC` grid spec that did not parse.
    BadGridSpec(String),
    /// A chunk or stitch run failed with a typed engine error.
    Run(crate::error::RefineError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::EmptyAxis { axis } => {
                write!(f, "shard grid axis {axis} is zero")
            }
            ShardError::GridExceedsDim { axis, shards, dim } => write!(
                f,
                "shard grid axis {axis} asks for {shards} chunks over {dim} voxels"
            ),
            ShardError::HaloTooWide { axis, halo, chunk } => write!(
                f,
                "halo {halo} is not narrower than the {chunk}-voxel chunk core on axis {axis}"
            ),
            ShardError::BadGridSpec(s) => {
                write!(f, "bad shard grid '{s}' (expected AxBxC, e.g. 2x2x1)")
            }
            ShardError::Run(e) => write!(f, "sharded run failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<crate::error::RefineError> for ShardError {
    fn from(e: crate::error::RefineError) -> ShardError {
        ShardError::Run(e)
    }
}

/// Parse a `AxBxC` shard-grid spec (e.g. `2x2x1`).
pub fn parse_shard_grid(s: &str) -> Result<[usize; 3], ShardError> {
    let bad = || ShardError::BadGridSpec(s.to_string());
    let mut it = s.trim().split('x');
    let mut grid = [0usize; 3];
    for g in &mut grid {
        *g = it
            .next()
            .and_then(|t| t.parse().ok())
            .filter(|&v| v >= 1)
            .ok_or_else(bad)?;
    }
    if it.next().is_some() {
        return Err(bad());
    }
    Ok(grid)
}

/// Chunk boundary `i` of `shards` over `dim` voxels (balanced split).
#[inline]
fn cut(dim: usize, shards: usize, i: usize) -> usize {
    i * dim / shards
}

/// Plan a `grid` decomposition of a `dims` image with a `halo`-voxel overlap.
///
/// Chunks are returned in x-fastest index order. Degenerate requests are
/// rejected with a typed [`ShardError`]: a zero grid axis, more shards than
/// voxels on an axis, or (on any axis with more than one shard) a halo as
/// wide as the narrowest chunk core.
pub fn split_plan(
    dims: [usize; 3],
    grid: [usize; 3],
    halo: usize,
) -> Result<Vec<ChunkSpec>, ShardError> {
    for axis in 0..3 {
        if grid[axis] == 0 {
            return Err(ShardError::EmptyAxis { axis });
        }
        if grid[axis] > dims[axis] {
            return Err(ShardError::GridExceedsDim {
                axis,
                shards: grid[axis],
                dim: dims[axis],
            });
        }
        // The narrowest core on a balanced split is floor(dim / shards).
        let narrowest = dims[axis] / grid[axis];
        if grid[axis] > 1 && halo >= narrowest {
            return Err(ShardError::HaloTooWide {
                axis,
                halo,
                chunk: narrowest,
            });
        }
    }
    let mut plan = Vec::with_capacity(grid[0] * grid[1] * grid[2]);
    for iz in 0..grid[2] {
        for iy in 0..grid[1] {
            for ix in 0..grid[0] {
                let index = [ix, iy, iz];
                let mut core_lo = [0; 3];
                let mut core_hi = [0; 3];
                let mut lo = [0; 3];
                let mut hi = [0; 3];
                for a in 0..3 {
                    core_lo[a] = cut(dims[a], grid[a], index[a]);
                    core_hi[a] = cut(dims[a], grid[a], index[a] + 1);
                    lo[a] = core_lo[a].saturating_sub(halo);
                    hi[a] = (core_hi[a] + halo).min(dims[a]);
                }
                plan.push(ChunkSpec {
                    index,
                    core_lo,
                    core_hi,
                    lo,
                    hi,
                });
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_split_tiles_exactly() {
        let plan = split_plan([10, 7, 3], [3, 2, 1], 1).unwrap();
        assert_eq!(plan.len(), 6);
        // cores tile: every voxel owned exactly once
        let mut owned = vec![0u32; 10 * 7 * 3];
        for c in &plan {
            for k in c.core_lo[2]..c.core_hi[2] {
                for j in c.core_lo[1]..c.core_hi[1] {
                    for i in c.core_lo[0]..c.core_hi[0] {
                        owned[(k * 7 + j) * 10 + i] += 1;
                    }
                }
            }
        }
        assert!(owned.iter().all(|&n| n == 1));
    }

    #[test]
    fn halo_pads_and_clamps() {
        let plan = split_plan([8, 8, 8], [2, 1, 1], 2).unwrap();
        let a = &plan[0];
        let b = &plan[1];
        assert_eq!((a.core_lo[0], a.core_hi[0]), (0, 4));
        assert_eq!((b.core_lo[0], b.core_hi[0]), (4, 8));
        // interior side grows by the halo, image sides clamp
        assert_eq!((a.lo[0], a.hi[0]), (0, 6));
        assert_eq!((b.lo[0], b.hi[0]), (2, 8));
        // unsharded axes see no halo growth beyond the image
        assert_eq!((a.lo[1], a.hi[1]), (0, 8));
    }

    #[test]
    fn degenerate_requests_are_typed_errors() {
        assert_eq!(
            split_plan([4, 4, 4], [0, 1, 1], 0),
            Err(ShardError::EmptyAxis { axis: 0 })
        );
        assert_eq!(
            split_plan([4, 4, 4], [1, 5, 1], 0),
            Err(ShardError::GridExceedsDim {
                axis: 1,
                shards: 5,
                dim: 4
            })
        );
        assert_eq!(
            split_plan([8, 8, 8], [1, 1, 2], 4),
            Err(ShardError::HaloTooWide {
                axis: 2,
                halo: 4,
                chunk: 4
            })
        );
        // a 1-shard axis has no seam: a huge halo is fine there
        assert!(split_plan([8, 8, 8], [1, 1, 1], 100).is_ok());
    }

    #[test]
    fn grid_spec_parses_and_rejects() {
        assert_eq!(parse_shard_grid("2x2x1"), Ok([2, 2, 1]));
        assert_eq!(parse_shard_grid(" 1x1x1 "), Ok([1, 1, 1]));
        for bad in ["", "2x2", "2x2x2x2", "0x1x1", "ax1x1", "2X2X2", "-1x1x1"] {
            assert!(parse_shard_grid(bad).is_err(), "accepted '{bad}'");
        }
    }
}
