//! Seam stitching: turning per-chunk meshes back into one seed point set.
//!
//! Each chunk is meshed over its halo-padded view, so its mesh is trustworthy
//! only inside the core box it owns — the halo band exists to give the core
//! full isosurface context, and the band itself is re-meshed by the chunk on
//! the other side of the seam. The gather therefore keeps exactly the
//! vertices each chunk *owns*: non-box vertices inside the chunk's half-open
//! core world box. Ownership makes the union nearly duplicate-free by
//! construction; bit-exact duplicates that remain (isosurface samples landing
//! exactly on a seam plane from both sides) are dropped here, and the
//! kernel's typed `Duplicate` rejection backstops anything subtler at seed
//! insertion time.

use super::split::ChunkSpec;
use crate::output::FinalMesh;
use pi2m_delaunay::VertexKind;
use pi2m_image::LabeledImage;
use std::collections::HashSet;

/// The world-space core box of a chunk, as `[min, max)` per axis (inclusive
/// `max` on axes where the core ends at the image edge — there is no
/// neighboring owner past it).
fn core_box(img: &LabeledImage, c: &ChunkSpec) -> ([f64; 3], [f64; 3], [bool; 3]) {
    let o = img.origin();
    let s = img.spacing();
    let o = [o.x, o.y, o.z];
    let mut lo = [0.0; 3];
    let mut hi = [0.0; 3];
    let mut closed_hi = [false; 3];
    for a in 0..3 {
        lo[a] = o[a] + c.core_lo[a] as f64 * s[a];
        hi[a] = o[a] + c.core_hi[a] as f64 * s[a];
        closed_hi[a] = c.core_hi[a] == img.dims()[a];
    }
    (lo, hi, closed_hi)
}

/// Gather the stitch seed: every chunk's owned vertices, deduplicated
/// bit-exactly, in chunk order (deterministic given deterministic chunk
/// meshes). Returns the seed and the number of duplicate vertices dropped.
pub(crate) fn gather_seed_points(
    img: &LabeledImage,
    plan: &[ChunkSpec],
    chunks: &[FinalMesh],
) -> (Vec<([f64; 3], VertexKind)>, u64) {
    debug_assert_eq!(plan.len(), chunks.len());
    let mut seen: HashSet<[u64; 3]> = HashSet::new();
    let mut seed = Vec::new();
    let mut duplicates = 0u64;
    for (spec, mesh) in plan.iter().zip(chunks) {
        let (lo, hi, closed_hi) = core_box(img, spec);
        for (p, &kind) in mesh.points.iter().zip(&mesh.point_kinds) {
            if kind == VertexKind::BoxCorner {
                continue; // scaffolding of the chunk's own virtual box
            }
            let q = [p.x, p.y, p.z];
            let owned =
                (0..3).all(|a| q[a] >= lo[a] && (q[a] < hi[a] || (closed_hi[a] && q[a] <= hi[a])));
            if !owned {
                continue; // halo-band vertex: its owner is the neighbor chunk
            }
            if seen.insert([q[0].to_bits(), q[1].to_bits(), q[2].to_bits()]) {
                seed.push((q, kind));
            } else {
                duplicates += 1;
            }
        }
    }
    (seed, duplicates)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::split::split_plan;
    use pi2m_geometry::Point3;

    fn mesh_of(points: &[[f64; 3]], kind: VertexKind) -> FinalMesh {
        FinalMesh {
            points: points
                .iter()
                .map(|p| Point3::new(p[0], p[1], p[2]))
                .collect(),
            point_kinds: vec![kind; points.len()],
            tets: Vec::new(),
            labels: Vec::new(),
        }
    }

    #[test]
    fn gather_keeps_owned_drops_halo_and_dedups() {
        let img = LabeledImage::new([8, 4, 4], [1.0; 3]);
        let plan = split_plan([8, 4, 4], [2, 1, 1], 1).unwrap();
        // chunk 0 owns x ∈ [0,4); chunk 1 owns x ∈ [4,8]
        let a = mesh_of(
            &[[1.0, 1.0, 1.0], [4.5, 1.0, 1.0], [4.0, 2.0, 2.0]],
            VertexKind::Isosurface,
        );
        let b = mesh_of(
            &[[4.0, 2.0, 2.0], [7.0, 1.0, 1.0], [3.5, 1.0, 1.0]],
            VertexKind::Isosurface,
        );
        let (seed, dups) = gather_seed_points(&img, &plan, &[a, b]);
        // a: keeps [1,..]; [4.5,..] and [4.0,..] are past its core. b: keeps
        // [4.0,..] (its seam plane) and [7.0,..]; [3.5,..] is halo.
        let xs: Vec<f64> = seed.iter().map(|(p, _)| p[0]).collect();
        assert_eq!(xs, vec![1.0, 4.0, 7.0]);
        assert_eq!(dups, 0);

        // the same point owned once and duplicated bit-exactly dedups
        let a2 = mesh_of(&[[2.0, 1.0, 1.0], [2.0, 1.0, 1.0]], VertexKind::Isosurface);
        let b2 = mesh_of(&[], VertexKind::Isosurface);
        let (seed, dups) = gather_seed_points(&img, &plan, &[a2, b2]);
        assert_eq!(seed.len(), 1);
        assert_eq!(dups, 1);
    }

    #[test]
    fn gather_drops_box_corners_and_closes_image_edges() {
        let img = LabeledImage::new([4, 4, 4], [1.0; 3]);
        let plan = split_plan([4, 4, 4], [1, 1, 1], 0).unwrap();
        let m = FinalMesh {
            points: vec![Point3::new(4.0, 4.0, 4.0), Point3::new(-9.0, 0.0, 0.0)],
            point_kinds: vec![VertexKind::Isosurface, VertexKind::BoxCorner],
            tets: Vec::new(),
            labels: Vec::new(),
        };
        let (seed, _) = gather_seed_points(&img, &plan, &[m]);
        // the image-edge point is owned (closed upper face); the box corner
        // is never carried over
        assert_eq!(seed.len(), 1);
        assert_eq!(seed[0].0, [4.0, 4.0, 4.0]);
    }
}
