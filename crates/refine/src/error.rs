//! Typed top-level failures of a refinement run.
//!
//! The engine absorbs individual worker panics (isolation + quarantine) and
//! kernel-invariant errors (typed `OpError::Kernel`); a run only escalates to
//! a `RefineError` when the failure is global — a majority of workers dead,
//! or the livelock watchdog declaring no-progress.

use pi2m_delaunay::KernelError;

/// A refinement run failed as a whole.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RefineError {
    /// More than half the workers died to un-recovered panics; the surviving
    /// minority cannot be trusted to finish the schedule.
    WorkerQuorumLost { died: usize, threads: usize },
    /// The livelock watchdog fired: no operation completed for the configured
    /// timeout while poor elements or blocked threads remained.
    Livelock,
    /// A kernel invariant broke outside any recoverable operation scope.
    Kernel(KernelError),
    /// The run's [`CancelToken`](pi2m_obs::cancel::CancelToken) tripped (an
    /// explicit cancel or an expired deadline). Cooperative: workers stop at
    /// the next operation boundary, so no locks or partial operations leak,
    /// and the session pool stays reusable.
    Cancelled,
}

impl std::fmt::Display for RefineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefineError::WorkerQuorumLost { died, threads } => {
                write!(f, "worker quorum lost: {died} of {threads} workers died")
            }
            RefineError::Livelock => write!(f, "livelock watchdog fired: no progress"),
            RefineError::Kernel(e) => write!(f, "kernel invariant broken: {e}"),
            RefineError::Cancelled => write!(f, "run cancelled (token tripped or deadline passed)"),
        }
    }
}

impl std::error::Error for RefineError {}

impl From<KernelError> for RefineError {
    fn from(e: KernelError) -> Self {
        RefineError::Kernel(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = RefineError::WorkerQuorumLost {
            died: 3,
            threads: 4,
        };
        assert!(e.to_string().contains("3 of 4"));
        assert!(RefineError::Livelock.to_string().contains("watchdog"));
        assert!(RefineError::from(KernelError::NoAliveCells)
            .to_string()
            .contains("alive"));
    }
}
