//! Shared engine-wide synchronization state: termination detection inputs,
//! the livelock watchdog clock, and global progress accounting shared by the
//! contention managers and load balancers.

use pi2m_obs::flight::{EventKind, FlightRecorder};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counters shared by all workers, their contention manager, and their load
/// balancer.
pub struct EngineSync {
    pub threads: usize,
    /// Flight recorder, when enabled. Carried here so the contention managers
    /// and balancers can emit park/unpark events without changing their trait
    /// signatures.
    flight: Option<Arc<FlightRecorder>>,
    done: AtomicBool,
    livelock: AtomicBool,
    cancelled: AtomicBool,
    /// Threads parked in a begging list.
    begging: AtomicUsize,
    /// Threads parked by the contention manager.
    cm_blocked: AtomicUsize,
    /// Workers that died to an un-recovered panic (isolated, not respawned).
    dead: AtomicUsize,
    /// Outstanding (possibly stale) PEL entries across all threads.
    total_poor: AtomicI64,
    /// Milliseconds-since-start of the last completed operation (watchdog).
    last_progress_ms: AtomicU64,
    start: Instant,
}

impl EngineSync {
    pub fn new(threads: usize) -> Self {
        EngineSync {
            threads,
            flight: None,
            done: AtomicBool::new(false),
            livelock: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            begging: AtomicUsize::new(0),
            cm_blocked: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            total_poor: AtomicI64::new(0),
            last_progress_ms: AtomicU64::new(0),
            start: Instant::now(),
        }
    }

    #[inline]
    pub fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Attach the flight recorder (before workers start).
    pub fn set_flight(&mut self, rec: Arc<FlightRecorder>) {
        self.flight = Some(rec);
    }

    #[inline]
    pub fn flight(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Emit a flight event on `tid`'s ring; no-op when the recorder is off.
    #[inline]
    pub fn flight_emit(&self, tid: usize, kind: EventKind, cause: u8, a: u32, b: u32, c: u32) {
        if let Some(rec) = &self.flight {
            rec.emit(tid, kind, cause, a, b, c);
        }
    }

    /// [`flight_emit`](Self::flight_emit) stamped with an `Instant` the hot
    /// path already took — avoids a second clock read per event.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn flight_emit_at(
        &self,
        tid: usize,
        at: Instant,
        kind: EventKind,
        cause: u8,
        a: u32,
        b: u32,
        c: u32,
    ) {
        if let Some(rec) = &self.flight {
            rec.emit_at(tid, rec.ns_at(at), kind, cause, a, b, c);
        }
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    pub fn set_done(&self) {
        self.done.store(true, Ordering::Release);
    }

    #[inline]
    pub fn livelocked(&self) -> bool {
        self.livelock.load(Ordering::Acquire)
    }

    /// Watchdog trip: declare a livelock and stop the run.
    pub fn declare_livelock(&self) {
        self.livelock.store(true, Ordering::Release);
        self.set_done();
    }

    #[inline]
    pub fn was_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Cooperative-cancellation trip: the first worker that observes a
    /// tripped [`CancelToken`](pi2m_obs::cancel::CancelToken) records the
    /// fact and stops the run (distinguishing a cancelled run from one that
    /// merely raced its deadline at the finish line).
    pub fn declare_cancelled(&self) {
        self.cancelled.store(true, Ordering::Release);
        self.set_done();
    }

    /// Threads neither begging, CM-blocked, nor dead.
    #[inline]
    pub fn active(&self) -> usize {
        self.threads
            .saturating_sub(self.begging.load(Ordering::Acquire))
            .saturating_sub(self.cm_blocked.load(Ordering::Acquire))
            .saturating_sub(self.dead.load(Ordering::Acquire))
    }

    #[inline]
    pub fn begging(&self) -> usize {
        self.begging.load(Ordering::Acquire)
    }

    #[inline]
    pub fn cm_blocked(&self) -> usize {
        self.cm_blocked.load(Ordering::Acquire)
    }

    pub fn enter_begging(&self) {
        self.begging.fetch_add(1, Ordering::AcqRel);
    }

    pub fn exit_begging(&self) {
        self.begging.fetch_sub(1, Ordering::AcqRel);
    }

    /// Permanently retire a worker that died to an un-recovered panic. A dead
    /// worker counts like a begging one for termination: it will never produce
    /// or consume work again.
    pub fn worker_died(&self) {
        self.dead.fetch_add(1, Ordering::AcqRel);
    }

    #[inline]
    pub fn dead(&self) -> usize {
        self.dead.load(Ordering::Acquire)
    }

    pub fn enter_cm_block(&self) {
        self.cm_blocked.fetch_add(1, Ordering::AcqRel);
    }

    pub fn exit_cm_block(&self) {
        self.cm_blocked.fetch_sub(1, Ordering::AcqRel);
    }

    #[inline]
    pub fn total_poor(&self) -> i64 {
        self.total_poor.load(Ordering::Acquire)
    }

    pub fn poor_added(&self, n: i64) {
        self.total_poor.fetch_add(n, Ordering::AcqRel);
    }

    pub fn poor_taken(&self, n: i64) {
        self.total_poor.fetch_sub(n, Ordering::AcqRel);
    }

    /// Record a completed operation for the watchdog.
    pub fn note_progress(&self) {
        let ms = self.start.elapsed().as_millis() as u64;
        self.last_progress_ms.store(ms, Ordering::Relaxed);
    }

    /// Seconds since any thread completed an operation.
    pub fn since_progress(&self) -> f64 {
        let last = self.last_progress_ms.load(Ordering::Relaxed);
        let now = self.start.elapsed().as_millis() as u64;
        (now.saturating_sub(last)) as f64 / 1000.0
    }

    /// True when every thread is parked (or dead) and no work remains — the
    /// global termination condition. (Stale PEL entries keep `total_poor`
    /// positive, so their owners cannot be parked; see DESIGN.md.)
    pub fn quiescent(&self) -> bool {
        self.cm_blocked() == 0
            && self.total_poor() == 0
            && self.begging() + self.dead() >= self.threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_accounting() {
        let s = EngineSync::new(4);
        assert_eq!(s.active(), 4);
        s.enter_begging();
        s.enter_cm_block();
        assert_eq!(s.active(), 2);
        assert_eq!(s.begging(), 1);
        assert_eq!(s.cm_blocked(), 1);
        s.exit_begging();
        s.exit_cm_block();
        assert_eq!(s.active(), 4);
    }

    #[test]
    fn quiescence() {
        let s = EngineSync::new(2);
        assert!(!s.quiescent());
        s.enter_begging();
        s.enter_begging();
        assert!(s.quiescent());
        s.poor_added(3);
        assert!(!s.quiescent());
        s.poor_taken(3);
        assert!(s.quiescent());
    }

    #[test]
    fn dead_workers_count_toward_quiescence() {
        let s = EngineSync::new(3);
        s.enter_begging();
        s.enter_begging();
        assert!(!s.quiescent());
        s.worker_died();
        assert!(s.quiescent());
        assert_eq!(s.dead(), 1);
        assert_eq!(s.active(), 0);
    }

    #[test]
    fn watchdog_clock() {
        let s = EngineSync::new(1);
        s.note_progress();
        assert!(s.since_progress() < 0.5);
    }

    #[test]
    fn livelock_sets_done() {
        let s = EngineSync::new(1);
        s.declare_livelock();
        assert!(s.is_done());
        assert!(s.livelocked());
    }
}
