//! Contention managers (paper §5).
//!
//! After a rollback, the contention manager decides whether the thread
//! should retry immediately (Aggressive), back off randomly (Random), or
//! park until a making-progress thread wakes it (Global / Local). Global-CM
//! provably avoids deadlock; Local-CM additionally distributes the
//! contention lists per thread and provably avoids both deadlocks and
//! livelocks (paper Lemmas 1–2); the engine's watchdog detects the livelocks
//! the non-blocking schemes can fall into (paper Table 1).

use crate::sync::EngineSync;
use crossbeam_utils::CachePadded;
use parking_lot::Mutex;
use pi2m_obs::flight::EventKind;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Successes needed before a blocking CM wakes a waiter (paper: s⁺ = 10).
pub const S_PLUS: u32 = 10;
/// Consecutive rollbacks tolerated by Random-CM before sleeping
/// (paper: r⁺ = 5).
pub const R_PLUS: u32 = 5;

/// Which contention manager to run (paper §5 nomenclature).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmKind {
    Aggressive,
    Random,
    Global,
    Local,
}

/// The contention-management policy interface.
pub trait ContentionManager: Send + Sync {
    fn name(&self) -> &'static str;

    /// A thread completed an operation without rollback.
    fn on_success(&self, tid: usize);

    /// A thread rolled back after conflicting with `owner`. May park the
    /// thread; returns the seconds spent parked/sleeping (contention
    /// overhead).
    fn on_rollback(&self, tid: usize, owner: usize, sync: &EngineSync) -> f64;

    /// Called before `tid` parks in the begging list: wake waiters that only
    /// this thread could have woken (drain-time liveness).
    fn before_beg(&self, tid: usize, sync: &EngineSync);

    /// Wake one parked thread, if any (deadlock-breaking fallback used by
    /// idle beggars). Returns whether a thread was woken.
    fn release_one(&self) -> bool;

    /// Wake every parked thread (termination / watchdog abort).
    fn release_all(&self);
}

pub fn make_cm(kind: CmKind, threads: usize) -> Box<dyn ContentionManager> {
    match kind {
        CmKind::Aggressive => Box::new(AggressiveCm),
        CmKind::Random => Box::new(RandomCm::new(threads)),
        CmKind::Global => Box::new(GlobalCm::new(threads)),
        CmKind::Local => Box::new(LocalCm::new(threads)),
    }
}

/// Park-until-flag-cleared busy wait with yields (the host may be heavily
/// oversubscribed). Returns seconds waited.
fn busy_wait_while(flag: &AtomicBool, sync: &EngineSync) -> f64 {
    let t0 = Instant::now();
    while flag.load(Ordering::Acquire) && !sync.is_done() {
        std::hint::spin_loop();
        std::thread::yield_now();
    }
    t0.elapsed().as_secs_f64()
}

/// Seconds → saturated u32 nanoseconds for a flight-event payload word.
#[inline]
fn secs_to_ns_u32(s: f64) -> u32 {
    (s * 1e9).min(u32::MAX as f64) as u32
}

/// CM park with flight-recorder bracketing: CmPark when the thread commits
/// to waiting, CmUnpark (duration in `c`) when it resumes.
fn recorded_cm_wait(tid: usize, owner: usize, flag: &AtomicBool, sync: &EngineSync) -> f64 {
    sync.flight_emit(tid, EventKind::CmPark, 0, owner as u32, 0, 0);
    sync.enter_cm_block();
    let waited = busy_wait_while(flag, sync);
    sync.exit_cm_block();
    sync.flight_emit(
        tid,
        EventKind::CmUnpark,
        0,
        owner as u32,
        0,
        secs_to_ns_u32(waited),
    );
    waited
}

// --------------------------------------------------------------------------

/// Brute force: retry immediately. Livelock-prone (paper §5.1) — kept for
/// the Table 1 comparison.
pub struct AggressiveCm;

impl ContentionManager for AggressiveCm {
    fn name(&self) -> &'static str {
        "aggressive"
    }
    fn on_success(&self, _tid: usize) {}
    fn on_rollback(&self, _tid: usize, _owner: usize, _sync: &EngineSync) -> f64 {
        0.0
    }
    fn before_beg(&self, _tid: usize, _sync: &EngineSync) {}
    fn release_one(&self) -> bool {
        false
    }
    fn release_all(&self) {}
}

// --------------------------------------------------------------------------

/// Random backoff: after r⁺ consecutive rollbacks, sleep a random 1..=r⁺ ms
/// (paper §5.2). Does not provably avoid livelock.
pub struct RandomCm {
    consecutive: Vec<CachePadded<AtomicU32>>,
    rng: Vec<CachePadded<AtomicU64>>,
}

impl RandomCm {
    pub fn new(threads: usize) -> Self {
        RandomCm {
            consecutive: (0..threads)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
            rng: (0..threads)
                .map(|t| CachePadded::new(AtomicU64::new(0x9e3779b97f4a7c15 ^ (t as u64 + 1))))
                .collect(),
        }
    }

    fn next_rand(&self, tid: usize) -> u64 {
        let slot = &self.rng[tid];
        let mut x = slot.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        slot.store(x, Ordering::Relaxed);
        x
    }
}

impl ContentionManager for RandomCm {
    fn name(&self) -> &'static str {
        "random"
    }

    fn on_success(&self, tid: usize) {
        self.consecutive[tid].store(0, Ordering::Relaxed);
    }

    fn on_rollback(&self, tid: usize, owner: usize, sync: &EngineSync) -> f64 {
        let r = self.consecutive[tid].fetch_add(1, Ordering::Relaxed) + 1;
        if r > R_PLUS {
            let ms = 1 + self.next_rand(tid) % (R_PLUS as u64);
            sync.flight_emit(tid, EventKind::CmPark, 0, owner as u32, 0, 0);
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_millis(ms));
            let waited = t0.elapsed().as_secs_f64();
            sync.flight_emit(
                tid,
                EventKind::CmUnpark,
                0,
                owner as u32,
                0,
                secs_to_ns_u32(waited),
            );
            return waited;
        }
        0.0
    }

    fn before_beg(&self, _tid: usize, _sync: &EngineSync) {}
    fn release_one(&self) -> bool {
        false
    }
    fn release_all(&self) {}
}

// --------------------------------------------------------------------------

/// One global FIFO contention list; rollback ⇒ park; s⁺ consecutive
/// successes ⇒ wake the head (paper §5.3). Deadlock-free via the
/// active-thread guard.
pub struct GlobalCm {
    cl: Mutex<VecDeque<usize>>,
    parked: Vec<CachePadded<AtomicBool>>,
    streak: Vec<CachePadded<AtomicU32>>,
}

impl GlobalCm {
    pub fn new(threads: usize) -> Self {
        GlobalCm {
            cl: Mutex::new(VecDeque::new()),
            parked: (0..threads)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            streak: (0..threads)
                .map(|_| CachePadded::new(AtomicU32::new(0)))
                .collect(),
        }
    }

    fn wake_head(&self) -> bool {
        let mut cl = self.cl.lock();
        if let Some(j) = cl.pop_front() {
            self.parked[j].store(false, Ordering::Release);
            true
        } else {
            false
        }
    }
}

impl ContentionManager for GlobalCm {
    fn name(&self) -> &'static str {
        "global"
    }

    fn on_success(&self, tid: usize) {
        // paper Fig. 2b: the streak is NOT reset on a wake — once a thread
        // exceeds s+, every further success releases another waiter.
        let s = self.streak[tid].fetch_add(1, Ordering::Relaxed) + 1;
        if s >= S_PLUS {
            self.wake_head();
        }
    }

    fn on_rollback(&self, tid: usize, owner: usize, sync: &EngineSync) -> f64 {
        self.streak[tid].store(0, Ordering::Relaxed);
        // A thread may not park if it is the only active thread (paper §5.3).
        if sync.active() <= 1 || sync.is_done() {
            return 0.0;
        }
        self.parked[tid].store(true, Ordering::Release);
        self.cl.lock().push_back(tid);
        recorded_cm_wait(tid, owner, &self.parked[tid], sync)
    }

    fn before_beg(&self, _tid: usize, _sync: &EngineSync) {
        // A thread leaving the competition hands progress duty onward.
        self.wake_head();
    }

    fn release_one(&self) -> bool {
        self.wake_head()
    }

    fn release_all(&self) {
        while self.wake_head() {}
    }
}

// --------------------------------------------------------------------------

struct LocalSlot {
    /// Protects the block/no-block decision (paper Fig. 2c lines 4–14).
    decision: Mutex<()>,
    busy_wait: AtomicBool,
    cl: Mutex<VecDeque<usize>>,
    streak: AtomicU32,
}

/// Per-thread contention lists with the cycle-breaking protocol of paper
/// Fig. 2: a thread blocks on the conflicting thread's list unless that
/// thread has itself decided to block (which would risk a dependency cycle).
/// Provably deadlock- and livelock-free (paper Lemmas 1 and 2).
pub struct LocalCm {
    slots: Vec<CachePadded<LocalSlot>>,
}

impl LocalCm {
    pub fn new(threads: usize) -> Self {
        LocalCm {
            slots: (0..threads)
                .map(|_| {
                    CachePadded::new(LocalSlot {
                        decision: Mutex::new(()),
                        busy_wait: AtomicBool::new(false),
                        cl: Mutex::new(VecDeque::new()),
                        streak: AtomicU32::new(0),
                    })
                })
                .collect(),
        }
    }

    fn wake_from(&self, tid: usize) -> bool {
        let mut cl = self.slots[tid].cl.lock();
        if let Some(j) = cl.pop_front() {
            self.slots[j].busy_wait.store(false, Ordering::Release);
            true
        } else {
            false
        }
    }
}

impl ContentionManager for LocalCm {
    fn name(&self) -> &'static str {
        "local"
    }

    fn on_success(&self, tid: usize) {
        // no streak reset on wake (paper Fig. 2b)
        let slot = &self.slots[tid];
        let s = slot.streak.fetch_add(1, Ordering::Relaxed) + 1;
        if s >= S_PLUS {
            self.wake_from(tid);
        }
    }

    fn on_rollback(&self, tid: usize, owner: usize, sync: &EngineSync) -> f64 {
        self.slots[tid].streak.store(0, Ordering::Relaxed);
        if owner == tid || sync.active() <= 1 || sync.is_done() {
            return 0.0;
        }
        // Lock both decision mutexes in id order (paper Fig. 2c): only one
        // thread of a would-be cycle examines its condition at a time.
        let (lo, hi) = (tid.min(owner), tid.max(owner));
        let _g1 = self.slots[lo].decision.lock();
        let _g2 = self.slots[hi].decision.lock();
        if self.slots[owner].busy_wait.load(Ordering::Acquire) {
            // The conflicting thread already decided to block: blocking too
            // could complete a dependency cycle — return without blocking
            // (this is what breaks cycles; paper Lemma 1).
            return 0.0;
        }
        self.slots[tid].busy_wait.store(true, Ordering::Release);
        self.slots[owner].cl.lock().push_back(tid);
        drop(_g2);
        drop(_g1);
        recorded_cm_wait(tid, owner, &self.slots[tid].busy_wait, sync)
    }

    fn before_beg(&self, tid: usize, _sync: &EngineSync) {
        // Threads waiting on *this* thread's list would otherwise wait until
        // someone else wakes them; hand them back before parking.
        while self.wake_from(tid) {}
    }

    fn release_one(&self) -> bool {
        for t in 0..self.slots.len() {
            if self.wake_from(t) {
                return true;
            }
        }
        false
    }

    fn release_all(&self) {
        for t in 0..self.slots.len() {
            while self.wake_from(t) {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn aggressive_never_blocks() {
        let cm = AggressiveCm;
        let sync = EngineSync::new(4);
        assert_eq!(cm.on_rollback(0, 1, &sync), 0.0);
    }

    #[test]
    fn random_sleeps_after_threshold() {
        let cm = RandomCm::new(2);
        let sync = EngineSync::new(2);
        let mut slept = 0.0;
        for _ in 0..(R_PLUS + 2) {
            slept += cm.on_rollback(0, 1, &sync);
        }
        assert!(slept > 0.0, "must sleep after exceeding r+");
        cm.on_success(0);
        // counter reset: immediate rollback doesn't sleep
        assert_eq!(cm.on_rollback(0, 1, &sync), 0.0);
    }

    #[test]
    fn global_parks_and_wakes() {
        let cm = Arc::new(GlobalCm::new(2));
        let sync = Arc::new(EngineSync::new(2));
        let cm2 = Arc::clone(&cm);
        let sync2 = Arc::clone(&sync);
        let h = std::thread::spawn(move || cm2.on_rollback(0, 1, &sync2));
        // wait until parked
        while sync.cm_blocked() == 0 {
            std::thread::yield_now();
        }
        // s+ successes wake it
        for _ in 0..S_PLUS {
            cm.on_success(1);
        }
        let waited = h.join().unwrap();
        assert!(waited >= 0.0);
        assert_eq!(sync.cm_blocked(), 0);
    }

    #[test]
    fn global_last_active_never_parks() {
        let cm = GlobalCm::new(2);
        let sync = EngineSync::new(2);
        sync.enter_begging(); // other thread idle → active() == 1
        assert_eq!(cm.on_rollback(0, 1, &sync), 0.0);
        assert_eq!(sync.cm_blocked(), 0);
    }

    #[test]
    fn local_cycle_is_broken() {
        // T0 blocks on T1; then T1 rolling back on T0 must NOT block
        // (would form a cycle).
        let cm = Arc::new(LocalCm::new(3));
        let sync = Arc::new(EngineSync::new(3));
        let cm2 = Arc::clone(&cm);
        let sync2 = Arc::clone(&sync);
        let h = std::thread::spawn(move || cm2.on_rollback(0, 1, &sync2));
        while sync.cm_blocked() == 0 {
            std::thread::yield_now();
        }
        // T1 conflicts with T0, which is blocked: must return immediately.
        let waited = cm.on_rollback(1, 0, &sync);
        assert_eq!(waited, 0.0);
        assert_eq!(sync.cm_blocked(), 1); // only T0 remains parked
                                          // T1 making progress wakes T0
        for _ in 0..S_PLUS {
            cm.on_success(1);
        }
        h.join().unwrap();
        assert_eq!(sync.cm_blocked(), 0);
    }

    #[test]
    fn local_before_beg_drains_own_list() {
        let cm = Arc::new(LocalCm::new(2));
        let sync = Arc::new(EngineSync::new(2));
        let cm2 = Arc::clone(&cm);
        let sync2 = Arc::clone(&sync);
        let h = std::thread::spawn(move || cm2.on_rollback(0, 1, &sync2));
        while sync.cm_blocked() == 0 {
            std::thread::yield_now();
        }
        cm.before_beg(1, &sync);
        h.join().unwrap();
        assert_eq!(sync.cm_blocked(), 0);
    }

    #[test]
    fn release_all_unblocks_everything() {
        let cm = Arc::new(GlobalCm::new(3));
        let sync = Arc::new(EngineSync::new(3));
        let mut handles = Vec::new();
        for t in 0..2 {
            let cm2 = Arc::clone(&cm);
            let sync2 = Arc::clone(&sync);
            handles.push(std::thread::spawn(move || cm2.on_rollback(t, 2, &sync2)));
        }
        while sync.cm_blocked() < 2 {
            std::thread::yield_now();
        }
        cm.release_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sync.cm_blocked(), 0);
    }
}
