//! Randomized insert/remove round-trip tests of the kernel's R6-style
//! removal path.
//!
//! Two properties are exercised over the same workload:
//!
//! 1. **Schedule independence** — the SoS-perturbed Delaunay triangulation
//!    of a generic point set is canonical, and for generic links the local
//!    removal retriangulation is the unique Delaunay triangulation of the
//!    link (insertion-order independent), so whether a removal blocks is a
//!    pure function of the mesh geometry. Inserting concurrently at 1 and
//!    8 threads and then draining the same removal wish-list sequentially
//!    must therefore leave *identical* surviving vertex sets.
//! 2. **Interleaved concurrency** — workers that remove their vertices
//!    immediately after inserting them (retrying speculative conflicts the
//!    way the refinement engine does) must leave a mesh that passes the full
//!    integrity audit, with only bounded best-effort removal leftovers.
//!    Interleaved outcomes are trajectory-dependent (a removal blocked
//!    against one intermediate mesh may succeed against another), so no
//!    cross-schedule equality is asserted here — that is what property 1
//!    pins down.

use pi2m_delaunay::{OpError, SharedMesh, VertexId, VertexKind};
use pi2m_geometry::{Aabb, Point3};
use pi2m_refine::audit_mesh;

const N_POINTS: usize = 1_800;
const SEED: u64 = 0x0b5e55ed;

fn workload_points() -> Vec<[f64; 3]> {
    let mut s = SEED;
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..N_POINTS)
        .map(|_| {
            [
                next() * 0.98 + 0.01,
                next() * 0.98 + 0.01,
                next() * 0.98 + 0.01,
            ]
        })
        .collect()
}

/// Global indices removed again after their insertion (the round-trip part).
fn is_removed(global_idx: usize) -> bool {
    global_idx.is_multiple_of(3)
}

/// Run the workload on `threads` workers and return the sorted positions of
/// the surviving inserted vertices. With `interleaved`, workers remove their
/// wish-list vertices immediately after inserting them; otherwise every
/// removal is left to the sequential drain, so both thread counts remove
/// from the identical final complex.
fn run_round_trip(threads: usize, interleaved: bool) -> Vec<[f64; 3]> {
    let points = workload_points();
    let mesh = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));

    // removals (vertex, global index) still owed after the concurrent phase
    let deferred: Vec<(VertexId, usize)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for tid in 0..threads {
            let mesh = &mesh;
            let points = &points;
            handles.push(scope.spawn(move || {
                let mut ctx = mesh.make_ctx(tid as u32);
                let mut deferred = Vec::new();
                // worker tid owns global indices i ≡ tid (mod threads)
                for (i, p) in points.iter().enumerate().skip(tid).step_by(threads) {
                    let v = loop {
                        match ctx.insert(*p, VertexKind::Circumcenter) {
                            Ok(r) => {
                                let v = r.vertex;
                                ctx.recycle_insert(r);
                                break v;
                            }
                            Err(OpError::Conflict { .. }) => std::thread::yield_now(),
                            Err(e) => panic!("insert {i} failed: {e:?}"),
                        }
                    };
                    if !is_removed(i) {
                        continue;
                    }
                    if !interleaved {
                        deferred.push((v, i));
                        continue;
                    }
                    // immediately round-trip this vertex back out
                    loop {
                        match ctx.remove(v) {
                            Ok(r) => {
                                ctx.recycle_remove(r);
                                break;
                            }
                            Err(OpError::Conflict { .. }) => std::thread::yield_now(),
                            Err(OpError::RemovalBlocked) => {
                                deferred.push((v, i));
                                break;
                            }
                            Err(e) => panic!("remove {i} failed: {e:?}"),
                        }
                    }
                }
                deferred
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Sequential drain to a fixpoint, in global index order. Removal is
    // best-effort by design (paper: ~2% of removals are blocked by
    // degenerate local retriangulations and the vertex simply stays), so the
    // drain stops when a pass makes no progress.
    let mut ctx = mesh.make_ctx(0);
    let mut pending = deferred;
    pending.sort_by_key(|&(_, i)| i);
    loop {
        let before = pending.len();
        pending.retain(|&(v, i)| match ctx.remove(v) {
            Ok(r) => {
                ctx.recycle_remove(r);
                false
            }
            Err(OpError::RemovalBlocked) => true,
            Err(e) => panic!("sequential remove {i} failed: {e:?}"),
        });
        if pending.is_empty() || pending.len() == before {
            break;
        }
    }
    // ~5% of this workload's removals block (measured identically on this
    // kernel and its predecessor — the rate is a property of the geometry)
    assert!(
        pending.len() * 10 < N_POINTS / 3,
        "blocked removals exceed 10% of the wish-list: {}",
        pending.len()
    );

    let audit = audit_mesh(&mesh, SEED);
    assert!(
        audit.clean(),
        "audit failed at {threads} threads: {}",
        audit.summary()
    );

    let mut survivors: Vec<[f64; 3]> = (0..mesh.num_vertices())
        .map(|i| VertexId(i as u32))
        .filter(|&v| mesh.vertex(v).is_alive() && mesh.vertex(v).kind() != VertexKind::BoxCorner)
        .map(|v| mesh.pos3(v))
        .collect();
    survivors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    survivors
}

/// Sanity-check a survivor set against the workload: every kept point is
/// present, and anything beyond the kept set is a blocked removal from the
/// wish-list.
fn check_survivors(survivors: &[[f64; 3]]) {
    let points = workload_points();
    let mut kept: Vec<[f64; 3]> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| !is_removed(*i))
        .map(|(_, p)| *p)
        .collect();
    kept.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for p in &kept {
        assert!(
            survivors
                .binary_search_by(|q| q.partial_cmp(p).unwrap())
                .is_ok(),
            "kept point {p:?} missing from survivors"
        );
    }
    let wished: Vec<[f64; 3]> = points
        .iter()
        .enumerate()
        .filter(|(i, _)| is_removed(*i))
        .map(|(_, p)| *p)
        .collect();
    for p in survivors.iter().filter(|p| {
        kept.binary_search_by(|q| q.partial_cmp(p).unwrap())
            .is_err()
    }) {
        assert!(
            wished.contains(p),
            "survivor {p:?} was never inserted or kept"
        );
    }
}

#[test]
fn surviving_vertex_sets_match_across_thread_counts() {
    // Concurrent insertion, sequential canonical-order removal: both thread
    // counts drain the same complex, so the outcomes must agree exactly.
    let single = run_round_trip(1, false);
    let eight = run_round_trip(8, false);
    check_survivors(&single);
    assert_eq!(
        single.len(),
        eight.len(),
        "1-thread and 8-thread surviving sets differ in size"
    );
    assert_eq!(single, eight, "8-thread survivors diverge from 1-thread");
}

#[test]
fn interleaved_round_trip_audits_clean_under_concurrency() {
    // Workers remove while others insert; the exact stuck set is
    // trajectory-dependent, but the mesh must stay sound throughout and the
    // survivor set must stay explainable by the workload.
    let survivors = run_round_trip(8, true);
    check_survivors(&survivors);
}
