//! Fault-injection robustness tests: the engine must absorb injected worker
//! panics mid-refinement, roll the victims back, and still produce a mesh
//! that passes the full integrity audit.
//!
//! The fault seed can be varied from the outside (CI runs a small matrix)
//! via `PI2M_FAULT_SEED`; the plans themselves are fixed per test so the
//! injected *counts* stay deterministic regardless of thread interleaving.

use pi2m_faults::{sites, FaultPlan};
use pi2m_image::phantoms;
use pi2m_refine::{
    audit_mesh, BalancerKind, CmKind, MachineTopology, Mesher, MesherConfig, RefineError,
};
use std::sync::Arc;

fn seed_from_env() -> u64 {
    std::env::var("PI2M_FAULT_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(42)
}

fn cfg_with(threads: usize, plan: FaultPlan) -> MesherConfig {
    MesherConfig {
        delta: 2.0,
        threads,
        cm: CmKind::Local,
        balancer: BalancerKind::Hws,
        topology: MachineTopology::flat(threads),
        faults: Some(Arc::new(plan)),
        ..Default::default()
    }
}

/// Acceptance criterion of the fault-injection work: 8 threads, exactly two
/// panics injected at the insert-commit boundary (locks held, nothing
/// mutated yet). The run must complete, both panics must be quarantined
/// with rollback recovery, and the final mesh must audit clean.
#[test]
fn two_injected_panics_are_absorbed_and_mesh_audits_clean() {
    let seed = seed_from_env();
    let plan = FaultPlan::parse(
        seed,
        &format!("site={},kind=panic,every=40,count=2", sites::INSERT_COMMIT),
    )
    .unwrap();
    let faults = Arc::new(plan);
    let cfg = MesherConfig {
        faults: Some(faults.clone()),
        ..cfg_with(8, FaultPlan::disarmed())
    };

    let out = Mesher::new(phantoms::sphere(20, 1.0), cfg).run();

    assert!(
        !out.stats.livelock,
        "watchdog fired under 2 injected panics"
    );
    assert!(out.mesh.num_tets() > 100, "got {}", out.mesh.num_tets());
    assert_eq!(faults.injected(), 2, "plan should have fired exactly twice");
    assert_eq!(out.stats.total_panics(), 2, "both panics must be caught");
    assert_eq!(out.stats.total_quarantined(), 2);
    assert!(
        out.stats.total_recovery_rollbacks() > 0,
        "commit-site panics hold locks, so recovery must roll back"
    );
    assert_eq!(out.stats.workers_died, 0, "op-level isolation, no deaths");

    let report = audit_mesh(&out.shared, seed);
    assert!(report.clean(), "{}", report.summary());
    assert!(report.insphere_samples > 0);
}

/// A whole worker dying (panic escapes the per-op catch at the engine's own
/// worker site) must not hang or corrupt the run: the heirs inherit its
/// work and the mesh still audits clean.
#[test]
fn single_worker_death_is_survivable() {
    let seed = seed_from_env();
    let plan = FaultPlan::parse(
        seed,
        &format!("site={},kind=panic,nth=30,count=1", sites::ENGINE_WORKER),
    )
    .unwrap();
    let out = Mesher::new(phantoms::sphere(16, 1.0), cfg_with(4, plan))
        .try_run()
        .expect("1 death out of 4 workers is below the quorum threshold");

    assert_eq!(out.stats.workers_died, 1);
    assert!(!out.stats.livelock);
    assert!(out.mesh.num_tets() > 50, "got {}", out.mesh.num_tets());
    let report = audit_mesh(&out.shared, seed);
    assert!(report.clean(), "{}", report.summary());
}

/// Regression: a dying worker's observability must survive it. The per-op
/// recovery counters are merged at join (they live outside the panic
/// boundary) and the flight ring is owned by the engine, so the death event
/// recorded *on the dying thread* must appear in the drained log along with
/// everything the worker recorded before the panic.
#[test]
fn dead_workers_counters_and_flight_ring_survive() {
    use pi2m_obs::flight::EventKind;
    use pi2m_obs::metrics;

    let seed = seed_from_env();
    let plan = FaultPlan::parse(
        seed,
        &format!("site={},kind=panic,nth=30,count=1", sites::ENGINE_WORKER),
    )
    .unwrap();
    let out = Mesher::new(phantoms::sphere(16, 1.0), cfg_with(4, plan))
        .try_run()
        .expect("1 death out of 4 workers is below the quorum threshold");

    assert_eq!(out.stats.workers_died, 1);
    // The death counter was recorded through the dying worker's own
    // ThreadRecorder (in the cleanup path) and still reached the merged
    // snapshot.
    assert_eq!(out.metrics.counter(metrics::WORKER_DEATHS), 1);
    // The dying thread's ring was drained, not dropped: its terminal
    // WorkerDeath event (emitted during cleanup, on the dying thread) is in
    // the global timeline.
    let deaths: Vec<_> = out
        .flight
        .iter()
        .filter(|e| e.kind == EventKind::WorkerDeath)
        .collect();
    assert_eq!(deaths.len(), 1, "exactly one death event");
    let dead_tid = deaths[0].tid;
    // Any work it bequeathed names a surviving heir.
    for e in out
        .flight
        .iter()
        .filter(|e| e.kind == EventKind::HeirBequest)
    {
        assert_eq!(e.tid, dead_tid, "bequest must come from the dead worker");
        assert_ne!(e.a as u16, dead_tid as u16, "heir must be a survivor");
    }
    // The run still audits clean on top of all that.
    let report = audit_mesh(&out.shared, seed);
    assert!(report.clean(), "{}", report.summary());
}

/// When a majority of workers die the run cannot meaningfully continue;
/// `try_run` must escalate to a typed error instead of returning a
/// partially-refined mesh as if nothing happened.
#[test]
fn majority_worker_death_escalates_to_quorum_error() {
    let plan = FaultPlan::parse(
        seed_from_env(),
        &format!("site={},kind=panic,every=1", sites::ENGINE_WORKER),
    )
    .unwrap();
    let err = match Mesher::new(phantoms::sphere(12, 1.0), cfg_with(4, plan)).try_run() {
        Err(e) => e,
        Ok(out) => panic!(
            "expected quorum loss, but the run produced {} tets",
            out.mesh.num_tets()
        ),
    };
    match err {
        RefineError::WorkerQuorumLost { died, threads } => {
            assert_eq!(threads, 4);
            assert!(died * 2 > threads, "died={died} of {threads}");
        }
        other => panic!("expected WorkerQuorumLost, got {other}"),
    }
}

/// Forced operation failures (kind=fail) at the remove-prepare site are
/// surfaced as typed kernel errors, quarantined, and never kill a worker.
#[test]
fn forced_failures_are_quarantined_not_fatal() {
    let seed = seed_from_env();
    let plan = FaultPlan::parse(
        seed,
        &format!("site={},kind=fail,every=25,count=4", sites::INSERT_PREPARE),
    )
    .unwrap();
    let faults = Arc::new(plan);
    let cfg = MesherConfig {
        faults: Some(faults.clone()),
        ..cfg_with(4, FaultPlan::disarmed())
    };
    let out = Mesher::new(phantoms::sphere(16, 1.0), cfg).run();

    assert_eq!(faults.injected(), 4);
    assert_eq!(out.stats.total_kernel_errors(), 4);
    assert_eq!(out.stats.workers_died, 0);
    assert_eq!(out.stats.total_panics(), 0);
    let report = audit_mesh(&out.shared, seed);
    assert!(report.clean(), "{}", report.summary());
}

/// Injected lock denials look exactly like real speculative conflicts, so
/// they must be absorbed by the ordinary rollback machinery: the run
/// completes with extra rollbacks and a clean audit.
#[test]
fn injected_lock_denials_behave_like_conflicts() {
    let seed = seed_from_env();
    let plan = FaultPlan::parse(
        seed,
        &format!("site={},kind=deny,every=50,count=20", sites::LOCK_ACQUIRE),
    )
    .unwrap();
    let out = Mesher::new(phantoms::sphere(16, 1.0), cfg_with(4, plan)).run();

    assert!(!out.stats.livelock);
    assert!(
        out.stats.total_rollbacks() > 0,
        "denials must cost rollbacks"
    );
    assert!(out.mesh.num_tets() > 50);
    let report = audit_mesh(&out.shared, seed);
    assert!(report.clean(), "{}", report.summary());
}
