//! Watchdog escalation: a workload where every speculative operation
//! conflicts forever must trip the livelock watchdog and surface as a typed
//! error, not spin silently.

use pi2m_faults::{sites, FaultPlan};
use pi2m_image::phantoms;
use pi2m_refine::{BalancerKind, CmKind, MachineTopology, Mesher, MesherConfig, RefineError};
use std::sync::{mpsc, Arc};
use std::time::Duration;

/// Deny every single lock acquisition: no operation can ever make progress,
/// so the only way out is the watchdog. The whole test runs on a helper
/// thread behind a timeout so a watchdog regression fails fast instead of
/// hanging the suite.
#[test]
fn always_conflicting_workload_trips_watchdog() {
    let plan = FaultPlan::parse(
        42,
        &format!("site={},kind=deny,every=1", sites::LOCK_ACQUIRE),
    )
    .unwrap();
    let cfg = MesherConfig {
        delta: 2.0,
        threads: 4,
        cm: CmKind::Local,
        balancer: BalancerKind::Rws,
        topology: MachineTopology::flat(4),
        livelock_timeout: 0.5,
        faults: Some(Arc::new(plan)),
        ..Default::default()
    };

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let r = Mesher::new(phantoms::sphere(12, 1.0), cfg).try_run();
        let _ = tx.send(r);
    });

    let result = rx
        .recv_timeout(Duration::from_secs(60))
        .expect("watchdog did not fire within 60s: engine is livelocked for real");
    match result {
        Err(RefineError::Livelock) => {}
        Err(other) => panic!("expected Livelock, got {other}"),
        Ok(out) => panic!(
            "engine claimed success with {} tets despite total denial",
            out.mesh.num_tets()
        ),
    }
}
