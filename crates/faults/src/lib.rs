//! # pi2m-faults
//!
//! Deterministic, seed-driven fault injection (DST-style) for the PI2M
//! meshing pipeline. A [`FaultPlan`] is a small set of rules, each naming an
//! injection *site* (a static string threaded through the kernel and the
//! refinement engine, see [`sites`]), a fault [`FaultKind`], and a firing
//! schedule. The plan is armed explicitly — a disarmed plan (or, cheaper, no
//! plan at all) costs a single branch at every site.
//!
//! Firing is deterministic for a given `(seed, plan)` pair up to the arrival
//! *count* at a site: rules count arrivals with a shared atomic, so which
//! thread hits the firing arrival may vary between runs, but the number of
//! injected faults never does. The seed perturbs the phase of periodic rules
//! and drives the hash gate of probabilistic rules, so a CI matrix over seeds
//! explores different interleavings of the same failure classes.
//!
//! Plan syntax (also accepted from the `PI2M_FAULT_PLAN` environment
//! variable; seed from `PI2M_FAULT_SEED`):
//!
//! ```text
//! site=<name|prefix*>,kind=<panic|deny|fail|delay>[,every=N][,nth=N]
//!     [,prob=P][,count=C][,delay_ms=D] [; <next rule> ...]
//! ```
//!
//! * `every=N` — fire on every Nth arrival (seed-phased); default 1.
//! * `nth=N` — fire exactly on the Nth arrival (overrides `every`).
//! * `prob=P` — additionally gate each candidate arrival by a seeded hash.
//! * `count=C` — cap the total number of fires (default: unlimited).
//! * `delay_ms=D` — sleep duration for `kind=delay` (default 10).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Injection site names. Sites are plain static strings so that plans can be
/// written by hand; the constants exist to keep producer and consumer in
/// sync. A rule site ending in `*` matches by prefix.
pub mod sites {
    /// Per-vertex try-lock acquisition (kernel hot path).
    pub const LOCK_ACQUIRE: &str = "delaunay.lock.acquire";
    /// Start of an insertion's cavity expansion (before any lock).
    pub const INSERT_PREPARE: &str = "delaunay.insert.prepare";
    /// Between a prepared insertion and its commit (locks held).
    pub const INSERT_COMMIT: &str = "delaunay.insert.commit";
    /// Start of a removal's ball gathering (before any lock).
    pub const REMOVE_PREPARE: &str = "delaunay.remove.prepare";
    /// Between a prepared removal and its commit (locks held).
    pub const REMOVE_COMMIT: &str = "delaunay.remove.commit";
    /// Start of a point-location walk.
    pub const WALK_LOCATE: &str = "delaunay.walk.locate";
    /// Start of one work-item operation (inside the engine's panic shield).
    pub const ENGINE_OP: &str = "refine.engine.op";
    /// Top of a worker's main loop (outside the shield: a panic here kills
    /// the whole worker, exercising dead-worker accounting).
    pub const ENGINE_WORKER: &str = "refine.engine.worker";
    /// Just before the contention manager's rollback consultation.
    pub const CM_ROLLBACK: &str = "refine.cm.rollback";
    /// Just before parking in the load balancer's begging list.
    pub const BALANCER_BEG: &str = "refine.balancer.beg";
    /// Admission control of the meshing service's job queue (`pi2m serve`):
    /// `fail` sheds the job as if the queue were full, `delay` stalls the
    /// submitting connection.
    pub const SERVE_ADMIT: &str = "serve.queue.admit";
    /// Checkout of a warm session slot for a job attempt: `fail` poisons the
    /// checkout (the service recycles the session and retries), `delay`
    /// holds the slot busy.
    pub const SERVE_CHECKOUT: &str = "serve.session.checkout";
    /// Artifact flush after a successful mesh: `fail` makes the write report
    /// an I/O error (transient from the service's point of view).
    pub const SERVE_ARTIFACT: &str = "serve.artifact.write";
    /// Top of a worker's main loop during the seam-stitch pass of a sharded
    /// run only (outside the per-op shield, like `ENGINE_WORKER`): a `panic`
    /// here kills a stitch worker mid-seam, exercising the guarantee that a
    /// sharded session survives a mid-stitch death.
    pub const SHARD_STITCH: &str = "shard.stitch";
}

/// What a firing rule does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (isolated by the engine's `catch_unwind` shield, or
    /// fatal to the worker at [`sites::ENGINE_WORKER`]).
    Panic,
    /// Report an artificial lock-acquire denial / conflict.
    Deny,
    /// Force the operation's predicate filter to report failure (the site
    /// maps this to its natural typed error, e.g. `Degenerate`).
    Fail,
    /// Sleep `delay_ms` at the site (delayed rollback / slow worker).
    Delay,
}

/// A fault the call-site must now act on. `Delay` and `Panic` are handled
/// inside [`FaultPlan::fire`] and never surface here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Injected {
    /// Behave as if a lock acquire was denied.
    Deny,
    /// Behave as if the operation's predicate/validation failed.
    Fail,
}

/// One parsed rule with its firing state.
#[derive(Debug)]
pub struct FaultRule {
    pub site: String,
    pub kind: FaultKind,
    pub every: u64,
    pub nth: u64,
    pub prob: f64,
    pub count: u64,
    pub delay_ms: u64,
    /// Seed-derived phase for `every` rules, in `0..every`.
    phase: u64,
    arrivals: AtomicU64,
    fired: AtomicU64,
}

impl FaultRule {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// A deterministic fault plan. Cheap to consult when disarmed; shared across
/// threads behind an `Arc` by the engine.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
    injected: AtomicU64,
}

/// splitmix64: the avalanche stage used both for the seed phase and for the
/// probabilistic gate. Deterministic and dependency-free.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn disarmed() -> FaultPlan {
        FaultPlan::default()
    }

    /// Parse a plan from its textual form. An empty spec yields a disarmed
    /// plan.
    pub fn parse(seed: u64, spec: &str) -> Result<FaultPlan, String> {
        let mut rules = Vec::new();
        for (ri, rule_src) in spec
            .split(';')
            .map(str::trim)
            .filter(|r| !r.is_empty())
            .enumerate()
        {
            let mut site = None;
            let mut kind = None;
            let mut every = 1u64;
            let mut nth = 0u64;
            let mut prob = 1.0f64;
            let mut count = u64::MAX;
            let mut delay_ms = 10u64;
            for field in rule_src.split(',').map(str::trim).filter(|f| !f.is_empty()) {
                let (k, v) = field
                    .split_once('=')
                    .ok_or_else(|| format!("rule {ri}: expected key=value, got '{field}'"))?;
                let v = v.trim();
                match k.trim() {
                    "site" => site = Some(v.to_string()),
                    "kind" => {
                        kind = Some(match v {
                            "panic" => FaultKind::Panic,
                            "deny" => FaultKind::Deny,
                            "fail" => FaultKind::Fail,
                            "delay" => FaultKind::Delay,
                            other => return Err(format!("rule {ri}: unknown kind '{other}'")),
                        })
                    }
                    "every" => {
                        every = v
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("rule {ri}: bad every '{v}'"))?
                    }
                    "nth" => {
                        nth = v
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("rule {ri}: bad nth '{v}'"))?
                    }
                    "prob" => {
                        prob = v
                            .parse()
                            .ok()
                            .filter(|p: &f64| (0.0..=1.0).contains(p))
                            .ok_or_else(|| format!("rule {ri}: bad prob '{v}'"))?
                    }
                    "count" => {
                        count = v
                            .parse()
                            .map_err(|_| format!("rule {ri}: bad count '{v}'"))?
                    }
                    "delay_ms" => {
                        delay_ms = v
                            .parse()
                            .map_err(|_| format!("rule {ri}: bad delay_ms '{v}'"))?
                    }
                    other => return Err(format!("rule {ri}: unknown key '{other}'")),
                }
            }
            let site = site.ok_or_else(|| format!("rule {ri}: missing site="))?;
            let kind = kind.ok_or_else(|| format!("rule {ri}: missing kind="))?;
            let phase = if nth == 0 && every > 1 {
                mix(seed ^ hash_str(&site) ^ (ri as u64)) % every
            } else {
                0
            };
            rules.push(FaultRule {
                site,
                kind,
                every,
                nth,
                prob,
                count,
                delay_ms,
                phase,
                arrivals: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        Ok(FaultPlan {
            seed,
            rules,
            injected: AtomicU64::new(0),
        })
    }

    /// Build a plan from `PI2M_FAULT_PLAN` / `PI2M_FAULT_SEED`. Returns
    /// `Ok(None)` when no plan is configured.
    pub fn from_env() -> Result<Option<FaultPlan>, String> {
        let spec = match std::env::var("PI2M_FAULT_PLAN") {
            Ok(s) if !s.trim().is_empty() => s,
            _ => return Ok(None),
        };
        let seed = match std::env::var("PI2M_FAULT_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("PI2M_FAULT_SEED: not a u64: '{s}'"))?,
            Err(_) => 0,
        };
        FaultPlan::parse(seed, &spec).map(Some)
    }

    /// Whether any rule can fire.
    #[inline]
    pub fn is_armed(&self) -> bool {
        !self.rules.is_empty()
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// One-line description for logs.
    pub fn describe(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| format!("{}:{:?}", r.site, r.kind))
            .collect();
        format!("seed={} rules=[{}]", self.seed, rules.join(", "))
    }

    /// Consult the plan at a site. May panic (`kind=panic`) or sleep
    /// (`kind=delay`); returns `Some` when the caller must act ([`Injected`]).
    #[inline]
    pub fn fire(&self, site: &'static str, tid: u32) -> Option<Injected> {
        if self.rules.is_empty() {
            return None;
        }
        self.fire_slow(site, tid)
    }

    #[cold]
    fn fire_slow(&self, site: &'static str, tid: u32) -> Option<Injected> {
        for rule in &self.rules {
            if !rule.matches(site) {
                continue;
            }
            let n = rule.arrivals.fetch_add(1, Ordering::Relaxed) + 1;
            let due = if rule.nth > 0 {
                n == rule.nth
            } else {
                n % rule.every == (rule.phase + 1) % rule.every
            };
            if !due {
                continue;
            }
            if rule.prob < 1.0 {
                let h = mix(self.seed ^ hash_str(&rule.site) ^ n);
                if (h >> 11) as f64 / (1u64 << 53) as f64 >= rule.prob {
                    continue;
                }
            }
            if rule.fired.fetch_add(1, Ordering::Relaxed) >= rule.count {
                continue; // cap reached (over-count is harmless)
            }
            self.injected.fetch_add(1, Ordering::Relaxed);
            match rule.kind {
                FaultKind::Panic => {
                    panic!("injected fault: panic at '{site}' (arrival {n}, tid {tid})")
                }
                FaultKind::Delay => std::thread::sleep(Duration::from_millis(rule.delay_ms)),
                FaultKind::Deny => return Some(Injected::Deny),
                FaultKind::Fail => return Some(Injected::Fail),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fires(plan: &FaultPlan, site: &'static str, arrivals: u64) -> Vec<u64> {
        (1..=arrivals)
            .filter(|_| plan.fire(site, 0).is_some())
            .collect()
    }

    #[test]
    fn disarmed_plan_never_fires() {
        let p = FaultPlan::disarmed();
        assert!(!p.is_armed());
        for _ in 0..100 {
            assert_eq!(p.fire(sites::LOCK_ACQUIRE, 0), None);
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn empty_spec_is_disarmed() {
        assert!(!FaultPlan::parse(1, "  ").unwrap().is_armed());
    }

    #[test]
    fn nth_rule_fires_exactly_once() {
        let p = FaultPlan::parse(0, "site=delaunay.walk.locate,kind=deny,nth=3").unwrap();
        let hits = fires(&p, sites::WALK_LOCATE, 10);
        assert_eq!(hits.len(), 1);
        assert_eq!(p.injected(), 1);
    }

    #[test]
    fn every_rule_respects_count_cap() {
        let p =
            FaultPlan::parse(7, "site=delaunay.insert.commit,kind=fail,every=5,count=2").unwrap();
        let hits = fires(&p, sites::INSERT_COMMIT, 100);
        assert_eq!(hits.len(), 2, "count=2 must cap fires, got {hits:?}");
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn deterministic_for_same_seed_and_plan() {
        let spec =
            "site=delaunay.*,kind=deny,every=7,count=10;site=refine.engine.op,kind=fail,prob=0.25";
        let a = FaultPlan::parse(42, spec).unwrap();
        let b = FaultPlan::parse(42, spec).unwrap();
        let mut pattern_a = Vec::new();
        let mut pattern_b = Vec::new();
        for _ in 0..500 {
            pattern_a.push(a.fire(sites::LOCK_ACQUIRE, 0).is_some());
            pattern_a.push(a.fire(sites::ENGINE_OP, 0).is_some());
            pattern_b.push(b.fire(sites::LOCK_ACQUIRE, 0).is_some());
            pattern_b.push(b.fire(sites::ENGINE_OP, 0).is_some());
        }
        assert_eq!(pattern_a, pattern_b);
        assert!(a.injected() > 0);
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn seed_perturbs_periodic_phase() {
        // two seeds should (for this site/period) fire at different arrivals
        let a = FaultPlan::parse(1, "site=s,kind=deny,every=50").unwrap();
        let b = FaultPlan::parse(2, "site=s,kind=deny,every=50").unwrap();
        assert_ne!(a.rules()[0].phase, b.rules()[0].phase);
    }

    #[test]
    fn prefix_match() {
        let p = FaultPlan::parse(0, "site=delaunay.*,kind=fail").unwrap();
        assert!(p.fire(sites::INSERT_PREPARE, 0).is_some());
        assert!(p.fire(sites::REMOVE_PREPARE, 0).is_some());
        assert_eq!(p.fire(sites::ENGINE_OP, 0), None);
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_kind_panics() {
        let p = FaultPlan::parse(0, "site=refine.engine.worker,kind=panic").unwrap();
        p.fire(sites::ENGINE_WORKER, 3);
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        assert!(FaultPlan::parse(0, "kind=panic").is_err()); // missing site
        assert!(FaultPlan::parse(0, "site=x").is_err()); // missing kind
        assert!(FaultPlan::parse(0, "site=x,kind=explode").is_err());
        assert!(FaultPlan::parse(0, "site=x,kind=deny,every=0").is_err());
        assert!(FaultPlan::parse(0, "site=x,kind=deny,prob=1.5").is_err());
        assert!(FaultPlan::parse(0, "site=x,kind=deny,bogus=1").is_err());
        assert!(FaultPlan::parse(0, "site=x,kind=deny,novalue").is_err());
    }

    #[test]
    fn multi_rule_plans_fire_independently() {
        let p = FaultPlan::parse(
            9,
            "site=delaunay.insert.commit,kind=fail,nth=1;site=delaunay.remove.commit,kind=deny,nth=2",
        )
        .unwrap();
        assert_eq!(p.fire(sites::INSERT_COMMIT, 0), Some(Injected::Fail));
        assert_eq!(p.fire(sites::REMOVE_COMMIT, 0), None);
        assert_eq!(p.fire(sites::REMOVE_COMMIT, 0), Some(Injected::Deny));
        assert_eq!(p.injected(), 2);
    }

    #[test]
    fn delay_kind_sleeps_and_returns_none() {
        let p =
            FaultPlan::parse(0, "site=refine.cm.rollback,kind=delay,delay_ms=1,count=1").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(p.fire(sites::CM_ROLLBACK, 0), None);
        assert!(t0.elapsed() >= Duration::from_millis(1));
        assert_eq!(p.injected(), 1);
    }
}
