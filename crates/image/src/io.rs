//! Minimal image persistence: a plain text header plus raw `u8` labels.
//!
//! Format (`.pim` = "PI2M image"):
//!
//! ```text
//! PI2M-IMAGE 1
//! dims <nx> <ny> <nz>
//! spacing <sx> <sy> <sz>
//! origin <ox> <oy> <oz>
//! data
//! <nx*ny*nz raw bytes, x fastest>
//! ```

use crate::labeled::LabeledImage;
use pi2m_geometry::Point3;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write an image to a writer in `.pim` format.
pub fn write_pim<W: Write>(img: &LabeledImage, w: &mut W) -> io::Result<()> {
    let d = img.dims();
    let s = img.spacing();
    let o = img.origin();
    writeln!(w, "PI2M-IMAGE 1")?;
    writeln!(w, "dims {} {} {}", d[0], d[1], d[2])?;
    writeln!(w, "spacing {} {} {}", s[0], s[1], s[2])?;
    writeln!(w, "origin {} {} {}", o.x, o.y, o.z)?;
    writeln!(w, "data")?;
    w.write_all(img.data())?;
    Ok(())
}

/// Read an image in `.pim` format.
pub fn read_pim<R: Read>(r: R) -> io::Result<LabeledImage> {
    let mut br = BufReader::new(r);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    let mut line = String::new();
    br.read_line(&mut line)?;
    if line.trim() != "PI2M-IMAGE 1" {
        return Err(bad("bad magic"));
    }

    let mut dims = [0usize; 3];
    let mut spacing = [1.0f64; 3];
    let mut origin = [0.0f64; 3];
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            return Err(bad("unexpected EOF in header"));
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("dims") => {
                for d in &mut dims {
                    *d = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad dims"))?;
                }
            }
            Some("spacing") => {
                for s in &mut spacing {
                    *s = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad spacing"))?;
                }
            }
            Some("origin") => {
                for o in &mut origin {
                    *o = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad origin"))?;
                }
            }
            Some("data") => break,
            Some(k) => return Err(bad(&format!("unknown header key {k}"))),
            None => {}
        }
    }
    if dims.contains(&0) {
        return Err(bad("dims not specified"));
    }
    let n = dims[0] * dims[1] * dims[2];
    let mut buf = vec![0u8; n];
    br.read_exact(&mut buf)?;

    let mut img = LabeledImage::new(dims, spacing);
    img.set_origin(Point3::new(origin[0], origin[1], origin[2]));
    for k in 0..dims[2] {
        for j in 0..dims[1] {
            for i in 0..dims[0] {
                img.set(i, j, k, buf[(k * dims[1] + j) * dims[0] + i]);
            }
        }
    }
    Ok(img)
}

/// Save to a file path.
pub fn save(img: &LabeledImage, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    write_pim(img, &mut w)?;
    w.flush()
}

/// Load from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<LabeledImage> {
    read_pim(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantoms;

    #[test]
    fn roundtrip_in_memory() {
        let img = phantoms::nested_spheres(12, 0.5);
        let mut buf = Vec::new();
        write_pim(&img, &mut buf).unwrap();
        let back = read_pim(&buf[..]).unwrap();
        assert_eq!(back.dims(), img.dims());
        assert_eq!(back.spacing(), img.spacing());
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pim(&b"not an image"[..]).is_err());
        assert!(read_pim(&b"PI2M-IMAGE 1\ndims 4 4 4\ndata\nxx"[..]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let img = phantoms::sphere(10, 1.0);
        let dir = std::env::temp_dir().join("pi2m_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.pim");
        save(&img, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.data(), img.data());
        std::fs::remove_file(&path).ok();
    }
}
