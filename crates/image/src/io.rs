//! Minimal image persistence: a plain text header plus raw `u8` labels.
//!
//! Format (`.pim` = "PI2M image"):
//!
//! ```text
//! PI2M-IMAGE 1
//! dims <nx> <ny> <nz>
//! spacing <sx> <sy> <sz>
//! origin <ox> <oy> <oz>
//! data
//! <nx*ny*nz raw bytes, x fastest>
//! ```

use crate::labeled::LabeledImage;
use pi2m_geometry::Point3;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Write an image to a writer in `.pim` format.
pub fn write_pim<W: Write>(img: &LabeledImage, w: &mut W) -> io::Result<()> {
    let d = img.dims();
    let s = img.spacing();
    let o = img.origin();
    writeln!(w, "PI2M-IMAGE 1")?;
    writeln!(w, "dims {} {} {}", d[0], d[1], d[2])?;
    writeln!(w, "spacing {} {} {}", s[0], s[1], s[2])?;
    writeln!(w, "origin {} {} {}", o.x, o.y, o.z)?;
    writeln!(w, "data")?;
    w.write_all(img.data())?;
    Ok(())
}

/// Read an image in `.pim` format.
pub fn read_pim<R: Read>(r: R) -> io::Result<LabeledImage> {
    let mut br = BufReader::new(r);
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());

    let mut line = String::new();
    br.read_line(&mut line)?;
    if line.trim() != "PI2M-IMAGE 1" {
        return Err(bad("bad magic"));
    }

    let mut dims = [0usize; 3];
    let mut spacing = [1.0f64; 3];
    let mut origin = [0.0f64; 3];
    loop {
        line.clear();
        if br.read_line(&mut line)? == 0 {
            return Err(bad("unexpected EOF in header"));
        }
        let mut it = line.split_whitespace();
        match it.next() {
            Some("dims") => {
                for d in &mut dims {
                    *d = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad dims"))?;
                }
            }
            Some("spacing") => {
                for s in &mut spacing {
                    *s = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad spacing"))?;
                }
            }
            Some("origin") => {
                for o in &mut origin {
                    *o = it
                        .next()
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| bad("bad origin"))?;
                }
            }
            Some("data") => break,
            Some(k) => return Err(bad(&format!("unknown header key {k}"))),
            None => {}
        }
    }
    if dims.contains(&0) {
        return Err(bad("dims not specified"));
    }
    for (a, &s) in spacing.iter().enumerate() {
        if !s.is_finite() {
            return Err(bad(&format!("spacing[{a}] is not finite ({s})")));
        }
        if s <= 0.0 {
            return Err(bad(&format!("spacing[{a}] must be positive (got {s})")));
        }
    }
    if !origin.iter().all(|o| o.is_finite()) {
        return Err(bad("origin is not finite"));
    }
    // Reject dimension overflow *before* sizing the allocation: a hostile
    // header like `dims 4294967295 4294967295 4294967295` must not wrap the
    // voxel count into a small number (or abort on an oversized Vec).
    let n = dims[0]
        .checked_mul(dims[1])
        .and_then(|xy| xy.checked_mul(dims[2]))
        .ok_or_else(|| bad("dims overflow: voxel count exceeds addressable memory"))?;
    let mut buf = vec![0u8; n];
    br.read_exact(&mut buf)?;
    if buf.iter().all(|&b| b == 0) {
        return Err(bad("empty label set: image has no foreground voxels"));
    }

    let mut img = LabeledImage::new(dims, spacing);
    img.set_origin(Point3::new(origin[0], origin[1], origin[2]));
    for k in 0..dims[2] {
        for j in 0..dims[1] {
            for i in 0..dims[0] {
                img.set(i, j, k, buf[(k * dims[1] + j) * dims[0] + i]);
            }
        }
    }
    Ok(img)
}

/// Save to a file path.
pub fn save(img: &LabeledImage, path: impl AsRef<Path>) -> io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    write_pim(img, &mut w)?;
    w.flush()
}

/// Load from a file path.
pub fn load(path: impl AsRef<Path>) -> io::Result<LabeledImage> {
    read_pim(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phantoms;

    #[test]
    fn roundtrip_in_memory() {
        let img = phantoms::nested_spheres(12, 0.5);
        let mut buf = Vec::new();
        write_pim(&img, &mut buf).unwrap();
        let back = read_pim(&buf[..]).unwrap();
        assert_eq!(back.dims(), img.dims());
        assert_eq!(back.spacing(), img.spacing());
        assert_eq!(back.data(), img.data());
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_pim(&b"not an image"[..]).is_err());
        assert!(read_pim(&b"PI2M-IMAGE 1\ndims 4 4 4\ndata\nxx"[..]).is_err());
    }

    /// Build a header + one foreground voxel of data with the given
    /// spacing/origin lines, for exercising the load-time validation.
    fn pim_bytes(spacing: &str, origin: &str) -> Vec<u8> {
        let mut b = format!("PI2M-IMAGE 1\ndims 1 1 1\n{spacing}\n{origin}\ndata\n").into_bytes();
        b.push(1u8);
        b
    }

    fn err_of(bytes: &[u8]) -> String {
        read_pim(bytes).unwrap_err().to_string()
    }

    #[test]
    fn rejects_zero_spacing() {
        let e = err_of(&pim_bytes("spacing 0 1 1", "origin 0 0 0"));
        assert!(e.contains("spacing[0] must be positive"), "{e}");
    }

    #[test]
    fn rejects_negative_spacing() {
        let e = err_of(&pim_bytes("spacing 1 -0.5 1", "origin 0 0 0"));
        assert!(e.contains("spacing[1] must be positive"), "{e}");
    }

    #[test]
    fn rejects_nan_spacing() {
        let e = err_of(&pim_bytes("spacing 1 1 NaN", "origin 0 0 0"));
        assert!(e.contains("spacing[2] is not finite"), "{e}");
    }

    #[test]
    fn rejects_infinite_origin() {
        let e = err_of(&pim_bytes("spacing 1 1 1", "origin 0 inf 0"));
        assert!(e.contains("origin is not finite"), "{e}");
    }

    #[test]
    fn rejects_dimension_overflow() {
        let big = usize::MAX / 2;
        let hdr = format!("PI2M-IMAGE 1\ndims {big} {big} 2\nspacing 1 1 1\ndata\n");
        let e = err_of(hdr.as_bytes());
        assert!(e.contains("dims overflow"), "{e}");
    }

    #[test]
    fn rejects_empty_label_set() {
        let bytes = b"PI2M-IMAGE 1\ndims 2 1 1\nspacing 1 1 1\ndata\n\0\0";
        let e = err_of(bytes);
        assert!(e.contains("empty label set"), "{e}");
    }

    #[test]
    fn file_roundtrip() {
        let img = phantoms::sphere(10, 1.0);
        let dir = std::env::temp_dir().join("pi2m_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.pim");
        save(&img, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.data(), img.data());
        std::fs::remove_file(&path).ok();
    }
}
