//! # pi2m-image
//!
//! The image substrate for PI2M: dense multi-label segmented 3D voxel images
//! ([`LabeledImage`]) with anisotropic world spacing, surface-voxel queries,
//! procedural multi-tissue phantoms standing in for the paper's clinical
//! atlases ([`phantoms`]), and a tiny persistence format ([`io`]).

pub mod io;
pub mod labeled;
pub mod phantoms;

pub use labeled::{Label, LabeledImage, BACKGROUND};
