//! Multi-label segmented 3D images.
//!
//! The paper's inputs are segmented CT/MR atlases: each voxel carries a tissue
//! label, label 0 being background. World coordinates are anisotropic
//! (per-axis spacing in millimetres), voxel `(i, j, k)` occupying the world
//! cell centred at `origin + ((i + 0.5) sx, (j + 0.5) sy, (k + 0.5) sz)`.

use pi2m_geometry::{Aabb, Point3};

/// A tissue label. `0` is background; everything else is foreground.
pub type Label = u8;

/// The background label.
pub const BACKGROUND: Label = 0;

/// A dense 3D array of labels with world-space metadata.
#[derive(Clone, Debug)]
pub struct LabeledImage {
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    data: Vec<Label>,
}

impl LabeledImage {
    /// A new image filled with background.
    pub fn new(dims: [usize; 3], spacing: [f64; 3]) -> Self {
        assert!(dims.iter().all(|&d| d >= 1), "image dims must be >= 1");
        assert!(
            spacing.iter().all(|&s| s > 0.0 && s.is_finite()),
            "spacing must be positive"
        );
        LabeledImage {
            dims,
            spacing,
            origin: Point3::ORIGIN,
            data: vec![BACKGROUND; dims[0] * dims[1] * dims[2]],
        }
    }

    /// Build by evaluating `f` at every voxel center (world coordinates).
    pub fn from_fn(
        dims: [usize; 3],
        spacing: [f64; 3],
        mut f: impl FnMut(Point3) -> Label,
    ) -> Self {
        let mut img = Self::new(dims, spacing);
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let p = img.voxel_center(i, j, k);
                    let idx = img.linear_index(i, j, k);
                    img.data[idx] = f(p);
                }
            }
        }
        img
    }

    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    #[inline]
    pub fn spacing(&self) -> [f64; 3] {
        self.spacing
    }

    #[inline]
    pub fn origin(&self) -> Point3 {
        self.origin
    }

    pub fn set_origin(&mut self, origin: Point3) {
        self.origin = origin;
    }

    #[inline]
    pub fn num_voxels(&self) -> usize {
        self.data.len()
    }

    /// Smallest spacing component — the paper expresses δ in voxel-size
    /// multiples; this is the reference unit.
    #[inline]
    pub fn min_spacing(&self) -> f64 {
        self.spacing[0].min(self.spacing[1]).min(self.spacing[2])
    }

    #[inline]
    pub fn linear_index(&self, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(i < self.dims[0] && j < self.dims[1] && k < self.dims[2]);
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    /// Label at voxel `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> Label {
        self.data[self.linear_index(i, j, k)]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, k: usize, v: Label) {
        let idx = self.linear_index(i, j, k);
        self.data[idx] = v;
    }

    /// Raw label buffer (x fastest, z slowest).
    #[inline]
    pub fn data(&self) -> &[Label] {
        &self.data
    }

    /// World coordinates of the voxel center.
    #[inline]
    pub fn voxel_center(&self, i: usize, j: usize, k: usize) -> Point3 {
        self.origin
            + Point3::new(
                (i as f64 + 0.5) * self.spacing[0],
                (j as f64 + 0.5) * self.spacing[1],
                (k as f64 + 0.5) * self.spacing[2],
            )
    }

    /// The voxel containing world point `p`, or `None` if outside the image.
    pub fn world_to_voxel(&self, p: Point3) -> Option<[usize; 3]> {
        let rel = p - self.origin;
        let fi = rel.x / self.spacing[0];
        let fj = rel.y / self.spacing[1];
        let fk = rel.z / self.spacing[2];
        if fi < 0.0 || fj < 0.0 || fk < 0.0 {
            return None;
        }
        let (i, j, k) = (fi as usize, fj as usize, fk as usize);
        if i >= self.dims[0] || j >= self.dims[1] || k >= self.dims[2] {
            return None;
        }
        Some([i, j, k])
    }

    /// Label at a world point (nearest voxel); background outside the image.
    #[inline]
    pub fn label_at(&self, p: Point3) -> Label {
        match self.world_to_voxel(p) {
            Some([i, j, k]) => self.get(i, j, k),
            None => BACKGROUND,
        }
    }

    /// True iff the world point lies in a foreground voxel.
    #[inline]
    pub fn is_inside(&self, p: Point3) -> bool {
        self.label_at(p) != BACKGROUND
    }

    /// A *surface voxel* is a foreground voxel with at least one 6-neighbor
    /// of a different label (paper §3). Voxels on the image border with
    /// foreground labels also count (their out-of-image neighbor is
    /// background).
    pub fn is_surface_voxel(&self, i: usize, j: usize, k: usize) -> bool {
        let me = self.get(i, j, k);
        if me == BACKGROUND {
            return false;
        }
        let neighbors: [(isize, isize, isize); 6] = [
            (-1, 0, 0),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ];
        for (di, dj, dk) in neighbors {
            let ni = i as isize + di;
            let nj = j as isize + dj;
            let nk = k as isize + dk;
            if ni < 0
                || nj < 0
                || nk < 0
                || ni as usize >= self.dims[0]
                || nj as usize >= self.dims[1]
                || nk as usize >= self.dims[2]
            {
                return true; // border foreground voxel
            }
            if self.get(ni as usize, nj as usize, nk as usize) != me {
                return true;
            }
        }
        false
    }

    /// All surface voxels as index triples.
    pub fn surface_voxels(&self) -> Vec<[usize; 3]> {
        let mut out = Vec::new();
        for k in 0..self.dims[2] {
            for j in 0..self.dims[1] {
                for i in 0..self.dims[0] {
                    if self.is_surface_voxel(i, j, k) {
                        out.push([i, j, k]);
                    }
                }
            }
        }
        out
    }

    /// World-space bounding box of the whole image.
    pub fn bounds(&self) -> Aabb {
        let max = self.origin
            + Point3::new(
                self.dims[0] as f64 * self.spacing[0],
                self.dims[1] as f64 * self.spacing[1],
                self.dims[2] as f64 * self.spacing[2],
            );
        Aabb::new(self.origin, max)
    }

    /// World-space bounding box of foreground voxels (whole-voxel extents);
    /// `None` when the image is all background.
    pub fn foreground_bounds(&self) -> Option<Aabb> {
        let mut bb = Aabb::empty();
        let mut any = false;
        for k in 0..self.dims[2] {
            for j in 0..self.dims[1] {
                for i in 0..self.dims[0] {
                    if self.get(i, j, k) != BACKGROUND {
                        any = true;
                        let c = self.voxel_center(i, j, k);
                        let h = Point3::new(
                            self.spacing[0] * 0.5,
                            self.spacing[1] * 0.5,
                            self.spacing[2] * 0.5,
                        );
                        bb.include(c - h);
                        bb.include(c + h);
                    }
                }
            }
        }
        any.then_some(bb)
    }

    /// Histogram of label populations, indexed by label value.
    pub fn label_histogram(&self) -> [usize; 256] {
        let mut h = [0usize; 256];
        for &v in &self.data {
            h[v as usize] += 1;
        }
        h
    }

    /// Count of distinct non-background labels present.
    pub fn num_tissues(&self) -> usize {
        let h = self.label_histogram();
        h.iter().skip(1).filter(|&&c| c > 0).count()
    }

    /// Extract the voxel sub-box `lo..hi` (exclusive `hi`) as its own image.
    ///
    /// The crop keeps world alignment: its origin is shifted by
    /// `lo * spacing`, so voxel `(i, j, k)` of the crop covers the same world
    /// cell as voxel `lo + (i, j, k)` of the parent (bit-exactly when
    /// `lo * spacing` is exact in f64, e.g. unit or power-of-two spacing;
    /// within one ulp otherwise). This is the chunk view used by sharded
    /// meshing: chunk-local isosurface geometry lines up with the parent's.
    pub fn crop(&self, lo: [usize; 3], hi: [usize; 3]) -> LabeledImage {
        assert!(
            (0..3).all(|a| lo[a] < hi[a] && hi[a] <= self.dims[a]),
            "bad crop window {lo:?}..{hi:?} for dims {:?}",
            self.dims
        );
        let dims = [hi[0] - lo[0], hi[1] - lo[1], hi[2] - lo[2]];
        let mut out = LabeledImage::new(dims, self.spacing);
        out.origin = self.origin
            + Point3::new(
                lo[0] as f64 * self.spacing[0],
                lo[1] as f64 * self.spacing[1],
                lo[2] as f64 * self.spacing[2],
            );
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                let src = self.linear_index(lo[0], lo[1] + j, lo[2] + k);
                let dst = out.linear_index(0, j, k);
                out.data[dst..dst + dims[0]].copy_from_slice(&self.data[src..src + dims[0]]);
            }
        }
        out
    }

    /// Total foreground volume in world units (mm³).
    pub fn foreground_volume(&self) -> f64 {
        let voxel_vol = self.spacing[0] * self.spacing[1] * self.spacing[2];
        let fg = self.data.iter().filter(|&&v| v != BACKGROUND).count();
        fg as f64 * voxel_vol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabeledImage {
        let mut img = LabeledImage::new([4, 4, 4], [1.0, 1.0, 1.0]);
        img.set(1, 1, 1, 1);
        img.set(2, 1, 1, 1);
        img.set(1, 2, 1, 2);
        img
    }

    #[test]
    fn indexing_roundtrip() {
        let img = tiny();
        assert_eq!(img.get(1, 1, 1), 1);
        assert_eq!(img.get(1, 2, 1), 2);
        assert_eq!(img.get(0, 0, 0), BACKGROUND);
    }

    #[test]
    fn world_voxel_mapping() {
        let img = tiny();
        let c = img.voxel_center(2, 1, 1);
        assert_eq!(c, Point3::new(2.5, 1.5, 1.5));
        assert_eq!(img.world_to_voxel(c), Some([2, 1, 1]));
        assert_eq!(img.world_to_voxel(Point3::new(-0.1, 0.0, 0.0)), None);
        assert_eq!(img.world_to_voxel(Point3::new(4.01, 1.0, 1.0)), None);
        assert_eq!(img.label_at(c), 1);
        assert!(img.is_inside(c));
        assert!(!img.is_inside(Point3::new(0.1, 0.1, 0.1)));
    }

    #[test]
    fn anisotropic_spacing() {
        let img = LabeledImage::new([10, 10, 5], [0.5, 0.5, 2.0]);
        assert_eq!(img.voxel_center(0, 0, 0), Point3::new(0.25, 0.25, 1.0));
        assert_eq!(img.min_spacing(), 0.5);
        assert_eq!(
            img.world_to_voxel(Point3::new(4.9, 0.1, 9.9)),
            Some([9, 0, 4])
        );
    }

    #[test]
    fn surface_voxel_detection() {
        let img = tiny();
        // every set voxel in `tiny` touches background or a different label
        assert!(img.is_surface_voxel(1, 1, 1));
        assert!(img.is_surface_voxel(1, 2, 1));
        assert!(!img.is_surface_voxel(0, 0, 0)); // background is never surface

        // interior of a solid block is not surface
        let solid = LabeledImage::from_fn([5, 5, 5], [1.0; 3], |_| 1);
        assert!(solid.is_surface_voxel(0, 0, 0)); // image border counts
        assert!(!solid.is_surface_voxel(2, 2, 2));
    }

    #[test]
    fn surface_voxels_of_block() {
        // 3x3x3 foreground block centred in a 5x5x5 image: its surface is the
        // 26 outer voxels of the block (all except the center).
        let img = LabeledImage::from_fn([5, 5, 5], [1.0; 3], |p| {
            let inb = |v: f64| (1.0..4.0).contains(&v);
            if inb(p.x) && inb(p.y) && inb(p.z) {
                1
            } else {
                0
            }
        });
        let sv = img.surface_voxels();
        assert_eq!(sv.len(), 26);
        assert!(!sv.contains(&[2, 2, 2]));
    }

    #[test]
    fn histogram_and_volume() {
        let img = tiny();
        let h = img.label_histogram();
        assert_eq!(h[1], 2);
        assert_eq!(h[2], 1);
        assert_eq!(h[0], 64 - 3);
        assert_eq!(img.num_tissues(), 2);
        assert!((img.foreground_volume() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn crop_keeps_labels_and_world_alignment() {
        let img = tiny();
        let c = img.crop([1, 1, 1], [3, 3, 2]);
        assert_eq!(c.dims(), [2, 2, 1]);
        assert_eq!(c.get(0, 0, 0), 1);
        assert_eq!(c.get(1, 0, 0), 1);
        assert_eq!(c.get(0, 1, 0), 2);
        assert_eq!(c.get(1, 1, 0), BACKGROUND);
        // chunk voxel (i,j,k) sits exactly where parent voxel lo+(i,j,k) does
        assert_eq!(c.voxel_center(0, 0, 0), img.voxel_center(1, 1, 1));
        assert_eq!(c.voxel_center(1, 1, 0), img.voxel_center(2, 2, 1));
        // full-image crop is an identity
        let full = img.crop([0, 0, 0], img.dims());
        assert_eq!(full.data(), img.data());
        assert_eq!(full.origin(), img.origin());
    }

    #[test]
    #[should_panic(expected = "bad crop window")]
    fn crop_rejects_inverted_window() {
        tiny().crop([2, 0, 0], [1, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "bad crop window")]
    fn crop_rejects_out_of_bounds_window() {
        tiny().crop([0, 0, 0], [5, 4, 4]);
    }

    #[test]
    fn foreground_bounds() {
        let img = tiny();
        let bb = img.foreground_bounds().unwrap();
        assert_eq!(bb.min, Point3::new(1.0, 1.0, 1.0));
        assert_eq!(bb.max, Point3::new(3.0, 3.0, 2.0));
        let empty = LabeledImage::new([3, 3, 3], [1.0; 3]);
        assert!(empty.foreground_bounds().is_none());
    }
}
