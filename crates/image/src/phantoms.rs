//! Synthetic multi-label atlas phantoms.
//!
//! The paper evaluates on three proprietary/clinical segmented images
//! (Table 3): an IRCAD abdominal CT atlas, the SPL knee MR atlas, and the SPL
//! head-neck CT atlas. Those files are not redistributable, so these
//! procedural phantoms substitute them (see DESIGN.md "Substitutions"): each
//! has the same *structural character* — multiple tissues, curved smooth
//! interfaces, nested and adjacent label regions, thin structures — which is
//! what exercises the isosurface recovery (rules R1–R3) and multi-tissue
//! meshing code paths.
//!
//! All phantoms take a `scale` factor; `scale = 1.0` produces laptop-sized
//! images (≈64³ voxel class), larger scales approach the paper's 512²-class
//! inputs.

use crate::labeled::LabeledImage;
use pi2m_geometry::Point3;

/// Metadata tying a phantom to the paper input it substitutes.
#[derive(Clone, Debug)]
pub struct PhantomSpec {
    /// Short identifier used by benches and examples.
    pub name: &'static str,
    /// The paper input this phantom stands in for.
    pub paper_analog: &'static str,
    /// Paper image dimensions (Table 3).
    pub paper_dims: [usize; 3],
    /// Paper voxel spacing in mm (Table 3).
    pub paper_spacing: [f64; 3],
    /// Number of tissues in the paper input (Table 3).
    pub paper_tissues: usize,
    /// Generated dimensions at the given scale.
    pub dims: [usize; 3],
    /// Generated spacing (mm).
    pub spacing: [f64; 3],
    /// Number of tissues generated.
    pub tissues: usize,
}

/// Normalized coordinates helper: maps voxel-center world coordinates into
/// `[-1, 1]³` for resolution-independent implicit shapes.
struct Norm {
    center: Point3,
    half: Point3,
}

impl Norm {
    fn new(dims: [usize; 3], spacing: [f64; 3]) -> Norm {
        let ext = Point3::new(
            dims[0] as f64 * spacing[0],
            dims[1] as f64 * spacing[1],
            dims[2] as f64 * spacing[2],
        );
        Norm {
            center: ext * 0.5,
            half: ext * 0.5,
        }
    }

    #[inline]
    fn at(&self, p: Point3) -> Point3 {
        let d = p - self.center;
        Point3::new(d.x / self.half.x, d.y / self.half.y, d.z / self.half.z)
    }
}

#[inline]
fn ellipsoid(q: Point3, c: Point3, r: Point3) -> f64 {
    let d = q - c;
    (d.x / r.x).powi(2) + (d.y / r.y).powi(2) + (d.z / r.z).powi(2) - 1.0
}

/// Implicit finite cylinder along z: negative inside.
#[inline]
fn zcylinder(q: Point3, c: Point3, radius: f64, half_len: f64) -> f64 {
    let dr = ((q.x - c.x).powi(2) + (q.y - c.y).powi(2)).sqrt() - radius;
    let dz = (q.z - c.z).abs() - half_len;
    dr.max(dz)
}

#[inline]
fn torus_z(q: Point3, c: Point3, major: f64, minor: f64) -> f64 {
    let d = q - c;
    let ring = (d.x * d.x + d.y * d.y).sqrt() - major;
    (ring * ring + d.z * d.z).sqrt() - minor
}

fn scaled_dims(base: [usize; 3], scale: f64) -> [usize; 3] {
    [
        ((base[0] as f64 * scale).round() as usize).max(8),
        ((base[1] as f64 * scale).round() as usize).max(8),
        ((base[2] as f64 * scale).round() as usize).max(8),
    ]
}

/// A single solid sphere (label 1) of radius 0.7 (normalized), the simplest
/// smoke-test input (used by the quickstart and Figure 1 reproduction).
pub fn sphere(n: usize, spacing: f64) -> LabeledImage {
    let dims = [n, n, n];
    let sp = [spacing; 3];
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let q = norm.at(p);
        if q.norm() < 0.7 {
            1
        } else {
            0
        }
    })
}

/// Two nested spheres: core (label 2) inside a shell (label 1). Exercises
/// interior multi-material interfaces.
pub fn nested_spheres(n: usize, spacing: f64) -> LabeledImage {
    let dims = [n, n, n];
    let sp = [spacing; 3];
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let r = norm.at(p).norm();
        if r < 0.35 {
            2
        } else if r < 0.7 {
            1
        } else {
            0
        }
    })
}

/// A solid torus (label 1): genus-1 topology test for isosurface recovery.
pub fn torus(n: usize, spacing: f64) -> LabeledImage {
    let dims = [n, n, n];
    let sp = [spacing; 3];
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let q = norm.at(p);
        if torus_z(q, Point3::ORIGIN, 0.55, 0.22) < 0.0 {
            1
        } else {
            0
        }
    })
}

/// Abdominal phantom — stands in for the IRCAD CT abdominal atlas
/// (512×512×219 @ 0.96×0.96×2.4 mm, 23 tissues).
///
/// Structure: a body trunk (label 1) containing a liver-like two-lobe blob
/// (2), two kidneys (3), a spine column (4), an aorta tube (5), and a
/// stomach pouch (6).
pub fn abdominal(scale: f64) -> LabeledImage {
    let dims = scaled_dims([64, 64, 28], scale);
    let sp = [0.96, 0.96, 2.4];
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let q = norm.at(p);
        // trunk: rounded-square cross-section, full z extent
        let trunk = {
            let s = 4.0;
            let cross = (q.x.abs().powf(s) + q.y.abs().powf(s)).powf(1.0 / s) - 0.82;
            cross.max(q.z.abs() - 0.92)
        };
        if trunk >= 0.0 {
            return 0;
        }
        // organs, checked innermost-first
        let liver = ellipsoid(
            q,
            Point3::new(-0.32, -0.10, 0.15),
            Point3::new(0.34, 0.28, 0.38),
        )
        .min(ellipsoid(
            q,
            Point3::new(-0.05, -0.22, 0.25),
            Point3::new(0.22, 0.18, 0.25),
        ));
        let kid_l = ellipsoid(
            q,
            Point3::new(-0.34, 0.34, -0.28),
            Point3::new(0.14, 0.11, 0.22),
        );
        let kid_r = ellipsoid(
            q,
            Point3::new(0.34, 0.34, -0.28),
            Point3::new(0.14, 0.11, 0.22),
        );
        let spine = zcylinder(q, Point3::new(0.0, 0.55, 0.0), 0.12, 0.90);
        let aorta = zcylinder(q, Point3::new(0.08, 0.30, 0.0), 0.055, 0.90);
        let stomach = ellipsoid(
            q,
            Point3::new(0.28, -0.20, 0.30),
            Point3::new(0.24, 0.20, 0.22),
        );

        if liver < 0.0 {
            2
        } else if kid_l < 0.0 || kid_r < 0.0 {
            3
        } else if spine < 0.0 {
            4
        } else if aorta < 0.0 {
            5
        } else if stomach < 0.0 {
            6
        } else {
            1
        }
    })
}

/// Knee phantom — stands in for the SPL MR knee atlas
/// (512×512×119 @ 0.27×0.27×1.4 mm, 49 tissues).
///
/// Structure: soft-tissue envelope (1), femur (2) and tibia (3) long bones
/// meeting at the joint, femoral (4) and tibial (5) cartilage layers in the
/// joint gap, and a patella (6).
pub fn knee(scale: f64) -> LabeledImage {
    let dims = scaled_dims([56, 56, 48], scale);
    let sp = [0.27 * 4.0, 0.27 * 4.0, 1.4]; // coarsened in-plane to keep aspect sane
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let q = norm.at(p);
        let soft = ellipsoid(q, Point3::ORIGIN, Point3::new(0.80, 0.80, 0.95));
        if soft >= 0.0 {
            return 0;
        }
        // femur above joint (z > 0.08), flaring into condyles near z=0.15
        let flare = |z: f64| 0.20 + 0.16 * (1.0 - ((z - 0.18) / 0.35).clamp(0.0, 1.0));
        let femur = if q.z > 0.08 {
            let r = ((q.x).powi(2) + (q.y + 0.05).powi(2)).sqrt() - flare(q.z);
            r.max(q.z - 0.90)
        } else {
            1.0
        };
        let tibia = if q.z < -0.10 {
            let r = ((q.x).powi(2) + (q.y + 0.02).powi(2)).sqrt()
                - (0.19 + 0.10 * ((-q.z - 0.10) / 0.30).min(1.0));
            r.max(-q.z - 0.90)
        } else {
            1.0
        };
        // cartilage: thin shells capping the bones across the joint space
        let fem_cart = ellipsoid(
            q,
            Point3::new(0.0, -0.03, 0.08),
            Point3::new(0.33, 0.30, 0.09),
        );
        let tib_cart = ellipsoid(
            q,
            Point3::new(0.0, 0.00, -0.10),
            Point3::new(0.31, 0.28, 0.08),
        );
        let patella = ellipsoid(
            q,
            Point3::new(0.0, -0.52, 0.12),
            Point3::new(0.14, 0.10, 0.18),
        );

        if femur < 0.0 {
            2
        } else if tibia < 0.0 {
            3
        } else if fem_cart < 0.0 {
            4
        } else if tib_cart < 0.0 {
            5
        } else if patella < 0.0 {
            6
        } else {
            1
        }
    })
}

/// Head-neck phantom — stands in for the SPL CT head-neck atlas
/// (255×255×229 @ 0.97×0.97×1.4 mm, 60 tissues).
///
/// Structure: skin/soft tissue (1), skull shell (2), brain (3), cervical
/// spine column (4), airway (a background tunnel through the neck), and
/// mandible-like bar (5).
pub fn head_neck(scale: f64) -> LabeledImage {
    let dims = scaled_dims([52, 52, 46], scale);
    let sp = [0.97, 0.97, 1.4];
    let norm = Norm::new(dims, sp);
    LabeledImage::from_fn(dims, sp, |p| {
        let q = norm.at(p);
        // head (upper ellipsoid) + neck (lower cylinder)
        let head = ellipsoid(
            q,
            Point3::new(0.0, 0.0, 0.35),
            Point3::new(0.62, 0.70, 0.55),
        );
        let neck = zcylinder(q, Point3::new(0.0, 0.10, -0.55), 0.33, 0.42);
        let body = head.min(neck);
        if body >= 0.0 {
            return 0;
        }
        // airway: tunnel up the neck into the head — carved out of everything
        let airway = zcylinder(q, Point3::new(0.0, -0.12, -0.40), 0.07, 0.55);
        if airway < 0.0 {
            return 0;
        }
        let brain = ellipsoid(
            q,
            Point3::new(0.0, 0.02, 0.42),
            Point3::new(0.42, 0.50, 0.35),
        );
        let skull = ellipsoid(
            q,
            Point3::new(0.0, 0.02, 0.42),
            Point3::new(0.50, 0.58, 0.43),
        );
        let spine = zcylinder(q, Point3::new(0.0, 0.22, -0.45), 0.09, 0.55);
        let jaw = ellipsoid(
            q,
            Point3::new(0.0, -0.42, -0.02),
            Point3::new(0.30, 0.16, 0.10),
        );

        if brain < 0.0 {
            3
        } else if skull < 0.0 {
            2
        } else if spine < 0.0 {
            4
        } else if jaw < 0.0 {
            5
        } else {
            1
        }
    })
}

/// Specs tying each phantom to its paper analog (reproduces Table 3's rows).
pub fn specs(scale: f64) -> Vec<PhantomSpec> {
    let mk = |name, paper_analog, paper_dims, paper_spacing, paper_tissues, img: &LabeledImage| {
        PhantomSpec {
            name,
            paper_analog,
            paper_dims,
            paper_spacing,
            paper_tissues,
            dims: img.dims(),
            spacing: img.spacing(),
            tissues: img.num_tissues(),
        }
    };
    let abd = abdominal(scale);
    let kn = knee(scale);
    let hn = head_neck(scale);
    vec![
        mk(
            "abdominal",
            "IRCAD CT abdominal atlas",
            [512, 512, 219],
            [0.96, 0.96, 2.4],
            23,
            &abd,
        ),
        mk(
            "knee",
            "SPL MR knee atlas",
            [512, 512, 119],
            [0.27, 0.27, 1.4],
            49,
            &kn,
        ),
        mk(
            "head-neck",
            "SPL CT head-neck atlas",
            [255, 255, 229],
            [0.97, 0.97, 1.4],
            60,
            &hn,
        ),
    ]
}

/// Look a phantom up by name (as used in benches/examples CLI).
pub fn by_name(name: &str, scale: f64) -> Option<LabeledImage> {
    match name {
        "sphere" => Some(sphere((32.0 * scale) as usize, 1.0)),
        "nested" => Some(nested_spheres((32.0 * scale) as usize, 1.0)),
        "torus" => Some(torus((32.0 * scale) as usize, 1.0)),
        "abdominal" => Some(abdominal(scale)),
        "knee" => Some(knee(scale)),
        "head-neck" | "head_neck" => Some(head_neck(scale)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labeled::BACKGROUND;

    #[test]
    fn sphere_has_foreground_and_background() {
        let img = sphere(24, 1.0);
        let h = img.label_histogram();
        assert!(h[0] > 0 && h[1] > 0);
        // center voxel inside, corner outside
        assert_eq!(img.get(12, 12, 12), 1);
        assert_eq!(img.get(0, 0, 0), BACKGROUND);
        // volume should be near (4/3)π(0.7·12)³ (normalized radius 0.7)
        let expect = 4.0 / 3.0 * std::f64::consts::PI * (0.7f64 * 12.0).powi(3);
        let got = h[1] as f64;
        assert!((got - expect).abs() / expect < 0.05, "{got} vs {expect}");
    }

    #[test]
    fn nested_spheres_have_two_tissues() {
        let img = nested_spheres(24, 1.0);
        assert_eq!(img.num_tissues(), 2);
        assert_eq!(img.get(12, 12, 12), 2);
    }

    #[test]
    fn torus_has_hole() {
        let img = torus(32, 1.0);
        assert_eq!(img.get(16, 16, 16), BACKGROUND); // center of the hole
        assert!(img.num_tissues() == 1);
        assert!(img.label_histogram()[1] > 100);
    }

    #[test]
    fn abdominal_tissue_inventory() {
        let img = abdominal(1.0);
        let h = img.label_histogram();
        // all six tissues present, trunk is the largest
        for (l, &c) in h.iter().enumerate().take(7).skip(1) {
            assert!(c > 0, "tissue {l} missing ({c})");
        }
        assert!(h[1] > h[2] && h[2] > h[3]);
        assert_eq!(img.num_tissues(), 6);
    }

    #[test]
    fn knee_tissue_inventory() {
        let img = knee(1.0);
        let h = img.label_histogram();
        for (l, &c) in h.iter().enumerate().take(7).skip(1) {
            assert!(c > 0, "tissue {l} missing");
        }
    }

    #[test]
    fn head_neck_tissue_inventory_and_airway() {
        let img = head_neck(1.0);
        let h = img.label_histogram();
        for (l, &c) in h.iter().enumerate().take(6).skip(1) {
            assert!(c > 0, "tissue {l} missing");
        }
        // the airway must carve background through the neck region interior
        let dims = img.dims();
        let (ci, cj) = (dims[0] / 2, (dims[1] as f64 * 0.44) as usize);
        let mut bg_in_column = 0;
        for k in 0..dims[2] / 3 {
            if img.get(ci, cj, k) == BACKGROUND {
                bg_in_column += 1;
            }
        }
        assert!(bg_in_column > 0, "airway not carved");
    }

    #[test]
    fn specs_match_generated_images() {
        let s = specs(1.0);
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].paper_dims, [512, 512, 219]);
        assert!(s.iter().all(|p| p.tissues >= 5));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("sphere", 1.0).is_some());
        assert!(by_name("abdominal", 0.5).is_some());
        assert!(by_name("nonexistent", 1.0).is_none());
    }

    #[test]
    fn scaling_changes_dims() {
        let small = abdominal(0.5);
        let big = abdominal(1.0);
        assert!(small.dims()[0] < big.dims()[0]);
    }
}
