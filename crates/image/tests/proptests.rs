//! Property tests: image persistence roundtrip and coordinate mapping
//! invariants on random images.

use pi2m_geometry::Point3;
use pi2m_image::{io, LabeledImage};
use proptest::prelude::*;

fn arb_image() -> impl Strategy<Value = LabeledImage> {
    (
        2usize..8,
        2usize..8,
        2usize..8,
        0.25f64..3.0,
        0.25f64..3.0,
        0.25f64..3.0,
        any::<u64>(),
    )
        .prop_map(|(nx, ny, nz, sx, sy, sz, seed)| {
            let mut s = seed | 1;
            let mut next = move || {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                (s >> 56) as u8 % 4
            };
            let mut img = LabeledImage::new([nx, ny, nz], [sx, sy, sz]);
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        img.set(i, j, k, next());
                    }
                }
            }
            img
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pim_roundtrip(img in arb_image()) {
        let mut buf = Vec::new();
        io::write_pim(&img, &mut buf).unwrap();
        let back = io::read_pim(&buf[..]).unwrap();
        prop_assert_eq!(back.dims(), img.dims());
        prop_assert_eq!(back.spacing(), img.spacing());
        prop_assert_eq!(back.data(), img.data());
    }

    #[test]
    fn voxel_center_roundtrips_through_world(img in arb_image()) {
        let d = img.dims();
        for (i, j, k) in [(0, 0, 0), (d[0]-1, d[1]-1, d[2]-1), (d[0]/2, d[1]/2, d[2]/2)] {
            let c = img.voxel_center(i, j, k);
            prop_assert_eq!(img.world_to_voxel(c), Some([i, j, k]));
        }
    }

    #[test]
    fn histogram_sums_to_voxel_count(img in arb_image()) {
        let h = img.label_histogram();
        let total: usize = h.iter().sum();
        prop_assert_eq!(total, img.num_voxels());
        // foreground volume consistent with histogram
        let fg: usize = h.iter().skip(1).sum();
        let s = img.spacing();
        let expect = fg as f64 * s[0] * s[1] * s[2];
        prop_assert!((img.foreground_volume() - expect).abs() < 1e-9);
    }

    #[test]
    fn surface_voxels_are_foreground(img in arb_image()) {
        for [i, j, k] in img.surface_voxels() {
            prop_assert_ne!(img.get(i, j, k), 0);
        }
    }

    #[test]
    fn label_at_outside_is_background(img in arb_image()) {
        let b = img.bounds();
        prop_assert_eq!(img.label_at(b.min - Point3::new(1.0, 0.0, 0.0)), 0);
        prop_assert_eq!(img.label_at(b.max + Point3::new(0.0, 1.0, 0.0)), 0);
    }
}
