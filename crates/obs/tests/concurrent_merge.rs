//! Recorders are owned by their worker thread and merged at join — the
//! ownership pattern the refinement engine uses. No `Arc`, no atomics: each
//! `ThreadRecorder` moves into its thread, comes back through `join()`, and
//! is folded into one snapshot by the spawning thread.

use pi2m_obs::metrics::{self, MetricsSnapshot, ThreadRecorder};

#[test]
fn recorders_merge_across_real_threads() {
    const THREADS: u64 = 8;
    const OPS_PER_THREAD: u64 = 1000;

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || {
                let mut rec = ThreadRecorder::new();
                for i in 0..OPS_PER_THREAD {
                    rec.inc(metrics::OPS_INSERTIONS, 1);
                    rec.inc(metrics::CELLS_CREATED, 4);
                    // distinct magnitudes per thread so histogram contents
                    // depend on every thread being merged
                    rec.observe(metrics::CAVITY_CELLS, (t * OPS_PER_THREAD + i) as f64);
                }
                rec.event("worker", "worker", t as f64, 1.0);
                rec
            })
        })
        .collect();

    let mut snap = MetricsSnapshot::new();
    for (t, h) in handles.into_iter().enumerate() {
        let rec = h.join().expect("worker panicked");
        rec.merge_into(t as u32, &mut snap);
    }

    let n = THREADS * OPS_PER_THREAD;
    assert_eq!(snap.counter(metrics::OPS_INSERTIONS), n);
    assert_eq!(snap.counter(metrics::CELLS_CREATED), 4 * n);
    assert_eq!(snap.threads_merged, THREADS as u32);

    let h = snap.hist(metrics::CAVITY_CELLS);
    assert_eq!(h.count, n);
    // sum of 0..n is exactly representable in f64 at this size
    assert_eq!(h.sum, (n * (n - 1) / 2) as f64);
    assert_eq!(h.max, (n - 1) as f64);

    // one lifetime event per worker, tagged with the tid used at merge
    assert_eq!(snap.events.len(), THREADS as usize);
    let mut tids: Vec<u32> = snap.events.iter().map(|(t, _)| *t).collect();
    tids.sort_unstable();
    assert_eq!(tids, (0..THREADS as u32).collect::<Vec<_>>());
}

/// Merging the same totals in a different thread order yields identical
/// counters and histograms (merge is commutative), so scheduling order
/// cannot change a report.
#[test]
fn merge_order_does_not_matter() {
    let mk = |seed: u64| {
        let mut rec = ThreadRecorder::new();
        rec.inc(metrics::OPS_ROLLBACKS, seed);
        rec.observe(metrics::ROLLBACK_SECONDS, seed as f64 * 1e-4);
        rec
    };
    let mut fwd = MetricsSnapshot::new();
    for (t, s) in [1u64, 2, 3].iter().enumerate() {
        mk(*s).merge_into(t as u32, &mut fwd);
    }
    let mut rev = MetricsSnapshot::new();
    for (t, s) in [3u64, 2, 1].iter().enumerate() {
        mk(*s).merge_into(t as u32, &mut rev);
    }
    assert_eq!(
        fwd.counter(metrics::OPS_ROLLBACKS),
        rev.counter(metrics::OPS_ROLLBACKS)
    );
    assert_eq!(
        fwd.hist(metrics::ROLLBACK_SECONDS).count,
        rev.hist(metrics::ROLLBACK_SECONDS).count
    );
    assert_eq!(
        fwd.hist(metrics::ROLLBACK_SECONDS).sum,
        rev.hist(metrics::ROLLBACK_SECONDS).sum
    );
    assert_eq!(
        fwd.hist(metrics::ROLLBACK_SECONDS).buckets,
        rev.hist(metrics::ROLLBACK_SECONDS).buckets
    );
}
