//! Flight-recorder stress tests: many writers hammering small rings while a
//! concurrent reader drains them incrementally. The SPSC discipline is
//! per-ring (one writer each); the single reader races every writer, so any
//! slot it observes may be mid-overwrite — the per-event checksum must
//! reject exactly those, and every event that *passes* must be internally
//! consistent (no torn payloads) with monotonically non-decreasing tallies.

use pi2m_obs::flight::{EventKind, FlightRecorder, FlightSampler};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: usize = 8;
const PER_WRITER: u32 = 120_000;
/// Small rings so the writers lap the reader constantly.
const RING_CAP: usize = 1 << 10;

/// Payload invariant every pushed event satisfies; a torn slot that slipped
/// past the checksum would violate it with overwhelming probability.
fn expected_b(tid: u16, a: u32) -> u32 {
    a.wrapping_mul(0x9e37_79b1) ^ (tid as u32) ^ 0x5bd1_e995
}

#[test]
fn eight_writers_one_reader_no_torn_events() {
    let rec = Arc::new(FlightRecorder::new(WRITERS, RING_CAP));
    let stop = Arc::new(AtomicBool::new(false));

    let (seen, dropped, torn) = std::thread::scope(|s| {
        let mut writers = Vec::new();
        for tid in 0..WRITERS {
            let rec = Arc::clone(&rec);
            writers.push(s.spawn(move || {
                let h = rec.handle(tid);
                for a in 0..PER_WRITER {
                    h.emit(EventKind::OpCommit, 0, a, expected_b(tid as u16, a), !a);
                }
            }));
        }

        let rec2 = Arc::clone(&rec);
        let stop2 = Arc::clone(&stop);
        let reader = s.spawn(move || {
            let mut cursors = [0u64; WRITERS];
            let (mut seen, mut dropped, mut torn) = (0u64, 0u64, 0u64);
            loop {
                let finished = stop2.load(Ordering::Acquire);
                for (t, cur) in cursors.iter_mut().enumerate() {
                    let rr = rec2.ring(t).read_from(*cur);
                    *cur = rr.cursor;
                    dropped += rr.dropped;
                    torn += rr.torn;
                    for e in &rr.events {
                        assert_eq!(e.kind, EventKind::OpCommit, "garbage kind surfaced");
                        assert_eq!(e.tid as usize, t, "event crossed rings");
                        assert_eq!(
                            e.b,
                            expected_b(t as u16, e.a),
                            "torn payload passed the checksum (a={})",
                            e.a
                        );
                        assert_eq!(e.c, !e.a, "torn payload passed the checksum");
                        seen += 1;
                    }
                }
                if finished {
                    break;
                }
            }
            (seen, dropped, torn)
        });

        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        reader.join().unwrap()
    });

    let total = WRITERS as u64 * PER_WRITER as u64;
    assert!(seen > 0, "reader observed nothing");
    assert!(
        seen + dropped + torn >= total,
        "events unaccounted for: seen {seen} + dropped {dropped} + torn {torn} < {total}"
    );
    assert!(
        seen + dropped + torn <= total + (WRITERS * RING_CAP) as u64,
        "over-accounted: seen {seen} + dropped {dropped} + torn {torn}"
    );
    // the rings are tiny and the writers fast: wraps must have happened
    assert!(dropped > 0, "test did not exercise overwrite-on-wrap");
}

#[test]
fn sampler_tallies_are_monotonic_under_contention() {
    let rec = Arc::new(FlightRecorder::new(WRITERS, RING_CAP));
    let stop = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        let mut writers = Vec::new();
        for tid in 0..WRITERS {
            let rec = Arc::clone(&rec);
            writers.push(s.spawn(move || {
                let h = rec.handle(tid);
                for a in 0..PER_WRITER {
                    // alternate kinds so both tallies advance
                    let kind = if a % 3 == 0 {
                        EventKind::Rollback
                    } else {
                        EventKind::OpCommit
                    };
                    h.emit(kind, 0, a, expected_b(tid as u16, a), !a);
                }
            }));
        }

        let rec2 = Arc::clone(&rec);
        let stop2 = Arc::clone(&stop);
        let reader = s.spawn(move || {
            let mut sampler = FlightSampler::new(&rec2);
            let (mut ops, mut commits, mut rollbacks) = (0u64, 0u64, 0u64);
            let mut rounds = 0u64;
            loop {
                let finished = stop2.load(Ordering::Acquire);
                sampler.sample(&rec2);
                let t = sampler.tallies();
                assert!(t.ops() >= ops, "ops went backwards: {} < {ops}", t.ops());
                assert!(t.commits >= commits, "commits went backwards");
                assert!(t.rollbacks >= rollbacks, "rollbacks went backwards");
                ops = t.ops();
                commits = t.commits;
                rollbacks = t.rollbacks;
                rounds += 1;
                if finished {
                    break;
                }
            }
            (ops, rounds)
        });

        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let (ops, rounds) = reader.join().unwrap();
        assert!(rounds > 1, "reader never raced the writers");
        assert!(ops > 0, "sampler saw nothing");
        // the final sample ran after all writers joined: accounting closes
        let t = {
            let mut s2 = FlightSampler::new(&rec);
            s2.sample(&rec);
            *s2.tallies()
        };
        assert!(
            t.commits + t.rollbacks + t.dropped >= WRITERS as u64 * PER_WRITER as u64,
            "quiescent accounting must cover every push"
        );
    });
}
