//! Golden-output test for the Prometheus text exposition (format 0.0.4):
//! every metric in the catalog must expose well-formed `# HELP` / `# TYPE`
//! headers, every histogram must emit monotone cumulative buckets closed by
//! a `+Inf` bucket that equals its `_count`, and `_sum` / `_count` must be
//! present — whether the top log₂ bucket was hit (inline `+Inf`) or not
//! (the explicit closing-line path).

use pi2m_obs::metrics::{self, CounterId, HistId, MetricKind, ThreadRecorder};
use pi2m_obs::{render_prometheus, RunReport, TraceSpan};

/// A report where EVERY cataloged counter and histogram has data, so the
/// exposition covers the full catalog. Histogram 0 additionally gets a
/// sample in the top log₂ bucket (inline `+Inf` path); the others only get
/// small samples (explicit closing `+Inf` path).
fn full_report() -> RunReport {
    let mut rec = ThreadRecorder::new();
    for (i, _) in metrics::COUNTERS.iter().enumerate() {
        rec.inc(CounterId(i as u16), i as u64 + 1);
    }
    for (i, _) in metrics::HISTOGRAMS.iter().enumerate() {
        rec.observe(HistId(i as u16), 0.5);
        rec.observe(HistId(i as u16), 123.0);
        if i == 0 {
            rec.observe(HistId(i as u16), 1e12); // clamps into the top bucket
        }
    }
    let mut r = RunReport::new("golden");
    rec.merge_into(0, &mut r.metrics);
    r.threads = 1;
    r.wall_s = 1.0;
    r.set_phases(&[TraceSpan {
        name: "volume_refinement",
        start_s: 0.0,
        dur_s: 1.0,
    }]);
    r.overheads.rollback_s = 0.25;
    r
}

/// The `le` bound and cumulative count of one `_bucket` sample line.
fn parse_bucket_line(line: &str, name: &str) -> Option<(f64, u64)> {
    let rest = line.strip_prefix(&format!("{name}_bucket{{le=\""))?;
    let (le, rest) = rest.split_once("\"}")?;
    let le = if le == "+Inf" {
        f64::INFINITY
    } else {
        le.parse().ok()?
    };
    Some((le, rest.trim().parse().ok()?))
}

#[test]
fn every_cataloged_metric_has_help_and_type_lines() {
    let text = render_prometheus(&full_report());
    for def in metrics::catalog() {
        let name = format!("pi2m_{}", def.name);
        let kind = match def.kind {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
        };
        let help = format!("# HELP {name} ");
        let typ = format!("# TYPE {name} {kind}\n");
        assert!(text.contains(&help), "missing HELP for {name}");
        assert!(text.contains(&typ), "missing/incorrect TYPE for {name}");
        // HELP must precede TYPE, immediately
        let at = text.find(&help).unwrap();
        let after_help = &text[at..];
        let help_line_end = after_help.find('\n').unwrap();
        assert!(
            after_help[help_line_end + 1..].starts_with(&typ[..typ.len() - 1]),
            "TYPE does not directly follow HELP for {name}"
        );
    }
}

#[test]
fn every_counter_exposes_one_sample_line() {
    let text = render_prometheus(&full_report());
    for (i, def) in metrics::COUNTERS.iter().enumerate() {
        let line = format!("pi2m_{} {}\n", def.name, i + 1);
        assert!(text.contains(&line), "missing counter sample: {line:?}");
    }
}

#[test]
fn histograms_are_monotone_and_close_with_inf_equal_to_count() {
    let report = full_report();
    let text = render_prometheus(&report);
    for (i, def) in metrics::HISTOGRAMS.iter().enumerate() {
        let name = format!("pi2m_{}", def.name);
        let expected_count = if i == 0 { 3 } else { 2 };

        let buckets: Vec<(f64, u64)> = text
            .lines()
            .filter_map(|l| parse_bucket_line(l, &name))
            .collect();
        assert!(!buckets.is_empty(), "{name}: no bucket lines");
        for pair in buckets.windows(2) {
            assert!(
                pair[0].0 < pair[1].0,
                "{name}: le bounds not increasing: {pair:?}"
            );
            assert!(
                pair[0].1 <= pair[1].1,
                "{name}: cumulative counts decreased: {pair:?}"
            );
        }
        // exactly one +Inf bucket, last, carrying the total sample count —
        // on both renderer paths (top bucket hit vs explicit closing line)
        let infs = buckets.iter().filter(|(le, _)| le.is_infinite()).count();
        assert_eq!(infs, 1, "{name}: expected exactly one +Inf bucket");
        let (last_le, last_cum) = *buckets.last().unwrap();
        assert!(last_le.is_infinite(), "{name}: last bucket is not +Inf");
        assert_eq!(last_cum, expected_count, "{name}: +Inf != sample count");

        let count_line = format!("{name}_count {expected_count}\n");
        assert!(text.contains(&count_line), "missing {count_line:?}");
        let sum_prefix = format!("{name}_sum ");
        let sum_line = text
            .lines()
            .find(|l| l.starts_with(&sum_prefix))
            .unwrap_or_else(|| panic!("missing {sum_prefix}"));
        let sum: f64 = sum_line[sum_prefix.len()..].trim().parse().unwrap();
        let expected_sum = if i == 0 { 123.5 + 1e12 } else { 123.5 };
        assert!(
            (sum - expected_sum).abs() < 1e-6 * expected_sum.abs(),
            "{name}: sum {sum} != {expected_sum}"
        );
    }
}

#[test]
fn phase_and_overhead_gauges_render() {
    let text = render_prometheus(&full_report());
    assert!(text.contains("# TYPE pi2m_phase_seconds gauge"));
    assert!(text.contains("pi2m_phase_seconds{phase=\"volume_refinement\"} 1"));
    assert!(text.contains("# TYPE pi2m_overhead_seconds gauge"));
    assert!(text.contains("pi2m_overhead_seconds{kind=\"rollback\"} 0.25"));
}
