//! The self-describing run report: configuration, provenance, phase
//! timings, overhead accounting, and the full metric snapshot of one
//! pipeline run, serializable to JSON (see [`RunReport::to_json`]).

use crate::analyze::ContentionReport;
use crate::attribution::TimeAttribution;
use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// One timed phase occurrence (also the unit of the Chrome trace export).
#[derive(Clone, Copy, Debug)]
pub struct TraceSpan {
    pub name: &'static str,
    /// Seconds since the run origin.
    pub start_s: f64,
    pub dur_s: f64,
}

/// Aggregated phase entry in the report.
#[derive(Clone, Debug)]
pub struct PhaseReport {
    pub name: String,
    pub seconds: f64,
}

/// The paper's three direct sources of wasted cycles (§5.5), summed over
/// threads — the quantities behind Figure 6 and Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct OverheadBreakdown {
    pub contention_s: f64,
    pub load_balance_s: f64,
    pub rollback_s: f64,
    pub rollbacks: u64,
    pub livelock: bool,
}

impl OverheadBreakdown {
    pub fn total_s(&self) -> f64 {
        self.contention_s + self.load_balance_s + self.rollback_s
    }
}

/// Per-chunk record inside a [`ShardSection`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardChunk {
    /// Position in the shard grid (`[ix, iy, iz]`).
    pub index: [usize; 3],
    /// Tetrahedra in the chunk's pre-stitch mesh.
    pub tets: u64,
    /// Vertices in the chunk's pre-stitch mesh.
    pub vertices: u64,
    /// Wall time of the chunk's pipeline run, seconds.
    pub wall_s: f64,
}

/// The sharded-run section of a report (schema v4; `None` — key absent — for
/// monolithic runs and for sharded runs cancelled before chunk accounting).
#[derive(Clone, Debug, Default)]
pub struct ShardSection {
    /// Chunk grid as `AxBxC`, e.g. `"2x2x1"`.
    pub grid: String,
    /// Halo overlap in voxels.
    pub halo: usize,
    /// Concurrent chunk lanes used.
    pub lanes: usize,
    /// Vertices carried from the chunks into the stitch seed.
    pub seed_points: u64,
    /// Bit-exact duplicates dropped while gathering the seed.
    pub seed_duplicates: u64,
    /// Per-chunk records, in plan order.
    pub chunks: Vec<ShardChunk>,
}

impl ShardSection {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("grid", Json::str(&self.grid)),
            ("halo", Json::int(self.halo as u64)),
            ("lanes", Json::int(self.lanes as u64)),
            ("seed_points", Json::int(self.seed_points)),
            ("seed_duplicates", Json::int(self.seed_duplicates)),
            (
                "chunks",
                Json::Arr(
                    self.chunks
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                (
                                    "index",
                                    Json::Arr(
                                        c.index.iter().map(|&i| Json::int(i as u64)).collect(),
                                    ),
                                ),
                                ("tets", Json::int(c.tets)),
                                ("vertices", Json::int(c.vertices)),
                                ("wall_s", Json::num(c.wall_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A machine-readable account of one run.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Report schema version (bump when fields change incompatibly).
    pub schema_version: u32,
    /// Producing tool, e.g. `"pi2m"` or a bench harness name.
    pub tool: String,
    /// Crate version of the producer.
    pub version: String,
    /// `git describe --always --dirty` of the source tree, when available.
    pub git_describe: Option<String>,
    /// Free-form configuration key/value pairs (δ, threads, CM, balancer…).
    pub config: Vec<(String, String)>,
    /// Aggregated per-phase wall time.
    pub phases: Vec<PhaseReport>,
    /// Wasted-cycle accounting summed over worker threads.
    pub overheads: OverheadBreakdown,
    /// Worker thread count.
    pub threads: usize,
    /// Wall time of the measured section, seconds.
    pub wall_s: f64,
    /// Final mesh elements.
    pub elements: u64,
    /// The merged metric snapshot.
    pub metrics: MetricsSnapshot,
    /// Flight-recorder contention analysis (schema v2; `None` when the
    /// recorder was disabled — the key is then absent from the JSON).
    pub contention: Option<ContentionReport>,
    /// Per-worker wall-time attribution (schema v3; `None` when the flight
    /// recorder was disabled — the key is then absent from the JSON).
    pub attribution: Option<TimeAttribution>,
    /// Sharded-run accounting (schema v4; `None` — key absent — for
    /// monolithic runs).
    pub shard: Option<ShardSection>,
}

impl RunReport {
    /// Schema history: v1 = counters/histograms/overheads; v2 adds the
    /// optional `contention` section (all v1 fields unchanged); v3 adds the
    /// optional top-level `time_attribution` section and embeds the same
    /// decomposition inside `contention` (all v2 fields unchanged); v4 adds
    /// the optional `shard` section for sharded runs (all v3 fields
    /// unchanged); v5 adds the batched-kernel counters (`pred_batch_*`,
    /// `scratch_soa_*`) to the counter catalog — absent from pre-v5
    /// reports, so consumers degrade to "not recorded" (all v4 fields
    /// unchanged).
    pub const SCHEMA_VERSION: u32 = 5;

    pub fn new(tool: &str) -> Self {
        RunReport {
            schema_version: Self::SCHEMA_VERSION,
            tool: tool.to_string(),
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_describe: git_describe(),
            ..Default::default()
        }
    }

    pub fn config(&mut self, key: &str, value: impl ToString) -> &mut Self {
        self.config.push((key.to_string(), value.to_string()));
        self
    }

    /// Fold a span list (e.g. [`crate::Phases::spans`]) into aggregated
    /// per-phase totals, keeping first-appearance order.
    pub fn set_phases(&mut self, spans: &[TraceSpan]) -> &mut Self {
        self.phases.clear();
        for s in spans {
            match self.phases.iter_mut().find(|p| p.name == s.name) {
                Some(p) => p.seconds += s.dur_s,
                None => self.phases.push(PhaseReport {
                    name: s.name.to_string(),
                    seconds: s.dur_s,
                }),
            }
        }
        self
    }

    pub fn phase_seconds(&self, name: &str) -> Option<f64> {
        self.phases
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.seconds)
    }

    /// Elements per second of wall time.
    pub fn elements_per_second(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.elements as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Full structured report as a JSON tree.
    pub fn to_json(&self) -> Json {
        let hist_json = |h: &crate::metrics::Hist| {
            let nonzero: Vec<Json> = h
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| {
                    Json::obj(vec![
                        ("le", Json::num(crate::metrics::bucket_upper_bound(i))),
                        ("count", Json::int(c)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("count", Json::int(h.count)),
                ("sum", Json::num(h.sum)),
                ("max", Json::num(if h.count > 0 { h.max } else { 0.0 })),
                ("mean", Json::num(h.mean())),
                ("buckets", Json::Arr(nonzero)),
            ])
        };
        let mut fields = vec![
            ("schema_version", Json::int(self.schema_version as u64)),
            ("tool", Json::str(&self.tool)),
            ("version", Json::str(&self.version)),
            (
                "git_describe",
                self.git_describe
                    .as_deref()
                    .map(Json::str)
                    .unwrap_or(Json::Null),
            ),
            (
                "config",
                Json::Obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::str(v)))
                        .collect(),
                ),
            ),
            (
                "phases",
                Json::Obj(
                    self.phases
                        .iter()
                        .map(|p| (p.name.clone(), Json::num(p.seconds)))
                        .collect(),
                ),
            ),
            (
                "overheads",
                Json::obj(vec![
                    ("contention_s", Json::num(self.overheads.contention_s)),
                    ("load_balance_s", Json::num(self.overheads.load_balance_s)),
                    ("rollback_s", Json::num(self.overheads.rollback_s)),
                    ("total_s", Json::num(self.overheads.total_s())),
                    ("rollbacks", Json::int(self.overheads.rollbacks)),
                    ("livelock", Json::Bool(self.overheads.livelock)),
                ]),
            ),
            ("threads", Json::int(self.threads as u64)),
            ("wall_s", Json::num(self.wall_s)),
            ("elements", Json::int(self.elements)),
            ("elements_per_second", Json::num(self.elements_per_second())),
            (
                "counters",
                Json::Obj(
                    self.metrics
                        .counters()
                        .filter(|(_, v)| *v > 0)
                        .map(|(d, v)| (d.name.to_string(), Json::int(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.metrics
                        .histograms()
                        .filter(|(_, h)| h.count > 0)
                        .map(|(d, h)| (d.name.to_string(), hist_json(h)))
                        .collect(),
                ),
            ),
        ];
        if let Some(c) = &self.contention {
            fields.push(("contention", c.to_json()));
        }
        if let Some(a) = &self.attribution {
            fields.push(("time_attribution", a.to_json()));
        }
        if let Some(s) = &self.shard {
            fields.push(("shard", s.to_json()));
        }
        Json::obj(fields)
    }

    /// Pretty JSON text, the on-disk `--report` format.
    pub fn to_json_string(&self) -> String {
        self.to_json().dump_pretty()
    }
}

/// Best-effort `git describe --always --dirty` for provenance; `None` when
/// git or the work tree is unavailable.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    (!s.is_empty()).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{self, ThreadRecorder};

    #[test]
    fn report_json_has_required_keys() {
        let mut rec = ThreadRecorder::new();
        rec.inc(metrics::OPS_INSERTIONS, 10);
        rec.observe(metrics::CAVITY_CELLS, 5.0);
        let mut r = RunReport::new("test");
        r.config("delta", 2.0).config("cm", "Local");
        r.set_phases(&[
            TraceSpan {
                name: "edt",
                start_s: 0.0,
                dur_s: 0.5,
            },
            TraceSpan {
                name: "volume_refinement",
                start_s: 0.5,
                dur_s: 1.5,
            },
            TraceSpan {
                name: "edt",
                start_s: 2.0,
                dur_s: 0.25,
            },
        ]);
        r.threads = 4;
        r.wall_s = 2.0;
        r.elements = 1000;
        rec.merge_into(0, &mut r.metrics);

        let j = crate::json::parse(&r.to_json_string()).unwrap();
        for key in [
            "schema_version",
            "tool",
            "version",
            "git_describe",
            "config",
            "phases",
            "overheads",
            "threads",
            "wall_s",
            "elements",
            "elements_per_second",
            "counters",
            "histograms",
        ] {
            assert!(j.get(key).is_some(), "missing key {key}");
        }
        // repeated phases aggregate
        assert_eq!(
            j.get("phases").unwrap().get("edt").unwrap().as_f64(),
            Some(0.75)
        );
        assert_eq!(
            j.get("counters")
                .unwrap()
                .get("ops_insertions")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
        let h = j.get("histograms").unwrap().get("cavity_cells").unwrap();
        assert_eq!(h.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(r.elements_per_second(), 500.0);
        // optional sections absent while their producers are off: the
        // flight-derived pair (v2/v3) and the sharded-run section (v4)
        assert_eq!(j.get("schema_version").unwrap().as_f64(), Some(5.0));
        assert!(j.get("contention").is_none());
        assert!(j.get("time_attribution").is_none());
        assert!(j.get("shard").is_none());
    }

    #[test]
    fn shard_section_appears_when_set() {
        let mut r = RunReport::new("test");
        r.shard = Some(ShardSection {
            grid: "2x1x1".to_string(),
            halo: 4,
            lanes: 2,
            seed_points: 120,
            seed_duplicates: 3,
            chunks: vec![
                ShardChunk {
                    index: [0, 0, 0],
                    tets: 80,
                    vertices: 40,
                    wall_s: 0.1,
                },
                ShardChunk {
                    index: [1, 0, 0],
                    tets: 90,
                    vertices: 45,
                    wall_s: 0.12,
                },
            ],
        });
        let j = crate::json::parse(&r.to_json_string()).unwrap();
        let s = j.get("shard").expect("shard section");
        assert_eq!(s.get("grid").unwrap().as_str(), Some("2x1x1"));
        assert_eq!(s.get("halo").unwrap().as_f64(), Some(4.0));
        let chunks = s.get("chunks").unwrap().as_arr().unwrap();
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[1].get("tets").unwrap().as_f64(), Some(90.0));
    }

    #[test]
    fn contention_section_appears_when_set() {
        use crate::analyze::{analyze, AnalyzeOpts};
        use crate::flight::{EventKind, FlightEvent};

        let mut r = RunReport::new("test");
        let events = [FlightEvent {
            t_ns: 1_000,
            kind: EventKind::Rollback,
            cause: 0,
            tid: 0,
            a: 7,
            b: 0,
            c: 500,
        }];
        let contention = analyze(
            &events,
            AnalyzeOpts {
                threads: 2,
                wall_s: 0.5,
                ..Default::default()
            },
        );
        r.attribution = Some(contention.attribution.clone());
        r.contention = Some(contention);
        let j = crate::json::parse(&r.to_json_string()).unwrap();
        let c = j.get("contention").expect("contention section");
        assert_eq!(c.get("rollbacks").unwrap().as_f64(), Some(1.0));
        assert!(c.get("speedup_self_report").is_some());
        // schema v3: the attribution also surfaces at the top level
        let a = j.get("time_attribution").expect("time_attribution section");
        assert_eq!(a.get("workers").unwrap().as_arr().unwrap().len(), 2);
    }
}
