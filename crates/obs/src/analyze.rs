//! Offline analysis of a drained flight-recorder timeline: rollback
//! attribution (hot vertices / hot grid regions), per-worker
//! utilization/park/steal timelines, windowed rollback-ratio and
//! lock-wait-fraction series, a speedup self-report, and the per-worker
//! wall-time attribution ([`crate::attribution`]). The result is appended
//! to the JSON run report as its `contention` section (schema v3).

use crate::attribution::{attribute, TimeAttribution};
use crate::flight::{EventKind, FlightEvent};
use crate::json::Json;
use std::collections::HashMap;

/// Analyzer knobs. `window_s` controls the time-series resolution.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOpts {
    pub threads: usize,
    /// Wall time of the refinement section, seconds.
    pub wall_s: f64,
    /// Time-series window width, seconds.
    pub window_s: f64,
    /// How many hot vertices / regions to keep.
    pub top_k: usize,
    /// Events lost to ring overwrites (from the drain).
    pub dropped: u64,
}

impl Default for AnalyzeOpts {
    fn default() -> Self {
        AnalyzeOpts {
            threads: 1,
            wall_s: 0.0,
            window_s: 0.25,
            top_k: 10,
            dropped: 0,
        }
    }
}

/// One worker's summary over the whole run.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkerTimeline {
    pub tid: u16,
    pub commits: u64,
    pub rollbacks: u64,
    /// Seconds spent inside committed or rolled-back operations.
    pub busy_s: f64,
    /// Seconds parked by the contention manager.
    pub cm_park_s: f64,
    /// Seconds parked in a begging list.
    pub beg_park_s: f64,
    pub steals: u64,
    pub donations: u64,
    pub died: bool,
}

/// One time-series window.
#[derive(Clone, Copy, Debug, Default)]
pub struct WindowStats {
    /// Window start, seconds since the run origin.
    pub t0_s: f64,
    pub commits: u64,
    pub rollbacks: u64,
    /// CM-park seconds *ending* in this window, summed over threads.
    pub lock_wait_s: f64,
}

impl WindowStats {
    pub fn rollback_ratio(&self) -> f64 {
        let ops = self.commits + self.rollbacks;
        if ops == 0 {
            0.0
        } else {
            self.rollbacks as f64 / ops as f64
        }
    }
}

/// The full contention report derived from one flight-recorder drain.
#[derive(Clone, Debug, Default)]
pub struct ContentionReport {
    pub total_events: u64,
    pub dropped_events: u64,
    pub commits: u64,
    pub rollbacks: u64,
    pub lock_conflicts: u64,
    /// Top-K `(vertex id, conflict count)` by rollback + lock-conflict
    /// attribution, most-contended first.
    pub hot_vertices: Vec<(u32, u64)>,
    /// Top-K `(region code, conflict count)` over the engine's coarse
    /// spatial lattice, most-contended first.
    pub hot_regions: Vec<(u16, u64)>,
    pub per_worker: Vec<WorkerTimeline>,
    pub windows: Vec<WindowStats>,
    pub window_s: f64,
    pub threads: usize,
    pub wall_s: f64,
    /// Per-worker wall-time decomposition (committed / rolled-back / parked
    /// / steal-donate / idle), normalized against `wall_s`.
    pub attribution: TimeAttribution,
}

impl ContentionReport {
    pub fn rollback_ratio(&self) -> f64 {
        let ops = self.commits + self.rollbacks;
        if ops == 0 {
            0.0
        } else {
            self.rollbacks as f64 / ops as f64
        }
    }

    /// Total busy seconds summed over workers.
    pub fn busy_s(&self) -> f64 {
        self.per_worker.iter().map(|w| w.busy_s).sum()
    }

    /// The speedup self-report: busy time over wall time — how many
    /// processors' worth of useful kernel work the run sustained.
    pub fn effective_parallelism(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.busy_s() / self.wall_s
        } else {
            0.0
        }
    }

    /// Effective parallelism normalized by the worker count (0..1-ish;
    /// op-duration timestamping costs keep it approximate).
    pub fn utilization(&self) -> f64 {
        if self.threads > 0 {
            self.effective_parallelism() / self.threads as f64
        } else {
            0.0
        }
    }

    /// Fraction of total worker-seconds spent CM-parked.
    pub fn lock_wait_fraction(&self) -> f64 {
        let denom = self.wall_s * self.threads as f64;
        if denom > 0.0 {
            self.per_worker.iter().map(|w| w.cm_park_s).sum::<f64>() / denom
        } else {
            0.0
        }
    }

    pub fn to_json(&self) -> Json {
        let top = |pairs: &[(u32, u64)], key: &str| {
            Json::Arr(
                pairs
                    .iter()
                    .map(|&(id, n)| {
                        Json::obj(vec![
                            (key, Json::int(id as u64)),
                            ("conflicts", Json::int(n)),
                        ])
                    })
                    .collect(),
            )
        };
        let workers = Json::Arr(
            self.per_worker
                .iter()
                .map(|w| {
                    Json::obj(vec![
                        ("tid", Json::int(w.tid as u64)),
                        ("commits", Json::int(w.commits)),
                        ("rollbacks", Json::int(w.rollbacks)),
                        ("busy_s", Json::num(w.busy_s)),
                        ("cm_park_s", Json::num(w.cm_park_s)),
                        ("beg_park_s", Json::num(w.beg_park_s)),
                        ("steals", Json::int(w.steals)),
                        ("donations", Json::int(w.donations)),
                        ("died", Json::Bool(w.died)),
                    ])
                })
                .collect(),
        );
        let windows = Json::Arr(
            self.windows
                .iter()
                .map(|w| {
                    let denom = self.window_s * self.threads as f64;
                    Json::obj(vec![
                        ("t0_s", Json::num(w.t0_s)),
                        ("commits", Json::int(w.commits)),
                        ("rollbacks", Json::int(w.rollbacks)),
                        ("rollback_ratio", Json::num(w.rollback_ratio())),
                        ("lock_wait_s", Json::num(w.lock_wait_s)),
                        (
                            "lock_wait_fraction",
                            Json::num(if denom > 0.0 {
                                w.lock_wait_s / denom
                            } else {
                                0.0
                            }),
                        ),
                    ])
                })
                .collect(),
        );
        let regions: Vec<(u32, u64)> = self
            .hot_regions
            .iter()
            .map(|&(r, n)| (r as u32, n))
            .collect();
        Json::obj(vec![
            ("total_events", Json::int(self.total_events)),
            ("dropped_events", Json::int(self.dropped_events)),
            ("commits", Json::int(self.commits)),
            ("rollbacks", Json::int(self.rollbacks)),
            ("lock_conflicts", Json::int(self.lock_conflicts)),
            ("rollback_ratio", Json::num(self.rollback_ratio())),
            ("hot_vertices", top(&self.hot_vertices, "vertex")),
            ("hot_regions", top(&regions, "region")),
            ("workers", workers),
            ("window_s", Json::num(self.window_s)),
            ("windows", windows),
            ("time_attribution", self.attribution.to_json()),
            (
                "speedup_self_report",
                Json::obj(vec![
                    ("busy_s", Json::num(self.busy_s())),
                    ("wall_s", Json::num(self.wall_s)),
                    (
                        "effective_parallelism",
                        Json::num(self.effective_parallelism()),
                    ),
                    ("utilization", Json::num(self.utilization())),
                    ("lock_wait_fraction", Json::num(self.lock_wait_fraction())),
                ]),
            ),
        ])
    }
}

fn top_k<K: Copy + Ord>(counts: HashMap<K, u64>, k: usize) -> Vec<(K, u64)> {
    let mut v: Vec<(K, u64)> = counts.into_iter().collect();
    // most conflicts first; tie-break on the id for determinism
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(k);
    v
}

/// Build a [`ContentionReport`] from a time-sorted drained event log.
pub fn analyze(events: &[FlightEvent], opts: AnalyzeOpts) -> ContentionReport {
    let threads = opts.threads.max(1);
    let mut per_worker: Vec<WorkerTimeline> = (0..threads)
        .map(|t| WorkerTimeline {
            tid: t as u16,
            ..Default::default()
        })
        .collect();
    let mut vertex_conflicts: HashMap<u32, u64> = HashMap::new();
    let mut region_conflicts: HashMap<u16, u64> = HashMap::new();
    let mut commits = 0u64;
    let mut rollbacks = 0u64;
    let mut lock_conflicts = 0u64;

    let end_s = opts.wall_s.max(events.last().map_or(0.0, FlightEvent::t_s));
    let window_s = opts.window_s.max(1e-3);
    let n_windows = ((end_s / window_s).ceil() as usize).clamp(1, 100_000);
    let mut windows: Vec<WindowStats> = (0..n_windows)
        .map(|i| WindowStats {
            t0_s: i as f64 * window_s,
            ..Default::default()
        })
        .collect();
    let win_of = |t_s: f64| -> usize { ((t_s / window_s) as usize).min(n_windows - 1) };

    for e in events {
        let w = match per_worker.get_mut(e.tid as usize) {
            Some(w) => w,
            None => continue, // foreign tid (corrupt or out-of-range): skip
        };
        match e.kind {
            EventKind::OpCommit => {
                commits += 1;
                w.commits += 1;
                w.busy_s += e.c as f64 * 1e-9;
                windows[win_of(e.t_s())].commits += 1;
            }
            EventKind::Rollback => {
                rollbacks += 1;
                w.rollbacks += 1;
                w.busy_s += e.c as f64 * 1e-9;
                *vertex_conflicts.entry(e.a).or_insert(0) += 1;
                *region_conflicts.entry(e.rollback_region()).or_insert(0) += 1;
                windows[win_of(e.t_s())].rollbacks += 1;
            }
            EventKind::LockConflict => {
                lock_conflicts += 1;
                *vertex_conflicts.entry(e.a).or_insert(0) += 1;
            }
            EventKind::CmUnpark => {
                let dur_s = e.c as f64 * 1e-9;
                w.cm_park_s += dur_s;
                windows[win_of(e.t_s())].lock_wait_s += dur_s;
            }
            EventKind::BegUnpark => {
                w.beg_park_s += e.c as f64 * 1e-9;
            }
            EventKind::Steal => w.steals += 1,
            EventKind::Donate => w.donations += 1,
            EventKind::WorkerDeath => w.died = true,
            _ => {}
        }
    }

    // Drop empty trailing windows (short runs produce mostly-empty tails).
    while windows.len() > 1 {
        let last = windows.last().unwrap();
        if last.commits == 0 && last.rollbacks == 0 && last.lock_wait_s == 0.0 {
            windows.pop();
        } else {
            break;
        }
    }

    ContentionReport {
        total_events: events.len() as u64,
        dropped_events: opts.dropped,
        commits,
        rollbacks,
        lock_conflicts,
        hot_vertices: top_k(vertex_conflicts, opts.top_k),
        hot_regions: top_k(region_conflicts, opts.top_k),
        per_worker,
        windows,
        window_s,
        threads,
        wall_s: opts.wall_s,
        attribution: attribute(events, threads, opts.wall_s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::pack_owner_region;

    fn e(t_ms: u64, tid: u16, kind: EventKind, a: u32, b: u32, c: u32) -> FlightEvent {
        FlightEvent {
            t_ns: t_ms * 1_000_000,
            kind,
            cause: 0,
            tid,
            a,
            b,
            c,
        }
    }

    #[test]
    fn attribution_ranks_hot_vertices_and_regions() {
        let ms = 1_000_000u32;
        let events = vec![
            e(10, 0, EventKind::OpCommit, 5, 3, ms),
            e(20, 1, EventKind::Rollback, 77, pack_owner_region(0, 9), ms),
            e(30, 1, EventKind::Rollback, 77, pack_owner_region(0, 9), ms),
            e(40, 0, EventKind::Rollback, 42, pack_owner_region(1, 4), ms),
            e(50, 1, EventKind::LockConflict, 77, 0, 1),
        ];
        let r = analyze(
            &events,
            AnalyzeOpts {
                threads: 2,
                wall_s: 0.1,
                top_k: 2,
                ..Default::default()
            },
        );
        assert_eq!(r.commits, 1);
        assert_eq!(r.rollbacks, 3);
        assert_eq!(r.lock_conflicts, 1);
        assert_eq!(r.hot_vertices[0], (77, 3));
        assert_eq!(r.hot_vertices[1], (42, 1));
        assert_eq!(r.hot_regions[0], (9, 2));
        assert_eq!(r.rollback_ratio(), 0.75);
        // busy time: 4 ops × 1ms
        assert!((r.busy_s() - 0.004).abs() < 1e-9);
        assert!((r.effective_parallelism() - 0.04).abs() < 1e-9);
    }

    #[test]
    fn per_worker_timelines_split_by_tid() {
        let ms = 1_000_000u32;
        let events = vec![
            e(1, 0, EventKind::OpCommit, 1, 0, ms),
            e(2, 0, EventKind::CmUnpark, 0, 0, 2 * ms),
            e(3, 1, EventKind::BegUnpark, 0, 0, 5 * ms),
            e(4, 1, EventKind::Steal, 0, 0, 0),
            e(5, 0, EventKind::Donate, 1, 8, 0),
            e(6, 1, EventKind::WorkerDeath, 0, 0, 0),
        ];
        let r = analyze(
            &events,
            AnalyzeOpts {
                threads: 2,
                wall_s: 0.01,
                ..Default::default()
            },
        );
        let w0 = &r.per_worker[0];
        let w1 = &r.per_worker[1];
        assert_eq!(w0.commits, 1);
        assert!((w0.cm_park_s - 0.002).abs() < 1e-12);
        assert_eq!(w0.donations, 1);
        assert_eq!(w1.steals, 1);
        assert!((w1.beg_park_s - 0.005).abs() < 1e-12);
        assert!(w1.died);
        assert!(!w0.died);
    }

    #[test]
    fn windows_bucket_by_time() {
        let ms = 1_000_000u32;
        let mut events = Vec::new();
        // 4 commits in [0, 0.25), 1 commit + 3 rollbacks in [0.25, 0.5)
        for i in 0..4 {
            events.push(e(10 + i, 0, EventKind::OpCommit, 0, 0, ms));
        }
        events.push(e(300, 0, EventKind::OpCommit, 0, 0, ms));
        for i in 0..3 {
            events.push(e(310 + i, 0, EventKind::Rollback, 1, 0, ms));
        }
        let r = analyze(
            &events,
            AnalyzeOpts {
                threads: 1,
                wall_s: 0.5,
                window_s: 0.25,
                ..Default::default()
            },
        );
        assert_eq!(r.windows.len(), 2);
        assert_eq!(r.windows[0].commits, 4);
        assert_eq!(r.windows[0].rollbacks, 0);
        assert_eq!(r.windows[1].commits, 1);
        assert_eq!(r.windows[1].rollbacks, 3);
        assert_eq!(r.windows[1].rollback_ratio(), 0.75);
    }

    #[test]
    fn json_has_all_sections() {
        let events = vec![e(
            1,
            0,
            EventKind::Rollback,
            9,
            pack_owner_region(1, 2),
            1000,
        )];
        let r = analyze(
            &events,
            AnalyzeOpts {
                threads: 2,
                wall_s: 0.001,
                ..Default::default()
            },
        );
        let j = crate::json::parse(&r.to_json().dump()).unwrap();
        for key in [
            "total_events",
            "dropped_events",
            "commits",
            "rollbacks",
            "lock_conflicts",
            "rollback_ratio",
            "hot_vertices",
            "hot_regions",
            "workers",
            "window_s",
            "windows",
            "time_attribution",
            "speedup_self_report",
        ] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        // the embedded attribution mirrors the event log: one rollback of
        // 1000ns on worker 0, everything else idle
        let at = j.get("time_attribution").unwrap();
        let w0 = &at.get("workers").unwrap().as_arr().unwrap()[0];
        let rb = w0.get("rolled_back_s").unwrap().as_f64().unwrap();
        assert!((rb - 1e-6).abs() < 1e-12, "rolled_back_s {rb}");
        let hv = j.get("hot_vertices").unwrap().as_arr().unwrap();
        assert_eq!(hv[0].get("vertex").unwrap().as_f64(), Some(9.0));
        assert_eq!(hv[0].get("conflicts").unwrap().as_f64(), Some(1.0));
        let sp = j.get("speedup_self_report").unwrap();
        assert!(sp.get("effective_parallelism").is_some());
    }

    #[test]
    fn empty_log_is_a_valid_report() {
        let r = analyze(&[], AnalyzeOpts::default());
        assert_eq!(r.commits, 0);
        assert_eq!(r.rollback_ratio(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert!(r.hot_vertices.is_empty());
        assert!(crate::json::parse(&r.to_json().dump()).is_ok());
    }
}
