//! Span-based wall-clock phase timing with RAII guards.
//!
//! A [`Phases`] owns one run's timeline. [`Phases::span`] starts a phase and
//! returns a [`SpanGuard`] that records the elapsed time when dropped:
//!
//! ```
//! use pi2m_obs::Phases;
//! let mut phases = Phases::new();
//! {
//!     let _g = phases.span("edt");
//!     // ... work ...
//! } // recorded here
//! assert_eq!(phases.spans().len(), 1);
//! assert!(phases.total("edt") >= 0.0);
//! ```

use crate::report::TraceSpan;
use std::time::Instant;

/// Wall-clock phase timeline for one run. All timestamps are seconds since
/// construction ("run origin"), the common time base for the Chrome trace.
#[derive(Debug)]
pub struct Phases {
    origin: Instant,
    spans: Vec<TraceSpan>,
}

impl Default for Phases {
    fn default() -> Self {
        Self::new()
    }
}

impl Phases {
    pub fn new() -> Self {
        Phases {
            origin: Instant::now(),
            spans: Vec::new(),
        }
    }

    /// Seconds since the run origin.
    #[inline]
    pub fn now(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Start a phase; the returned guard records it on drop.
    pub fn span(&mut self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            phases: self,
            name,
            t0: Instant::now(),
        }
    }

    /// Time a closure as a phase and pass its value through.
    pub fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let _g = self.span(name);
        f()
    }

    /// Record an externally-measured phase.
    pub fn record(&mut self, name: &'static str, start_s: f64, dur_s: f64) {
        self.spans.push(TraceSpan {
            name,
            start_s,
            dur_s,
        });
    }

    /// All recorded spans in completion order.
    pub fn spans(&self) -> &[TraceSpan] {
        &self.spans
    }

    /// Total recorded seconds under `name` (a phase may run multiple times).
    pub fn total(&self, name: &str) -> f64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_s)
            .sum()
    }
}

/// RAII guard: records its phase into the owning [`Phases`] on drop.
pub struct SpanGuard<'a> {
    phases: &'a mut Phases,
    name: &'static str,
    t0: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur_s = self.t0.elapsed().as_secs_f64();
        let end_s = self.phases.now();
        self.phases.spans.push(TraceSpan {
            name: self.name,
            start_s: (end_s - dur_s).max(0.0),
            dur_s,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_records_on_drop() {
        let mut p = Phases::new();
        {
            let _g = p.span("edt");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        p.time("volume_refinement", || {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert_eq!(p.spans().len(), 2);
        assert!(p.total("edt") >= 0.001);
        assert!(p.total("volume_refinement") >= 0.0005);
        assert_eq!(p.total("missing"), 0.0);
        // spans sit inside the run timeline
        for s in p.spans() {
            assert!(s.start_s >= 0.0 && s.dur_s >= 0.0);
        }
    }
}
