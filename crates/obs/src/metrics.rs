//! Static metric catalog, thread-local recorders, and merged snapshots.
//!
//! The catalog ([`COUNTERS`], [`HISTOGRAMS`]) is a `const`
//! registry: every metric the pipeline can emit is declared here with a
//! stable name, unit, and help string, and addressed by a typed index
//! ([`CounterId`] / [`HistId`]). Recorders are sized by the catalog at
//! compile time, so registration has zero runtime cost and recording indexes
//! a plain array.
//!
//! ## Hot-path cost model
//!
//! [`ThreadRecorder`] is the only write path and every mutation takes
//! `&mut self` over plain `u64`/`f64` fields — **no atomic RMW, no locks,
//! no shared cache lines**. Exclusive ownership is enforced by the borrow
//! checker, exactly like `pi2m-refine`'s `ThreadStats`: each worker owns its
//! recorder and the results are merged after the thread joins. The type is
//! deliberately *not* shareable for writing:
//!
//! ```compile_fail
//! use pi2m_obs::metrics::{self, ThreadRecorder};
//! let rec = ThreadRecorder::new();
//! let r = &rec;
//! r.inc(metrics::OPS_INSERTIONS, 1); // ERROR: `inc` needs `&mut`
//! ```

/// What a metric measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count.
    Counter,
    /// Log₂-bucketed distribution of samples.
    Histogram,
}

/// A catalog entry: stable name (exported verbatim), unit, and description.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    pub name: &'static str,
    pub kind: MetricKind,
    pub unit: &'static str,
    pub help: &'static str,
}

/// Index of a counter in [`COUNTERS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterId(pub u16);

/// Index of a histogram in [`HISTOGRAMS`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistId(pub u16);

macro_rules! counters {
    ($($id:ident = ($name:literal, $unit:literal, $help:literal)),* $(,)?) => {
        counters!(@consts 0u16; $($id)*);
        /// Every counter the pipeline can record, in id order.
        pub const COUNTERS: &[MetricDef] = &[
            $(MetricDef { name: $name, kind: MetricKind::Counter, unit: $unit, help: $help }),*
        ];
    };
    (@consts $n:expr;) => {};
    (@consts $n:expr; $id:ident $($rest:ident)*) => {
        pub const $id: CounterId = CounterId($n);
        counters!(@consts $n + 1; $($rest)*);
    };
}

macro_rules! histograms {
    ($($id:ident = ($name:literal, $unit:literal, $help:literal)),* $(,)?) => {
        histograms!(@consts 0u16; $($id)*);
        /// Every histogram the pipeline can record, in id order.
        pub const HISTOGRAMS: &[MetricDef] = &[
            $(MetricDef { name: $name, kind: MetricKind::Histogram, unit: $unit, help: $help }),*
        ];
    };
    (@consts $n:expr;) => {};
    (@consts $n:expr; $id:ident $($rest:ident)*) => {
        pub const $id: HistId = HistId($n);
        histograms!(@consts $n + 1; $($rest)*);
    };
}

counters! {
    // refinement engine (bridged from ThreadStats at thread join)
    OPS_TOTAL            = ("ops_total", "ops", "Completed speculative operations (insertions + removals)"),
    OPS_INSERTIONS       = ("ops_insertions", "ops", "Committed point insertions"),
    OPS_REMOVALS         = ("ops_removals", "ops", "Committed vertex removals (rule R6)"),
    OPS_ROLLBACKS        = ("ops_rollbacks", "ops", "Operations rolled back after a lock conflict"),
    OPS_SKIPPED          = ("ops_skipped", "ops", "Remedies dropped as duplicate/outside-domain/degenerate"),
    REMOVALS_BLOCKED     = ("removals_blocked", "ops", "Rule-R6 removals refused by the kernel"),
    CELLS_CREATED        = ("cells_created", "cells", "Tetrahedra created by committed operations"),
    CELLS_KILLED         = ("cells_killed", "cells", "Tetrahedra destroyed by committed operations"),
    DONATIONS_MADE       = ("donations_made", "events", "Work donations to begging threads"),
    DONATIONS_RECEIVED   = ("donations_received", "events", "Work batches received while begging"),
    INTER_BLADE_DONATIONS = ("inter_blade_donations", "events", "Donations crossing a blade boundary (HWS)"),
    CLASSIFY_CALLS       = ("classify_calls", "ops", "Rule R1-R6 classifications performed"),
    // Delaunay kernel
    WALK_LOCATES         = ("walk_locates", "ops", "Point-location walks started (BRIO remembering walk)"),
    WALK_STEPS           = ("walk_steps", "cells", "Total cells visited by point-location walks"),
    // staged geometric predicates (stage hit = cheapest stage that certified
    // the sign; see DESIGN.md "Three-stage predicate pipeline")
    PRED_ORIENT_SEMI_STATIC   = ("pred_orient_semi_static", "ops", "orient3d signs certified by the per-mesh semi-static filter"),
    PRED_ORIENT_FILTERED      = ("pred_orient_filtered", "ops", "orient3d signs certified by the dynamic error-bound filter"),
    PRED_ORIENT_EXACT         = ("pred_orient_exact", "ops", "orient3d signs resolved by exact expansion arithmetic"),
    PRED_INSPHERE_SEMI_STATIC = ("pred_insphere_semi_static", "ops", "insphere signs certified by the per-mesh semi-static filter"),
    PRED_INSPHERE_FILTERED    = ("pred_insphere_filtered", "ops", "insphere signs certified by the dynamic error-bound filter"),
    PRED_INSPHERE_EXACT       = ("pred_insphere_exact", "ops", "insphere signs resolved by exact expansion arithmetic"),
    // per-worker scratch arenas
    SCRATCH_REUSES       = ("scratch_reuses", "buffers", "Kernel operations served by warm (reused) scratch buffers"),
    SCRATCH_ALLOCS       = ("scratch_allocs", "buffers", "Kernel operations that had to grow cold scratch buffers"),
    // EDT / oracle
    EDT_VOXELS           = ("edt_voxels", "voxels", "Voxels swept by the Euclidean distance transform"),
    EDT_PASSES           = ("edt_passes", "passes", "Separable EDT axis passes executed"),
    ORACLE_SURFACE_VOXELS = ("oracle_surface_voxels", "voxels", "Surface voxels feeding the isosurface oracle"),
    // fault recovery (panic isolation + quarantine; see DESIGN.md)
    WORKER_PANICS        = ("worker_panics", "events", "Panics caught by the per-operation isolation boundary"),
    WORKER_DEATHS        = ("worker_deaths", "events", "Workers lost to un-recovered panics (run continued)"),
    QUARANTINED_OPS      = ("quarantined_ops", "ops", "Poison work items dropped after a caught panic"),
    RECOVERY_ROLLBACKS   = ("recovery_rollbacks", "ops", "Lock sets force-released while recovering from a panic"),
    KERNEL_ERRORS        = ("kernel_errors", "ops", "Operations abandoned on a typed kernel-invariant error"),
    FAULTS_INJECTED      = ("faults_injected", "events", "Faults fired by the deterministic injection plan"),
    // meshing service (`pi2m serve`; incremented by the service layer)
    SERVE_JOBS_SUBMITTED = ("serve_jobs_submitted", "jobs", "Jobs admitted to the service queue"),
    SERVE_JOBS_SHED      = ("serve_jobs_shed", "jobs", "Jobs rejected at admission (queue full or draining)"),
    SERVE_JOB_RETRIES    = ("serve_job_retries", "attempts", "Job attempts re-run after a transient failure"),
    SERVE_JOBS_SUCCEEDED = ("serve_jobs_succeeded", "jobs", "Jobs completed with their artifact flushed"),
    SERVE_JOBS_FAILED    = ("serve_jobs_failed", "jobs", "Jobs that reached a terminal typed failure"),
    SERVE_JOBS_CANCELLED = ("serve_jobs_cancelled", "jobs", "Jobs cancelled by their per-job deadline"),
    SERVE_SESSIONS_RECYCLED = ("serve_sessions_recycled", "sessions", "Warm sessions replaced after worker deaths or checkout faults"),
    SERVE_DRAINS         = ("serve_drains", "events", "Graceful drains initiated (SIGTERM or POST /drain)"),
    // sharded meshing (chunked domain decomposition + seam stitching)
    SHARD_CHUNKS_MESHED  = ("shard_chunks_meshed", "chunks", "Image chunks meshed by the sharded runner"),
    SHARD_SEED_VERTICES  = ("shard_seed_vertices", "vertices", "Chunk vertices carried into the stitch triangulation"),
    SHARD_SEED_DUPLICATES = ("shard_seed_duplicates", "vertices", "Duplicate or out-of-box chunk vertices dropped at the stitch seed"),
    SHARD_STITCH_INSERTIONS = ("shard_stitch_insertions", "ops", "Refinement insertions committed by the seam-stitch pass"),
    // batched SoA kernel path (wide-lane predicate filters + SoA staging;
    // appended at the end — the catalog is positional)
    PRED_BATCH_ORIENT_BATCHES   = ("pred_batch_orient_batches", "waves", "Batched orient3d waves evaluated by the wide-lane filter"),
    PRED_BATCH_ORIENT_LANES     = ("pred_batch_orient_lanes", "ops", "orient3d lanes evaluated through the batched filter"),
    PRED_BATCH_ORIENT_FALLBACKS = ("pred_batch_orient_fallbacks", "ops", "Batched orient3d lanes that fell back to the scalar cascade"),
    PRED_BATCH_INSPHERE_BATCHES   = ("pred_batch_insphere_batches", "waves", "Batched insphere waves evaluated by the wide-lane filter"),
    PRED_BATCH_INSPHERE_LANES     = ("pred_batch_insphere_lanes", "ops", "insphere lanes evaluated through the batched filter"),
    PRED_BATCH_INSPHERE_FALLBACKS = ("pred_batch_insphere_fallbacks", "ops", "Batched insphere lanes that fell back to the scalar cascade"),
    SCRATCH_SOA_GATHERS  = ("scratch_soa_gathers", "waves", "SoA staging waves gathered from the vertex pool"),
    SCRATCH_SOA_POINTS   = ("scratch_soa_points", "points", "Points copied into SoA staging buffers across all gathers"),
}

histograms! {
    CAVITY_CELLS         = ("cavity_cells", "cells", "Cavity size per committed insertion (cells killed)"),
    LOCK_WAIT_SECONDS    = ("lock_wait_seconds", "seconds", "Contention-manager wait after a conflict"),
    ROLLBACK_SECONDS     = ("rollback_seconds", "seconds", "Wasted work per rolled-back operation"),
    LB_WAIT_SECONDS      = ("lb_wait_seconds", "seconds", "Begging-list wait per empty-PEL episode"),
    WALK_STEPS_PER_LOCATE = ("walk_steps_per_locate", "cells", "Cells visited per point-location walk"),
    EDT_PASS_SECONDS     = ("edt_pass_seconds", "seconds", "Wall time per separable EDT axis pass"),
    SERVE_QUEUE_WAIT_SECONDS = ("serve_queue_wait_seconds", "seconds", "Time jobs spent queued before their first attempt"),
    SHARD_CHUNK_SECONDS  = ("shard_chunk_seconds", "seconds", "Wall time per meshed chunk of a sharded run"),
}

/// Combined catalog view (counters, then histograms).
pub fn catalog() -> impl Iterator<Item = &'static MetricDef> {
    COUNTERS.iter().chain(HISTOGRAMS.iter())
}

/// Number of log₂ buckets per histogram: bucket 0 collects non-positive
/// (and NaN) samples, buckets `1..=64` hold `[2^(i-34), 2^(i-33))` — i.e.
/// ~1.2e-10 through ~2.1e9 — with both tails clamped into the edge buckets.
pub const HIST_BUCKETS: usize = 65;
const HIST_EXP_BIAS: i32 = 34;

/// Bucket index for a sample. Total (0, subnormal, huge, inf, and NaN all
/// land deterministically).
#[inline]
pub fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v <= 0.0 {
        return 0;
    }
    // Clamp in f64: log2 handles subnormals exactly (returns < -1022) and
    // +inf clamps into the top bucket without any integer overflow.
    let e = v.log2().floor() + HIST_EXP_BIAS as f64;
    e.clamp(1.0, (HIST_BUCKETS - 1) as f64) as usize
}

/// Inclusive upper bound of bucket `i`, for Prometheus `le` labels.
/// Bucket 0 (non-positive samples) reports `le = 0`.
pub fn bucket_upper_bound(i: usize) -> f64 {
    assert!(i < HIST_BUCKETS);
    if i == 0 {
        0.0
    } else if i == HIST_BUCKETS - 1 {
        f64::INFINITY
    } else {
        2f64.powi(i as i32 - HIST_EXP_BIAS + 1)
    }
}

/// One histogram's merged state.
#[derive(Clone, Debug)]
pub struct Hist {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: f64,
    pub max: f64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Hist {
    #[inline]
    pub fn observe(&mut self, v: f64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        if v.is_finite() {
            self.sum += v;
            if v > self.max {
                self.max = v;
            }
        }
    }

    fn merge(&mut self, other: &Hist) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count > 0 {
            self.sum / self.count as f64
        } else {
            0.0
        }
    }
}

/// A timeline event recorded by a worker (bridged into the Chrome trace).
#[derive(Clone, Debug)]
pub struct ObsEvent {
    /// Event name (e.g. `"rollback"`, `"worker"`).
    pub name: &'static str,
    /// Trace category (Perfetto groups by this; e.g. `"overhead"`).
    pub cat: &'static str,
    /// Start, seconds since the run origin.
    pub at_s: f64,
    /// Duration in seconds.
    pub dur_s: f64,
}

/// Per-thread recorder: exclusively owned by one worker; all writes are
/// plain loads/stores behind `&mut self` (see module docs for why this is
/// atomics-free by construction).
#[derive(Clone, Debug)]
pub struct ThreadRecorder {
    counters: Vec<u64>,
    hists: Vec<Hist>,
    /// Optional timeline events (worker lifetime, overhead episodes).
    pub events: Vec<ObsEvent>,
}

impl Default for ThreadRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadRecorder {
    pub fn new() -> Self {
        ThreadRecorder {
            counters: vec![0; COUNTERS.len()],
            hists: vec![Hist::default(); HISTOGRAMS.len()],
            events: Vec::new(),
        }
    }

    /// Add `n` to a counter. Plain `u64` add — no atomics.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Record one histogram sample. Plain array increment — no atomics.
    #[inline]
    pub fn observe(&mut self, id: HistId, v: f64) {
        self.hists[id.0 as usize].observe(v);
    }

    /// Push a timeline event (cold path; used for worker lifetimes and
    /// traced overhead episodes).
    pub fn event(&mut self, name: &'static str, cat: &'static str, at_s: f64, dur_s: f64) {
        self.events.push(ObsEvent {
            name,
            cat,
            at_s,
            dur_s,
        });
    }

    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Merge this recorder into a snapshot under thread id `tid`
    /// (join-time drain; the recorder can keep recording afterwards, the
    /// merged values are a prefix sum).
    pub fn merge_into(&self, tid: u32, snap: &mut MetricsSnapshot) {
        for (a, b) in snap.counters.iter_mut().zip(self.counters.iter()) {
            *a += b;
        }
        for (a, b) in snap.hists.iter_mut().zip(self.hists.iter()) {
            a.merge(b);
        }
        snap.events
            .extend(self.events.iter().map(|e| (tid, e.clone())));
        snap.threads_merged += 1;
    }
}

/// Merged, run-level metrics: the read side handed to exporters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    counters: Vec<u64>,
    hists: Vec<Hist>,
    /// Timeline events tagged with the recording thread id.
    pub events: Vec<(u32, ObsEvent)>,
    pub threads_merged: u32,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSnapshot {
    pub fn new() -> Self {
        MetricsSnapshot {
            counters: vec![0; COUNTERS.len()],
            hists: vec![Hist::default(); HISTOGRAMS.len()],
            events: Vec::new(),
            threads_merged: 0,
        }
    }

    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id.0 as usize]
    }

    /// Bridge an externally-tracked count (e.g. a `ThreadStats` field) into
    /// the snapshot.
    pub fn add_counter(&mut self, id: CounterId, n: u64) {
        self.counters[id.0 as usize] += n;
    }

    /// Record one histogram sample directly into the snapshot (long-lived
    /// aggregators like the meshing service have no per-thread recorder).
    pub fn observe(&mut self, id: HistId, v: f64) {
        self.hists[id.0 as usize].observe(v);
    }

    /// Fold another snapshot into this one: counters add, histograms merge,
    /// events concatenate. Used by long-lived aggregators (e.g. `pi2m serve`
    /// accumulating every job's run metrics into one service-lifetime view).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (a, b) in self.counters.iter_mut().zip(other.counters.iter()) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(other.hists.iter()) {
            a.merge(b);
        }
        self.events.extend(other.events.iter().cloned());
        self.threads_merged = self.threads_merged.max(other.threads_merged);
    }

    pub fn hist(&self, id: HistId) -> &Hist {
        &self.hists[id.0 as usize]
    }

    /// All counters with non-zero values, in catalog order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static MetricDef, u64)> + '_ {
        COUNTERS.iter().zip(self.counters.iter().copied())
    }

    /// All histograms, in catalog order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static MetricDef, &Hist)> + '_ {
        HISTOGRAMS.iter().zip(self.hists.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_are_total() {
        // zero, negative, NaN → bucket 0
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-0.0), 0);
        assert_eq!(bucket_index(-1.5), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        // subnormals clamp into the first positive bucket
        assert_eq!(bucket_index(f64::MIN_POSITIVE / 4.0), 1);
        assert_eq!(bucket_index(1e-300), 1);
        // huge / infinite values clamp into the top bucket
        assert_eq!(bucket_index(f64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), HIST_BUCKETS - 1);
        // interior values are ordered
        assert!(bucket_index(1e-6) < bucket_index(1e-3));
        assert!(bucket_index(1e-3) < bucket_index(1.0));
        assert!(bucket_index(1.0) <= bucket_index(2.0));
        // bucket bounds are monotone and bracket the sample
        for &v in &[1e-9, 3.7e-4, 0.125, 1.0, 42.0, 9.9e8] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} vs bucket {i}");
            if i > 1 {
                // buckets are [lower, upper): exact powers of two sit at the
                // lower edge of their bucket
                assert!(v >= bucket_upper_bound(i - 1), "{v} vs bucket {}", i - 1);
            }
        }
    }

    #[test]
    fn recorder_records_and_merges() {
        let mut a = ThreadRecorder::new();
        let mut b = ThreadRecorder::new();
        a.inc(OPS_INSERTIONS, 3);
        b.inc(OPS_INSERTIONS, 4);
        a.observe(CAVITY_CELLS, 8.0);
        b.observe(CAVITY_CELLS, 16.0);
        b.event("worker", "worker", 0.0, 1.0);
        let mut snap = MetricsSnapshot::new();
        a.merge_into(0, &mut snap);
        b.merge_into(1, &mut snap);
        assert_eq!(snap.counter(OPS_INSERTIONS), 7);
        assert_eq!(snap.hist(CAVITY_CELLS).count, 2);
        assert_eq!(snap.hist(CAVITY_CELLS).sum, 24.0);
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].0, 1);
        assert_eq!(snap.threads_merged, 2);
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = catalog().map(|d| d.name).collect();
        let n = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate metric names in catalog");
    }
}
