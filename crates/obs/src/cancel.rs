//! Cooperative cancellation for long-running pipeline stages.
//!
//! A [`CancelToken`] is a cheap, cloneable handle carrying a shared cancel
//! flag and an optional absolute deadline. Producers (a CLI signal handler,
//! a serving loop's request timeout) call [`CancelToken::cancel`]; consumers
//! (the EDT sweeps, the refinement worker loop) poll
//! [`CancelToken::is_cancelled`] at operation boundaries. Polling is a single
//! relaxed atomic load when no deadline is set, plus one monotonic clock read
//! when one is — cheap enough for per-operation checks, far too cheap to
//! matter per EDT scan line.
//!
//! Cancellation is *cooperative*: nothing is interrupted mid-operation, so a
//! cancelled run never leaves locks held or shared structures half-updated.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The error produced when a stage observes cancellation. Carried upward and
/// converted into the caller's own error type (e.g. `RefineError::Cancelled`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// Shared cancellation handle: clone freely, cancel from any thread.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that additionally auto-cancels once `timeout` has elapsed
    /// (measured from this call).
    pub fn with_deadline(timeout: Duration) -> Self {
        CancelToken {
            flag: Arc::new(AtomicBool::new(false)),
            deadline: Some(Instant::now() + timeout),
        }
    }

    /// Request cancellation. Every clone of this token observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has this token been cancelled (explicitly, or by passing its
    /// deadline)?
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::Relaxed) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// `Err(Cancelled)` when the token has tripped; for `?`-style stage exits.
    #[inline]
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }

    /// The absolute deadline, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!t.is_cancelled());
        assert!(c.check().is_ok());
        c.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Cancelled));
    }

    #[test]
    fn deadline_trips_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(5));
        assert!(t.is_cancelled());
    }

    #[test]
    fn zero_deadline_is_immediately_cancelled() {
        let t = CancelToken::with_deadline(Duration::ZERO);
        assert!(t.is_cancelled());
    }

    #[test]
    fn cancelled_displays() {
        assert!(Cancelled.to_string().contains("cancelled"));
    }
}
