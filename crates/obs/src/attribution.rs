//! Per-worker wall-time attribution: fold a drained flight-recorder
//! timeline into "where did each worker's wall time go" — committed-op
//! work, rolled-back (wasted) work, contention-manager park, begging-list
//! park, steal/donate handoff overhead, and the idle remainder.
//!
//! Every category is *measured*, not modeled: the durations come from the
//! `c` word of the duration-bearing flight events (`OpCommit`, `Rollback`,
//! `CmUnpark`, `BegUnpark`, `Donate`), so the decomposition is exactly as
//! trustworthy as the recorder itself. The idle remainder absorbs whatever
//! the rings did not capture (scheduler preemption, walk/classify time
//! outside the op lifecycle on dead branches, ring overwrites), which is
//! why [`WorkerAttribution::fractions`] always sums to ~1.0 by
//! construction: the normalizer is `max(wall, accounted)` so a worker whose
//! measured time overruns the wall clock (timer skew, oversubscribed cores)
//! still reports a sane unit breakdown with `idle = 0`.
//!
//! Surfaced three ways: the `time_attribution` section of the schema-v3
//! [`RunReport`](crate::RunReport), the contention analyzer output, and
//! synthetic per-worker counter tracks in the Chrome trace export.

use crate::flight::{EventKind, FlightEvent};
use crate::json::Json;

/// The attribution categories, in serialization order. `Idle` is always the
/// residual: wall time minus every measured category, clamped at zero.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Time inside operations that committed (useful work).
    Committed,
    /// Time inside operations that rolled back (wasted work).
    RolledBack,
    /// Time parked by the contention manager.
    CmPark,
    /// Time parked in a begging list waiting for a donation.
    BegPark,
    /// Donation handoff overhead (locking the beggar's PEL, pushing cells,
    /// waking it) on the donor's clock.
    StealDonate,
    /// Unaccounted remainder of the wall clock.
    Idle,
}

impl Category {
    pub const ALL: [Category; 6] = [
        Category::Committed,
        Category::RolledBack,
        Category::CmPark,
        Category::BegPark,
        Category::StealDonate,
        Category::Idle,
    ];

    /// Stable snake_case key used in JSON and in the `pi2m analyze` output.
    pub fn key(self) -> &'static str {
        match self {
            Category::Committed => "committed",
            Category::RolledBack => "rolled_back",
            Category::CmPark => "cm_park",
            Category::BegPark => "beg_park",
            Category::StealDonate => "steal_donate",
            Category::Idle => "idle",
        }
    }

    /// True for the categories that are pure waste (everything except
    /// committed work; idle counts as waste — an idle worker is a scaling
    /// loss exactly like a parked one).
    pub fn is_waste(self) -> bool {
        !matches!(self, Category::Committed)
    }
}

/// One worker's wall-time decomposition, all in seconds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WorkerAttribution {
    pub tid: u16,
    pub committed_s: f64,
    pub rolled_back_s: f64,
    pub cm_park_s: f64,
    pub beg_park_s: f64,
    pub steal_donate_s: f64,
    /// Residual: `max(wall, accounted) - accounted`.
    pub idle_s: f64,
}

impl WorkerAttribution {
    pub fn get(&self, cat: Category) -> f64 {
        match cat {
            Category::Committed => self.committed_s,
            Category::RolledBack => self.rolled_back_s,
            Category::CmPark => self.cm_park_s,
            Category::BegPark => self.beg_park_s,
            Category::StealDonate => self.steal_donate_s,
            Category::Idle => self.idle_s,
        }
    }

    /// Sum of the five *measured* categories (everything but idle).
    pub fn accounted_s(&self) -> f64 {
        self.committed_s
            + self.rolled_back_s
            + self.cm_park_s
            + self.beg_park_s
            + self.steal_donate_s
    }

    /// Total attributed time including the idle residual; this is the
    /// normalizer of [`fractions`](Self::fractions).
    pub fn total_s(&self) -> f64 {
        self.accounted_s() + self.idle_s
    }

    /// Unit breakdown in [`Category::ALL`] order. Sums to 1.0 (within float
    /// error) whenever the worker attributed any time at all.
    pub fn fractions(&self) -> [f64; 6] {
        let total = self.total_s();
        let mut f = [0.0; 6];
        if total > 0.0 {
            for (slot, cat) in f.iter_mut().zip(Category::ALL) {
                *slot = self.get(cat) / total;
            }
        }
        f
    }

    fn to_json(self) -> Json {
        let fr = self.fractions();
        Json::obj(vec![
            ("tid", Json::int(self.tid as u64)),
            ("committed_s", Json::num(self.committed_s)),
            ("rolled_back_s", Json::num(self.rolled_back_s)),
            ("cm_park_s", Json::num(self.cm_park_s)),
            ("beg_park_s", Json::num(self.beg_park_s)),
            ("steal_donate_s", Json::num(self.steal_donate_s)),
            ("idle_s", Json::num(self.idle_s)),
            (
                "fractions",
                Json::Obj(
                    Category::ALL
                        .iter()
                        .zip(fr)
                        .map(|(c, v)| (c.key().to_string(), Json::num(v)))
                        .collect(),
                ),
            ),
        ])
    }
}

/// The run-wide attribution: one [`WorkerAttribution`] per worker plus the
/// wall clock they are normalized against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeAttribution {
    /// Wall time of the refinement section, seconds.
    pub wall_s: f64,
    pub per_worker: Vec<WorkerAttribution>,
}

impl TimeAttribution {
    /// Seconds in `cat` summed over all workers.
    pub fn total(&self, cat: Category) -> f64 {
        self.per_worker.iter().map(|w| w.get(cat)).sum()
    }

    /// Fraction of total worker-seconds (`threads x wall`) in `cat`.
    pub fn fraction(&self, cat: Category) -> f64 {
        let denom: f64 = self.per_worker.iter().map(|w| w.total_s()).sum();
        if denom > 0.0 {
            self.total(cat) / denom
        } else {
            0.0
        }
    }

    /// The waste category (everything but committed work) with the largest
    /// total, with its summed seconds. `None` on an empty attribution.
    pub fn dominant_waste(&self) -> Option<(Category, f64)> {
        Category::ALL
            .iter()
            .filter(|c| c.is_waste())
            .map(|&c| (c, self.total(c)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("wall_s", Json::num(self.wall_s)),
            (
                "totals",
                Json::Obj(
                    Category::ALL
                        .iter()
                        .map(|c| (format!("{}_s", c.key()), Json::num(self.total(*c))))
                        .collect(),
                ),
            ),
            (
                "fractions",
                Json::Obj(
                    Category::ALL
                        .iter()
                        .map(|c| (c.key().to_string(), Json::num(self.fraction(*c))))
                        .collect(),
                ),
            ),
            (
                "workers",
                Json::Arr(self.per_worker.iter().map(|w| w.to_json()).collect()),
            ),
        ])
    }

    /// Parse an attribution back out of its [`to_json`](Self::to_json)
    /// shape (the `pi2m analyze` loader). Unknown keys are ignored; missing
    /// numeric fields read as zero, so older artifacts degrade gracefully.
    pub fn from_json(j: &Json) -> Option<TimeAttribution> {
        let num = |o: &Json, k: &str| o.get(k).and_then(Json::as_f64).unwrap_or(0.0);
        let workers = j.get("workers")?.as_arr()?;
        let per_worker = workers
            .iter()
            .map(|w| WorkerAttribution {
                tid: num(w, "tid") as u16,
                committed_s: num(w, "committed_s"),
                rolled_back_s: num(w, "rolled_back_s"),
                cm_park_s: num(w, "cm_park_s"),
                beg_park_s: num(w, "beg_park_s"),
                steal_donate_s: num(w, "steal_donate_s"),
                idle_s: num(w, "idle_s"),
            })
            .collect();
        Some(TimeAttribution {
            wall_s: num(j, "wall_s"),
            per_worker,
        })
    }
}

/// Fold a time-sorted drained event log into the per-worker wall-time
/// decomposition. `wall_s` is the refinement-section wall clock; `threads`
/// fixes the worker count so fully-idle workers still appear.
pub fn attribute(events: &[FlightEvent], threads: usize, wall_s: f64) -> TimeAttribution {
    let threads = threads.max(1);
    let mut per_worker: Vec<WorkerAttribution> = (0..threads)
        .map(|t| WorkerAttribution {
            tid: t as u16,
            ..Default::default()
        })
        .collect();
    for e in events {
        let Some(w) = per_worker.get_mut(e.tid as usize) else {
            continue; // foreign tid (corrupt or out-of-range): skip
        };
        let dur_s = e.c as f64 * 1e-9;
        match e.kind {
            EventKind::OpCommit => w.committed_s += dur_s,
            EventKind::Rollback => w.rolled_back_s += dur_s,
            EventKind::CmUnpark => w.cm_park_s += dur_s,
            EventKind::BegUnpark => w.beg_park_s += dur_s,
            EventKind::Donate => w.steal_donate_s += dur_s,
            _ => {}
        }
    }
    for w in &mut per_worker {
        w.idle_s = (wall_s - w.accounted_s()).max(0.0);
    }
    TimeAttribution { wall_s, per_worker }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(tid: u16, kind: EventKind, c_ns: u32) -> FlightEvent {
        FlightEvent {
            t_ns: 1_000,
            kind,
            cause: 0,
            tid,
            a: 0,
            b: 0,
            c: c_ns,
        }
    }

    #[test]
    fn decomposition_buckets_by_kind_and_tid() {
        let ms = 1_000_000u32;
        let events = vec![
            e(0, EventKind::OpCommit, 10 * ms),
            e(0, EventKind::Rollback, 5 * ms),
            e(0, EventKind::CmUnpark, 2 * ms),
            e(1, EventKind::BegUnpark, 40 * ms),
            e(1, EventKind::Donate, ms),
            e(1, EventKind::OpCommit, 20 * ms),
            // kinds without a duration payload are ignored
            e(0, EventKind::Steal, 7 * ms),
            e(0, EventKind::LockConflict, 9 * ms),
        ];
        let a = attribute(&events, 2, 0.1);
        let w0 = &a.per_worker[0];
        assert!((w0.committed_s - 0.010).abs() < 1e-12);
        assert!((w0.rolled_back_s - 0.005).abs() < 1e-12);
        assert!((w0.cm_park_s - 0.002).abs() < 1e-12);
        assert_eq!(w0.beg_park_s, 0.0);
        assert!((w0.idle_s - (0.1 - 0.017)).abs() < 1e-12);
        let w1 = &a.per_worker[1];
        assert!((w1.beg_park_s - 0.040).abs() < 1e-12);
        assert!((w1.steal_donate_s - 0.001).abs() < 1e-12);
        assert!((w1.committed_s - 0.020).abs() < 1e-12);
    }

    #[test]
    fn fractions_sum_to_one_per_worker() {
        let ms = 1_000_000u32;
        let events = vec![
            e(0, EventKind::OpCommit, 30 * ms),
            e(0, EventKind::Rollback, 10 * ms),
            e(1, EventKind::CmUnpark, 90 * ms),
        ];
        let a = attribute(&events, 3, 0.05);
        for w in &a.per_worker {
            let sum: f64 = w.fractions().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "tid {} sums to {sum}", w.tid);
        }
        // worker 2 recorded nothing: all idle
        assert_eq!(a.per_worker[2].fractions()[5], 1.0);
    }

    #[test]
    fn overrun_clamps_idle_and_still_normalizes() {
        // measured time (90ms) exceeds the wall clock (50ms): idle clamps
        // to zero and fractions normalize over the measured total.
        let events = vec![e(0, EventKind::OpCommit, 90_000_000)];
        let a = attribute(&events, 1, 0.05);
        let w = &a.per_worker[0];
        assert_eq!(w.idle_s, 0.0);
        let fr = w.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((fr[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn totals_fractions_and_dominant_waste() {
        let ms = 1_000_000u32;
        let events = vec![
            e(0, EventKind::OpCommit, 40 * ms),
            e(0, EventKind::Rollback, 10 * ms),
            e(1, EventKind::Rollback, 20 * ms),
            e(1, EventKind::OpCommit, 20 * ms),
        ];
        let a = attribute(&events, 2, 0.05);
        assert!((a.total(Category::Committed) - 0.060).abs() < 1e-12);
        assert!((a.total(Category::RolledBack) - 0.030).abs() < 1e-12);
        // worker-seconds denominator: 2 x 50ms = 100ms
        assert!((a.fraction(Category::Committed) - 0.6).abs() < 1e-9);
        // idle is 0 + 10ms; rollback waste (30ms) dominates
        let (cat, s) = a.dominant_waste().unwrap();
        assert_eq!(cat, Category::RolledBack);
        assert!((s - 0.030).abs() < 1e-12);
    }

    #[test]
    fn json_round_trips() {
        let events = vec![
            e(0, EventKind::OpCommit, 7_000_000),
            e(1, EventKind::BegUnpark, 3_000_000),
        ];
        let a = attribute(&events, 2, 0.02);
        let j = crate::json::parse(&a.to_json().dump()).unwrap();
        for key in ["wall_s", "totals", "fractions", "workers"] {
            assert!(j.get(key).is_some(), "missing {key}");
        }
        let back = TimeAttribution::from_json(&j).unwrap();
        assert_eq!(back.per_worker.len(), 2);
        assert!((back.per_worker[0].committed_s - 0.007).abs() < 1e-12);
        assert!((back.wall_s - 0.02).abs() < 1e-12);
        // fractions survive the round trip via recomputation
        let sum: f64 = back.per_worker[1].fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_log_is_all_idle() {
        let a = attribute(&[], 2, 1.0);
        assert_eq!(a.per_worker.len(), 2);
        for w in &a.per_worker {
            assert_eq!(w.accounted_s(), 0.0);
            assert_eq!(w.idle_s, 1.0);
        }
        assert_eq!(a.fraction(Category::Idle), 1.0);
        assert!(crate::json::parse(&a.to_json().dump()).is_ok());
    }
}
