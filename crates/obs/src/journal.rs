//! Structured logging: a leveled, rate-limited JSONL journal.
//!
//! Every line the journal emits is one JSON object — `{"t":…,"level":…,
//! "event":…,…}` — so daemon stderr (and `--log=PATH` files) can be parsed,
//! filtered, and shipped without regexes. The CLI's interactive commands use
//! the same journal in *text* mode, which prints each event's `msg` field
//! as the familiar human line; switching a command to machine-readable
//! output is therefore just a sink change (`--log`), not a reformat of
//! every call site.
//!
//! Properties the serve daemon leans on:
//!
//! * **Leveled** — events below the journal's minimum level are dropped
//!   before any formatting (`PI2M_LOG_LEVEL=debug|info|warn|error`).
//! * **Rate-limited per event name** — at most [`RATE_MAX_PER_WINDOW`]
//!   lines per event name per one-second window, so a flapping socket or a
//!   recycle storm cannot flood stderr. Suppressed lines are counted, and
//!   the count is surfaced on the next emitted line of that event
//!   (`"suppressed": N`) when the window rolls.
//! * **Monotonic timestamps** — `t` is seconds since the journal was
//!   created, measured on [`Instant`] and clamped so lines never go
//!   backwards even across threads.
//! * **Bounded memory** — the last [`RING_CAP`] accepted events are kept in
//!   an in-memory ring ([`Journal::recent`]) for post-mortems; nothing else
//!   accumulates.

use crate::json::Json;
use std::collections::{HashMap, VecDeque};
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Version of the JSONL line schema (`t`/`level`/`event` + free-form
/// fields). Bump when a stable field changes meaning; printed by
/// `pi2m --version` as `journal-schema`.
pub const SCHEMA_VERSION: u32 = 1;

/// Accepted events kept in memory for [`Journal::recent`].
pub const RING_CAP: usize = 256;

/// Max lines per event name per one-second window before suppression.
pub const RATE_MAX_PER_WINDOW: u32 = 10;

/// Event severity, ordered. The journal drops anything below its minimum.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Debug,
    Info,
    Warn,
    Error,
}

impl Level {
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// Where accepted lines go. The ring and rate limiter run regardless.
enum Sink {
    /// Drop the line (tests and library embedders that only want `recent`).
    Null,
    /// Human lines on stderr: the event's `msg` field when present, else
    /// `event key=value …`.
    StderrText,
    /// One JSON object per stderr line.
    StderrJsonl,
    /// One JSON object per line into an arbitrary writer (`--log=PATH`).
    Jsonl(Box<dyn Write + Send>),
}

/// Per-event-name rate limiter state for one window.
struct Rate {
    /// Window index: whole seconds since the journal origin.
    window: u64,
    emitted: u32,
    suppressed: u64,
}

struct Inner {
    sink: Sink,
    ring: VecDeque<Json>,
    rates: HashMap<String, Rate>,
    suppressed_total: u64,
    /// Last emitted timestamp; lines are clamped to never go backwards.
    last_t: f64,
}

/// A leveled, rate-limited structured log. Cheap to share (`Arc`); all
/// state sits behind one mutex — journals are for control-plane events
/// (admissions, retries, drains), not hot-path metrics.
pub struct Journal {
    min: Level,
    origin: Instant,
    inner: Mutex<Inner>,
}

impl Journal {
    fn with_sink(min: Level, sink: Sink) -> Arc<Journal> {
        Arc::new(Journal {
            min,
            origin: Instant::now(),
            inner: Mutex::new(Inner {
                sink,
                ring: VecDeque::new(),
                rates: HashMap::new(),
                suppressed_total: 0,
                last_t: 0.0,
            }),
        })
    }

    /// A journal that keeps the ring but writes nowhere. The default for
    /// library embedders (e.g. the serve `ServiceConfig` in tests).
    pub fn null() -> Arc<Journal> {
        Journal::with_sink(Level::Info, Sink::Null)
    }

    /// Human-readable lines on stderr (interactive CLI default).
    pub fn stderr_text(min: Level) -> Arc<Journal> {
        Journal::with_sink(min, Sink::StderrText)
    }

    /// JSONL on stderr (daemon default; also bare `--log`).
    pub fn stderr_jsonl(min: Level) -> Arc<Journal> {
        Journal::with_sink(min, Sink::StderrJsonl)
    }

    /// JSONL into an arbitrary writer (tests capture lines this way).
    pub fn to_writer(min: Level, w: Box<dyn Write + Send>) -> Arc<Journal> {
        Journal::with_sink(min, Sink::Jsonl(w))
    }

    /// JSONL appended to a file, created if absent.
    pub fn to_path(min: Level, path: &str) -> Result<Arc<Journal>, String> {
        let f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot open log file {path}: {e}"))?;
        Ok(Journal::with_sink(min, Sink::Jsonl(Box::new(f))))
    }

    /// Resolve a `--log[=PATH]` / `PI2M_LOG` spec. `None` falls back to
    /// stderr — JSONL when `default_jsonl` (daemons), else text
    /// (interactive commands). `"stderr"`, `"-"`, or empty force stderr
    /// JSONL; anything else is a file path.
    pub fn from_spec(
        spec: Option<&str>,
        min: Level,
        default_jsonl: bool,
    ) -> Result<Arc<Journal>, String> {
        match spec {
            Some("stderr") | Some("-") | Some("") => Ok(Journal::stderr_jsonl(min)),
            Some(path) => Journal::to_path(min, path),
            None if default_jsonl => Ok(Journal::stderr_jsonl(min)),
            None => Ok(Journal::stderr_text(min)),
        }
    }

    pub fn min_level(&self) -> Level {
        self.min
    }

    /// The last [`RING_CAP`] accepted events, oldest first.
    pub fn recent(&self) -> Vec<Json> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Total lines dropped by the rate limiter over the journal lifetime.
    pub fn suppressed_total(&self) -> u64 {
        self.inner.lock().unwrap().suppressed_total
    }

    pub fn debug(&self, event: &str, fields: &[(&str, Json)]) {
        self.emit(Level::Debug, event, fields);
    }

    pub fn info(&self, event: &str, fields: &[(&str, Json)]) {
        self.emit(Level::Info, event, fields);
    }

    pub fn warn(&self, event: &str, fields: &[(&str, Json)]) {
        self.emit(Level::Warn, event, fields);
    }

    pub fn error(&self, event: &str, fields: &[(&str, Json)]) {
        self.emit(Level::Error, event, fields);
    }

    /// Record one event. Level-filtered, rate-limited, then written to the
    /// sink and the ring with a monotonic timestamp.
    pub fn emit(&self, level: Level, event: &str, fields: &[(&str, Json)]) {
        self.emit_at(self.origin.elapsed().as_secs_f64(), level, event, fields);
    }

    /// [`emit`](Journal::emit) with an explicit timestamp (seconds since
    /// origin) — the testable core: window rollover and monotonicity are
    /// driven by `t`, not the wall clock.
    fn emit_at(&self, t: f64, level: Level, event: &str, fields: &[(&str, Json)]) {
        if level < self.min {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        let t = if t > inner.last_t { t } else { inner.last_t };
        inner.last_t = t;
        let window = t as u64;
        let backlog = {
            let rate = inner.rates.entry(event.to_string()).or_insert(Rate {
                window,
                emitted: 0,
                suppressed: 0,
            });
            let rolled = if rate.window != window {
                let s = rate.suppressed;
                *rate = Rate {
                    window,
                    emitted: 0,
                    suppressed: 0,
                };
                s
            } else {
                0
            };
            if rate.emitted >= RATE_MAX_PER_WINDOW {
                rate.suppressed += 1;
                None
            } else {
                rate.emitted += 1;
                Some(rolled)
            }
        };
        let Some(backlog) = backlog else {
            inner.suppressed_total += 1;
            return;
        };
        let mut obj: Vec<(&str, Json)> = Vec::with_capacity(fields.len() + 4);
        // microsecond precision keeps lines short without losing ordering
        obj.push(("t", Json::num((t * 1e6).round() / 1e6)));
        obj.push(("level", Json::str(level.as_str())));
        obj.push(("event", Json::str(event)));
        for (k, v) in fields {
            obj.push((k, v.clone()));
        }
        if backlog > 0 {
            obj.push(("suppressed", Json::int(backlog)));
        }
        let line = Json::obj(obj);
        if inner.ring.len() >= RING_CAP {
            inner.ring.pop_front();
        }
        inner.ring.push_back(line.clone());
        match &mut inner.sink {
            Sink::Null => {}
            Sink::StderrText => eprintln!("{}", render_text(event, fields, backlog)),
            Sink::StderrJsonl => eprintln!("{}", line.dump()),
            Sink::Jsonl(w) => {
                let _ = writeln!(w, "{}", line.dump());
                let _ = w.flush();
            }
        }
    }
}

/// The human form of one event: its `msg` field verbatim when present
/// (the interactive CLI passes its legacy progress lines this way), else
/// `event key=value …`.
fn render_text(event: &str, fields: &[(&str, Json)], backlog: u64) -> String {
    let mut line = match fields.iter().find(|(k, _)| *k == "msg") {
        Some((_, Json::Str(msg))) => msg.clone(),
        _ => {
            let mut s = event.to_string();
            for (k, v) in fields {
                let rendered = match v {
                    Json::Str(text) => text.clone(),
                    other => other.dump(),
                };
                s.push_str(&format!(" {k}={rendered}"));
            }
            s
        }
    };
    if backlog > 0 {
        line.push_str(&format!(" ({backlog} similar suppressed)"));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// A shared capture buffer usable as a journal sink.
    #[derive(Clone, Default)]
    struct Buf(Arc<StdMutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(b);
            Ok(b.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Buf {
        fn lines(&self) -> Vec<String> {
            String::from_utf8(self.0.lock().unwrap().clone())
                .unwrap()
                .lines()
                .map(String::from)
                .collect()
        }
    }

    #[test]
    fn golden_jsonl_structure() {
        let buf = Buf::default();
        let jl = Journal::to_writer(Level::Debug, Box::new(buf.clone()));
        jl.info(
            "job.admitted",
            &[("job", Json::str("job-1")), ("depth", Json::int(3))],
        );
        jl.warn("serve.recycle", &[("slot", Json::int(0))]);
        let lines = buf.lines();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = crate::json::parse(line).expect("every journal line parses as JSON");
            assert!(v.get("t").and_then(Json::as_f64).is_some(), "{line}");
            assert!(v.get("level").and_then(Json::as_str).is_some(), "{line}");
            assert!(v.get("event").and_then(Json::as_str).is_some(), "{line}");
        }
        let first = crate::json::parse(&lines[0]).unwrap();
        assert_eq!(first.get("level").unwrap().as_str(), Some("info"));
        assert_eq!(first.get("event").unwrap().as_str(), Some("job.admitted"));
        assert_eq!(first.get("job").unwrap().as_str(), Some("job-1"));
        assert_eq!(first.get("depth").unwrap().as_f64(), Some(3.0));
        let second = crate::json::parse(&lines[1]).unwrap();
        assert_eq!(second.get("level").unwrap().as_str(), Some("warn"));
        // monotone timestamps
        let (t0, t1) = (
            first.get("t").unwrap().as_f64().unwrap(),
            second.get("t").unwrap().as_f64().unwrap(),
        );
        assert!(t1 >= t0, "timestamps must be non-decreasing: {t0} {t1}");
        assert_eq!(SCHEMA_VERSION, 1);
    }

    #[test]
    fn levels_filter_below_minimum() {
        let buf = Buf::default();
        let jl = Journal::to_writer(Level::Warn, Box::new(buf.clone()));
        jl.debug("noisy", &[]);
        jl.info("noisy", &[]);
        jl.warn("kept", &[]);
        jl.error("kept", &[]);
        let lines = buf.lines();
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines.iter().all(|l| l.contains("kept")));
        // filtered lines do not reach the ring either
        assert_eq!(jl.recent().len(), 2);
        assert_eq!(jl.suppressed_total(), 0, "filtering is not suppression");
    }

    #[test]
    fn rate_limiter_bounds_each_event_name_and_surfaces_backlog() {
        let buf = Buf::default();
        let jl = Journal::to_writer(Level::Info, Box::new(buf.clone()));
        // 50 identical events inside one window: only the cap gets through
        for i in 0..50 {
            jl.emit_at(0.01 * i as f64, Level::Info, "flap", &[]);
        }
        // a different event name is not throttled by "flap"'s window
        jl.emit_at(0.9, Level::Info, "other", &[]);
        assert_eq!(
            buf.lines().len(),
            RATE_MAX_PER_WINDOW as usize + 1,
            "cap per event name per window"
        );
        assert_eq!(jl.suppressed_total(), 50 - RATE_MAX_PER_WINDOW as u64);
        // the next window's first line carries the suppressed count
        jl.emit_at(1.5, Level::Info, "flap", &[]);
        let last = buf.lines().pop().unwrap();
        let v = crate::json::parse(&last).unwrap();
        assert_eq!(
            v.get("suppressed").unwrap().as_f64(),
            Some((50 - RATE_MAX_PER_WINDOW) as f64),
            "{last}"
        );
    }

    #[test]
    fn ring_is_bounded_and_keeps_newest() {
        let jl = Journal::null();
        // distinct event names dodge the rate limiter; the ring still caps
        for i in 0..(RING_CAP + 40) {
            jl.emit_at(
                i as f64,
                Level::Info,
                &format!("e{i}"),
                &[("i", Json::int(i as u64))],
            );
        }
        let recent = jl.recent();
        assert_eq!(recent.len(), RING_CAP);
        let first = recent.first().unwrap();
        assert_eq!(first.get("event").unwrap().as_str(), Some("e40"));
        let last = recent.last().unwrap();
        assert_eq!(
            last.get("event").unwrap().as_str(),
            Some(format!("e{}", RING_CAP + 39).as_str())
        );
    }

    #[test]
    fn timestamps_never_go_backwards() {
        let buf = Buf::default();
        let jl = Journal::to_writer(Level::Info, Box::new(buf.clone()));
        jl.emit_at(5.0, Level::Info, "a", &[]);
        jl.emit_at(3.0, Level::Info, "b", &[]); // clock skew: clamped to 5.0
        let lines = buf.lines();
        let t0 = crate::json::parse(&lines[0])
            .unwrap()
            .get("t")
            .unwrap()
            .as_f64()
            .unwrap();
        let t1 = crate::json::parse(&lines[1])
            .unwrap()
            .get("t")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(t0, 5.0);
        assert!(t1 >= t0, "clamped: {t1} >= {t0}");
    }

    #[test]
    fn text_mode_prints_msg_verbatim() {
        assert_eq!(
            render_text("mesh.done", &[("msg", Json::str("12 tets in 0.5s"))], 0),
            "12 tets in 0.5s"
        );
        assert_eq!(
            render_text(
                "serve.recycle",
                &[("slot", Json::int(2)), ("why", Json::str("livelock"))],
                3
            ),
            "serve.recycle slot=2 why=livelock (3 similar suppressed)"
        );
    }

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("error"), Some(Level::Error));
        assert_eq!(Level::parse("loud"), None);
        assert!(Level::Debug < Level::Info && Level::Warn < Level::Error);
    }
}
