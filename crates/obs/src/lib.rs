//! # pi2m-obs
//!
//! Unified observability substrate for the PI2M pipeline (tentpole of the
//! `pi2m-obs` issue): every crate — EDT, oracle, Delaunay kernel, refinement,
//! simulator — records into the same catalog of counters and log-bucketed
//! histograms through **thread-local recorders with no atomics on the hot
//! path**, mirroring the `ThreadStats` ownership model of `pi2m-refine`
//! (exclusive per-worker ownership, drained and merged at thread join).
//!
//! Five layers:
//!
//! * [`metrics`] — the static metric catalog ([`metrics::catalog`]), counter
//!   and histogram ids, [`ThreadRecorder`] (hot path) and
//!   [`MetricsSnapshot`] (merged at join).
//! * [`flight`] + [`mod@analyze`] — the concurrency flight recorder: fixed
//!   capacity per-worker SPSC event rings for the speculative-op lifecycle,
//!   the live-tap sampler, and the offline contention analyzer.
//! * [`span`] — RAII wall-clock phase timing ([`Phases`], [`SpanGuard`]).
//! * [`report`] + [`export`] — the self-describing [`RunReport`] and its
//!   exporters: structured JSON, Prometheus text exposition, and Chrome
//!   Trace Event JSON (loadable in `chrome://tracing` / Perfetto).
//! * [`journal`] — leveled, rate-limited JSONL structured logging
//!   ([`Journal`]) for control-plane events (admissions, retries, drains),
//!   with a bounded in-memory ring of recent events.
//!
//! ```
//! use pi2m_obs::metrics::{self, ThreadRecorder, MetricsSnapshot};
//!
//! let mut rec = ThreadRecorder::new();
//! rec.inc(metrics::OPS_INSERTIONS, 1);          // plain u64 add, no atomics
//! rec.observe(metrics::CAVITY_CELLS, 12.0);     // log-bucketed histogram
//! let mut snap = MetricsSnapshot::new();
//! rec.merge_into(0, &mut snap);                 // at thread join (tid 0)
//! assert_eq!(snap.counter(metrics::OPS_INSERTIONS), 1);
//! ```

pub mod analyze;
pub mod attribution;
pub mod cancel;
pub mod export;
pub mod flight;
pub mod inspect;
pub mod journal;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use analyze::{analyze, AnalyzeOpts, ContentionReport};
pub use attribution::{attribute, Category, TimeAttribution, WorkerAttribution};
pub use cancel::{CancelToken, Cancelled};
pub use export::{
    render_chrome_trace, render_chrome_trace_with_flight, render_overhead_table, render_prometheus,
};
pub use flight::{
    EventKind, EventRing, FlightEvent, FlightHandle, FlightLog, FlightRecorder, FlightSampler,
};
pub use inspect::{load_artifact, render_diff, render_summary, Artifact, ArtifactKind, ShardInfo};
pub use journal::{Journal, Level};
pub use metrics::{CounterId, HistId, MetricDef, MetricKind, MetricsSnapshot, ThreadRecorder};
pub use report::{OverheadBreakdown, PhaseReport, RunReport, ShardChunk, ShardSection, TraceSpan};
pub use span::{Phases, SpanGuard};
