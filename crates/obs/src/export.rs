//! Exporters: Prometheus text exposition, Chrome Trace Event JSON, and the
//! Table-1 style overhead comparison table.

use crate::attribution::Category;
use crate::flight::{EventKind, FlightEvent};
use crate::json::Json;
use crate::metrics::{bucket_upper_bound, ObsEvent};
use crate::report::{OverheadBreakdown, RunReport, TraceSpan};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Prometheus text exposition (0.0.4 format) of a run report: counters,
/// histograms (`_bucket`/`_sum`/`_count`), per-phase and per-overhead-kind
/// gauges. Metric names are prefixed `pi2m_`.
pub fn render_prometheus(report: &RunReport) -> String {
    let mut out = String::new();

    for (def, v) in report.metrics.counters() {
        let name = format!("pi2m_{}", def.name);
        let _ = writeln!(out, "# HELP {name} {} ({})", def.help, def.unit);
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {v}");
    }

    for (def, h) in report.metrics.histograms() {
        if h.count == 0 {
            continue;
        }
        let name = format!("pi2m_{}", def.name);
        let _ = writeln!(out, "# HELP {name} {} ({})", def.help, def.unit);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let le = bucket_upper_bound(i);
            if le.is_infinite() {
                let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
            } else {
                let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
            }
        }
        if h.buckets[h.buckets.len() - 1] == 0 {
            // the exposition format requires a closing +Inf bucket
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
        }
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count);
    }

    let _ = writeln!(
        out,
        "# HELP pi2m_phase_seconds Wall time per pipeline phase"
    );
    let _ = writeln!(out, "# TYPE pi2m_phase_seconds gauge");
    for p in &report.phases {
        let _ = writeln!(
            out,
            "pi2m_phase_seconds{{phase=\"{}\"}} {}",
            p.name, p.seconds
        );
    }

    let _ = writeln!(
        out,
        "# HELP pi2m_overhead_seconds Wasted cycles per category, summed over threads"
    );
    let _ = writeln!(out, "# TYPE pi2m_overhead_seconds gauge");
    let o = &report.overheads;
    for (kind, v) in [
        ("contention", o.contention_s),
        ("load_balance", o.load_balance_s),
        ("rollback", o.rollback_s),
    ] {
        let _ = writeln!(out, "pi2m_overhead_seconds{{kind=\"{kind}\"}} {v}");
    }
    let _ = writeln!(
        out,
        "# HELP pi2m_wall_seconds Wall time of the measured section"
    );
    let _ = writeln!(out, "# TYPE pi2m_wall_seconds gauge");
    let _ = writeln!(out, "pi2m_wall_seconds {}", report.wall_s);
    let _ = writeln!(out, "# HELP pi2m_elements Final mesh elements");
    let _ = writeln!(out, "# TYPE pi2m_elements gauge");
    let _ = writeln!(out, "pi2m_elements {}", report.elements);
    out
}

/// Chrome Trace Event JSON (the `chrome://tracing` / Perfetto "JSON Array
/// Format" with a `traceEvents` wrapper object).
///
/// * `phases` appear as complete (`"ph":"X"`) events on a dedicated
///   "pipeline" track (`tid` 0).
/// * `events` (per-worker overhead episodes, worker lifetimes) appear on
///   `tid = worker + 1`.
///
/// All timestamps must share the run-origin time base; they are emitted in
/// microseconds as the format requires.
pub fn render_chrome_trace(phases: &[TraceSpan], events: &[(u32, ObsEvent)]) -> String {
    render_chrome_trace_with_flight(phases, events, &[])
}

/// [`render_chrome_trace`], plus the flight-recorder timeline. Duration-
/// bearing kinds (committed ops, rollbacks, CM parks, begging waits) render
/// as complete (`"X"`) slices so rollback storms are visually dense;
/// point-in-time kinds (lock conflicts, steals, donations, worker deaths)
/// render as instant (`"i"`) markers. `OpBegin`/`CmPark`/`BegPark` and the
/// lock batches are skipped — their information is carried by the paired
/// end/summary events.
///
/// Each worker additionally gets a synthetic counter track
/// (`"ph":"C"`, name `attribution w<tid>`): at every duration-bearing
/// event, the cumulative seconds per attribution category
/// ([`crate::attribution::Category`]) are re-emitted, so
/// Perfetto draws the committed/rolled-back/parked/steal-donate areas
/// growing over the run — the time-resolved view of the run report's
/// `time_attribution` section.
pub fn render_chrome_trace_with_flight(
    phases: &[TraceSpan],
    events: &[(u32, ObsEvent)],
    flight: &[FlightEvent],
) -> String {
    let us = |s: f64| (s * 1e6).max(0.0);
    let mut trace_events: Vec<Json> = Vec::new();

    // Track-name metadata so Perfetto shows labels instead of bare tids.
    let thread_meta = |tid: u64, name: &str| {
        Json::obj(vec![
            ("name", Json::str("thread_name")),
            ("ph", Json::str("M")),
            ("pid", Json::int(1)),
            ("tid", Json::int(tid)),
            ("args", Json::obj(vec![("name", Json::str(name))])),
        ])
    };
    trace_events.push(thread_meta(0, "pipeline"));
    let mut seen_tids: Vec<u32> = events.iter().map(|(t, _)| *t).collect();
    seen_tids.extend(flight.iter().map(|e| e.tid as u32));
    seen_tids.sort_unstable();
    seen_tids.dedup();
    for &t in &seen_tids {
        trace_events.push(thread_meta(t as u64 + 1, &format!("worker {t}")));
    }

    for s in phases {
        trace_events.push(Json::obj(vec![
            ("name", Json::str(s.name)),
            ("cat", Json::str("phase")),
            ("ph", Json::str("X")),
            ("pid", Json::int(1)),
            ("tid", Json::int(0)),
            ("ts", Json::num(us(s.start_s))),
            ("dur", Json::num(us(s.dur_s))),
        ]));
    }
    for (tid, e) in events {
        trace_events.push(Json::obj(vec![
            ("name", Json::str(e.name)),
            ("cat", Json::str(e.cat)),
            ("ph", Json::str("X")),
            ("pid", Json::int(1)),
            ("tid", Json::int(*tid as u64 + 1)),
            ("ts", Json::num(us(e.at_s))),
            ("dur", Json::num(us(e.dur_s))),
        ]));
    }

    // Cumulative attribution seconds per worker, re-emitted as a counter
    // sample whenever a duration-bearing event lands on that worker.
    let mut attr_cum: HashMap<u16, [f64; 5]> = HashMap::new();
    let attr_slot = |kind: EventKind| -> Option<usize> {
        match kind {
            EventKind::OpCommit => Some(0),
            EventKind::Rollback => Some(1),
            EventKind::CmUnpark => Some(2),
            EventKind::BegUnpark => Some(3),
            EventKind::Donate => Some(4),
            _ => None,
        }
    };
    for e in flight {
        let end_us = e.t_ns as f64 * 1e-3;
        let dur_us = e.c as f64 * 1e-3;
        let tid = Json::int(e.tid as u64 + 1);
        if let Some(slot) = attr_slot(e.kind) {
            let cum = attr_cum.entry(e.tid).or_default();
            cum[slot] += e.c as f64 * 1e-9;
            trace_events.push(Json::obj(vec![
                ("name", Json::str(format!("attribution w{}", e.tid))),
                ("cat", Json::str("attribution")),
                ("ph", Json::str("C")),
                ("pid", Json::int(1)),
                ("tid", tid.clone()),
                ("ts", Json::num(end_us)),
                (
                    "args",
                    Json::Obj(
                        Category::ALL[..5]
                            .iter()
                            .zip(cum.iter())
                            .map(|(c, &v)| (c.key().to_string(), Json::num(v)))
                            .collect(),
                    ),
                ),
            ]));
        }
        match e.kind {
            // duration-bearing: the event is stamped at the *end*; its `c`
            // word is the duration in ns, so the slice starts at t - c.
            EventKind::OpCommit
            | EventKind::Rollback
            | EventKind::CmUnpark
            | EventKind::BegUnpark => {
                let name = match e.kind {
                    EventKind::OpCommit => "op",
                    EventKind::Rollback => "rollback",
                    EventKind::CmUnpark => "cm_park",
                    _ => "beg_wait",
                };
                let mut obj = vec![
                    ("name", Json::str(name)),
                    ("cat", Json::str("flight")),
                    ("ph", Json::str("X")),
                    ("pid", Json::int(1)),
                    ("tid", tid),
                    ("ts", Json::num((end_us - dur_us).max(0.0))),
                    ("dur", Json::num(dur_us)),
                ];
                if e.kind == EventKind::Rollback {
                    obj.push((
                        "args",
                        Json::obj(vec![
                            ("vertex", Json::int(e.a as u64)),
                            ("owner", Json::int(e.rollback_owner() as u64)),
                            ("region", Json::int(e.rollback_region() as u64)),
                        ]),
                    ));
                } else if e.kind == EventKind::OpCommit {
                    obj.push(("args", Json::obj(vec![("vertex", Json::int(e.a as u64))])));
                }
                trace_events.push(Json::obj(obj));
            }
            EventKind::LockConflict
            | EventKind::Steal
            | EventKind::Donate
            | EventKind::WorkerDeath
            | EventKind::HeirBequest => {
                trace_events.push(Json::obj(vec![
                    ("name", Json::str(e.kind.name())),
                    ("cat", Json::str("flight")),
                    ("ph", Json::str("i")),
                    ("s", Json::str("t")),
                    ("pid", Json::int(1)),
                    ("tid", tid),
                    ("ts", Json::num(end_us)),
                    (
                        "args",
                        Json::obj(vec![
                            ("a", Json::int(e.a as u64)),
                            ("b", Json::int(e.b as u64)),
                        ]),
                    ),
                ]));
            }
            EventKind::OpBegin | EventKind::CmPark | EventKind::BegPark | EventKind::LockBatch => {}
        }
    }

    Json::obj(vec![
        ("traceEvents", Json::Arr(trace_events)),
        ("displayTimeUnit", Json::str("ms")),
    ])
    .dump()
}

/// Table-1 style per-contention-manager overhead comparison: one text
/// rendering shared by the CLI, `contention_lab`, and the bench harnesses.
pub fn render_overhead_table(rows: &[(String, OverheadBreakdown, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "CM",
        "time(s)",
        "rollbacks",
        "contention",
        "loadbal",
        "rollback-ovh",
        "total-ovh",
        "livelock"
    );
    for (label, o, wall) in rows {
        let _ = writeln!(
            out,
            "{:<12} {:>10.4} {:>10} {:>12.4} {:>12.4} {:>12.4} {:>12.4} {:>9}",
            label,
            wall,
            o.rollbacks,
            o.contention_s,
            o.load_balance_s,
            o.rollback_s,
            o.total_s(),
            if o.livelock { "YES" } else { "no" },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::{self, ThreadRecorder};

    fn sample_report() -> RunReport {
        let mut rec = ThreadRecorder::new();
        rec.inc(metrics::OPS_INSERTIONS, 5);
        rec.observe(metrics::ROLLBACK_SECONDS, 0.001);
        rec.observe(metrics::ROLLBACK_SECONDS, 0.1);
        rec.event("worker", "worker", 0.0, 1.0);
        let mut r = RunReport::new("test");
        r.set_phases(&[TraceSpan {
            name: "edt",
            start_s: 0.0,
            dur_s: 0.5,
        }]);
        r.wall_s = 1.0;
        r.elements = 10;
        rec.merge_into(0, &mut r.metrics);
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = render_prometheus(&sample_report());
        assert!(text.contains("# TYPE pi2m_ops_insertions counter"));
        assert!(text.contains("pi2m_ops_insertions 5"));
        assert!(text.contains("# TYPE pi2m_rollback_seconds histogram"));
        assert!(text.contains("pi2m_rollback_seconds_count 2"));
        assert!(text.contains("pi2m_phase_seconds{phase=\"edt\"} 0.5"));
        assert!(text.contains("pi2m_overhead_seconds{kind=\"contention\"}"));
        // cumulative bucket counts end at the total count
        let last_bucket = text
            .lines()
            .rfind(|l| l.starts_with("pi2m_rollback_seconds_bucket"))
            .unwrap();
        assert!(last_bucket.ends_with(" 2"), "{last_bucket}");
    }

    #[test]
    fn chrome_trace_is_valid_json_with_events() {
        let r = sample_report();
        let spans = [TraceSpan {
            name: "edt",
            start_s: 0.0,
            dur_s: 0.5,
        }];
        let s = render_chrome_trace(&spans, &r.metrics.events);
        let j = json::parse(&s).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        // 2 thread_name metadata + 1 phase + 1 worker event
        assert_eq!(evs.len(), 4);
        let worker_ev = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("worker"))
            .unwrap();
        assert_eq!(worker_ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(worker_ev.get("dur").unwrap().as_f64(), Some(1e6));
        assert_eq!(worker_ev.get("tid").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn chrome_trace_renders_flight_kinds() {
        let flight = [
            FlightEvent {
                t_ns: 2_000_000, // op ending at 2ms, 1ms long
                kind: EventKind::Rollback,
                cause: 0,
                tid: 0,
                a: 42,
                b: crate::flight::pack_owner_region(1, 5),
                c: 1_000_000,
            },
            FlightEvent {
                t_ns: 3_000_000,
                kind: EventKind::Steal,
                cause: 0,
                tid: 1,
                a: 0,
                b: 0,
                c: 0,
            },
            FlightEvent {
                t_ns: 100, // paired-begin kinds are skipped
                kind: EventKind::CmPark,
                cause: 0,
                tid: 0,
                a: 0,
                b: 0,
                c: 0,
            },
        ];
        let s = render_chrome_trace_with_flight(&[], &[], &flight);
        let j = json::parse(&s).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let rb = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("rollback"))
            .expect("rollback slice");
        assert_eq!(rb.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(rb.get("ts").unwrap().as_f64(), Some(1_000.0)); // 2ms - 1ms
        assert_eq!(rb.get("dur").unwrap().as_f64(), Some(1_000.0));
        let args = rb.get("args").unwrap();
        assert_eq!(args.get("vertex").unwrap().as_f64(), Some(42.0));
        assert_eq!(args.get("owner").unwrap().as_f64(), Some(1.0));
        let steal = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("steal"))
            .expect("steal marker");
        assert_eq!(steal.get("ph").unwrap().as_str(), Some("i"));
        assert!(!evs
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("cm_park")));
        // worker tracks exist for both tids
        assert!(s.contains("worker 0") && s.contains("worker 1"));
    }

    #[test]
    fn chrome_trace_emits_attribution_counter_tracks() {
        let op = |t_ms: u64, tid: u16, kind: EventKind, dur_ms: u32| FlightEvent {
            t_ns: t_ms * 1_000_000,
            kind,
            cause: 0,
            tid,
            a: 0,
            b: 0,
            c: dur_ms * 1_000_000,
        };
        let flight = [
            op(2, 0, EventKind::OpCommit, 1),
            op(5, 0, EventKind::OpCommit, 2),
            op(6, 0, EventKind::Rollback, 1),
            op(4, 1, EventKind::BegUnpark, 3),
            // instant kinds do not produce counter samples
            op(7, 1, EventKind::Steal, 0),
        ];
        let s = render_chrome_trace_with_flight(&[], &[], &flight);
        let j = json::parse(&s).unwrap();
        let evs = j.get("traceEvents").unwrap().as_arr().unwrap();
        let counters: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("C"))
            .collect();
        // one sample per duration-bearing event
        assert_eq!(counters.len(), 4);
        let w0: Vec<&Json> = counters
            .iter()
            .copied()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("attribution w0"))
            .collect();
        assert_eq!(w0.len(), 3);
        // the committed track accumulates: 1ms, then 3ms
        let arg = |e: &Json, key: &str| e.get("args").unwrap().get(key).unwrap().as_f64().unwrap();
        assert!((arg(w0[0], "committed") - 0.001).abs() < 1e-12);
        assert!((arg(w0[1], "committed") - 0.003).abs() < 1e-12);
        // the rollback sample keeps the committed cumulative and adds waste
        assert!((arg(w0[2], "committed") - 0.003).abs() < 1e-12);
        assert!((arg(w0[2], "rolled_back") - 0.001).abs() < 1e-12);
    }

    #[test]
    fn overhead_table_renders_rows() {
        let rows = vec![
            (
                "Local".to_string(),
                OverheadBreakdown {
                    contention_s: 0.5,
                    load_balance_s: 0.25,
                    rollback_s: 0.125,
                    rollbacks: 7,
                    livelock: false,
                },
                2.0,
            ),
            (
                "Aggressive".to_string(),
                OverheadBreakdown {
                    livelock: true,
                    ..Default::default()
                },
                0.1,
            ),
        ];
        let t = render_overhead_table(&rows);
        assert!(t.contains("Local"));
        assert!(t.contains("0.8750")); // total overhead
        assert!(t.contains("YES"));
    }
}
