//! Minimal JSON value tree, serializer, and parser (std-only).
//!
//! The report/trace exporters need structured, machine-readable output and
//! the golden-file tests need to read it back; with no serde available
//! offline, this module provides both directions for the JSON subset the
//! exporters emit (finite numbers, strings, bools, null, arrays, objects —
//! objects preserve insertion order).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so exports are
/// deterministic and diffable.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Integer-valued number (exact for |v| < 2^53).
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Finite float; non-finite values serialize as null (JSON has no inf).
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serialize compactly.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serialize with 2-space indentation.
    pub fn dump_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        // shortest roundtrip representation Rust provides
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document (the subset the exporters emit, plus standard
/// escapes). Duplicate object keys keep the last occurrence for `get`
/// symmetry with serde-style parsers.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(e) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // re-sync to char boundary for multi-byte UTF-8
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| "invalid utf-8 in string")?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        let mut seen: BTreeMap<String, usize> = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if let Some(&i) = seen.get(&key) {
                fields[i].1 = val;
            } else {
                seen.insert(key.clone(), fields.len());
                fields.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let v = Json::obj(vec![
            ("name", Json::str("pi2m \"quoted\" \\ path\nline")),
            ("n", Json::int(42)),
            ("pi", Json::num(3.25)),
            ("flag", Json::Bool(true)),
            ("none", Json::Null),
            ("arr", Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("nested", Json::obj(vec![("k", Json::num(0.125))])),
        ]);
        for s in [v.dump(), v.dump_pretty()] {
            let back = parse(&s).unwrap();
            assert_eq!(back, v, "roundtrip failed for {s}");
        }
    }

    #[test]
    fn integers_have_no_fraction() {
        assert_eq!(Json::int(7).dump(), "7");
        assert_eq!(Json::num(0.5).dump(), "0.5");
        assert_eq!(Json::num(f64::INFINITY).dump(), "null");
    }

    #[test]
    fn parses_unicode_and_escapes() {
        let v = parse(r#"{"s":"α\tβA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str().unwrap(), "α\tβA");
    }
}
