//! Offline inspection of saved observability artifacts: load a `--report`
//! run report or a `--contention-out` contention dump back from disk, render
//! a human-readable attribution / hot-spot summary, and diff two runs to
//! attribute a throughput regression to a specific waste category.
//!
//! Drives `pi2m analyze` (see the CLI); kept in the library so the loader
//! and renderers are unit-tested and reusable (e.g. by a future live
//! telemetry endpoint).
//!
//! The loader is deliberately lenient: every field is optional and missing
//! ones read as zero/empty, so older artifacts (schema v1/v2 reports without
//! a `time_attribution` section) still load and render — their attribution
//! table simply says it was not recorded.

use crate::attribution::{Category, TimeAttribution};
use crate::json::{parse, Json};
use std::fmt::Write as _;

/// What kind of artifact a JSON file turned out to be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A `--report` run report (`RunReport::to_json`).
    RunReport,
    /// A standalone `--contention-out` dump (`ContentionReport::to_json`).
    Contention,
    /// A per-job lifecycle trace saved from `GET /jobs/<id>/trace`.
    JobTrace,
}

impl ArtifactKind {
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::RunReport => "run report",
            ArtifactKind::Contention => "contention dump",
            ArtifactKind::JobTrace => "job trace",
        }
    }
}

/// Lenient view of a served job's lifecycle trace. Every field degrades:
/// a trace fetched while the job is still queued has no checkout, stage,
/// or terminal events yet, and the renderer must say "not recorded"
/// rather than erroring.
#[derive(Clone, Debug, Default)]
pub struct TraceInfo {
    /// Job id the service assigned (`"?"` when absent).
    pub id: String,
    pub schema_version: u64,
    /// Events present in the artifact (after any server-side capping).
    pub events: u64,
    /// Events the service dropped past its per-job cap.
    pub dropped: u64,
    /// Seconds the job sat queued, when a `queue_wait` event was recorded.
    pub queue_wait_s: Option<f64>,
    /// Session checkouts (one per attempt), with their session generations.
    pub checkouts: Vec<u64>,
    /// Backoff pauses between retried attempts.
    pub backoffs: u64,
    /// One line per failed attempt: `kind (class, retried|gave up)`.
    pub failures: Vec<String>,
    /// Completed stages as `(name, seconds)` in completion order, paired
    /// from `stage_started`/`stage_finished` events on the run clock.
    pub stages: Vec<(String, f64)>,
    /// Per-chunk spans of a sharded job.
    pub shard_chunks: u64,
    /// `(status, t_s)` of the terminal event, `None` while non-terminal.
    pub terminal: Option<(String, f64)>,
}

impl TraceInfo {
    /// The completed stage that consumed the most run time.
    pub fn dominant_stage(&self) -> Option<(&str, f64)> {
        self.stages
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, s)| (n.as_str(), *s))
    }
}

/// Lenient view of a run report's sharded-run section. Every field is
/// optional on disk: a run cancelled mid-shard (or written by a newer tool)
/// may carry the section header without per-chunk accounting, and the
/// renderer must degrade to "not recorded" rather than erroring.
#[derive(Clone, Debug, Default)]
pub struct ShardInfo {
    /// Chunk grid as `AxBxC`, or `"?"` when absent.
    pub grid: String,
    pub halo: u64,
    pub lanes: u64,
    pub seed_points: u64,
    /// Per-chunk `(tets, wall_s)` in plan order; `None` when the report was
    /// cut short before chunk accounting was written.
    pub chunks: Option<Vec<(u64, f64)>>,
}

/// Batched-kernel counters of a schema v5+ run report (the `pred_batch_*`
/// and `scratch_soa_*` entries of the counter catalog). Kept as raw counts;
/// the derived rates live in the methods so the renderer and any future
/// consumer agree on the arithmetic.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchKernelInfo {
    /// Wide-lane orient3d waves evaluated by the batched filter.
    pub orient_batches: u64,
    /// orient3d lanes evaluated through those waves.
    pub orient_lanes: u64,
    /// orient3d lanes that fell back to the scalar cascade.
    pub orient_fallbacks: u64,
    /// Wide-lane insphere waves evaluated by the batched filter.
    pub insphere_batches: u64,
    /// insphere lanes evaluated through those waves.
    pub insphere_lanes: u64,
    /// insphere lanes that fell back to the scalar cascade.
    pub insphere_fallbacks: u64,
    /// SoA staging waves gathered from the vertex pool.
    pub soa_gathers: u64,
    /// Points copied into SoA staging buffers across all gathers.
    pub soa_points: u64,
}

impl BatchKernelInfo {
    /// Did the run drive any batched waves at all? False means the scalar
    /// path ran (`--no-batch` / `PI2M_BATCH=0`, or a non-batched workload).
    pub fn any(&self) -> bool {
        self.orient_batches + self.insphere_batches + self.soa_gathers > 0
    }

    /// Mean occupied lanes per wave across both predicates.
    pub fn lanes_per_wave(&self) -> f64 {
        let waves = self.orient_batches + self.insphere_batches;
        if waves == 0 {
            0.0
        } else {
            (self.orient_lanes + self.insphere_lanes) as f64 / waves as f64
        }
    }

    /// Fraction of batched lanes that fell back to the scalar cascade.
    pub fn fallback_rate(&self) -> f64 {
        let lanes = self.orient_lanes + self.insphere_lanes;
        if lanes == 0 {
            0.0
        } else {
            (self.orient_fallbacks + self.insphere_fallbacks) as f64 / lanes as f64
        }
    }

    /// Mean points gathered per SoA staging wave.
    pub fn points_per_gather(&self) -> f64 {
        if self.soa_gathers == 0 {
            0.0
        } else {
            self.soa_points as f64 / self.soa_gathers as f64
        }
    }
}

/// The loaded, shape-normalized view of one artifact: the fields the
/// renderer and differ need, regardless of which artifact kind carried them.
#[derive(Clone, Debug)]
pub struct Artifact {
    pub kind: ArtifactKind,
    /// `schema_version` of a run report (`None` for contention dumps).
    pub schema_version: Option<u64>,
    /// Producing tool of a run report (`None` for contention dumps).
    pub tool: Option<String>,
    /// Free-form config pairs of a run report, insertion order preserved.
    pub config: Vec<(String, String)>,
    pub threads: u64,
    pub wall_s: f64,
    pub elements: u64,
    pub commits: u64,
    pub rollbacks: u64,
    /// Aggregated per-phase seconds of a run report.
    pub phases: Vec<(String, f64)>,
    /// Top contended `(vertex id, conflicts)`, most-contended first.
    pub hot_vertices: Vec<(u64, u64)>,
    /// Top contended `(region code, conflicts)`, most-contended first.
    pub hot_regions: Vec<(u64, u64)>,
    /// The wall-time decomposition, when the artifact recorded one.
    pub attribution: Option<TimeAttribution>,
    /// The sharded-run section (schema v4), when the artifact carries one.
    pub shard: Option<ShardInfo>,
    /// Batched-kernel counters (schema v5). `None` for pre-v5 reports,
    /// which predate the counters entirely — distinct from a v5 report
    /// where the batched path was disabled (`Some` with zero counts).
    pub batch: Option<BatchKernelInfo>,
    /// The per-job lifecycle view, when the artifact is a job trace.
    pub trace: Option<TraceInfo>,
}

impl Artifact {
    pub fn rollback_ratio(&self) -> f64 {
        let ops = self.commits + self.rollbacks;
        if ops == 0 {
            0.0
        } else {
            self.rollbacks as f64 / ops as f64
        }
    }

    /// Elements per second for run reports; committed ops per second for
    /// contention dumps (which do not know the final element count).
    pub fn throughput(&self) -> f64 {
        let ops = if self.kind == ArtifactKind::RunReport {
            self.elements
        } else {
            self.commits
        };
        if self.wall_s > 0.0 {
            ops as f64 / self.wall_s
        } else {
            0.0
        }
    }
}

fn get_u64(j: &Json, key: &str) -> u64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64
}

fn get_f64(j: &Json, key: &str) -> f64 {
    j.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn hot_pairs(j: Option<&Json>, id_key: &str) -> Vec<(u64, u64)> {
    j.and_then(Json::as_arr)
        .map(|arr| {
            arr.iter()
                .map(|e| (get_u64(e, id_key), get_u64(e, "conflicts")))
                .collect()
        })
        .unwrap_or_default()
}

fn get_str(j: &Json, key: &str) -> String {
    j.get(key).and_then(Json::as_str).unwrap_or("?").to_string()
}

/// Fold the event stream of a `GET /jobs/<id>/trace` artifact into the
/// summary the renderer needs. Unknown event kinds are skipped so newer
/// services stay analyzable; stage durations pair `stage_started` /
/// `stage_finished` by name on the run clock (`run_t_s`).
fn load_trace(j: &Json) -> TraceInfo {
    let mut t = TraceInfo {
        id: get_str(j, "id"),
        schema_version: get_u64(j, "trace_schema_version"),
        dropped: get_u64(j, "events_dropped"),
        ..Default::default()
    };
    let mut open: Vec<(String, f64)> = Vec::new();
    for ev in j.get("events").and_then(Json::as_arr).into_iter().flatten() {
        t.events += 1;
        match ev.get("kind").and_then(Json::as_str).unwrap_or("") {
            "queue_wait" => t.queue_wait_s = Some(get_f64(ev, "wait_s")),
            "checkout" => t.checkouts.push(get_u64(ev, "session_generation")),
            "backoff" => t.backoffs += 1,
            "attempt_failed" => {
                let retried = ev
                    .get("will_retry")
                    .and_then(Json::as_bool)
                    .unwrap_or(false);
                t.failures.push(format!(
                    "{} ({}, {})",
                    get_str(ev, "error_kind"),
                    get_str(ev, "class"),
                    if retried { "retried" } else { "gave up" }
                ));
            }
            "stage_started" => open.push((get_str(ev, "stage"), get_f64(ev, "run_t_s"))),
            "stage_finished" => {
                let name = get_str(ev, "stage");
                if let Some(i) = open.iter().rposition(|(n, _)| *n == name) {
                    let (name, started) = open.remove(i);
                    t.stages.push((name, get_f64(ev, "run_t_s") - started));
                }
            }
            "shard_chunk" => t.shard_chunks += 1,
            "terminal" => t.terminal = Some((get_str(ev, "status"), get_f64(ev, "t_s"))),
            _ => {}
        }
    }
    t
}

/// Parse one artifact from its JSON text, autodetecting the kind: run
/// reports carry `schema_version` + `tool`, contention dumps carry
/// `hot_vertices` + `speedup_self_report`, and job traces carry
/// `trace_schema_version` + `events` at the top level.
pub fn load_artifact(text: &str) -> Result<Artifact, String> {
    let j = parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if j.get("trace_schema_version").is_some() && j.get("events").is_some() {
        // a served job's lifecycle trace (GET /jobs/<id>/trace)
        let trace = load_trace(&j);
        let wall_s = trace.terminal.as_ref().map(|&(_, t)| t).unwrap_or(0.0);
        return Ok(Artifact {
            kind: ArtifactKind::JobTrace,
            schema_version: Some(trace.schema_version),
            tool: None,
            config: Vec::new(),
            threads: 0,
            wall_s,
            elements: 0,
            commits: 0,
            rollbacks: 0,
            phases: Vec::new(),
            hot_vertices: Vec::new(),
            hot_regions: Vec::new(),
            attribution: None,
            shard: None,
            batch: None,
            trace: Some(trace),
        });
    }
    if j.get("schema_version").is_some() && j.get("tool").is_some() {
        // a run report; its contention section (if any) holds the hot spots
        let c = j.get("contention");
        let attribution = j
            .get("time_attribution")
            .or_else(|| c.and_then(|c| c.get("time_attribution")))
            .and_then(TimeAttribution::from_json);
        // the batched-kernel counters joined the catalog in schema v5;
        // earlier reports cannot distinguish "batch off" from "not
        // measured", so they get `None` and render as "not recorded"
        let batch = if get_u64(&j, "schema_version") >= 5 {
            let cnt = |name: &str| j.get("counters").map(|c| get_u64(c, name)).unwrap_or(0);
            Some(BatchKernelInfo {
                orient_batches: cnt("pred_batch_orient_batches"),
                orient_lanes: cnt("pred_batch_orient_lanes"),
                orient_fallbacks: cnt("pred_batch_orient_fallbacks"),
                insphere_batches: cnt("pred_batch_insphere_batches"),
                insphere_lanes: cnt("pred_batch_insphere_lanes"),
                insphere_fallbacks: cnt("pred_batch_insphere_fallbacks"),
                soa_gathers: cnt("scratch_soa_gathers"),
                soa_points: cnt("scratch_soa_points"),
            })
        } else {
            None
        };
        Ok(Artifact {
            kind: ArtifactKind::RunReport,
            schema_version: Some(get_u64(&j, "schema_version")),
            tool: j.get("tool").and_then(Json::as_str).map(String::from),
            config: match j.get("config") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_str().unwrap_or("?").to_string()))
                    .collect(),
                _ => Vec::new(),
            },
            threads: get_u64(&j, "threads"),
            wall_s: get_f64(&j, "wall_s"),
            elements: get_u64(&j, "elements"),
            commits: c.map(|c| get_u64(c, "commits")).unwrap_or(0),
            rollbacks: j
                .get("overheads")
                .map(|o| get_u64(o, "rollbacks"))
                .unwrap_or(0),
            phases: match j.get("phases") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_f64().unwrap_or(0.0)))
                    .collect(),
                _ => Vec::new(),
            },
            hot_vertices: hot_pairs(c.and_then(|c| c.get("hot_vertices")), "vertex"),
            hot_regions: hot_pairs(c.and_then(|c| c.get("hot_regions")), "region"),
            attribution,
            batch,
            shard: j.get("shard").map(|s| ShardInfo {
                grid: s
                    .get("grid")
                    .and_then(Json::as_str)
                    .unwrap_or("?")
                    .to_string(),
                halo: get_u64(s, "halo"),
                lanes: get_u64(s, "lanes"),
                seed_points: get_u64(s, "seed_points"),
                chunks: s.get("chunks").and_then(Json::as_arr).map(|arr| {
                    arr.iter()
                        .map(|c| (get_u64(c, "tets"), get_f64(c, "wall_s")))
                        .collect()
                }),
            }),
            trace: None,
        })
    } else if j.get("hot_vertices").is_some() && j.get("speedup_self_report").is_some() {
        // wall time rides in the speedup self-report; the worker count is
        // the length of the per-worker timeline array
        let threads = j
            .get("workers")
            .and_then(Json::as_arr)
            .map(|w| w.len() as u64)
            .unwrap_or(0);
        let wall_s = j
            .get("speedup_self_report")
            .map(|s| get_f64(s, "wall_s"))
            .unwrap_or(0.0);
        Ok(Artifact {
            kind: ArtifactKind::Contention,
            schema_version: None,
            tool: None,
            config: Vec::new(),
            threads,
            wall_s,
            elements: 0,
            commits: get_u64(&j, "commits"),
            rollbacks: get_u64(&j, "rollbacks"),
            phases: Vec::new(),
            hot_vertices: hot_pairs(j.get("hot_vertices"), "vertex"),
            hot_regions: hot_pairs(j.get("hot_regions"), "region"),
            attribution: j
                .get("time_attribution")
                .and_then(TimeAttribution::from_json),
            shard: None,
            batch: None,
            trace: None,
        })
    } else {
        Err(
            "unrecognized artifact: not a run report (schema_version + tool), \
             a contention dump (hot_vertices + speedup_self_report), or a job \
             trace (trace_schema_version + events)"
                .into(),
        )
    }
}

fn render_attribution(out: &mut String, a: &TimeAttribution) {
    let _ = writeln!(
        out,
        "time attribution ({} worker{}, wall {:.3}s):",
        a.per_worker.len(),
        if a.per_worker.len() == 1 { "" } else { "s" },
        a.wall_s
    );
    let _ = writeln!(out, "  {:<13} {:>10} {:>9}", "category", "seconds", "share");
    for cat in Category::ALL {
        let _ = writeln!(
            out,
            "  {:<13} {:>9.3}s {:>8.1}%",
            cat.key(),
            a.total(cat),
            a.fraction(cat) * 100.0
        );
    }
    if let Some((cat, secs)) = a.dominant_waste() {
        let _ = writeln!(
            out,
            "  dominant waste: {} ({secs:.3} worker-seconds, {:.1}% of worker time)",
            cat.key(),
            a.fraction(cat) * 100.0
        );
    }
}

/// Render a served job's lifecycle timeline: queue wait, per-attempt
/// checkouts and failures, completed stage durations with the dominant
/// phase, shard chunks, terminal state. Anything the trace did not record
/// degrades to an explicit "not recorded" line.
fn render_trace_summary(out: &mut String, t: &TraceInfo) {
    let _ = writeln!(
        out,
        "artifact: job trace ({}, schema v{}, {} event{}{})",
        t.id,
        t.schema_version,
        t.events,
        if t.events == 1 { "" } else { "s" },
        if t.dropped > 0 {
            format!(", {} dropped", t.dropped)
        } else {
            String::new()
        }
    );
    match t.queue_wait_s {
        Some(w) => {
            let _ = writeln!(out, "queue   : waited {w:.3}s");
        }
        None => {
            let _ = writeln!(out, "queue   : wait not recorded (job never started?)");
        }
    }
    if t.checkouts.is_empty() {
        let _ = writeln!(out, "attempts: none recorded");
    } else {
        let gens: Vec<String> = t.checkouts.iter().map(|g| format!("gen {g}")).collect();
        let _ = writeln!(
            out,
            "attempts: {} checkout{} ({}), {} backoff{}",
            t.checkouts.len(),
            if t.checkouts.len() == 1 { "" } else { "s" },
            gens.join(", "),
            t.backoffs,
            if t.backoffs == 1 { "" } else { "s" }
        );
    }
    for (i, f) in t.failures.iter().enumerate() {
        let _ = writeln!(out, "  attempt {} failed: {f}", i + 1);
    }
    if t.stages.is_empty() {
        let _ = writeln!(out, "stages  : not recorded");
    } else {
        let stages: Vec<String> = t
            .stages
            .iter()
            .map(|(name, s)| format!("{name} {s:.3}s"))
            .collect();
        let _ = writeln!(out, "stages  : {}", stages.join(", "));
        let total: f64 = t.stages.iter().map(|&(_, s)| s).sum();
        if let Some((name, secs)) = t.dominant_stage() {
            if total > 0.0 {
                let _ = writeln!(
                    out,
                    "dominant stage: {name} ({secs:.3}s, {:.1}% of staged time)",
                    100.0 * secs / total
                );
            }
        }
    }
    if t.shard_chunks > 0 {
        let _ = writeln!(out, "shards  : {} chunk span{}", t.shard_chunks, {
            if t.shard_chunks == 1 {
                ""
            } else {
                "s"
            }
        });
    }
    match &t.terminal {
        Some((status, at)) => {
            let _ = writeln!(out, "terminal: {status} at {at:.3}s");
        }
        None => {
            let _ = writeln!(out, "terminal: not recorded (job still in flight?)");
        }
    }
}

/// Render the human-readable summary `pi2m analyze <artifact>` prints.
pub fn render_summary(art: &Artifact) -> String {
    let mut out = String::new();
    if let Some(t) = &art.trace {
        render_trace_summary(&mut out, t);
        return out;
    }
    match (&art.tool, art.schema_version) {
        (Some(tool), Some(v)) => {
            let _ = writeln!(out, "artifact: {} ({tool}, schema v{v})", art.kind.name());
        }
        _ => {
            let _ = writeln!(out, "artifact: {}", art.kind.name());
        }
    }
    if !art.config.is_empty() {
        let cfg: Vec<String> = art.config.iter().map(|(k, v)| format!("{k}={v}")).collect();
        let _ = writeln!(out, "config  : {}", cfg.join(", "));
    }
    let _ = writeln!(
        out,
        "run     : {} threads, {:.3}s wall, {} rollbacks (ratio {:.4})",
        art.threads,
        art.wall_s,
        art.rollbacks,
        art.rollback_ratio()
    );
    if art.elements > 0 {
        let _ = writeln!(
            out,
            "output  : {} elements ({:.0} elements/s)",
            art.elements,
            art.throughput()
        );
    }
    if !art.phases.is_empty() {
        let phases: Vec<String> = art
            .phases
            .iter()
            .map(|(name, s)| format!("{name} {s:.3}s"))
            .collect();
        let _ = writeln!(out, "phases  : {}", phases.join(", "));
    }
    if let Some(shard) = &art.shard {
        let _ = writeln!(
            out,
            "sharded : grid {}, halo {}, {} lane{}, {} seed vertices",
            shard.grid,
            shard.halo,
            shard.lanes,
            if shard.lanes == 1 { "" } else { "s" },
            shard.seed_points
        );
        match &shard.chunks {
            Some(chunks) if !chunks.is_empty() => {
                let tets: u64 = chunks.iter().map(|&(t, _)| t).sum();
                let slowest = chunks.iter().map(|&(_, w)| w).fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "chunks  : {} meshed, {} pre-stitch tets, slowest {:.3}s",
                    chunks.len(),
                    tets,
                    slowest
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "chunks  : not recorded (run cancelled before chunk accounting)"
                );
            }
        }
    }
    if art.kind == ArtifactKind::RunReport {
        match &art.batch {
            None => {
                let _ = writeln!(out, "batched : not recorded (pre-v5 artifact)");
            }
            Some(b) if !b.any() => {
                let _ = writeln!(
                    out,
                    "batched : no batched waves (scalar path: --no-batch or PI2M_BATCH=0)"
                );
            }
            Some(b) => {
                let _ = writeln!(
                    out,
                    "batched : orient {} waves / {} lanes, insphere {} waves / {} lanes \
                     ({:.1} lanes/wave, {:.2}% scalar fallback)",
                    b.orient_batches,
                    b.orient_lanes,
                    b.insphere_batches,
                    b.insphere_lanes,
                    b.lanes_per_wave(),
                    b.fallback_rate() * 100.0
                );
                let _ = writeln!(
                    out,
                    "soa     : {} staging gathers, {} points ({:.1} points/gather)",
                    b.soa_gathers,
                    b.soa_points,
                    b.points_per_gather()
                );
            }
        }
    }
    match &art.attribution {
        Some(a) => render_attribution(&mut out, a),
        None => {
            let _ = writeln!(
                out,
                "time attribution: not recorded (pre-v3 artifact or flight recorder off)"
            );
        }
    }
    if !art.hot_vertices.is_empty() {
        let hv: Vec<String> = art
            .hot_vertices
            .iter()
            .take(5)
            .map(|(v, n)| format!("v{v} x{n}"))
            .collect();
        let _ = writeln!(out, "hot vertices: {}", hv.join(", "));
    }
    if !art.hot_regions.is_empty() {
        let hr: Vec<String> = art
            .hot_regions
            .iter()
            .take(5)
            .map(|(r, n)| format!("r{r} x{n}"))
            .collect();
        let _ = writeln!(out, "hot regions : {}", hr.join(", "));
    }
    out
}

/// Diff two runs (`base` → `new`) and attribute the change. The verdict
/// names the waste category whose summed worker-seconds grew the most —
/// the first place to look when `new` is slower than `base`.
pub fn render_diff(base: &Artifact, new: &Artifact) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "diff: base {} -> new {}",
        base.kind.name(),
        new.kind.name()
    );
    let pct = |b: f64, n: f64| -> String {
        if b > 0.0 {
            format!("{:+.1}%", (n / b - 1.0) * 100.0)
        } else {
            "n/a".into()
        }
    };
    let _ = writeln!(
        out,
        "  wall        {:>9.3}s -> {:>9.3}s  ({})",
        base.wall_s,
        new.wall_s,
        pct(base.wall_s, new.wall_s)
    );
    let _ = writeln!(
        out,
        "  throughput  {:>9.0}/s -> {:>9.0}/s ({})",
        base.throughput(),
        new.throughput(),
        pct(base.throughput(), new.throughput())
    );
    let _ = writeln!(
        out,
        "  rollbacks   {:>10} -> {:>10}  (ratio {:.4} -> {:.4})",
        base.rollbacks,
        new.rollbacks,
        base.rollback_ratio(),
        new.rollback_ratio()
    );
    match (&base.attribution, &new.attribution) {
        (Some(b), Some(n)) => {
            let _ = writeln!(
                out,
                "  {:<13} {:>10} {:>10} {:>9} {:>14}",
                "category", "base", "new", "delta", "share shift"
            );
            let mut worst: Option<(Category, f64)> = None;
            for cat in Category::ALL {
                let (bs, ns) = (b.total(cat), n.total(cat));
                let shift = (n.fraction(cat) - b.fraction(cat)) * 100.0;
                let _ = writeln!(
                    out,
                    "  {:<13} {:>9.3}s {:>9.3}s {:>+8.3}s {:>+12.1}pp",
                    cat.key(),
                    bs,
                    ns,
                    ns - bs,
                    shift
                );
                if cat.is_waste() && worst.as_ref().is_none_or(|(_, w)| ns - bs > *w) {
                    worst = Some((cat, ns - bs));
                }
            }
            match worst {
                Some((cat, grew)) if grew > 0.0 => {
                    let _ = writeln!(
                        out,
                        "  verdict: waste grew most in '{}' (+{grew:.3} worker-seconds)",
                        cat.key()
                    );
                }
                _ => {
                    let _ = writeln!(out, "  verdict: no waste category grew");
                }
            }
        }
        _ => {
            let _ = writeln!(
                out,
                "  (attribution diff unavailable: one or both artifacts lack it)"
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, AnalyzeOpts};
    use crate::flight::{EventKind, FlightEvent};
    use crate::report::RunReport;

    fn ev(t_ms: u64, tid: u16, kind: EventKind, a: u32, c: u32) -> FlightEvent {
        FlightEvent {
            t_ns: t_ms * 1_000_000,
            kind,
            cause: 0,
            tid,
            a,
            b: 0,
            c,
        }
    }

    fn sample_report(rollback_ns: u32) -> String {
        let ms = 1_000_000u32;
        let events = vec![
            ev(1, 0, EventKind::OpCommit, 0, 10 * ms),
            ev(2, 1, EventKind::Rollback, 7, rollback_ns),
            ev(3, 1, EventKind::CmUnpark, 0, 2 * ms),
        ];
        let contention = analyze(
            &events,
            AnalyzeOpts {
                threads: 2,
                wall_s: 0.02,
                ..Default::default()
            },
        );
        let mut r = RunReport::new("pi2m");
        r.config("input", "phantom:sphere").config("delta", 2.0);
        r.threads = 2;
        r.wall_s = 0.02;
        r.elements = 500;
        r.overheads.rollbacks = 1;
        r.attribution = Some(contention.attribution.clone());
        r.contention = Some(contention);
        r.to_json_string()
    }

    #[test]
    fn loads_run_report_with_attribution() {
        let art = load_artifact(&sample_report(1_000_000)).unwrap();
        assert_eq!(art.kind, ArtifactKind::RunReport);
        assert_eq!(art.schema_version, Some(RunReport::SCHEMA_VERSION as u64));
        assert_eq!(art.tool.as_deref(), Some("pi2m"));
        assert_eq!(art.threads, 2);
        assert_eq!(art.elements, 500);
        assert_eq!(art.rollbacks, 1);
        assert_eq!(art.hot_vertices, vec![(7, 1)]);
        let a = art.attribution.expect("attribution");
        assert_eq!(a.per_worker.len(), 2);
        assert!((a.per_worker[1].rolled_back_s - 1e-3).abs() < 1e-9);
    }

    #[test]
    fn loads_standalone_contention_dump() {
        let ms = 1_000_000u32;
        let events = vec![
            ev(1, 0, EventKind::OpCommit, 0, ms),
            ev(2, 0, EventKind::Rollback, 3, ms),
        ];
        let dump = analyze(
            &events,
            AnalyzeOpts {
                threads: 1,
                wall_s: 0.01,
                ..Default::default()
            },
        )
        .to_json()
        .dump_pretty();
        let art = load_artifact(&dump).unwrap();
        assert_eq!(art.kind, ArtifactKind::Contention);
        assert_eq!(art.commits, 1);
        assert_eq!(art.rollbacks, 1);
        assert!(art.attribution.is_some());
        // ops/sec for contention dumps
        assert!((art.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_unrecognized_json() {
        assert!(load_artifact("not json at all").is_err());
        let err = load_artifact("{\"foo\": 1}").unwrap_err();
        assert!(err.contains("unrecognized"), "{err}");
    }

    #[test]
    fn summary_renders_all_sections() {
        let art = load_artifact(&sample_report(1_000_000)).unwrap();
        let s = render_summary(&art);
        assert!(s.contains("run report"), "{s}");
        assert!(s.contains("input=phantom:sphere"), "{s}");
        assert!(s.contains("500 elements"), "{s}");
        assert!(s.contains("time attribution"), "{s}");
        assert!(s.contains("committed"), "{s}");
        assert!(s.contains("idle"), "{s}");
        assert!(s.contains("hot vertices: v7 x1"), "{s}");
    }

    #[test]
    fn summary_degrades_without_attribution() {
        // strip the attribution sections to simulate a pre-v3 report
        let mut r = RunReport::new("pi2m");
        r.threads = 1;
        r.wall_s = 1.0;
        let art = load_artifact(&r.to_json_string()).unwrap();
        assert!(art.attribution.is_none());
        let s = render_summary(&art);
        assert!(s.contains("not recorded"), "{s}");
    }

    #[test]
    fn shard_section_loads_and_renders() {
        let mut r = RunReport::new("pi2m");
        r.threads = 2;
        r.wall_s = 1.0;
        r.shard = Some(crate::report::ShardSection {
            grid: "2x1x1".into(),
            halo: 4,
            lanes: 2,
            seed_points: 100,
            seed_duplicates: 1,
            chunks: vec![
                crate::report::ShardChunk {
                    index: [0, 0, 0],
                    tets: 80,
                    vertices: 40,
                    wall_s: 0.1,
                },
                crate::report::ShardChunk {
                    index: [1, 0, 0],
                    tets: 90,
                    vertices: 45,
                    wall_s: 0.2,
                },
            ],
        });
        let art = load_artifact(&r.to_json_string()).unwrap();
        let shard = art.shard.as_ref().expect("shard info");
        assert_eq!(shard.grid, "2x1x1");
        assert_eq!(shard.chunks.as_deref(), Some(&[(80, 0.1), (90, 0.2)][..]));
        let s = render_summary(&art);
        assert!(s.contains("grid 2x1x1, halo 4, 2 lanes"), "{s}");
        assert!(s.contains("2 meshed, 170 pre-stitch tets"), "{s}");
    }

    #[test]
    fn truncated_shard_section_degrades_to_not_recorded() {
        // a cancelled sharded run can flush the section header without the
        // per-chunk accounting; analyze must render, not error
        let text = r#"{
            "schema_version": 4, "tool": "pi2m", "threads": 2, "wall_s": 0.5,
            "shard": {"grid": "2x2x2", "halo": 3, "lanes": 4, "seed_points": 0}
        }"#;
        let art = load_artifact(text).unwrap();
        let shard = art.shard.as_ref().expect("shard info");
        assert!(shard.chunks.is_none());
        let s = render_summary(&art);
        assert!(s.contains("grid 2x2x2"), "{s}");
        assert!(
            s.contains("chunks  : not recorded (run cancelled before chunk accounting)"),
            "{s}"
        );
    }

    #[test]
    fn loads_job_trace_and_renders_timeline() {
        // the wire shape of GET /jobs/<id>/trace (serve's JobTrace::to_json)
        let text = r#"{
            "id": "job-3", "trace_schema_version": 1,
            "events": [
                {"t_s": 0.0, "kind": "admitted", "priority": "normal", "queue_depth": 0},
                {"t_s": 0.01, "kind": "queue_wait", "wait_s": 0.01},
                {"t_s": 0.01, "kind": "checkout", "attempt": 1, "slot": 0, "session_generation": 0},
                {"t_s": 0.02, "kind": "stage_started", "stage": "edt", "run_t_s": 0.001},
                {"t_s": 0.05, "kind": "stage_finished", "stage": "edt", "run_t_s": 0.031},
                {"t_s": 0.06, "kind": "attempt_failed", "attempt": 1, "error_kind": "worker_loss",
                 "class": "transient", "will_retry": true},
                {"t_s": 0.06, "kind": "backoff", "attempt": 1, "backoff_s": 0.05},
                {"t_s": 0.11, "kind": "checkout", "attempt": 2, "slot": 0, "session_generation": 1},
                {"t_s": 0.12, "kind": "stage_started", "stage": "edt", "run_t_s": 0.001},
                {"t_s": 0.14, "kind": "stage_finished", "stage": "edt", "run_t_s": 0.021},
                {"t_s": 0.15, "kind": "stage_started", "stage": "volume_refinement", "run_t_s": 0.031},
                {"t_s": 0.35, "kind": "stage_finished", "stage": "volume_refinement", "run_t_s": 0.231},
                {"t_s": 0.36, "kind": "shard_chunk", "index": "0,0,0", "tets": 100, "wall_s": 0.1},
                {"t_s": 0.36, "kind": "shard_chunk", "index": "1,0,0", "tets": 120, "wall_s": 0.12},
                {"t_s": 0.4, "kind": "terminal", "status": "succeeded", "attempts": 2}
            ]
        }"#;
        let art = load_artifact(text).unwrap();
        assert_eq!(art.kind, ArtifactKind::JobTrace);
        let t = art.trace.as_ref().expect("trace info");
        assert_eq!(t.id, "job-3");
        assert_eq!(t.events, 15);
        assert_eq!(t.queue_wait_s, Some(0.01));
        assert_eq!(t.checkouts, vec![0, 1]);
        assert_eq!(t.backoffs, 1);
        assert_eq!(t.failures, vec!["worker_loss (transient, retried)"]);
        assert_eq!(t.stages.len(), 3);
        assert_eq!(t.shard_chunks, 2);
        assert_eq!(t.terminal.as_ref().unwrap().0, "succeeded");
        assert_eq!(t.dominant_stage().unwrap().0, "volume_refinement");
        let s = render_summary(&art);
        assert!(s.contains("job trace (job-3, schema v1, 15 events)"), "{s}");
        assert!(s.contains("queue   : waited 0.010s"), "{s}");
        assert!(s.contains("2 checkouts (gen 0, gen 1), 1 backoff"), "{s}");
        assert!(
            s.contains("attempt 1 failed: worker_loss (transient, retried)"),
            "{s}"
        );
        assert!(s.contains("dominant stage: volume_refinement"), "{s}");
        assert!(s.contains("shards  : 2 chunk spans"), "{s}");
        assert!(s.contains("terminal: succeeded at 0.400s"), "{s}");
    }

    #[test]
    fn queued_only_trace_degrades_to_not_recorded() {
        // fetched while the job still sits in the queue: nothing ran yet
        let text = r#"{
            "id": "job-9", "trace_schema_version": 1,
            "events": [
                {"t_s": 0.0, "kind": "admitted", "priority": "low", "queue_depth": 4}
            ]
        }"#;
        let art = load_artifact(text).unwrap();
        let s = render_summary(&art);
        assert!(s.contains("wait not recorded"), "{s}");
        assert!(s.contains("attempts: none recorded"), "{s}");
        assert!(s.contains("stages  : not recorded"), "{s}");
        assert!(s.contains("terminal: not recorded"), "{s}");
    }

    #[test]
    fn batch_counters_load_and_render() {
        let text = r#"{
            "schema_version": 5, "tool": "pi2m", "threads": 1, "wall_s": 0.5,
            "counters": {
                "pred_batch_orient_batches": 100, "pred_batch_orient_lanes": 900,
                "pred_batch_orient_fallbacks": 9,
                "pred_batch_insphere_batches": 100, "pred_batch_insphere_lanes": 700,
                "pred_batch_insphere_fallbacks": 7,
                "scratch_soa_gathers": 200, "scratch_soa_points": 2400
            }
        }"#;
        let art = load_artifact(text).unwrap();
        let b = art.batch.as_ref().expect("batch info");
        assert_eq!(b.orient_lanes, 900);
        assert!((b.lanes_per_wave() - 8.0).abs() < 1e-9);
        assert!((b.fallback_rate() - 0.01).abs() < 1e-9);
        assert!((b.points_per_gather() - 12.0).abs() < 1e-9);
        let s = render_summary(&art);
        assert!(s.contains("batched : orient 100 waves / 900 lanes"), "{s}");
        assert!(s.contains("8.0 lanes/wave, 1.00% scalar fallback"), "{s}");
        assert!(s.contains("soa     : 200 staging gathers"), "{s}");
    }

    #[test]
    fn scalar_run_renders_batch_disabled_not_missing() {
        // a v5 report with no batched counters ran the scalar path: that is
        // a measured zero, not a missing measurement
        let text = r#"{"schema_version": 5, "tool": "pi2m", "threads": 1, "wall_s": 0.5}"#;
        let art = load_artifact(text).unwrap();
        assert!(art.batch.is_some());
        let s = render_summary(&art);
        assert!(s.contains("batched : no batched waves"), "{s}");
    }

    #[test]
    fn pre_v5_report_degrades_batch_to_not_recorded() {
        let text = r#"{"schema_version": 4, "tool": "pi2m", "threads": 1, "wall_s": 0.5}"#;
        let art = load_artifact(text).unwrap();
        assert!(art.batch.is_none());
        let s = render_summary(&art);
        assert!(
            s.contains("batched : not recorded (pre-v5 artifact)"),
            "{s}"
        );
    }

    #[test]
    fn diff_attributes_regression_to_grown_waste_category() {
        let base = load_artifact(&sample_report(1_000_000)).unwrap();
        // the "regressed" run rolled back 12ms instead of 1ms
        let new = load_artifact(&sample_report(12_000_000)).unwrap();
        let d = render_diff(&base, &new);
        assert!(
            d.contains("verdict: waste grew most in 'rolled_back'"),
            "{d}"
        );
        // identical runs: nothing grew
        let d = render_diff(&base, &base);
        assert!(d.contains("no waste category grew"), "{d}");
    }
}
