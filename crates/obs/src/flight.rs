//! The concurrency flight recorder: fixed-capacity per-worker SPSC event
//! rings holding compact binary events for the speculative-op lifecycle
//! (op begin/commit, rollback + conflicting vertex, lock conflicts, CM
//! park/unpark, balancer beg/steal/donate, worker death / heir bequest).
//!
//! Design constraints (see DESIGN.md "Flight recorder & contention
//! analysis"):
//!
//! * **Hot path**: the writer does four relaxed word stores plus one
//!   release head bump — on x86-64 all five compile to plain `mov`s. There
//!   are no RMW atomics, no branches on ring state, and no allocation.
//! * **Overwrite-oldest**: the ring never blocks the writer; a lagging
//!   reader loses the oldest events and accounts for them in its
//!   `dropped` counter (computed from the monotonic head sequence).
//! * **Torn-read detection**: each 32-byte slot carries a checksum word
//!   over its payload. A reader that races an in-progress overwrite sees a
//!   checksum mismatch and skips the slot (counted as `torn`); a reader
//!   that observes a *complete* newer event in an old slot discards it via
//!   the post-read head re-check, so sampled tallies never double-count.
//!
//! Event payload is 3×u64 (timestamp + two packed words); the fourth word
//! is the checksum. Decoded form is [`FlightEvent`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Default per-worker ring capacity (events). 16 Ki events × 32 B = 512 KiB
/// per worker — enough for several seconds of a contended run.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 14;

/// Version of the on-ring event layout (slot encoding, [`EventKind`] byte
/// values, and [`cause`] constants). Bumped whenever any of those change, so
/// archived flight logs and `--report` JSON can be matched to the binary
/// layout that produced them (`pi2m --version` prints it).
pub const LAYOUT_VERSION: u32 = 1;

/// What happened, encoded in the event's kind byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A speculative operation attempt started (`a` = poor-cell id).
    OpBegin = 1,
    /// An operation committed (`a` = vertex id, `b` = region code,
    /// `c` = operation duration in ns; `cause` 0 = insert, 1 = remove).
    OpCommit = 2,
    /// A rollback (`a` = conflicting vertex id, `b` = owner tid << 16 |
    /// region code, `c` = rolled-back work in ns; `cause` is a
    /// [`cause`] constant).
    Rollback = 3,
    /// A vertex try-lock failed inside the kernel (`a` = vertex id,
    /// `b` = owning tid, `c` = locks already held).
    LockConflict = 4,
    /// Lock-acquisition batch summary of one committed kernel operation
    /// (`a` = locks acquired, `b` = cavity cells; `cause` 0 = insert,
    /// 1 = remove). Try-locks acquire in O(1), so per-acquire events would
    /// blow the ≤2% overhead budget; the batch keeps the information.
    LockBatch = 5,
    /// The contention manager parked this thread.
    CmPark = 6,
    /// The contention manager released this thread (`c` = parked ns).
    CmUnpark = 7,
    /// The thread parked in a begging list.
    BegPark = 8,
    /// The thread left the begging list (`c` = parked ns; `cause`
    /// 0 = got work, 1 = run finished).
    BegUnpark = 9,
    /// A begging thread received donated work.
    Steal = 10,
    /// This thread donated freshly created cells (`a` = beggar tid,
    /// `b` = cells donated, `c` = handoff cost in ns: beggar-PEL lock,
    /// push, wake — the donor-side overhead time attribution charges).
    Donate = 11,
    /// This worker died to an un-recovered panic.
    WorkerDeath = 12,
    /// The dying worker bequeathed its PEL (`a` = heir tid, `b` = items).
    HeirBequest = 13,
}

impl EventKind {
    pub fn from_u8(v: u8) -> Option<EventKind> {
        use EventKind::*;
        Some(match v {
            1 => OpBegin,
            2 => OpCommit,
            3 => Rollback,
            4 => LockConflict,
            5 => LockBatch,
            6 => CmPark,
            7 => CmUnpark,
            8 => BegPark,
            9 => BegUnpark,
            10 => Steal,
            11 => Donate,
            12 => WorkerDeath,
            13 => HeirBequest,
            _ => return None,
        })
    }

    /// Short name used by the analyzers and the Chrome-trace exporter.
    pub fn name(self) -> &'static str {
        use EventKind::*;
        match self {
            OpBegin => "op_begin",
            OpCommit => "op_commit",
            Rollback => "rollback",
            LockConflict => "lock_conflict",
            LockBatch => "lock_batch",
            CmPark => "cm_park",
            CmUnpark => "cm_unpark",
            BegPark => "beg_park",
            BegUnpark => "beg_unpark",
            Steal => "steal",
            Donate => "donate",
            WorkerDeath => "worker_death",
            HeirBequest => "heir_bequest",
        }
    }
}

/// Rollback / cause-byte constants.
pub mod cause {
    /// Insert conflicted on a locked vertex.
    pub const INSERT_CONFLICT: u8 = 0;
    /// R6 removal conflicted on a locked vertex.
    pub const REMOVE_CONFLICT: u8 = 1;
    /// Fault injection denied the operation (synthetic self-conflict).
    pub const INJECTED: u8 = 2;
    /// Op kind for commit/lock-batch events.
    pub const OP_INSERT: u8 = 0;
    pub const OP_REMOVE: u8 = 1;
    /// BegUnpark: woken with work vs. run finished.
    pub const BEG_GOT_WORK: u8 = 0;
    pub const BEG_FINISHED: u8 = 1;
}

/// One decoded flight-recorder event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// Nanoseconds since the recorder origin.
    pub t_ns: u64,
    pub kind: EventKind,
    pub cause: u8,
    /// Worker thread id of the emitting ring.
    pub tid: u16,
    /// Kind-specific payload (see [`EventKind`] docs).
    pub a: u32,
    pub b: u32,
    pub c: u32,
}

impl FlightEvent {
    pub fn t_s(&self) -> f64 {
        self.t_ns as f64 * 1e-9
    }

    /// For rollback events: the conflicting owner tid packed in `b`.
    pub fn rollback_owner(&self) -> u16 {
        (self.b >> 16) as u16
    }

    /// For rollback events: the spatial region code packed in `b`.
    pub fn rollback_region(&self) -> u16 {
        (self.b & 0xffff) as u16
    }
}

/// Pack an owner tid and region code into a rollback event's `b` word.
pub fn pack_owner_region(owner: u16, region: u16) -> u32 {
    ((owner as u32) << 16) | region as u32
}

#[inline]
fn encode(e: &FlightEvent) -> [u64; 3] {
    let w0 = e.t_ns;
    let w1 =
        ((e.kind as u64) << 56) | ((e.cause as u64) << 48) | ((e.tid as u64) << 32) | e.a as u64;
    let w2 = ((e.b as u64) << 32) | e.c as u64;
    [w0, w1, w2]
}

#[inline]
fn decode(w: [u64; 3]) -> Option<FlightEvent> {
    let kind = EventKind::from_u8((w[1] >> 56) as u8)?;
    Some(FlightEvent {
        t_ns: w[0],
        kind,
        cause: (w[1] >> 48) as u8,
        tid: (w[1] >> 32) as u16,
        a: w[1] as u32,
        b: (w[2] >> 32) as u32,
        c: w[2] as u32,
    })
}

/// splitmix64-style finisher over the three payload words. Word order is
/// mixed in via rotations so swapped words don't cancel.
#[inline]
fn checksum(w: [u64; 3]) -> u64 {
    let mut x = w[0] ^ w[1].rotate_left(17) ^ w[2].rotate_left(31) ^ 0x9e37_79b9_7f4a_7c15;
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// One 32-byte slot: three payload words + the checksum word.
type Slot = [AtomicU64; 4];

/// A fixed-capacity single-producer event ring. The owning worker is the
/// only writer; any number of readers may scan it concurrently (the live
/// sampler and the end-of-run drain), validating slots by checksum.
pub struct EventRing {
    slots: Box<[Slot]>,
    /// Monotonic count of events ever pushed (never wraps in practice:
    /// 2⁶⁴ events at 10⁹ events/s is ~585 years).
    head: AtomicU64,
}

/// Result of one incremental ring read.
pub struct RingRead {
    pub events: Vec<FlightEvent>,
    /// Cursor to pass to the next read.
    pub cursor: u64,
    /// Events overwritten before this reader reached them.
    pub dropped: u64,
    /// Slots skipped because a concurrent overwrite tore them mid-read.
    pub torn: u64,
}

impl EventRing {
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(8);
        EventRing {
            slots: (0..cap)
                .map(|_| {
                    [
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        AtomicU64::new(0),
                        // zero payload must not validate: seed a bad checksum
                        AtomicU64::new(1),
                    ]
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever pushed.
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Writer hot path: four relaxed stores + one release head bump.
    /// Single-producer only — the owning worker thread.
    #[inline]
    pub fn push(&self, e: &FlightEvent) {
        let seq = self.head.load(Ordering::Relaxed);
        let w = encode(e);
        let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
        slot[0].store(w[0], Ordering::Relaxed);
        slot[1].store(w[1], Ordering::Relaxed);
        slot[2].store(w[2], Ordering::Relaxed);
        slot[3].store(checksum(w), Ordering::Relaxed);
        // Release publishes the slot words to an acquiring reader; on x86
        // this is still a plain store (the "one relaxed head bump").
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Read every event in `[cursor, head)` that is still trustworthy.
    ///
    /// Safe against a concurrently writing producer: slots overwritten
    /// mid-read fail their checksum (`torn`); slots that were *completely*
    /// overwritten with a newer event between our head snapshots are
    /// discarded (`dropped`) so they are never attributed to an old
    /// sequence number — the writer will present them again under their
    /// real sequence on the next read, keeping sampled tallies monotonic
    /// and duplicate-free.
    pub fn read_from(&self, cursor: u64) -> RingRead {
        let cap = self.slots.len() as u64;
        let head = self.head.load(Ordering::Acquire);
        let start = if head > cursor + cap {
            head - cap
        } else {
            cursor
        };
        let mut dropped = start - cursor;
        let mut torn = 0u64;
        let mut raw: Vec<(u64, FlightEvent)> = Vec::with_capacity((head - start) as usize);
        for seq in start..head {
            let slot = &self.slots[(seq as usize) & (self.slots.len() - 1)];
            let w = [
                slot[0].load(Ordering::Acquire),
                slot[1].load(Ordering::Acquire),
                slot[2].load(Ordering::Acquire),
            ];
            let sum = slot[3].load(Ordering::Acquire);
            if sum != checksum(w) {
                torn += 1;
                continue;
            }
            match decode(w) {
                Some(e) => raw.push((seq, e)),
                None => torn += 1,
            }
        }
        // Anything below this may have been overwritten while we were
        // scanning: a valid checksum there could belong to a *newer* event.
        let head2 = self.head.load(Ordering::Acquire);
        let safe_min = head2.saturating_sub(cap);
        let mut events = Vec::with_capacity(raw.len());
        for (seq, e) in raw {
            if seq >= safe_min {
                events.push(e);
            } else {
                dropped += 1;
            }
        }
        RingRead {
            events,
            cursor: head,
            dropped,
            torn,
        }
    }
}

/// The per-run flight recorder: one SPSC ring per worker plus the shared
/// time origin. Shared by `Arc` between the engine, the kernel contexts,
/// the live sampler, and the end-of-run drain — the rings outlive any
/// individual worker, so a dying worker's events survive by construction.
pub struct FlightRecorder {
    rings: Vec<Arc<EventRing>>,
    origin: Instant,
}

/// A merged, time-sorted drain of every ring.
pub struct FlightLog {
    pub events: Vec<FlightEvent>,
    pub dropped: u64,
    pub torn: u64,
    /// Per-ring capacity, for the report.
    pub ring_capacity: usize,
}

impl FlightRecorder {
    pub fn new(threads: usize, capacity: usize) -> Self {
        FlightRecorder {
            rings: (0..threads.max(1))
                .map(|_| Arc::new(EventRing::new(capacity)))
                .collect(),
            origin: Instant::now(),
        }
    }

    pub fn threads(&self) -> usize {
        self.rings.len()
    }

    pub fn ring(&self, tid: usize) -> &Arc<EventRing> {
        &self.rings[tid]
    }

    /// Nanoseconds since the recorder origin.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// Convert an already-taken `Instant` to recorder time. Pure arithmetic
    /// — lets hot paths that have a timestamp in hand emit without paying a
    /// second clock read.
    #[inline]
    pub fn ns_at(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.origin).as_nanos() as u64
    }

    /// A cheap per-worker writer handle (clones the ring `Arc`).
    pub fn handle(&self, tid: usize) -> FlightHandle {
        FlightHandle {
            ring: Arc::clone(&self.rings[tid]),
            origin: self.origin,
            tid: tid as u16,
        }
    }

    /// Emit on behalf of worker `tid`. Must only be called from the thread
    /// that owns ring `tid` (the rings are single-producer).
    #[inline]
    pub fn emit(&self, tid: usize, kind: EventKind, cause: u8, a: u32, b: u32, c: u32) {
        self.emit_at(tid, self.now_ns(), kind, cause, a, b, c);
    }

    /// [`emit`](Self::emit) with a caller-supplied recorder timestamp (from
    /// [`now_ns`](Self::now_ns) or [`ns_at`](Self::ns_at)).
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn emit_at(
        &self,
        tid: usize,
        t_ns: u64,
        kind: EventKind,
        cause: u8,
        a: u32,
        b: u32,
        c: u32,
    ) {
        self.rings[tid].push(&FlightEvent {
            t_ns,
            kind,
            cause,
            tid: tid as u16,
            a,
            b,
            c,
        });
    }

    /// Full drain: merge every ring into one time-sorted log. Exact (no
    /// torn slots) once the workers have joined; best-effort during a run.
    pub fn drain(&self) -> FlightLog {
        let mut cursors = vec![0u64; self.rings.len()];
        self.drain_from(&mut cursors)
    }

    /// Incremental drain for a recorder whose rings are *reused across runs*
    /// (a warm `MeshingSession` pool): read each ring from its saved cursor,
    /// advancing the cursors past what was read, so each run's drain sees
    /// only that run's events and its `dropped` accounting stays per-run.
    ///
    /// `cursors` must have one entry per ring; pass all-zeros (or
    /// [`drain`](Self::drain)) for a fresh recorder.
    pub fn drain_from(&self, cursors: &mut [u64]) -> FlightLog {
        assert_eq!(cursors.len(), self.rings.len(), "one cursor per ring");
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut torn = 0;
        for (ring, cursor) in self.rings.iter().zip(cursors.iter_mut()) {
            let r = ring.read_from(*cursor);
            *cursor = r.cursor;
            events.extend(r.events);
            dropped += r.dropped;
            torn += r.torn;
        }
        events.sort_by_key(|e| e.t_ns);
        FlightLog {
            events,
            dropped,
            torn,
            ring_capacity: self.rings.first().map_or(0, |r| r.capacity()),
        }
    }

    /// Current head cursor of every ring — the position from which a
    /// [`drain_from`](Self::drain_from) would see only events emitted after
    /// this call.
    pub fn head_cursors(&self) -> Vec<u64> {
        self.rings.iter().map(|r| r.pushed()).collect()
    }
}

/// Per-worker writer handle held by kernel contexts and workers.
#[derive(Clone)]
pub struct FlightHandle {
    ring: Arc<EventRing>,
    origin: Instant,
    tid: u16,
}

impl FlightHandle {
    #[inline]
    pub fn emit(&self, kind: EventKind, cause: u8, a: u32, b: u32, c: u32) {
        self.ring.push(&FlightEvent {
            t_ns: self.origin.elapsed().as_nanos() as u64,
            kind,
            cause,
            tid: self.tid,
            a,
            b,
            c,
        });
    }
}

/// Cumulative tallies maintained by the live sampler. All fields only ever
/// grow, so heartbeat op counts are monotonically non-decreasing even when
/// the rings wrap between samples.
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleTallies {
    pub commits: u64,
    pub rollbacks: u64,
    pub lock_conflicts: u64,
    pub steals: u64,
    pub donations: u64,
    pub deaths: u64,
    pub events: u64,
    pub dropped: u64,
    pub torn: u64,
}

impl SampleTallies {
    /// Committed + rolled-back operation attempts.
    pub fn ops(&self) -> u64 {
        self.commits + self.rollbacks
    }

    pub fn rollback_ratio(&self) -> f64 {
        let ops = self.ops();
        if ops == 0 {
            0.0
        } else {
            self.rollbacks as f64 / ops as f64
        }
    }
}

/// Incremental multi-ring reader used by the live tap: keeps one cursor
/// per ring and accumulates [`SampleTallies`] across samples.
pub struct FlightSampler {
    cursors: Vec<u64>,
    tallies: SampleTallies,
}

impl FlightSampler {
    pub fn new(rec: &FlightRecorder) -> Self {
        FlightSampler {
            cursors: vec![0; rec.threads()],
            tallies: SampleTallies::default(),
        }
    }

    /// A sampler that starts at the rings' *current* heads, ignoring events
    /// already present — for tapping a recorder whose rings are reused
    /// across runs (a warm session pool), where cursor 0 would replay the
    /// previous runs' events into the tallies.
    pub fn starting_at_head(rec: &FlightRecorder) -> Self {
        FlightSampler {
            cursors: rec.head_cursors(),
            tallies: SampleTallies::default(),
        }
    }

    pub fn tallies(&self) -> &SampleTallies {
        &self.tallies
    }

    /// Scan every ring from its cursor, fold the new events into the
    /// cumulative tallies, and return them.
    pub fn sample(&mut self, rec: &FlightRecorder) -> &SampleTallies {
        for (tid, cursor) in self.cursors.iter_mut().enumerate() {
            let r = rec.ring(tid).read_from(*cursor);
            *cursor = r.cursor;
            self.tallies.dropped += r.dropped;
            self.tallies.torn += r.torn;
            self.tallies.events += r.events.len() as u64;
            for e in &r.events {
                match e.kind {
                    EventKind::OpCommit => self.tallies.commits += 1,
                    EventKind::Rollback => self.tallies.rollbacks += 1,
                    EventKind::LockConflict => self.tallies.lock_conflicts += 1,
                    EventKind::Steal => self.tallies.steals += 1,
                    EventKind::Donate => self.tallies.donations += 1,
                    EventKind::WorkerDeath => self.tallies.deaths += 1,
                    _ => {}
                }
            }
        }
        &self.tallies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t_ns: u64, kind: EventKind, a: u32) -> FlightEvent {
        FlightEvent {
            t_ns,
            kind,
            cause: 0,
            tid: 3,
            a,
            b: 7,
            c: 11,
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let e = FlightEvent {
            t_ns: 123_456_789_000,
            kind: EventKind::Rollback,
            cause: cause::REMOVE_CONFLICT,
            tid: 65_535,
            a: u32::MAX,
            b: pack_owner_region(12, 0xabc),
            c: 42,
        };
        let d = decode(encode(&e)).unwrap();
        assert_eq!(d, e);
        assert_eq!(d.rollback_owner(), 12);
        assert_eq!(d.rollback_region(), 0xabc);
    }

    #[test]
    fn bad_kind_does_not_decode() {
        let mut w = encode(&ev(1, EventKind::OpBegin, 2));
        w[1] = (w[1] & !(0xffu64 << 56)) | (200u64 << 56);
        assert!(decode(w).is_none());
    }

    #[test]
    fn checksum_detects_any_single_word_corruption() {
        let w = encode(&ev(55, EventKind::OpCommit, 9));
        let good = checksum(w);
        for i in 0..3 {
            let mut bad = w;
            bad[i] ^= 1 << 7;
            assert_ne!(checksum(bad), good, "word {i} corruption undetected");
        }
    }

    #[test]
    fn ring_reads_back_in_order() {
        let ring = EventRing::new(16);
        for i in 0..10 {
            ring.push(&ev(i, EventKind::OpBegin, i as u32));
        }
        let r = ring.read_from(0);
        assert_eq!(r.dropped, 0);
        assert_eq!(r.torn, 0);
        assert_eq!(r.cursor, 10);
        assert_eq!(r.events.len(), 10);
        for (i, e) in r.events.iter().enumerate() {
            assert_eq!(e.a, i as u32);
        }
    }

    #[test]
    fn wraparound_drops_oldest_and_accounts_for_them() {
        let ring = EventRing::new(8); // power of two, stays 8
        assert_eq!(ring.capacity(), 8);
        for i in 0..20 {
            ring.push(&ev(i, EventKind::OpBegin, i as u32));
        }
        let r = ring.read_from(0);
        // 20 pushed into 8 slots: the 12 oldest are gone
        assert_eq!(r.dropped, 12);
        assert_eq!(r.events.len(), 8);
        assert_eq!(r.cursor, 20);
        // survivors are the newest 8, still in order
        let got: Vec<u32> = r.events.iter().map(|e| e.a).collect();
        assert_eq!(got, (12..20).collect::<Vec<u32>>());
        // incremental follow-up read from the returned cursor sees nothing
        let r2 = ring.read_from(r.cursor);
        assert_eq!(r2.events.len(), 0);
        assert_eq!(r2.dropped, 0);
    }

    #[test]
    fn incremental_cursor_never_double_counts() {
        let ring = EventRing::new(8);
        let mut cursor = 0;
        let mut seen = 0u64;
        let mut dropped = 0u64;
        for round in 0..5u64 {
            for i in 0..6 {
                ring.push(&ev(round * 6 + i, EventKind::OpCommit, 0));
            }
            let r = ring.read_from(cursor);
            cursor = r.cursor;
            seen += r.events.len() as u64;
            dropped += r.dropped;
        }
        assert_eq!(seen + dropped, 30);
        assert_eq!(dropped, 0, "reader kept up; nothing may drop");
    }

    #[test]
    fn recorder_merges_rings_time_sorted() {
        let rec = FlightRecorder::new(3, 64);
        rec.emit(2, EventKind::OpBegin, 0, 1, 0, 0);
        rec.emit(0, EventKind::OpCommit, 0, 2, 0, 0);
        rec.emit(1, EventKind::Rollback, 0, 3, 0, 0);
        let log = rec.drain();
        assert_eq!(log.events.len(), 3);
        assert!(log.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(log.dropped, 0);
        let tids: Vec<u16> = log.events.iter().map(|e| e.tid).collect();
        assert!(tids.contains(&0) && tids.contains(&1) && tids.contains(&2));
    }

    #[test]
    fn sampler_tallies_are_cumulative_and_monotonic() {
        let rec = FlightRecorder::new(1, 8);
        let mut sampler = FlightSampler::new(&rec);
        let mut last_ops = 0;
        for _ in 0..4 {
            for _ in 0..5 {
                rec.emit(0, EventKind::OpCommit, 0, 0, 0, 0);
            }
            rec.emit(0, EventKind::Rollback, 0, 0, 0, 0);
            let t = sampler.sample(&rec);
            assert!(t.ops() >= last_ops, "op count went backwards");
            last_ops = t.ops();
        }
        let t = *sampler.tallies();
        // 24 events through an 8-slot ring: everything read or dropped
        assert_eq!(t.events + t.dropped, 24);
        assert!(t.rollback_ratio() > 0.0 && t.rollback_ratio() < 1.0);
    }

    #[test]
    fn handle_emits_into_owned_ring() {
        let rec = FlightRecorder::new(2, 16);
        let h = rec.handle(1);
        h.emit(EventKind::LockConflict, 0, 99, 4, 1);
        let log = rec.drain();
        assert_eq!(log.events.len(), 1);
        assert_eq!(log.events[0].tid, 1);
        assert_eq!(log.events[0].a, 99);
        assert_eq!(log.events[0].kind, EventKind::LockConflict);
    }
}
