//! Writers for legacy VTK, OFF and TetGen node/ele formats.

use pi2m_refine::FinalMesh;
use std::io::{self, Write};

/// Write the mesh as a legacy-VTK unstructured grid with a `tissue` cell
/// scalar (load in ParaView to reproduce the renderings of Figures 7–9).
pub fn write_vtk<W: Write>(mesh: &FinalMesh, w: &mut W) -> io::Result<()> {
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "PI2M mesh")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(w, "POINTS {} double", mesh.num_points())?;
    for p in &mesh.points {
        writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
    }
    writeln!(w, "CELLS {} {}", mesh.num_tets(), mesh.num_tets() * 5)?;
    for t in &mesh.tets {
        writeln!(w, "4 {} {} {} {}", t[0], t[1], t[2], t[3])?;
    }
    writeln!(w, "CELL_TYPES {}", mesh.num_tets())?;
    for _ in &mesh.tets {
        writeln!(w, "10")?; // VTK_TETRA
    }
    writeln!(w, "CELL_DATA {}", mesh.num_tets())?;
    writeln!(w, "SCALARS tissue int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for &l in &mesh.labels {
        writeln!(w, "{l}")?;
    }
    Ok(())
}

/// Write the mesh's boundary surface as an OFF file.
pub fn write_off<W: Write>(mesh: &FinalMesh, w: &mut W) -> io::Result<()> {
    let tris = mesh.boundary_triangles();
    writeln!(w, "OFF")?;
    writeln!(w, "{} {} 0", mesh.num_points(), tris.len())?;
    for p in &mesh.points {
        writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
    }
    for t in &tris {
        writeln!(w, "3 {} {} {}", t[0], t[1], t[2])?;
    }
    Ok(())
}

/// Write TetGen-style `.node` and `.ele` contents (1-based indices, labels
/// as the region attribute).
pub fn write_node_ele<W1: Write, W2: Write>(
    mesh: &FinalMesh,
    node: &mut W1,
    ele: &mut W2,
) -> io::Result<()> {
    writeln!(node, "{} 3 0 0", mesh.num_points())?;
    for (i, p) in mesh.points.iter().enumerate() {
        writeln!(node, "{} {} {} {}", i + 1, p.x, p.y, p.z)?;
    }
    writeln!(ele, "{} 4 1", mesh.num_tets())?;
    for (i, (t, l)) in mesh.tets.iter().zip(&mesh.labels).enumerate() {
        writeln!(
            ele,
            "{} {} {} {} {} {}",
            i + 1,
            t[0] + 1,
            t[1] + 1,
            t[2] + 1,
            t[3] + 1,
            l
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_delaunay::VertexKind;
    use pi2m_geometry::Point3;

    fn tiny_mesh() -> FinalMesh {
        FinalMesh {
            points: vec![
                Point3::new(0.0, 0.0, 0.0),
                Point3::new(1.0, 0.0, 0.0),
                Point3::new(0.0, 1.0, 0.0),
                Point3::new(0.0, 0.0, -1.0),
            ],
            point_kinds: vec![VertexKind::Isosurface; 4],
            tets: vec![[0, 1, 2, 3]],
            labels: vec![3],
        }
    }

    #[test]
    fn vtk_structure() {
        let mut buf = Vec::new();
        write_vtk(&tiny_mesh(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("# vtk DataFile"));
        assert!(s.contains("POINTS 4 double"));
        assert!(s.contains("CELLS 1 5"));
        assert!(s.contains("CELL_TYPES 1"));
        assert!(s.contains("SCALARS tissue int 1"));
        assert!(s.trim_end().ends_with('3'));
    }

    #[test]
    fn off_structure() {
        let mut buf = Vec::new();
        write_off(&tiny_mesh(), &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let mut lines = s.lines();
        assert_eq!(lines.next(), Some("OFF"));
        assert_eq!(lines.next(), Some("4 4 0")); // 4 boundary faces of a tet
    }

    #[test]
    fn node_ele_counts_and_one_based() {
        let (mut n, mut e) = (Vec::new(), Vec::new());
        write_node_ele(&tiny_mesh(), &mut n, &mut e).unwrap();
        let ns = String::from_utf8(n).unwrap();
        let es = String::from_utf8(e).unwrap();
        assert!(ns.starts_with("4 3 0 0"));
        assert!(es.starts_with("1 4 1"));
        assert!(es.contains("1 1 2 3 4 3")); // 1-based + label
    }
}
