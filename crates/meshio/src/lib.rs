//! # pi2m-meshio
//!
//! Plain-text mesh exporters for PI2M outputs: legacy VTK unstructured
//! grids (with per-element tissue labels, as in the paper's Figures 7–9),
//! OFF boundary surfaces, and TetGen `.node`/`.ele` pairs (the format the
//! paper's TetGen comparison consumes).

pub mod vtk;

pub use vtk::{write_node_ele, write_off, write_vtk};
