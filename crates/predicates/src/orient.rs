//! The `orient3d` predicate: which side of the plane through `a`, `b`, `c`
//! does `d` lie on?
//!
//! Returns a value with the same sign as the determinant
//!
//! ```text
//! | ax-dx  ay-dy  az-dz |
//! | bx-dx  by-dy  bz-dz |
//! | cx-dx  cy-dy  cz-dz |
//! ```
//!
//! Positive when `d` is below the plane oriented so that `a`, `b`, `c` appear
//! counterclockwise from above (the usual Shewchuk convention). A fast
//! floating-point evaluation is attempted first with a forward error bound;
//! only near-degenerate inputs fall back to exact expansion arithmetic.

use crate::expansion::Expansion;
use crate::primitives::EPSILON;

/// Error-bound coefficient for the filtered stage (Shewchuk's `o3derrboundA`).
const O3D_ERRBOUND_A: f64 = (7.0 + 56.0 * EPSILON) * EPSILON;

/// Point in 3D, plain coordinates.
pub type P3 = [f64; 3];

/// Fast, *non-robust* orient3d evaluation. Only use when the caller tolerates
/// sign errors near degeneracy (e.g. as a heuristic inside a walk that is
/// validated elsewhere).
#[inline]
pub fn orient3d_fast(pa: &P3, pb: &P3, pc: &P3, pd: &P3) -> f64 {
    let adx = pa[0] - pd[0];
    let bdx = pb[0] - pd[0];
    let cdx = pc[0] - pd[0];
    let ady = pa[1] - pd[1];
    let bdy = pb[1] - pd[1];
    let cdy = pc[1] - pd[1];
    let adz = pa[2] - pd[2];
    let bdz = pb[2] - pd[2];
    let cdz = pc[2] - pd[2];

    adx * (bdy * cdz - bdz * cdy) + bdx * (cdy * adz - cdz * ady) + cdx * (ady * bdz - adz * bdy)
}

/// Robust orient3d: returns a double whose *sign* is guaranteed correct
/// (positive, negative, or exactly zero for coplanar points).
pub fn orient3d(pa: &P3, pb: &P3, pc: &P3, pd: &P3) -> f64 {
    let adx = pa[0] - pd[0];
    let bdx = pb[0] - pd[0];
    let cdx = pc[0] - pd[0];
    let ady = pa[1] - pd[1];
    let bdy = pb[1] - pd[1];
    let cdy = pc[1] - pd[1];
    let adz = pa[2] - pd[2];
    let bdz = pb[2] - pd[2];
    let cdz = pc[2] - pd[2];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }

    orient3d_exact(pa, pb, pc, pd)
}

/// The sign of robust orient3d as -1 / 0 / +1.
#[inline]
pub fn orient3d_sign(pa: &P3, pb: &P3, pc: &P3, pd: &P3) -> i8 {
    let v = orient3d(pa, pb, pc, pd);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Exact orient3d via expansion arithmetic on exactly translated coordinates.
/// Translation invariance of the determinant makes this the true value's sign.
pub fn orient3d_exact(pa: &P3, pb: &P3, pc: &P3, pd: &P3) -> f64 {
    let adx = Expansion::from_diff(pa[0], pd[0]);
    let ady = Expansion::from_diff(pa[1], pd[1]);
    let adz = Expansion::from_diff(pa[2], pd[2]);
    let bdx = Expansion::from_diff(pb[0], pd[0]);
    let bdy = Expansion::from_diff(pb[1], pd[1]);
    let bdz = Expansion::from_diff(pb[2], pd[2]);
    let cdx = Expansion::from_diff(pc[0], pd[0]);
    let cdy = Expansion::from_diff(pc[1], pd[1]);
    let cdz = Expansion::from_diff(pc[2], pd[2]);

    let det = det3_exact(&adx, &ady, &adz, &bdx, &bdy, &bdz, &cdx, &cdy, &cdz);
    match det.sign() {
        0 => 0.0,
        s => {
            // Return a value with the exact sign; the estimate keeps relative
            // magnitude information for callers that want it.
            let est = det.estimate();
            if est != 0.0 && (est > 0.0) == (s > 0) {
                est
            } else {
                s as f64 * f64::MIN_POSITIVE
            }
        }
    }
}

/// Exact 3x3 determinant of rows (x0 y0 z0; x1 y1 z1; x2 y2 z2) given as
/// expansions.
#[allow(clippy::too_many_arguments)]
pub(crate) fn det3_exact(
    x0: &Expansion,
    y0: &Expansion,
    z0: &Expansion,
    x1: &Expansion,
    y1: &Expansion,
    z1: &Expansion,
    x2: &Expansion,
    y2: &Expansion,
    z2: &Expansion,
) -> Expansion {
    // minors along the first row
    let m0 = y1.mul(z2).sub(&z1.mul(y2));
    let m1 = x1.mul(z2).sub(&z1.mul(x2));
    let m2 = x1.mul(y2).sub(&y1.mul(x2));
    x0.mul(&m0).sub(&y0.mul(&m1)).add(&z0.mul(&m2))
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: P3 = [0.0, 0.0, 0.0];
    const B: P3 = [1.0, 0.0, 0.0];
    const C: P3 = [0.0, 1.0, 0.0];

    #[test]
    fn clear_cases() {
        // d below the ccw plane (negative z side) → positive by convention
        assert!(orient3d(&A, &B, &C, &[0.0, 0.0, -1.0]) > 0.0);
        assert!(orient3d(&A, &B, &C, &[0.0, 0.0, 1.0]) < 0.0);
    }

    #[test]
    fn coplanar_is_exact_zero() {
        assert_eq!(orient3d(&A, &B, &C, &[0.25, 0.25, 0.0]), 0.0);
        assert_eq!(orient3d_sign(&A, &B, &C, &[5.0, -3.0, 0.0]), 0);
    }

    #[test]
    fn near_degenerate_sign_is_right() {
        // d extremely slightly off-plane: filtered path must escalate and the
        // exact path must still see the perturbation.
        let eps = 2f64.powi(-60);
        let d_lo = [0.3, 0.4, -eps];
        let d_hi = [0.3, 0.4, eps];
        assert_eq!(orient3d_sign(&A, &B, &C, &d_lo), 1);
        assert_eq!(orient3d_sign(&A, &B, &C, &d_hi), -1);
    }

    #[test]
    fn antisymmetry_under_swap() {
        let d = [0.2, 0.3, 0.4];
        let s1 = orient3d_sign(&A, &B, &C, &d);
        let s2 = orient3d_sign(&B, &A, &C, &d);
        assert_eq!(s1, -s2);
    }

    #[test]
    fn exact_matches_integer_reference() {
        // integer coordinates -> determinant computable exactly in i128
        let pts: [[i64; 3]; 4] = [[3, 1, 4], [1, 5, 9], [2, 6, 5], [3, 5, 8]];
        let det_ref = {
            let d = |i: usize, k: usize| (pts[i][k] - pts[3][k]) as i128;
            d(0, 0) * (d(1, 1) * d(2, 2) - d(1, 2) * d(2, 1))
                - d(0, 1) * (d(1, 0) * d(2, 2) - d(1, 2) * d(2, 0))
                + d(0, 2) * (d(1, 0) * d(2, 1) - d(1, 1) * d(2, 0))
        };
        let f = |i: usize| [pts[i][0] as f64, pts[i][1] as f64, pts[i][2] as f64];
        let s = orient3d_sign(&f(0), &f(1), &f(2), &f(3));
        assert_eq!(s as i128, det_ref.signum());
    }
}
