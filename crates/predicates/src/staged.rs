//! Staged predicate pipeline: semi-static filter → dynamic filter → exact.
//!
//! The plain [`crate::orient3d`] / [`crate::insphere()`] entry points already
//! run a two-stage pipeline (Shewchuk's stage-A *dynamic* filter, then exact
//! expansion arithmetic). The dynamic filter is sign-safe for arbitrary
//! inputs, but it pays for that generality on every call: the error bound is
//! a *permanent* — a sum of absolute-value products mirroring the determinant
//! — which costs almost as many flops as the determinant itself.
//!
//! This module adds a cheaper stage in front: a **semi-static filter** in the
//! style of Devillers–Pion. For a mesh whose vertices all live inside a known
//! bounding box, the permanent is bounded *a priori* by a constant computed
//! once per mesh ([`SemiStaticBounds`]). A predicate call then only computes
//! the determinant; if its magnitude clears the precomputed bound, the sign
//! is certified without ever touching the permanent. Only calls that fail
//! this cheap test fall through to the dynamic filter, and only calls that
//! fail *that* reach exact arithmetic.
//!
//! ### Bounds derivation
//!
//! Let `m` be an upper bound on `|p[i] - q[i]|` for every coordinate axis and
//! every pair of input points (for box-bounded meshes, the largest box
//! extent). Writing `u = (1 + EPSILON)` for one rounding:
//!
//! * **orient3d**: every translated coordinate is `≤ m·u`; each of the six
//!   two-products is `≤ m²·u³`; the floating-point permanent
//!   `Σ (|x·y| + |x'·y'|)·|z|` is `≤ 6·m³·u⁸`. Stage A certifies the sign
//!   whenever `|det| > O3D_ERRBOUND_A · permanent`, so
//!   `B_orient = O3D_ERRBOUND_A · 6·m³ · u^k` (k chosen generously, see
//!   `MARGIN_POW`) upper-bounds the dynamic threshold for *every* in-box
//!   input, and `|det| > B_orient` is a sufficient certificate.
//! * **insphere**: translated coordinates `≤ m·u`, two-products `≤ m²·u³`,
//!   each three-term bracket `≤ 6·m³·u⁸`, each lift `≤ 3·m²·u⁵`, so the
//!   floating-point permanent is `≤ 72·m⁵·u^17` and
//!   `B_insphere = ISP_ERRBOUND_A · 72·m⁵ · u^k`.
//!
//! The safety exponent `k = MARGIN_POW` (32) dominates the worst-case
//! rounding depth of both permanents plus the rounding incurred computing
//! `m`, `m³`/`m⁵` and the bound itself in floating point; the slack it adds
//! is ~7·10⁻¹⁵ relative — irrelevant for filter efficacy, decisive for
//! soundness. The property suite in `tests/staged_agreement.rs` hammers the
//! certificate with adversarial near-degenerate inputs.
//!
//! The filter **never misclassifies — it only defers**: when the semi-static
//! stage cannot certify, the call falls through to the strictly stronger
//! dynamic stage and, if needed, to exact arithmetic. Per-stage hit counts
//! accumulate in a [`FilterStats`] passed by the caller (the Delaunay kernel
//! drains them into `pi2m-obs` counters after every operation).

use crate::insphere::insphere_exact;
use crate::orient::{orient3d_exact, P3};
use crate::primitives::EPSILON;

/// Error-bound coefficient for orient3d stage A (Shewchuk's `o3derrboundA`).
const O3D_ERRBOUND_A: f64 = (7.0 + 56.0 * EPSILON) * EPSILON;
/// Error-bound coefficient for insphere stage A (Shewchuk's `isperrboundA`).
const ISP_ERRBOUND_A: f64 = (16.0 + 224.0 * EPSILON) * EPSILON;

/// Safety margin exponent: the static bounds are inflated by `(1+ε)^32`,
/// which dominates every rounding step in the floating-point evaluation of
/// the permanents and of the bounds themselves.
const MARGIN_POW: i32 = 32;

/// Per-mesh precomputed error bounds for the semi-static filter stage.
///
/// Construct once from the mesh bounding box; sound for any predicate call
/// whose five (or four) input points all lie inside that box. Points outside
/// the box void the certificate — callers must use [`SemiStaticBounds::none`]
/// (which always defers) or bounds derived from a box that does contain them.
#[derive(Clone, Copy, Debug)]
pub struct SemiStaticBounds {
    /// `|det| > orient` certifies the orient3d sign without the permanent.
    pub orient: f64,
    /// `|det| > insphere` certifies the insphere sign without the permanent.
    pub insphere: f64,
}

impl SemiStaticBounds {
    /// Bounds for points whose pairwise coordinate differences are at most
    /// `max_extent` in absolute value on every axis.
    pub fn for_max_extent(max_extent: f64) -> Self {
        let m = max_extent.abs();
        let margin = (1.0 + EPSILON).powi(MARGIN_POW);
        let m3 = m * m * m;
        let m5 = m3 * m * m;
        SemiStaticBounds {
            orient: O3D_ERRBOUND_A * 6.0 * m3 * margin,
            insphere: ISP_ERRBOUND_A * 72.0 * m5 * margin,
        }
    }

    /// Bounds for points inside the axis-aligned box `[lo, hi]`.
    pub fn for_box(lo: &P3, hi: &P3) -> Self {
        let ext = (hi[0] - lo[0])
            .abs()
            .max((hi[1] - lo[1]).abs())
            .max((hi[2] - lo[2]).abs());
        Self::for_max_extent(ext)
    }

    /// Bounds that never certify: every call defers to the dynamic filter.
    /// Use when no a-priori box is known.
    pub fn none() -> Self {
        SemiStaticBounds {
            orient: f64::INFINITY,
            insphere: f64::INFINITY,
        }
    }
}

/// Per-stage hit counters for the staged pipeline. Plain integers — callers
/// keep one per worker and drain into the observability layer (the same
/// pattern as the kernel's walk statistics).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// orient3d calls certified by the semi-static (per-mesh bound) stage.
    pub orient_semi_static: u64,
    /// orient3d calls certified by the dynamic (permanent) filter.
    pub orient_filtered: u64,
    /// orient3d calls that needed exact expansion arithmetic.
    pub orient_exact: u64,
    /// insphere calls certified by the semi-static stage.
    pub insphere_semi_static: u64,
    /// insphere calls certified by the dynamic filter.
    pub insphere_filtered: u64,
    /// insphere calls that needed exact expansion arithmetic.
    pub insphere_exact: u64,
}

impl FilterStats {
    /// Add another accumulator into this one.
    pub fn merge(&mut self, o: &FilterStats) {
        self.orient_semi_static += o.orient_semi_static;
        self.orient_filtered += o.orient_filtered;
        self.orient_exact += o.orient_exact;
        self.insphere_semi_static += o.insphere_semi_static;
        self.insphere_filtered += o.insphere_filtered;
        self.insphere_exact += o.insphere_exact;
    }

    /// Drain: return the current counts and reset to zero.
    pub fn take(&mut self) -> FilterStats {
        std::mem::take(self)
    }

    /// Total orient3d calls seen.
    pub fn orient_total(&self) -> u64 {
        self.orient_semi_static + self.orient_filtered + self.orient_exact
    }

    /// Total insphere calls seen.
    pub fn insphere_total(&self) -> u64 {
        self.insphere_semi_static + self.insphere_filtered + self.insphere_exact
    }
}

/// Staged robust orient3d: semi-static filter → dynamic filter → exact.
/// Sign-identical to [`crate::orient3d`] for in-box inputs.
pub fn orient3d_staged(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    pa: &P3,
    pb: &P3,
    pc: &P3,
    pd: &P3,
) -> f64 {
    let adx = pa[0] - pd[0];
    let bdx = pb[0] - pd[0];
    let cdx = pc[0] - pd[0];
    let ady = pa[1] - pd[1];
    let bdy = pb[1] - pd[1];
    let cdy = pc[1] - pd[1];
    let adz = pa[2] - pd[2];
    let bdz = pb[2] - pd[2];
    let cdz = pc[2] - pd[2];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    let det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady);

    // Stage 1 — semi-static: one comparison against the per-mesh constant.
    if det > b.orient || -det > b.orient {
        st.orient_semi_static += 1;
        return det;
    }

    // Stage 2 — dynamic: the input-dependent permanent bound.
    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * adz.abs()
        + (cdxady.abs() + adxcdy.abs()) * bdz.abs()
        + (adxbdy.abs() + bdxady.abs()) * cdz.abs();
    let errbound = O3D_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        st.orient_filtered += 1;
        return det;
    }

    // Stage 3 — exact expansion arithmetic.
    st.orient_exact += 1;
    orient3d_exact(pa, pb, pc, pd)
}

/// Sign of [`orient3d_staged`] as -1 / 0 / +1.
#[inline]
pub fn orient3d_sign_staged(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    pa: &P3,
    pb: &P3,
    pc: &P3,
    pd: &P3,
) -> i8 {
    let v = orient3d_staged(b, st, pa, pb, pc, pd);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Staged robust insphere: semi-static filter → dynamic filter → exact.
/// Sign-identical to [`crate::insphere()`] for in-box inputs.
pub fn insphere_staged(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    pa: &P3,
    pb: &P3,
    pc: &P3,
    pd: &P3,
    pe: &P3,
) -> f64 {
    let aex = pa[0] - pe[0];
    let bex = pb[0] - pe[0];
    let cex = pc[0] - pe[0];
    let dex = pd[0] - pe[0];
    let aey = pa[1] - pe[1];
    let bey = pb[1] - pe[1];
    let cey = pc[1] - pe[1];
    let dey = pd[1] - pe[1];
    let aez = pa[2] - pe[2];
    let bez = pb[2] - pe[2];
    let cez = pc[2] - pe[2];
    let dez = pd[2] - pe[2];

    let aexbey = aex * bey;
    let bexaey = bex * aey;
    let ab = aexbey - bexaey;
    let bexcey = bex * cey;
    let cexbey = cex * bey;
    let bc = bexcey - cexbey;
    let cexdey = cex * dey;
    let dexcey = dex * cey;
    let cd = cexdey - dexcey;
    let dexaey = dex * aey;
    let aexdey = aex * dey;
    let da = dexaey - aexdey;
    let aexcey = aex * cey;
    let cexaey = cex * aey;
    let ac = aexcey - cexaey;
    let bexdey = bex * dey;
    let dexbey = dex * bey;
    let bd = bexdey - dexbey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    // Stage 1 — semi-static: skip the 24-term permanent entirely.
    if det > b.insphere || -det > b.insphere {
        st.insphere_semi_static += 1;
        return det;
    }

    // Stage 2 — dynamic filter (identical to `crate::insphere`).
    let aezplus = aez.abs();
    let bezplus = bez.abs();
    let cezplus = cez.abs();
    let dezplus = dez.abs();
    let aexbeyplus = aexbey.abs();
    let bexaeyplus = bexaey.abs();
    let bexceyplus = bexcey.abs();
    let cexbeyplus = cexbey.abs();
    let cexdeyplus = cexdey.abs();
    let dexceyplus = dexcey.abs();
    let dexaeyplus = dexaey.abs();
    let aexdeyplus = aexdey.abs();
    let aexceyplus = aexcey.abs();
    let cexaeyplus = cexaey.abs();
    let bexdeyplus = bexdey.abs();
    let dexbeyplus = dexbey.abs();

    let permanent = ((cexdeyplus + dexceyplus) * bezplus
        + (dexbeyplus + bexdeyplus) * cezplus
        + (bexceyplus + cexbeyplus) * dezplus)
        * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
            + (aexceyplus + cexaeyplus) * dezplus
            + (cexdeyplus + dexceyplus) * aezplus)
            * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
            + (bexdeyplus + dexbeyplus) * aezplus
            + (dexaeyplus + aexdeyplus) * bezplus)
            * clift
        + ((bexceyplus + cexbeyplus) * aezplus
            + (cexaeyplus + aexceyplus) * bezplus
            + (aexbeyplus + bexaeyplus) * cezplus)
            * dlift;
    let errbound = ISP_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        st.insphere_filtered += 1;
        return det;
    }

    // Stage 3 — exact.
    st.insphere_exact += 1;
    insphere_exact(pa, pb, pc, pd, pe)
}

/// Sign of [`insphere_staged`] as -1 / 0 / +1.
#[inline]
pub fn insphere_sign_staged(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    pa: &P3,
    pb: &P3,
    pc: &P3,
    pd: &P3,
    pe: &P3,
) -> i8 {
    let v = insphere_staged(b, st, pa, pb, pc, pd, pe);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Staged, symbolically perturbed insphere — the staged counterpart of
/// [`crate::insphere_sos`], with identical results. See that function for
/// the perturbation scheme; the orient3d cofactors consulted on ties run
/// through the staged pipeline too.
#[allow(clippy::too_many_arguments)]
pub fn insphere_sos_staged(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    pa: &P3,
    pb: &P3,
    pc: &P3,
    pd: &P3,
    pe: &P3,
    keys: [u64; 5],
) -> i8 {
    let det = insphere_staged(b, st, pa, pb, pc, pd, pe);
    if det > 0.0 {
        return 1;
    }
    if det < 0.0 {
        return -1;
    }
    let mut order = [0usize, 1, 2, 3, 4];
    order.sort_unstable_by(|&i, &j| keys[j].cmp(&keys[i]));
    for &i in &order {
        let coeff = match i {
            0 => orient3d_sign_staged(b, st, pb, pc, pd, pe),
            1 => -orient3d_sign_staged(b, st, pa, pc, pd, pe),
            2 => orient3d_sign_staged(b, st, pa, pb, pd, pe),
            3 => -orient3d_sign_staged(b, st, pa, pb, pc, pe),
            _ => orient3d_sign_staged(b, st, pa, pb, pc, pd),
        };
        if coeff != 0 {
            return coeff;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insphere::{insphere_sign, insphere_sos};
    use crate::orient::orient3d_sign;

    const A: P3 = [0.0, 0.0, 0.0];
    const B: P3 = [1.0, 0.0, 0.0];
    const C: P3 = [0.0, 1.0, 0.0];
    const D: P3 = [0.0, 0.0, -1.0];

    fn unit_bounds() -> SemiStaticBounds {
        SemiStaticBounds::for_box(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0])
    }

    #[test]
    fn semi_static_certifies_generic_cases() {
        let b = unit_bounds();
        let mut st = FilterStats::default();
        assert!(orient3d_staged(&b, &mut st, &A, &B, &C, &[0.0, 0.0, -1.0]) > 0.0);
        assert_eq!(st.orient_semi_static, 1);
        assert_eq!(st.orient_exact, 0);
        assert!(insphere_staged(&b, &mut st, &A, &B, &C, &D, &[0.5, 0.5, -0.5]) > 0.0);
        assert_eq!(st.insphere_semi_static, 1);
    }

    #[test]
    fn degenerate_defers_to_exact_and_agrees() {
        let b = unit_bounds();
        let mut st = FilterStats::default();
        // exactly coplanar
        assert_eq!(
            orient3d_staged(&b, &mut st, &A, &B, &C, &[0.25, 0.25, 0.0]),
            0.0
        );
        assert_eq!(st.orient_exact, 1);
        assert_eq!(st.orient_semi_static, 0);
        // exactly cospherical
        assert_eq!(
            insphere_staged(&b, &mut st, &A, &B, &C, &D, &[1.0, 1.0, -1.0]),
            0.0
        );
        assert_eq!(st.insphere_exact, 1);
    }

    #[test]
    fn near_degenerate_signs_match_plain_path() {
        let b = unit_bounds();
        let mut st = FilterStats::default();
        let eps = 2f64.powi(-60);
        for d in [[0.3, 0.4, -eps], [0.3, 0.4, eps]] {
            assert_eq!(
                orient3d_sign_staged(&b, &mut st, &A, &B, &C, &d),
                orient3d_sign(&A, &B, &C, &d)
            );
        }
        let eps = 2f64.powi(-45);
        for e in [[1.0 - eps, 1.0, -1.0], [1.0 + eps, 1.0, -1.0]] {
            assert_eq!(
                insphere_sign_staged(&b, &mut st, &A, &B, &C, &D, &e),
                insphere_sign(&A, &B, &C, &D, &e)
            );
        }
    }

    #[test]
    fn none_bounds_never_certify_semi_statically() {
        let b = SemiStaticBounds::none();
        let mut st = FilterStats::default();
        assert!(orient3d_staged(&b, &mut st, &A, &B, &C, &[0.0, 0.0, -1.0]) > 0.0);
        assert_eq!(st.orient_semi_static, 0);
        assert_eq!(st.orient_filtered, 1);
    }

    #[test]
    fn sos_staged_matches_sos() {
        let b = unit_bounds();
        let mut st = FilterStats::default();
        let e = [1.0, 1.0, -1.0]; // exactly cospherical
        for perm in 0..5 {
            let mut keys = [0u64, 1, 2, 3, 4];
            keys.rotate_left(perm);
            assert_eq!(
                insphere_sos_staged(&b, &mut st, &A, &B, &C, &D, &e, keys),
                insphere_sos(&A, &B, &C, &D, &e, keys)
            );
        }
        assert!(st.insphere_exact > 0);
    }

    #[test]
    fn stats_merge_and_take() {
        let mut a = FilterStats {
            orient_semi_static: 1,
            insphere_exact: 2,
            ..Default::default()
        };
        let c = FilterStats {
            orient_semi_static: 3,
            insphere_filtered: 5,
            ..Default::default()
        };
        a.merge(&c);
        assert_eq!(a.orient_semi_static, 4);
        assert_eq!(a.insphere_filtered, 5);
        assert_eq!(a.insphere_exact, 2);
        let t = a.take();
        assert_eq!(t.orient_total(), 4);
        assert_eq!(a, FilterStats::default());
    }
}
