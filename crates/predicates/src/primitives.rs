//! Error-free transformations: the building blocks of expansion arithmetic.
//!
//! These are the classic Dekker/Knuth/Shewchuk primitives. Each returns a pair
//! `(x, y)` such that `x` is the floating-point result of the operation and
//! `y` is the exact roundoff error, i.e. `x + y` equals the exact real result
//! and `|y| <= ulp(x)/2`.
//!
//! The implementations assume round-to-nearest IEEE-754 double arithmetic and
//! no overflow/underflow in intermediate computations, which holds for all
//! coordinates produced by this library (voxel-scale magnitudes).

/// Half the classic machine epsilon: 2^-53. This is the unit roundoff `u`
/// used in Shewchuk's error bounds.
pub const EPSILON: f64 = 1.110_223_024_625_156_5e-16;

/// 2^27 + 1, used to split a double into two 26-bit halves.
pub const SPLITTER: f64 = 134_217_729.0;

/// Exact sum when `|a| >= |b|` (Dekker). Undefined tail otherwise.
#[inline(always)]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    (x, b - bvirt)
}

/// Exact sum of two doubles (Knuth): returns `(x, y)` with `x + y == a + b`.
#[inline(always)]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let x = a + b;
    let bvirt = x - a;
    let avirt = x - bvirt;
    let bround = b - bvirt;
    let around = a - avirt;
    (x, around + bround)
}

/// Exact difference of two doubles: returns `(x, y)` with `x + y == a - b`.
#[inline(always)]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let x = a - b;
    let bvirt = a - x;
    let avirt = x + bvirt;
    let bround = bvirt - b;
    let around = a - avirt;
    (x, around + bround)
}

/// Split `a` into a 26-bit high part and a 26-bit low part (Dekker).
#[inline(always)]
pub fn split(a: f64) -> (f64, f64) {
    let c = SPLITTER * a;
    let abig = c - a;
    let hi = c - abig;
    let lo = a - hi;
    (hi, lo)
}

/// Exact product of two doubles: returns `(x, y)` with `x + y == a * b`.
#[inline(always)]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let x = a * b;
    let (ahi, alo) = split(a);
    let (bhi, blo) = split(b);
    let err1 = x - ahi * bhi;
    let err2 = err1 - alo * bhi;
    let err3 = err2 - ahi * blo;
    (x, alo * blo - err3)
}

/// Exact square: slightly cheaper than `two_product(a, a)`.
#[inline(always)]
pub fn two_square(a: f64) -> (f64, f64) {
    let x = a * a;
    let (ahi, alo) = split(a);
    let err1 = x - ahi * ahi;
    let err3 = err1 - (ahi + ahi) * alo;
    (x, alo * alo - err3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_sum_is_exact_for_representable_cases() {
        let (x, y) = two_sum(1.0, 2.0_f64.powi(-60));
        assert_eq!(x, 1.0);
        assert_eq!(y, 2.0_f64.powi(-60));
    }

    #[test]
    fn two_diff_recovers_cancellation() {
        let a = 1.0 + 2.0_f64.powi(-52);
        let (x, y) = two_diff(a, 1.0);
        assert_eq!(x + y, 2.0_f64.powi(-52));
        // x is the rounded result; the pair must be exact.
        assert_eq!(x, a - 1.0);
    }

    #[test]
    fn two_product_tail_is_roundoff() {
        let a = 1.0 + 2.0_f64.powi(-30);
        let b = 1.0 - 2.0_f64.powi(-30);
        let (x, y) = two_product(a, b);
        // exact product is 1 - 2^-60, not representable; x+y must carry it.
        assert_eq!(x, a * b);
        assert_eq!(x + y, x); // y below ulp of x after rounding of the sum
        assert_eq!(y, -(2.0_f64.powi(-60)) - (x - 1.0));
    }

    #[test]
    fn two_square_matches_two_product() {
        for v in [0.1, 1.5, -3.7, 12345.678, 2.0_f64.powi(-30) + 1.0] {
            let (x1, y1) = two_product(v, v);
            let (x2, y2) = two_square(v);
            assert_eq!(x1, x2);
            assert_eq!(y1, y2);
        }
    }

    #[test]
    fn split_reconstructs() {
        for v in [1.0, -0.375, 1e10, std::f64::consts::PI] {
            let (hi, lo) = split(v);
            assert_eq!(hi + lo, v);
        }
    }
}
