//! # pi2m-predicates
//!
//! Robust geometric predicates for the PI2M Delaunay kernel.
//!
//! The paper relies on CGAL's exact predicates for robustness (§7: "PI2M
//! adopts the exact predicates as implemented in CGAL"). This crate provides
//! the equivalent, built from scratch:
//!
//! * [`orient3d`] — side-of-plane test,
//! * [`insphere()`] — in-circumsphere test,
//!
//! each implemented as a *filtered* fast floating-point evaluation with a
//! proven forward error bound (Shewchuk's stage-A bounds), escalating to
//! fully exact evaluation with [`expansion::Expansion`] arithmetic only when
//! the filter cannot certify the sign. On meshing workloads the exact path
//! triggers for a small fraction of calls, so robustness costs little.
//!
//! Degeneracy policy: both predicates return exactly `0.0` for degenerate
//! (coplanar / cospherical) inputs, and the Delaunay kernel treats "on the
//! sphere" as "outside the cavity", which keeps Bowyer–Watson cavities valid
//! without symbolic perturbation; vertex removal resolves degenerate ball
//! re-triangulations by inserting vertices in global timestamp order (paper
//! §4.2).

pub mod batch;
pub mod expansion;
pub mod insphere;
pub mod orient;
pub mod primitives;
pub mod staged;

pub use batch::{
    insphere_sos_batch, orient3d_batch, orient3d_batch4, orient3d_batch_gather, BatchStats,
    BATCH_LANES,
};
pub use expansion::Expansion;
pub use insphere::{insphere, insphere_exact, insphere_fast, insphere_sign, insphere_sos};
pub use orient::{orient3d, orient3d_exact, orient3d_fast, orient3d_sign, P3};
pub use primitives::EPSILON;
pub use staged::{
    insphere_sign_staged, insphere_sos_staged, insphere_staged, orient3d_sign_staged,
    orient3d_staged, FilterStats, SemiStaticBounds,
};
