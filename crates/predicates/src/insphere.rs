//! The `insphere` predicate: is `e` inside the circumsphere of the tetrahedron
//! `a b c d`?
//!
//! Returns a value with the same sign as the determinant
//!
//! ```text
//! | ax-ex  ay-ey  az-ez  (ax-ex)²+(ay-ey)²+(az-ez)² |
//! | bx-ex  by-ey  bz-ez  ...                        |
//! | cx-ex  cy-ey  cz-ez  ...                        |
//! | dx-ex  dy-ey  dz-ez  ...                        |
//! ```
//!
//! which is positive when `e` lies inside the circumsphere, **provided the
//! tetrahedron `a b c d` is positively oriented** (`orient3d(a,b,c,d) > 0`).
//! For negatively oriented tetrahedra the sign flips; callers in the Delaunay
//! kernel normalize orientation first.

use crate::expansion::Expansion;
use crate::orient::{det3_exact, P3};
use crate::primitives::EPSILON;

/// Error-bound coefficient for the filtered stage (Shewchuk's `isperrboundA`).
const ISP_ERRBOUND_A: f64 = (16.0 + 224.0 * EPSILON) * EPSILON;

/// Fast, non-robust insphere evaluation.
#[inline]
pub fn insphere_fast(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3) -> f64 {
    let aex = pa[0] - pe[0];
    let bex = pb[0] - pe[0];
    let cex = pc[0] - pe[0];
    let dex = pd[0] - pe[0];
    let aey = pa[1] - pe[1];
    let bey = pb[1] - pe[1];
    let cey = pc[1] - pe[1];
    let dey = pd[1] - pe[1];
    let aez = pa[2] - pe[2];
    let bez = pb[2] - pe[2];
    let cez = pc[2] - pe[2];
    let dez = pd[2] - pe[2];

    let ab = aex * bey - bex * aey;
    let bc = bex * cey - cex * bey;
    let cd = cex * dey - dex * cey;
    let da = dex * aey - aex * dey;
    let ac = aex * cey - cex * aey;
    let bd = bex * dey - dex * bey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    (dlift * abc - clift * dab) + (blift * cda - alift * bcd)
}

/// Robust insphere: sign-correct double (exactly zero for cospherical points).
pub fn insphere(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3) -> f64 {
    let aex = pa[0] - pe[0];
    let bex = pb[0] - pe[0];
    let cex = pc[0] - pe[0];
    let dex = pd[0] - pe[0];
    let aey = pa[1] - pe[1];
    let bey = pb[1] - pe[1];
    let cey = pc[1] - pe[1];
    let dey = pd[1] - pe[1];
    let aez = pa[2] - pe[2];
    let bez = pb[2] - pe[2];
    let cez = pc[2] - pe[2];
    let dez = pd[2] - pe[2];

    let aexbey = aex * bey;
    let bexaey = bex * aey;
    let ab = aexbey - bexaey;
    let bexcey = bex * cey;
    let cexbey = cex * bey;
    let bc = bexcey - cexbey;
    let cexdey = cex * dey;
    let dexcey = dex * cey;
    let cd = cexdey - dexcey;
    let dexaey = dex * aey;
    let aexdey = aex * dey;
    let da = dexaey - aexdey;
    let aexcey = aex * cey;
    let cexaey = cex * aey;
    let ac = aexcey - cexaey;
    let bexdey = bex * dey;
    let dexbey = dex * bey;
    let bd = bexdey - dexbey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    let det = (dlift * abc - clift * dab) + (blift * cda - alift * bcd);

    let aezplus = aez.abs();
    let bezplus = bez.abs();
    let cezplus = cez.abs();
    let dezplus = dez.abs();
    let aexbeyplus = aexbey.abs();
    let bexaeyplus = bexaey.abs();
    let bexceyplus = bexcey.abs();
    let cexbeyplus = cexbey.abs();
    let cexdeyplus = cexdey.abs();
    let dexceyplus = dexcey.abs();
    let dexaeyplus = dexaey.abs();
    let aexdeyplus = aexdey.abs();
    let aexceyplus = aexcey.abs();
    let cexaeyplus = cexaey.abs();
    let bexdeyplus = bexdey.abs();
    let dexbeyplus = dexbey.abs();

    let permanent = ((cexdeyplus + dexceyplus) * bezplus
        + (dexbeyplus + bexdeyplus) * cezplus
        + (bexceyplus + cexbeyplus) * dezplus)
        * alift
        + ((dexaeyplus + aexdeyplus) * cezplus
            + (aexceyplus + cexaeyplus) * dezplus
            + (cexdeyplus + dexceyplus) * aezplus)
            * blift
        + ((aexbeyplus + bexaeyplus) * dezplus
            + (bexdeyplus + dexbeyplus) * aezplus
            + (dexaeyplus + aexdeyplus) * bezplus)
            * clift
        + ((bexceyplus + cexbeyplus) * aezplus
            + (cexaeyplus + aexceyplus) * bezplus
            + (aexbeyplus + bexaeyplus) * cezplus)
            * dlift;
    let errbound = ISP_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return det;
    }

    insphere_exact(pa, pb, pc, pd, pe)
}

/// The sign of robust insphere as -1 / 0 / +1.
#[inline]
pub fn insphere_sign(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3) -> i8 {
    let v = insphere(pa, pb, pc, pd, pe);
    if v > 0.0 {
        1
    } else if v < 0.0 {
        -1
    } else {
        0
    }
}

/// Symbolically perturbed insphere: never returns 0 for five points that are
/// not all coplanar, so the Delaunay triangulation of any point set becomes
/// *unique* (independent of insertion order) — the property the removal
/// operation's ball re-triangulation relies on.
///
/// Each point carries a `key` (the kernel passes the vertex's global
/// insertion timestamp; auxiliary local points use keys above all real ones).
/// Conceptually every point's paraboloid lift is lowered by an infinitesimal
/// `ε(key)` with larger keys perturbed more (`key1 > key2 ⇒ ε(key1) ≫
/// ε(key2)`). When the exact determinant vanishes, the perturbation terms are
/// examined in decreasing-ε order; the first nonvanishing term (an `orient3d`
/// cofactor) decides the sign.
///
/// Returns +1 if `pe` is inside the perturbed circumsphere of the positively
/// oriented tetrahedron `(pa, pb, pc, pd)`, -1 if outside, 0 only when all
/// five points are coplanar.
pub fn insphere_sos(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3, keys: [u64; 5]) -> i8 {
    let det = insphere(pa, pb, pc, pd, pe);
    if det > 0.0 {
        return 1;
    }
    if det < 0.0 {
        return -1;
    }
    // Cospherical: perturb. det4(ε) = det4 + ε_e·S − Σ_{i∈{a..d}} ε_i·C_i
    // with C_a = -orient3d(b,c,d,e), C_b = +orient3d(a,c,d,e),
    // C_c = -orient3d(a,b,d,e), C_d = +orient3d(a,b,c,e),
    // S = orient3d(a,b,c,d).
    let mut order = [0usize, 1, 2, 3, 4];
    order.sort_unstable_by(|&i, &j| keys[j].cmp(&keys[i]));
    for &i in &order {
        let coeff = match i {
            0 => orient3d_sign_of(pb, pc, pd, pe),
            1 => -orient3d_sign_of(pa, pc, pd, pe),
            2 => orient3d_sign_of(pa, pb, pd, pe),
            3 => -orient3d_sign_of(pa, pb, pc, pe),
            _ => orient3d_sign_of(pa, pb, pc, pd),
        };
        if coeff != 0 {
            return coeff;
        }
    }
    0
}

#[inline]
fn orient3d_sign_of(a: &P3, b: &P3, c: &P3, d: &P3) -> i8 {
    crate::orient::orient3d_sign(a, b, c, d)
}

/// Exact insphere via expansion arithmetic on exactly translated coordinates.
pub fn insphere_exact(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3) -> f64 {
    let tr = |p: &P3| {
        [
            Expansion::from_diff(p[0], pe[0]),
            Expansion::from_diff(p[1], pe[1]),
            Expansion::from_diff(p[2], pe[2]),
        ]
    };
    let a = tr(pa);
    let b = tr(pb);
    let c = tr(pc);
    let d = tr(pd);

    let lift = |p: &[Expansion; 3]| p[0].square().add(&p[1].square()).add(&p[2].square());
    let la = lift(&a);
    let lb = lift(&b);
    let lc = lift(&c);
    let ld = lift(&d);

    let m = |r0: &[Expansion; 3], r1: &[Expansion; 3], r2: &[Expansion; 3]| {
        det3_exact(
            &r0[0], &r0[1], &r0[2], &r1[0], &r1[1], &r1[2], &r2[0], &r2[1], &r2[2],
        )
    };
    // Cofactor expansion along the lift column (column index 3):
    // det = -la*det3(b,c,d) + lb*det3(a,c,d) - lc*det3(a,b,d) + ld*det3(a,b,c)
    let det = lb
        .mul(&m(&a, &c, &d))
        .sub(&la.mul(&m(&b, &c, &d)))
        .sub(&lc.mul(&m(&a, &b, &d)))
        .add(&ld.mul(&m(&a, &b, &c)));

    match det.sign() {
        0 => 0.0,
        s => {
            let est = det.estimate();
            if est != 0.0 && (est > 0.0) == (s > 0) {
                est
            } else {
                s as f64 * f64::MIN_POSITIVE
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::orient3d_sign;

    // Positively oriented unit tetrahedron.
    const A: P3 = [0.0, 0.0, 0.0];
    const B: P3 = [1.0, 0.0, 0.0];
    const C: P3 = [0.0, 1.0, 0.0];
    const D: P3 = [0.0, 0.0, -1.0];

    #[test]
    fn orientation_assumption_holds() {
        assert_eq!(orient3d_sign(&A, &B, &C, &D), 1);
    }

    #[test]
    fn clear_inside_outside() {
        // circumsphere of A,B,C,D has center (0.5,0.5,-0.5), radius sqrt(3)/2
        assert!(insphere(&A, &B, &C, &D, &[0.5, 0.5, -0.5]) > 0.0);
        assert!(insphere(&A, &B, &C, &D, &[10.0, 10.0, 10.0]) < 0.0);
    }

    #[test]
    fn cospherical_is_exact_zero() {
        // (1,1,-1) lies on the circumsphere: distance to center (.5,.5,-.5)
        // is sqrt(.25+.25+.25) = radius.
        assert_eq!(insphere(&A, &B, &C, &D, &[1.0, 1.0, -1.0]), 0.0);
    }

    #[test]
    fn near_degenerate_sign() {
        let eps = 2f64.powi(-45);
        // nudge a cospherical point radially in/out along x from center .5
        let inside = [1.0 - eps, 1.0, -1.0];
        let outside = [1.0 + eps, 1.0, -1.0];
        assert_eq!(insphere_sign(&A, &B, &C, &D, &inside), 1);
        assert_eq!(insphere_sign(&A, &B, &C, &D, &outside), -1);
    }

    #[test]
    fn swap_changes_sign() {
        let e = [0.5, 0.5, -0.5];
        let v1 = insphere_sign(&A, &B, &C, &D, &e);
        let v2 = insphere_sign(&B, &A, &C, &D, &e);
        assert_eq!(v1, -v2);
    }

    #[test]
    fn sos_agrees_with_unperturbed_when_generic() {
        let e_in = [0.5, 0.5, -0.5];
        let e_out = [10.0, 0.0, 0.0];
        assert_eq!(insphere_sos(&A, &B, &C, &D, &e_in, [0, 1, 2, 3, 4]), 1);
        assert_eq!(insphere_sos(&A, &B, &C, &D, &e_out, [0, 1, 2, 3, 4]), -1);
    }

    #[test]
    fn sos_breaks_cospherical_ties_deterministically() {
        // (1,1,-1) is exactly cospherical with A,B,C,D.
        let e = [1.0, 1.0, -1.0];
        assert_eq!(insphere(&A, &B, &C, &D, &e), 0.0);
        // newest query point (largest key) is perturbed downward the most:
        // it must test inside the positively oriented cell's sphere.
        assert_eq!(insphere_sos(&A, &B, &C, &D, &e, [0, 1, 2, 3, 4]), 1);
        // oldest query point: the youngest cell vertex decides instead.
        let s_old = insphere_sos(&A, &B, &C, &D, &e, [1, 2, 3, 4, 0]);
        assert!(s_old == 1 || s_old == -1);
    }

    #[test]
    fn sos_never_zero_for_nondegenerate_cell() {
        // cospherical grid-like cases with various key assignments
        let e = [1.0, 1.0, -1.0];
        for perm in 0..5 {
            let mut keys = [0u64, 1, 2, 3, 4];
            keys.rotate_left(perm);
            assert_ne!(insphere_sos(&A, &B, &C, &D, &e, keys), 0);
        }
    }

    #[test]
    fn sos_zero_only_for_coplanar() {
        let a = [0.0, 0.0, 0.0];
        let b = [1.0, 0.0, 0.0];
        let c = [0.0, 1.0, 0.0];
        let d = [1.0, 1.0, 0.0];
        let e = [2.0, 2.0, 0.0];
        assert_eq!(insphere_sos(&a, &b, &c, &d, &e, [0, 1, 2, 3, 4]), 0);
    }

    #[test]
    fn exact_matches_integer_reference() {
        let pts: [[i64; 3]; 5] = [[0, 0, 0], [4, 0, 0], [0, 4, 0], [0, 0, -4], [1, 1, -1]];
        let f = |i: usize| [pts[i][0] as f64, pts[i][1] as f64, pts[i][2] as f64];
        // reference: i128 determinant of the translated 4x4
        let d = |i: usize, k: usize| (pts[i][k] - pts[4][k]) as i128;
        let lift = |i: usize| d(i, 0) * d(i, 0) + d(i, 1) * d(i, 1) + d(i, 2) * d(i, 2);
        let det3 = |r0: usize, r1: usize, r2: usize| {
            d(r0, 0) * (d(r1, 1) * d(r2, 2) - d(r1, 2) * d(r2, 1))
                - d(r0, 1) * (d(r1, 0) * d(r2, 2) - d(r1, 2) * d(r2, 0))
                + d(r0, 2) * (d(r1, 0) * d(r2, 1) - d(r1, 1) * d(r2, 0))
        };
        let det_ref = -lift(0) * det3(1, 2, 3) + lift(1) * det3(0, 2, 3) - lift(2) * det3(0, 1, 3)
            + lift(3) * det3(0, 1, 2);
        let s = insphere_sign(&f(0), &f(1), &f(2), &f(3), &f(4));
        assert_eq!(s as i128, det_ref.signum());
    }
}
