//! Multi-component floating-point expansions (Shewchuk 1997).
//!
//! An *expansion* represents a real number exactly as a sum of doubles
//! `e = e_0 + e_1 + ... + e_{n-1}` whose components are nonoverlapping and
//! sorted by increasing magnitude. All arithmetic here is exact; expansions
//! only grow, they never round. The exact predicate fallbacks are built on
//! this type, so correctness of everything downstream (Delaunay invariants,
//! cavity validity) rests on these algorithms.

use crate::primitives::{fast_two_sum, two_diff, two_product, two_square, two_sum};

/// An exact real number stored as a nonoverlapping, magnitude-sorted sum of
/// doubles. The zero value is represented by an empty component list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Expansion {
    comps: Vec<f64>,
}

impl Expansion {
    /// The exact zero.
    #[inline]
    pub fn zero() -> Self {
        Expansion { comps: Vec::new() }
    }

    /// An expansion holding a single double exactly.
    #[inline]
    pub fn from_f64(v: f64) -> Self {
        if v == 0.0 {
            Self::zero()
        } else {
            Expansion { comps: vec![v] }
        }
    }

    /// The exact difference `a - b` of two doubles as a (≤2)-component expansion.
    #[inline]
    pub fn from_diff(a: f64, b: f64) -> Self {
        let (x, y) = two_diff(a, b);
        Expansion::from_pair(x, y)
    }

    /// The exact product `a * b` of two doubles as a (≤2)-component expansion.
    #[inline]
    pub fn from_product(a: f64, b: f64) -> Self {
        let (x, y) = two_product(a, b);
        Expansion::from_pair(x, y)
    }

    /// Build from a (high, low) error-free transformation pair.
    #[inline]
    pub fn from_pair(x: f64, y: f64) -> Self {
        let mut comps = Vec::with_capacity(2);
        if y != 0.0 {
            comps.push(y);
        }
        if x != 0.0 {
            comps.push(x);
        }
        Expansion { comps }
    }

    /// Number of nonzero components.
    #[inline]
    pub fn len(&self) -> usize {
        self.comps.len()
    }

    /// True iff there are no components (the expansion is exactly zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.comps.is_empty()
    }

    /// True iff the represented value is exactly zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.comps.is_empty()
    }

    /// Raw components, smallest magnitude first.
    #[inline]
    pub fn components(&self) -> &[f64] {
        &self.comps
    }

    /// The sign of the exact value: -1, 0, or +1. Because components are
    /// nonoverlapping and sorted, the last (largest) component dominates.
    #[inline]
    pub fn sign(&self) -> i8 {
        match self.comps.last() {
            None => 0,
            Some(&c) if c > 0.0 => 1,
            Some(&c) if c < 0.0 => -1,
            _ => 0,
        }
    }

    /// A double approximation of the exact value (sum smallest-first).
    pub fn estimate(&self) -> f64 {
        self.comps.iter().sum()
    }

    /// Exact negation.
    pub fn neg(&self) -> Expansion {
        Expansion {
            comps: self.comps.iter().map(|c| -c).collect(),
        }
    }

    /// Exact sum of two expansions (`fast_expansion_sum_zeroelim`).
    pub fn add(&self, other: &Expansion) -> Expansion {
        if self.is_zero() {
            return other.clone();
        }
        if other.is_zero() {
            return self.clone();
        }
        let e = &self.comps;
        let f = &other.comps;
        let mut h = Vec::with_capacity(e.len() + f.len());

        let mut eindex = 0usize;
        let mut findex = 0usize;
        let mut enow = e[0];
        let mut fnow = f[0];

        // Merge-start: pick the smaller-magnitude leading component.
        let mut q;
        if (fnow > enow) == (fnow > -enow) {
            q = enow;
            eindex += 1;
            if eindex < e.len() {
                enow = e[eindex];
            }
        } else {
            q = fnow;
            findex += 1;
            if findex < f.len() {
                fnow = f[findex];
            }
        }

        if eindex < e.len() && findex < f.len() {
            let (qnew, hh);
            if (fnow > enow) == (fnow > -enow) {
                let r = fast_two_sum(enow, q);
                qnew = r.0;
                hh = r.1;
                eindex += 1;
                if eindex < e.len() {
                    enow = e[eindex];
                }
            } else {
                let r = fast_two_sum(fnow, q);
                qnew = r.0;
                hh = r.1;
                findex += 1;
                if findex < f.len() {
                    fnow = f[findex];
                }
            }
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
            while eindex < e.len() && findex < f.len() {
                let (qnew, hh);
                if (fnow > enow) == (fnow > -enow) {
                    let r = two_sum(q, enow);
                    qnew = r.0;
                    hh = r.1;
                    eindex += 1;
                    if eindex < e.len() {
                        enow = e[eindex];
                    }
                } else {
                    let r = two_sum(q, fnow);
                    qnew = r.0;
                    hh = r.1;
                    findex += 1;
                    if findex < f.len() {
                        fnow = f[findex];
                    }
                }
                q = qnew;
                if hh != 0.0 {
                    h.push(hh);
                }
            }
        }
        while eindex < e.len() {
            let (qnew, hh) = two_sum(q, enow);
            eindex += 1;
            if eindex < e.len() {
                enow = e[eindex];
            }
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
        while findex < f.len() {
            let (qnew, hh) = two_sum(q, fnow);
            findex += 1;
            if findex < f.len() {
                fnow = f[findex];
            }
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { comps: h }
    }

    /// Exact difference of two expansions.
    pub fn sub(&self, other: &Expansion) -> Expansion {
        self.add(&other.neg())
    }

    /// Exact product of an expansion and a double
    /// (`scale_expansion_zeroelim`).
    pub fn scale(&self, b: f64) -> Expansion {
        if self.is_zero() || b == 0.0 {
            return Expansion::zero();
        }
        let e = &self.comps;
        let mut h = Vec::with_capacity(2 * e.len());
        let (mut q, hh) = two_product(e[0], b);
        if hh != 0.0 {
            h.push(hh);
        }
        for &enow in &e[1..] {
            let (product1, product0) = two_product(enow, b);
            let (sum, hh) = two_sum(q, product0);
            if hh != 0.0 {
                h.push(hh);
            }
            let (qnew, hh) = fast_two_sum(product1, sum);
            q = qnew;
            if hh != 0.0 {
                h.push(hh);
            }
        }
        if q != 0.0 {
            h.push(q);
        }
        Expansion { comps: h }
    }

    /// Exact product of two expansions (distillation of scaled partials).
    pub fn mul(&self, other: &Expansion) -> Expansion {
        if self.is_zero() || other.is_zero() {
            return Expansion::zero();
        }
        // Scale the longer expansion by each component of the shorter one.
        let (long, short) = if self.len() >= other.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut acc = Expansion::zero();
        for &c in &short.comps {
            acc = acc.add(&long.scale(c));
        }
        acc
    }

    /// Exact square of a (≤2)-component expansion built from an error-free
    /// pair; falls back to general multiplication otherwise.
    pub fn square(&self) -> Expansion {
        match self.comps.len() {
            0 => Expansion::zero(),
            1 => {
                let (x, y) = two_square(self.comps[0]);
                Expansion::from_pair(x, y)
            }
            _ => self.mul(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact(e: &Expansion) -> f64 {
        // For test values chosen with small exponent ranges, summing largest
        // to smallest in f64 is exact enough to compare against references.
        e.comps.iter().rev().sum()
    }

    #[test]
    fn zero_behaviour() {
        let z = Expansion::zero();
        assert!(z.is_zero());
        assert_eq!(z.sign(), 0);
        assert_eq!(z.add(&Expansion::from_f64(3.0)).estimate(), 3.0);
        assert!(z.mul(&Expansion::from_f64(5.0)).is_zero());
    }

    #[test]
    fn add_exact_integers() {
        let a = Expansion::from_f64(1e20);
        let b = Expansion::from_f64(1.0);
        let s = a.add(&b);
        // 1e20 + 1 is not representable in a double; the expansion keeps both.
        assert_eq!(s.len(), 2);
        assert_eq!(s.components()[1], 1e20);
        assert_eq!(s.components()[0], 1.0);
    }

    #[test]
    fn cancellation_gives_exact_zero() {
        let a = Expansion::from_f64(1e20).add(&Expansion::from_f64(1.0));
        let b = Expansion::from_f64(-1e20).add(&Expansion::from_f64(-1.0));
        let s = a.add(&b);
        assert!(s.is_zero());
        assert_eq!(s.sign(), 0);
    }

    #[test]
    fn tiny_residue_sign() {
        // (1e20 + 1) - 1e20 == 1 exactly in expansion arithmetic.
        let a = Expansion::from_f64(1e20).add(&Expansion::from_f64(1.0));
        let d = a.sub(&Expansion::from_f64(1e20));
        assert_eq!(d.sign(), 1);
        assert_eq!(exact(&d), 1.0);
    }

    #[test]
    fn scale_matches_integer_arithmetic() {
        // (2^30 + 1) * (2^30 - 1) = 2^60 - 1, exactly representable in i128.
        let a = Expansion::from_f64((1u64 << 30) as f64 + 1.0);
        let p = a.scale((1u64 << 30) as f64 - 1.0);
        let expect = ((1i128 << 60) - 1) as f64; // rounded head
        assert!((p.estimate() - expect).abs() <= 1.0);
        // exact check: components must sum to 2^60 - 1 over integers
        let total: i128 = p.components().iter().map(|&c| c as i128).sum();
        assert_eq!(total, (1i128 << 60) - 1);
    }

    #[test]
    fn mul_small_integers_exact() {
        for (x, y) in [(3.0, 7.0), (-11.0, 13.0), (1025.0, -4097.0)] {
            let p = Expansion::from_f64(x).mul(&Expansion::from_f64(y));
            assert_eq!(exact(&p), x * y);
        }
    }

    #[test]
    fn square_of_pair() {
        let e = Expansion::from_diff(1.0 + 2f64.powi(-40), 2f64.powi(-45));
        let sq = e.square();
        let direct = e.mul(&e);
        assert_eq!(exact(&sq), exact(&direct));
    }

    #[test]
    fn from_diff_exact() {
        let a = 1.0 + 2f64.powi(-52);
        let e = Expansion::from_diff(a, 1.0);
        assert_eq!(exact(&e), 2f64.powi(-52));
    }
}
