//! Wide-lane (batched) semi-static predicate filters.
//!
//! The staged pipeline in [`crate::staged`] is branchy by construction: each
//! call computes a determinant, compares it against a bound, and either
//! returns or escalates. When the Delaunay kernel expands a cavity it issues
//! many such calls back to back — one insphere per frontier neighbor, one
//! orient3d per boundary face — and the branch after every determinant stops
//! the CPU from overlapping the independent lane computations.
//!
//! This module rephrases stage 1 as a **batch pass**: the caller stages a
//! wave of lanes in structure-of-arrays form (flat `xs/ys/zs` coordinate
//! arrays, gathered once from the vertex pool), all lane determinants are
//! evaluated in one straight-line pass with no intervening branches, and only
//! then are the results classified. Lanes whose determinant clears the
//! semi-static bound are certified exactly as the scalar stage 1 would have
//! certified them — the per-lane arithmetic is the *same sequence of f64
//! operations* as [`orient3d_staged`] / [`insphere_sos_staged`] stage 1, so a
//! certified lane returns the bit-identical determinant. Lanes that fail the
//! bound fall back, per lane, to the full scalar staged cascade (which
//! recomputes the same determinant, fails stage 1 the same way, and proceeds
//! to the dynamic/exact stages). The batched path is therefore **sign- and
//! value-identical** to the scalar path lane for lane, and the shared
//! [`FilterStats`] counters advance identically — batching changes the
//! schedule, never the answer.
//!
//! For the symbolically perturbed insphere, a certified lane implies
//! `det != 0`, so the SoS cofactor cascade is provably not consulted and the
//! sign is returned directly — again matching [`insphere_sos_staged`].
//!
//! No unstable features: lanes are plain `f64` arrays, and pass 1 runs as a
//! branch-free scalar loop on any target. On x86-64 with AVX2 detected at
//! runtime, pass 1 instead runs 4 lanes per 256-bit vector, each intrinsic
//! mirroring one line of the scalar determinant — the same IEEE f64 operation
//! tree per lane, no FMA contraction, no reassociation — so the vector path
//! produces bitwise the scalar determinants.

use crate::orient::P3;
use crate::staged::{insphere_sos_staged, orient3d_staged, FilterStats, SemiStaticBounds};

/// Preferred wave width for callers staging lanes. Purely advisory — the
/// batch entry points accept any lane count — but waves near this size
/// amortize the classification pass without growing the gather buffers.
pub const BATCH_LANES: usize = 16;

/// Occupancy and fallback accounting for the batched filters. Plain
/// integers, one per worker, drained into the observability layer alongside
/// [`FilterStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Batched orient3d waves evaluated.
    pub orient_batches: u64,
    /// Total orient3d lanes across all waves.
    pub orient_lanes: u64,
    /// Orient3d lanes that failed the semi-static bound and fell back to the
    /// scalar staged cascade.
    pub orient_fallbacks: u64,
    /// Batched insphere waves evaluated.
    pub insphere_batches: u64,
    /// Total insphere lanes across all waves.
    pub insphere_lanes: u64,
    /// Insphere lanes that fell back to the scalar staged cascade.
    pub insphere_fallbacks: u64,
}

impl BatchStats {
    /// Add another accumulator into this one.
    pub fn merge(&mut self, o: &BatchStats) {
        self.orient_batches += o.orient_batches;
        self.orient_lanes += o.orient_lanes;
        self.orient_fallbacks += o.orient_fallbacks;
        self.insphere_batches += o.insphere_batches;
        self.insphere_lanes += o.insphere_lanes;
        self.insphere_fallbacks += o.insphere_fallbacks;
    }

    /// Drain: return the current counts and reset to zero.
    pub fn take(&mut self) -> BatchStats {
        std::mem::take(self)
    }

    /// Total lanes across both predicates.
    pub fn lanes_total(&self) -> u64 {
        self.orient_lanes + self.insphere_lanes
    }

    /// Total waves across both predicates.
    pub fn batches_total(&self) -> u64 {
        self.orient_batches + self.insphere_batches
    }

    /// Total scalar fallbacks across both predicates.
    pub fn fallbacks_total(&self) -> u64 {
        self.orient_fallbacks + self.insphere_fallbacks
    }

    /// Mean wave fill relative to [`BATCH_LANES`] (may exceed 1.0 when
    /// callers stage wider waves).
    pub fn occupancy(&self) -> f64 {
        let b = self.batches_total();
        if b == 0 {
            0.0
        } else {
            self.lanes_total() as f64 / (b * BATCH_LANES as u64) as f64
        }
    }

    /// Fraction of lanes that fell back to the scalar cascade.
    pub fn fallback_rate(&self) -> f64 {
        let l = self.lanes_total();
        if l == 0 {
            0.0
        } else {
            self.fallbacks_total() as f64 / l as f64
        }
    }
}

#[inline(always)]
fn lane_pt(xs: &[f64], ys: &[f64], zs: &[f64], i: usize) -> P3 {
    [xs[i], ys[i], zs[i]]
}

/// Pass 1 of [`orient3d_batch`]: every lane determinant, no branches.
#[inline(always)]
fn orient_pass1(xs: &[f64], ys: &[f64], zs: &[f64], pd: &P3, dets: &mut [f64]) {
    for (l, slot) in dets.iter_mut().enumerate() {
        let pa = lane_pt(xs, ys, zs, 3 * l);
        let pb = lane_pt(xs, ys, zs, 3 * l + 1);
        let pc = lane_pt(xs, ys, zs, 3 * l + 2);
        *slot = orient_det(&pa, &pb, &pc, pd);
    }
}

/// Pass 1 of [`insphere_sos_batch`]: every lane determinant, no branches.
#[inline(always)]
fn insphere_pass1(xs: &[f64], ys: &[f64], zs: &[f64], pe: &P3, dets: &mut [f64]) {
    for (l, slot) in dets.iter_mut().enumerate() {
        let pa = lane_pt(xs, ys, zs, 4 * l);
        let pb = lane_pt(xs, ys, zs, 4 * l + 1);
        let pc = lane_pt(xs, ys, zs, 4 * l + 2);
        let pd = lane_pt(xs, ys, zs, 4 * l + 3);
        *slot = insphere_det(&pa, &pb, &pc, &pd, pe);
    }
}

/// Pass 1 of [`orient3d_batch_gather`]: every lane determinant, no branches,
/// triangle corners read through the index table.
#[inline(always)]
fn orient_gather_pass1(pts: &[[f64; 3]], idx: &[[u32; 3]], pd: &P3, dets: &mut [f64]) {
    for (l, slot) in dets.iter_mut().enumerate() {
        let [a, b, c] = idx[l];
        *slot = orient_det(&pts[a as usize], &pts[b as usize], &pts[c as usize], pd);
    }
}

/// AVX2 variant of [`orient_gather_pass1`]; bit-identity argument as for
/// [`orient_pass1_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn orient_gather_pass1_avx2(pts: &[[f64; 3]], idx: &[[u32; 3]], pd: &P3, dets: &mut [f64]) {
    use core::arch::x86_64::*;
    let n = dets.len();
    let pdx = _mm256_set1_pd(pd[0]);
    let pdy = _mm256_set1_pd(pd[1]);
    let pdz = _mm256_set1_pd(pd[2]);
    let mut l = 0;
    while l + 4 <= n {
        let (i0, i1, i2, i3) = (idx[l], idx[l + 1], idx[l + 2], idx[l + 3]);
        let ld = |p: usize, c: usize| {
            _mm256_set_pd(
                pts[i3[p] as usize][c],
                pts[i2[p] as usize][c],
                pts[i1[p] as usize][c],
                pts[i0[p] as usize][c],
            )
        };
        let adx = _mm256_sub_pd(ld(0, 0), pdx);
        let bdx = _mm256_sub_pd(ld(1, 0), pdx);
        let cdx = _mm256_sub_pd(ld(2, 0), pdx);
        let ady = _mm256_sub_pd(ld(0, 1), pdy);
        let bdy = _mm256_sub_pd(ld(1, 1), pdy);
        let cdy = _mm256_sub_pd(ld(2, 1), pdy);
        let adz = _mm256_sub_pd(ld(0, 2), pdz);
        let bdz = _mm256_sub_pd(ld(1, 2), pdz);
        let cdz = _mm256_sub_pd(ld(2, 2), pdz);

        let bdxcdy = _mm256_mul_pd(bdx, cdy);
        let cdxbdy = _mm256_mul_pd(cdx, bdy);
        let cdxady = _mm256_mul_pd(cdx, ady);
        let adxcdy = _mm256_mul_pd(adx, cdy);
        let adxbdy = _mm256_mul_pd(adx, bdy);
        let bdxady = _mm256_mul_pd(bdx, ady);

        let det = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(adz, _mm256_sub_pd(bdxcdy, cdxbdy)),
                _mm256_mul_pd(bdz, _mm256_sub_pd(cdxady, adxcdy)),
            ),
            _mm256_mul_pd(cdz, _mm256_sub_pd(adxbdy, bdxady)),
        );
        _mm256_storeu_pd(dets.as_mut_ptr().add(l), det);
        l += 4;
    }
    orient_gather_pass1(pts, &idx[l..], pd, &mut dets[l..]);
}

/// Dispatch pass 1 of the gather-indexed orient batch.
#[inline]
fn run_orient_gather_pass1(pts: &[[f64; 3]], idx: &[[u32; 3]], pd: &P3, dets: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked on the line above.
        unsafe { orient_gather_pass1_avx2(pts, idx, pd, dets) };
        return;
    }
    orient_gather_pass1(pts, idx, pd, dets)
}

/// AVX2 variant of [`orient_pass1`], selected at runtime: four lanes per
/// 256-bit vector, each intrinsic mirroring one line of [`orient_det`] —
/// the same IEEE f64 operation tree evaluated per lane, no FMA contraction,
/// no reassociation — so every determinant is bitwise what the scalar loop
/// produces. The leftover lanes (< 4) run the scalar loop itself.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn orient_pass1_avx2(xs: &[f64], ys: &[f64], zs: &[f64], pd: &P3, dets: &mut [f64]) {
    use core::arch::x86_64::*;
    let n = dets.len();
    let pdx = _mm256_set1_pd(pd[0]);
    let pdy = _mm256_set1_pd(pd[1]);
    let pdz = _mm256_set1_pd(pd[2]);
    let mut l = 0;
    while l + 4 <= n {
        // role-major gather: operand k of lanes l..l+4 (set_pd takes the
        // highest lane first)
        let (i0, i1, i2, i3) = (3 * l, 3 * (l + 1), 3 * (l + 2), 3 * (l + 3));
        let ld = |s: &[f64], o: usize| _mm256_set_pd(s[i3 + o], s[i2 + o], s[i1 + o], s[i0 + o]);
        let adx = _mm256_sub_pd(ld(xs, 0), pdx);
        let bdx = _mm256_sub_pd(ld(xs, 1), pdx);
        let cdx = _mm256_sub_pd(ld(xs, 2), pdx);
        let ady = _mm256_sub_pd(ld(ys, 0), pdy);
        let bdy = _mm256_sub_pd(ld(ys, 1), pdy);
        let cdy = _mm256_sub_pd(ld(ys, 2), pdy);
        let adz = _mm256_sub_pd(ld(zs, 0), pdz);
        let bdz = _mm256_sub_pd(ld(zs, 1), pdz);
        let cdz = _mm256_sub_pd(ld(zs, 2), pdz);

        let bdxcdy = _mm256_mul_pd(bdx, cdy);
        let cdxbdy = _mm256_mul_pd(cdx, bdy);
        let cdxady = _mm256_mul_pd(cdx, ady);
        let adxcdy = _mm256_mul_pd(adx, cdy);
        let adxbdy = _mm256_mul_pd(adx, bdy);
        let bdxady = _mm256_mul_pd(bdx, ady);

        // adz*(bdxcdy-cdxbdy) + bdz*(cdxady-adxcdy) + cdz*(adxbdy-bdxady),
        // left-associated exactly like the scalar expression
        let det = _mm256_add_pd(
            _mm256_add_pd(
                _mm256_mul_pd(adz, _mm256_sub_pd(bdxcdy, cdxbdy)),
                _mm256_mul_pd(bdz, _mm256_sub_pd(cdxady, adxcdy)),
            ),
            _mm256_mul_pd(cdz, _mm256_sub_pd(adxbdy, bdxady)),
        );
        _mm256_storeu_pd(dets.as_mut_ptr().add(l), det);
        l += 4;
    }
    orient_pass1(&xs[3 * l..], &ys[3 * l..], &zs[3 * l..], pd, &mut dets[l..]);
}

/// AVX2 variant of [`insphere_pass1`]; bit-identity argument as for
/// [`orient_pass1_avx2`] — every intrinsic mirrors one [`insphere_det`] line.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn insphere_pass1_avx2(xs: &[f64], ys: &[f64], zs: &[f64], pe: &P3, dets: &mut [f64]) {
    use core::arch::x86_64::*;
    let n = dets.len();
    let pex = _mm256_set1_pd(pe[0]);
    let pey = _mm256_set1_pd(pe[1]);
    let pez = _mm256_set1_pd(pe[2]);
    let mut l = 0;
    while l + 4 <= n {
        let (i0, i1, i2, i3) = (4 * l, 4 * (l + 1), 4 * (l + 2), 4 * (l + 3));
        let ld = |s: &[f64], o: usize| _mm256_set_pd(s[i3 + o], s[i2 + o], s[i1 + o], s[i0 + o]);
        let aex = _mm256_sub_pd(ld(xs, 0), pex);
        let bex = _mm256_sub_pd(ld(xs, 1), pex);
        let cex = _mm256_sub_pd(ld(xs, 2), pex);
        let dex = _mm256_sub_pd(ld(xs, 3), pex);
        let aey = _mm256_sub_pd(ld(ys, 0), pey);
        let bey = _mm256_sub_pd(ld(ys, 1), pey);
        let cey = _mm256_sub_pd(ld(ys, 2), pey);
        let dey = _mm256_sub_pd(ld(ys, 3), pey);
        let aez = _mm256_sub_pd(ld(zs, 0), pez);
        let bez = _mm256_sub_pd(ld(zs, 1), pez);
        let cez = _mm256_sub_pd(ld(zs, 2), pez);
        let dez = _mm256_sub_pd(ld(zs, 3), pez);

        let sub = |p: __m256d, q: __m256d, r: __m256d, t: __m256d| {
            _mm256_sub_pd(_mm256_mul_pd(p, q), _mm256_mul_pd(r, t))
        };
        let ab = sub(aex, bey, bex, aey);
        let bc = sub(bex, cey, cex, bey);
        let cd = sub(cex, dey, dex, cey);
        let da = sub(dex, aey, aex, dey);
        let ac = sub(aex, cey, cex, aey);
        let bd = sub(bex, dey, dex, bey);

        // abc = aez*bc - bez*ac + cez*ab  (left-associated)
        let abc = _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(aez, bc), _mm256_mul_pd(bez, ac)),
            _mm256_mul_pd(cez, ab),
        );
        let bcd = _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(bez, cd), _mm256_mul_pd(cez, bd)),
            _mm256_mul_pd(dez, bc),
        );
        // cda = cez*da + dez*ac + aez*cd
        let cda = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(cez, da), _mm256_mul_pd(dez, ac)),
            _mm256_mul_pd(aez, cd),
        );
        let dab = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(dez, ab), _mm256_mul_pd(aez, bd)),
            _mm256_mul_pd(bez, da),
        );

        let lift = |x: __m256d, y: __m256d, z: __m256d| {
            _mm256_add_pd(
                _mm256_add_pd(_mm256_mul_pd(x, x), _mm256_mul_pd(y, y)),
                _mm256_mul_pd(z, z),
            )
        };
        let alift = lift(aex, aey, aez);
        let blift = lift(bex, bey, bez);
        let clift = lift(cex, cey, cez);
        let dlift = lift(dex, dey, dez);

        // (dlift*abc - clift*dab) + (blift*cda - alift*bcd)
        let det = _mm256_add_pd(
            _mm256_sub_pd(_mm256_mul_pd(dlift, abc), _mm256_mul_pd(clift, dab)),
            _mm256_sub_pd(_mm256_mul_pd(blift, cda), _mm256_mul_pd(alift, bcd)),
        );
        _mm256_storeu_pd(dets.as_mut_ptr().add(l), det);
        l += 4;
    }
    insphere_pass1(&xs[4 * l..], &ys[4 * l..], &zs[4 * l..], pe, &mut dets[l..]);
}

/// Dispatch pass 1 of the orient batch to the widest available unit.
#[inline]
fn run_orient_pass1(xs: &[f64], ys: &[f64], zs: &[f64], pd: &P3, dets: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked on the line above.
        unsafe { orient_pass1_avx2(xs, ys, zs, pd, dets) };
        return;
    }
    orient_pass1(xs, ys, zs, pd, dets)
}

/// Dispatch pass 1 of the insphere batch to the widest available unit.
#[inline]
fn run_insphere_pass1(xs: &[f64], ys: &[f64], zs: &[f64], pe: &P3, dets: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: feature presence checked on the line above.
        unsafe { insphere_pass1_avx2(xs, ys, zs, pe, dets) };
        return;
    }
    insphere_pass1(xs, ys, zs, pe, dets)
}

/// One 4-lane AVX2 block of [`orient_det`] over the faces of a tetrahedron;
/// bit-identity argument as for [`orient_pass1_avx2`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn orient_batch4_avx2(tris: &[[P3; 3]; 4], pd: &P3, dets: &mut [f64; 4]) {
    use core::arch::x86_64::*;
    let pdx = _mm256_set1_pd(pd[0]);
    let pdy = _mm256_set1_pd(pd[1]);
    let pdz = _mm256_set1_pd(pd[2]);
    let ld = |p: usize, c: usize| {
        _mm256_set_pd(tris[3][p][c], tris[2][p][c], tris[1][p][c], tris[0][p][c])
    };
    let adx = _mm256_sub_pd(ld(0, 0), pdx);
    let bdx = _mm256_sub_pd(ld(1, 0), pdx);
    let cdx = _mm256_sub_pd(ld(2, 0), pdx);
    let ady = _mm256_sub_pd(ld(0, 1), pdy);
    let bdy = _mm256_sub_pd(ld(1, 1), pdy);
    let cdy = _mm256_sub_pd(ld(2, 1), pdy);
    let adz = _mm256_sub_pd(ld(0, 2), pdz);
    let bdz = _mm256_sub_pd(ld(1, 2), pdz);
    let cdz = _mm256_sub_pd(ld(2, 2), pdz);

    let bdxcdy = _mm256_mul_pd(bdx, cdy);
    let cdxbdy = _mm256_mul_pd(cdx, bdy);
    let cdxady = _mm256_mul_pd(cdx, ady);
    let adxcdy = _mm256_mul_pd(adx, cdy);
    let adxbdy = _mm256_mul_pd(adx, bdy);
    let bdxady = _mm256_mul_pd(bdx, ady);

    let det = _mm256_add_pd(
        _mm256_add_pd(
            _mm256_mul_pd(adz, _mm256_sub_pd(bdxcdy, cdxbdy)),
            _mm256_mul_pd(bdz, _mm256_sub_pd(cdxady, adxcdy)),
        ),
        _mm256_mul_pd(cdz, _mm256_sub_pd(adxbdy, bdxady)),
    );
    _mm256_storeu_pd(dets.as_mut_ptr(), det);
}

/// Stage-1 orient3d determinant for one lane — the exact operation sequence
/// of [`orient3d_staged`]'s determinant, kept in one `#[inline]` function so
/// the batched and (hypothetical) scalar evaluations cannot drift apart.
#[inline(always)]
fn orient_det(pa: &P3, pb: &P3, pc: &P3, pd: &P3) -> f64 {
    let adx = pa[0] - pd[0];
    let bdx = pb[0] - pd[0];
    let cdx = pc[0] - pd[0];
    let ady = pa[1] - pd[1];
    let bdy = pb[1] - pd[1];
    let cdy = pc[1] - pd[1];
    let adz = pa[2] - pd[2];
    let bdz = pb[2] - pd[2];
    let cdz = pc[2] - pd[2];

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;

    adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) + cdz * (adxbdy - bdxady)
}

/// Stage-1 insphere determinant for one lane — the exact operation sequence
/// of [`insphere_staged`]'s determinant.
#[inline(always)]
fn insphere_det(pa: &P3, pb: &P3, pc: &P3, pd: &P3, pe: &P3) -> f64 {
    let aex = pa[0] - pe[0];
    let bex = pb[0] - pe[0];
    let cex = pc[0] - pe[0];
    let dex = pd[0] - pe[0];
    let aey = pa[1] - pe[1];
    let bey = pb[1] - pe[1];
    let cey = pc[1] - pe[1];
    let dey = pd[1] - pe[1];
    let aez = pa[2] - pe[2];
    let bez = pb[2] - pe[2];
    let cez = pc[2] - pe[2];
    let dez = pd[2] - pe[2];

    let ab = aex * bey - bex * aey;
    let bc = bex * cey - cex * bey;
    let cd = cex * dey - dex * cey;
    let da = dex * aey - aex * dey;
    let ac = aex * cey - cex * aey;
    let bd = bex * dey - dex * bey;

    let abc = aez * bc - bez * ac + cez * ab;
    let bcd = bez * cd - cez * bd + dez * bc;
    let cda = cez * da + dez * ac + aez * cd;
    let dab = dez * ab + aez * bd + bez * da;

    let alift = aex * aex + aey * aey + aez * aez;
    let blift = bex * bex + bey * bey + bez * bez;
    let clift = cex * cex + cey * cey + cez * cez;
    let dlift = dex * dex + dey * dey + dez * dez;

    (dlift * abc - clift * dab) + (blift * cda - alift * bcd)
}

/// Batched staged orient3d over `n` lanes against a shared query point `pd`.
///
/// Lane `l` is the triangle `(a_l, b_l, c_l)` read from the SoA arrays at
/// stride 3: point `j` of lane `l` lives at index `3*l + j` of `xs`/`ys`/
/// `zs`. One determinant per lane is appended to `dets` (which is cleared
/// first); each is bitwise what [`orient3d_staged`] returns for that lane.
#[allow(clippy::too_many_arguments)]
pub fn orient3d_batch(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    bt: &mut BatchStats,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    pd: &P3,
    dets: &mut Vec<f64>,
) {
    let n = xs.len() / 3;
    debug_assert_eq!(xs.len(), n * 3);
    debug_assert!(ys.len() >= n * 3 && zs.len() >= n * 3);
    dets.clear();
    if n == 0 {
        return;
    }
    bt.orient_batches += 1;
    bt.orient_lanes += n as u64;
    // Pass 1 — branch-free: every lane determinant, nothing else.
    dets.resize(n, 0.0);
    run_orient_pass1(xs, ys, zs, pd, dets);
    // Pass 2 — classify: certified lanes keep their stage-1 determinant,
    // the rest re-enter the scalar cascade (stage 1 fails there identically,
    // so the counters tally exactly as an all-scalar run would).
    for (l, d) in dets.iter_mut().enumerate() {
        if *d > b.orient || -*d > b.orient {
            st.orient_semi_static += 1;
        } else {
            bt.orient_fallbacks += 1;
            let pa = lane_pt(xs, ys, zs, 3 * l);
            let pb = lane_pt(xs, ys, zs, 3 * l + 1);
            let pc = lane_pt(xs, ys, zs, 3 * l + 2);
            *d = orient3d_staged(b, st, &pa, &pb, &pc, pd);
        }
    }
}

/// Gather-indexed variant of [`orient3d_batch`]: lane `l` is the triangle
/// `(pts[idx[l][0]], pts[idx[l][1]], pts[idx[l][2]])` tested against `pd`.
/// A caller that already holds its points in an indexable snapshot stages
/// only three `u32` indices per lane instead of nine coordinates; the
/// determinants (and the [`FilterStats`] bookkeeping) are exactly those of
/// [`orient3d_batch`] over the dereferenced coordinates.
#[allow(clippy::too_many_arguments)]
pub fn orient3d_batch_gather(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    bt: &mut BatchStats,
    pts: &[[f64; 3]],
    idx: &[[u32; 3]],
    pd: &P3,
    dets: &mut Vec<f64>,
) {
    let n = idx.len();
    dets.clear();
    if n == 0 {
        return;
    }
    bt.orient_batches += 1;
    bt.orient_lanes += n as u64;
    dets.resize(n, 0.0);
    run_orient_gather_pass1(pts, idx, pd, dets);
    for l in 0..n {
        let det = dets[l];
        if det > b.orient || -det > b.orient {
            st.orient_semi_static += 1;
        } else {
            bt.orient_fallbacks += 1;
            let [a, bb, c] = idx[l];
            dets[l] = orient3d_staged(
                b,
                st,
                &pts[a as usize],
                &pts[bb as usize],
                &pts[c as usize],
                pd,
            );
        }
    }
}

/// Fixed 4-lane variant of [`orient3d_batch`] with no heap buffers: the four
/// faces of one tetrahedron tested against a shared query point, as in the
/// point-location containment check. Lane `l` is the triangle
/// `(tris[l][0], tris[l][1], tris[l][2])`; each entry of `dets` ends up
/// bitwise what [`orient3d_staged`] returns for that lane.
pub fn orient3d_batch4(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    bt: &mut BatchStats,
    tris: &[[P3; 3]; 4],
    pd: &P3,
    dets: &mut [f64; 4],
) {
    bt.orient_batches += 1;
    bt.orient_lanes += 4;
    #[cfg(target_arch = "x86_64")]
    let wide = std::arch::is_x86_feature_detected!("avx2");
    #[cfg(not(target_arch = "x86_64"))]
    let wide = false;
    if wide {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: feature presence checked on the line above.
        unsafe {
            orient_batch4_avx2(tris, pd, dets)
        };
    } else {
        for l in 0..4 {
            dets[l] = orient_det(&tris[l][0], &tris[l][1], &tris[l][2], pd);
        }
    }
    for l in 0..4 {
        let det = dets[l];
        if det > b.orient || -det > b.orient {
            st.orient_semi_static += 1;
        } else {
            bt.orient_fallbacks += 1;
            dets[l] = orient3d_staged(b, st, &tris[l][0], &tris[l][1], &tris[l][2], pd);
        }
    }
}

/// Batched staged + symbolically perturbed insphere over `n` lanes against a
/// shared query point `pe`.
///
/// Lane `l` is the tetrahedron `(a_l, b_l, c_l, d_l)` read from the SoA
/// arrays at stride 4, with SoS keys `keys[l]` (the fifth key belongs to
/// `pe`). One sign per lane is appended to `signs` (cleared first), each
/// identical to what [`insphere_sos_staged`] returns for that lane: a lane
/// certified by the semi-static bound has `det != 0`, so its sign is the
/// determinant's sign and the SoS cascade is provably not consulted.
#[allow(clippy::too_many_arguments)]
pub fn insphere_sos_batch(
    b: &SemiStaticBounds,
    st: &mut FilterStats,
    bt: &mut BatchStats,
    xs: &[f64],
    ys: &[f64],
    zs: &[f64],
    pe: &P3,
    keys: &[[u64; 5]],
    signs: &mut Vec<i8>,
) {
    let n = keys.len();
    debug_assert!(xs.len() >= n * 4 && ys.len() >= n * 4 && zs.len() >= n * 4);
    signs.clear();
    if n == 0 {
        return;
    }
    bt.insphere_batches += 1;
    bt.insphere_lanes += n as u64;
    // Pass 1 — branch-free lane determinants.
    let mut dets = [0.0f64; BATCH_LANES];
    let mut det_spill;
    let det_buf: &mut [f64] = if n <= BATCH_LANES {
        &mut dets[..n]
    } else {
        det_spill = vec![0.0f64; n];
        &mut det_spill
    };
    run_insphere_pass1(xs, ys, zs, pe, det_buf);
    // Pass 2 — classify.
    signs.reserve(n);
    for (l, &det) in det_buf.iter().enumerate() {
        if det > b.insphere || -det > b.insphere {
            st.insphere_semi_static += 1;
            signs.push(if det > 0.0 { 1 } else { -1 });
        } else {
            bt.insphere_fallbacks += 1;
            let pa = lane_pt(xs, ys, zs, 4 * l);
            let pb = lane_pt(xs, ys, zs, 4 * l + 1);
            let pc = lane_pt(xs, ys, zs, 4 * l + 2);
            let pd = lane_pt(xs, ys, zs, 4 * l + 3);
            signs.push(insphere_sos_staged(b, st, &pa, &pb, &pc, &pd, pe, keys[l]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::staged::{insphere_sos_staged, orient3d_staged};

    fn rng(seed: u64) -> impl FnMut() -> f64 {
        let mut s = seed;
        move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    fn unit_bounds() -> SemiStaticBounds {
        SemiStaticBounds::for_box(&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0])
    }

    #[test]
    fn orient_batch_is_bitwise_scalar() {
        let b = unit_bounds();
        let mut next = rng(7);
        for wave in 0..64usize {
            let n = wave % (2 * BATCH_LANES + 1);
            let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
            for _ in 0..3 * n {
                xs.push(next());
                ys.push(next());
                zs.push(next());
            }
            let pd = [next(), next(), next()];
            let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
            let mut bt = BatchStats::default();
            let mut dets = Vec::new();
            orient3d_batch(&b, &mut st_b, &mut bt, &xs, &ys, &zs, &pd, &mut dets);
            assert_eq!(dets.len(), n);
            for l in 0..n {
                let pa = [xs[3 * l], ys[3 * l], zs[3 * l]];
                let pb = [xs[3 * l + 1], ys[3 * l + 1], zs[3 * l + 1]];
                let pc = [xs[3 * l + 2], ys[3 * l + 2], zs[3 * l + 2]];
                let scalar = orient3d_staged(&b, &mut st_s, &pa, &pb, &pc, &pd);
                assert_eq!(dets[l].to_bits(), scalar.to_bits(), "lane {l}");
            }
            assert_eq!(st_b, st_s, "filter counters must be mode-independent");
        }
    }

    #[test]
    fn insphere_batch_matches_scalar_sos() {
        let b = unit_bounds();
        let mut next = rng(99);
        for wave in 0..64usize {
            let n = wave % (BATCH_LANES + 3);
            let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
            let mut keys = Vec::new();
            for l in 0..n {
                for _ in 0..4 {
                    xs.push(next());
                    ys.push(next());
                    zs.push(next());
                }
                keys.push([l as u64, 100 + l as u64, 200, 300, u64::MAX]);
            }
            let pe = [next(), next(), next()];
            let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
            let mut bt = BatchStats::default();
            let mut signs = Vec::new();
            insphere_sos_batch(
                &b, &mut st_b, &mut bt, &xs, &ys, &zs, &pe, &keys, &mut signs,
            );
            assert_eq!(signs.len(), n);
            for l in 0..n {
                let pa = [xs[4 * l], ys[4 * l], zs[4 * l]];
                let pb = [xs[4 * l + 1], ys[4 * l + 1], zs[4 * l + 1]];
                let pc = [xs[4 * l + 2], ys[4 * l + 2], zs[4 * l + 2]];
                let pd = [xs[4 * l + 3], ys[4 * l + 3], zs[4 * l + 3]];
                let scalar = insphere_sos_staged(&b, &mut st_s, &pa, &pb, &pc, &pd, &pe, keys[l]);
                assert_eq!(signs[l], scalar, "lane {l}");
            }
            assert_eq!(st_b, st_s, "filter counters must be mode-independent");
        }
    }

    #[test]
    fn orient_gather_is_bitwise_scalar() {
        let b = unit_bounds();
        let mut next = rng(23);
        for wave in 0..64usize {
            let n = wave % (2 * BATCH_LANES + 1);
            // a shared point table with more entries than lanes, indexed
            // out of order to exercise the gather
            let pts: Vec<[f64; 3]> = (0..3 * n + 5).map(|_| [next(), next(), next()]).collect();
            let idx: Vec<[u32; 3]> = (0..n)
                .map(|l| {
                    let m = pts.len() as u32;
                    [
                        (7 * l as u32 + 1) % m,
                        (3 * l as u32 + 2) % m,
                        (5 * l as u32) % m,
                    ]
                })
                .collect();
            let pd = [next(), next(), next()];
            let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
            let mut bt = BatchStats::default();
            let mut dets = Vec::new();
            orient3d_batch_gather(&b, &mut st_b, &mut bt, &pts, &idx, &pd, &mut dets);
            assert_eq!(dets.len(), n);
            for l in 0..n {
                let [i, j, k] = idx[l];
                let scalar = orient3d_staged(
                    &b,
                    &mut st_s,
                    &pts[i as usize],
                    &pts[j as usize],
                    &pts[k as usize],
                    &pd,
                );
                assert_eq!(dets[l].to_bits(), scalar.to_bits(), "lane {l}");
            }
            assert_eq!(st_b, st_s, "filter counters must be mode-independent");
        }
    }

    #[test]
    fn orient_batch4_is_bitwise_scalar() {
        let b = unit_bounds();
        let mut next = rng(41);
        for _ in 0..64 {
            let mut tris = [[[0.0f64; 3]; 3]; 4];
            for tri in tris.iter_mut() {
                for p in tri.iter_mut() {
                    *p = [next(), next(), next()];
                }
            }
            let pd = [next(), next(), next()];
            let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
            let mut bt = BatchStats::default();
            let mut dets = [0.0f64; 4];
            orient3d_batch4(&b, &mut st_b, &mut bt, &tris, &pd, &mut dets);
            for l in 0..4 {
                let scalar =
                    orient3d_staged(&b, &mut st_s, &tris[l][0], &tris[l][1], &tris[l][2], &pd);
                assert_eq!(dets[l].to_bits(), scalar.to_bits(), "lane {l}");
            }
            assert_eq!(st_b, st_s);
            assert_eq!(bt.orient_lanes, 4);
        }
    }

    #[test]
    fn none_bounds_force_full_fallback() {
        let b = SemiStaticBounds::none();
        let mut st = FilterStats::default();
        let mut bt = BatchStats::default();
        let xs = [0.0, 1.0, 0.0, 0.1, 0.9, 0.2];
        let ys = [0.0, 0.0, 1.0, 0.1, 0.1, 0.8];
        let zs = [0.0, 0.0, 0.0, 0.3, 0.3, 0.3];
        let mut dets = Vec::new();
        orient3d_batch(
            &b,
            &mut st,
            &mut bt,
            &xs,
            &ys,
            &zs,
            &[0.2, 0.2, -1.0],
            &mut dets,
        );
        assert_eq!(bt.orient_lanes, 2);
        assert_eq!(bt.orient_fallbacks, 2);
        assert_eq!(st.orient_semi_static, 0);
        assert_eq!(st.orient_total(), 2);
        assert!((bt.fallback_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_take_and_occupancy() {
        let mut a = BatchStats {
            orient_batches: 2,
            orient_lanes: 12,
            orient_fallbacks: 1,
            ..Default::default()
        };
        let b = BatchStats {
            insphere_batches: 1,
            insphere_lanes: 4,
            insphere_fallbacks: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.batches_total(), 3);
        assert_eq!(a.lanes_total(), 16);
        assert_eq!(a.fallbacks_total(), 3);
        let expect = 16.0 / (3.0 * BATCH_LANES as f64);
        assert!((a.occupancy() - expect).abs() < 1e-12);
        let t = a.take();
        assert_eq!(t.lanes_total(), 16);
        assert_eq!(a, BatchStats::default());
        assert_eq!(a.occupancy(), 0.0);
        assert_eq!(a.fallback_rate(), 0.0);
    }

    #[test]
    fn empty_waves_are_free() {
        let b = unit_bounds();
        let (mut st, mut bt) = (FilterStats::default(), BatchStats::default());
        let mut dets = vec![1.0];
        orient3d_batch(&b, &mut st, &mut bt, &[], &[], &[], &[0.0; 3], &mut dets);
        assert!(dets.is_empty());
        let mut signs = vec![1i8];
        insphere_sos_batch(
            &b,
            &mut st,
            &mut bt,
            &[],
            &[],
            &[],
            &[0.0; 3],
            &[],
            &mut signs,
        );
        assert!(signs.is_empty());
        assert_eq!(bt, BatchStats::default());
        assert_eq!(st, FilterStats::default());
    }
}
