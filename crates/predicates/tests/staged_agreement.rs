//! Adversarial agreement suite for the staged predicate pipeline.
//!
//! Over 100k seeded cases drawn from the distributions most likely to break
//! a filtered predicate — coplanar/cospherical lattice configurations, 1-ulp
//! perturbations of degenerate inputs, and large-coordinate translates — the
//! staged pipeline must agree with the exact predicates on every single
//! case. Agreement on degenerate inputs is exactly the "semi-static never
//! misclassifies, it only defers" guarantee: a misclassification would
//! surface here as a nonzero certified sign on a true zero (or a wrong
//! sign), while a defer lands in the dynamic-filter or exact stage and stays
//! correct by construction.
//!
//! Each family asserts, alongside per-case agreement, that its stage
//! counters tally to the number of calls (every call lands in exactly one
//! stage) and that the stages expected to fire did fire.

// The generators build points coordinate-by-coordinate from affine algebra
// over `k = 0..3`; spelling that as iterators obscures the math.
#![allow(clippy::needless_range_loop)]

use pi2m_predicates::{
    insphere_sign, insphere_sign_staged, insphere_sos, insphere_sos_batch, insphere_sos_staged,
    orient3d_batch, orient3d_sign, orient3d_sign_staged, orient3d_staged, BatchStats, FilterStats,
    SemiStaticBounds, BATCH_LANES,
};

const N_COPLANAR_ORIENT: usize = 30_000;
const N_ULP_ORIENT: usize = 20_000;
const N_TRANSLATED_ORIENT: usize = 10_000;
const N_COSPHERICAL_INSPHERE: usize = 25_000;
const N_ULP_INSPHERE: usize = 15_000;
const N_TRANSLATED_INSPHERE: usize = 10_000;
const N_SOS: usize = 5_000;
/// Batched-filter waves (each [`BATCH_LANES`] wide) per batched family.
const N_BATCH_ORIENT_WAVES: usize = 2_500;
const N_BATCH_INSPHERE_WAVES: usize = 2_500;

#[test]
fn suite_covers_at_least_100k_cases() {
    let total = N_COPLANAR_ORIENT
        + N_ULP_ORIENT
        + N_TRANSLATED_ORIENT
        + N_COSPHERICAL_INSPHERE
        + N_ULP_INSPHERE
        + N_TRANSLATED_INSPHERE
        + N_SOS;
    assert!(total >= 100_000, "suite shrank below 100k cases: {total}");
    // the batched families re-run the same adversarial distributions through
    // the wide-lane filters: per predicate, a degenerate and a
    // ulp/translated distribution, each N waves of BATCH_LANES lanes
    let batched = (N_BATCH_ORIENT_WAVES + N_BATCH_INSPHERE_WAVES) * 2 * BATCH_LANES;
    assert!(batched >= 40_000, "batched coverage shrank: {batched}");
}

/// Deterministic xorshift stream (the suite must be reproducible; a seed is
/// printed on failure by the per-family asserts).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.below((hi - lo + 1) as u64) as i64)
    }

    fn f01(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Semi-static bounds from the exact bounding box of a batch of points —
/// precisely what the kernel precomputes from its mesh box.
fn bounds_for(pts: &[[f64; 3]]) -> SemiStaticBounds {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in pts {
        for a in 0..3 {
            lo[a] = lo[a].min(p[a]);
            hi[a] = hi[a].max(p[a]);
        }
    }
    SemiStaticBounds::for_box(&lo, &hi)
}

/// Nudge `x` by up to ±2 ulps (identity near zero, where bit arithmetic
/// would jump across the sign boundary).
fn ulp_nudge(x: f64, r: &mut Rng) -> f64 {
    if x.abs() < 1e-300 {
        return x;
    }
    let steps = (r.below(5) as i64) - 2;
    f64::from_bits((x.to_bits() as i64 + steps) as u64)
}

#[test]
fn coplanar_lattice_orient_agrees_with_exact() {
    let mut r = Rng(0x5eed_0001);
    let mut st = FilterStats::default();
    let mut zeros = 0usize;
    for case in 0..N_COPLANAR_ORIENT {
        let mut p = [[0.0f64; 3]; 4];
        let a: Vec<i64> = (0..9).map(|_| r.int(-1000, 1000)).collect();
        for k in 0..3 {
            p[0][k] = a[k] as f64;
            p[1][k] = a[3 + k] as f64;
            p[2][k] = a[6 + k] as f64;
        }
        // d = a + s(b-a) + t(c-a) with integer s,t: exactly coplanar, and
        // every coordinate stays an exact small integer in f64
        let (s, t) = (r.int(-3, 3), r.int(-3, 3));
        for k in 0..3 {
            p[3][k] = p[0][k] + s as f64 * (p[1][k] - p[0][k]) + t as f64 * (p[2][k] - p[0][k]);
        }
        if case % 2 == 1 {
            // lattice-step perturbation: a barely-off-plane configuration
            let k = r.below(3) as usize;
            p[3][k] += r.int(-1, 1) as f64;
        }
        let b = bounds_for(&p);
        let staged = orient3d_sign_staged(&b, &mut st, &p[0], &p[1], &p[2], &p[3]);
        let exact = orient3d_sign(&p[0], &p[1], &p[2], &p[3]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
        if exact == 0 {
            zeros += 1;
        }
    }
    assert_eq!(st.orient_total(), N_COPLANAR_ORIENT as u64);
    assert!(zeros > N_COPLANAR_ORIENT / 4, "generator lost degeneracy");
    // true zeros can never be certified by a magnitude filter: they must all
    // have deferred to the exact stage
    assert!(st.orient_exact >= zeros as u64);
}

#[test]
fn ulp_perturbed_orient_agrees_with_exact() {
    let mut r = Rng(0x5eed_0002);
    let mut st = FilterStats::default();
    for case in 0..N_ULP_ORIENT {
        let mut p = [[0.0f64; 3]; 4];
        for i in 0..3 {
            for k in 0..3 {
                p[i][k] = r.f01();
            }
        }
        // near-coplanar d (rounded affine combination), then ulp noise on
        // every coordinate of every point
        let (s, t) = (
            (r.below(17) as f64 - 8.0) / 8.0,
            (r.below(17) as f64 - 8.0) / 8.0,
        );
        for k in 0..3 {
            p[3][k] = p[0][k] + s * (p[1][k] - p[0][k]) + t * (p[2][k] - p[0][k]);
        }
        for pt in &mut p {
            for k in 0..3 {
                pt[k] = ulp_nudge(pt[k], &mut r);
            }
        }
        let b = bounds_for(&p);
        let staged = orient3d_sign_staged(&b, &mut st, &p[0], &p[1], &p[2], &p[3]);
        let exact = orient3d_sign(&p[0], &p[1], &p[2], &p[3]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
    }
    assert_eq!(st.orient_total(), N_ULP_ORIENT as u64);
    // ulp-scale determinants sit far below any magnitude bound: the
    // lower stages must have deferred many of these
    assert!(st.orient_exact + st.orient_filtered > 0);
}

#[test]
fn translated_orient_agrees_with_exact() {
    let mut r = Rng(0x5eed_0003);
    let mut st = FilterStats::default();
    for case in 0..N_TRANSLATED_ORIENT {
        let shift = [
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
        ];
        let mut p = [[0.0f64; 3]; 4];
        for i in 0..4 {
            for k in 0..3 {
                p[i][k] = r.f01() + shift[k];
            }
        }
        if case % 2 == 1 {
            // collapse d onto the a-b-c plane in the translated frame
            let (s, t) = (
                (r.below(17) as f64 - 8.0) / 8.0,
                (r.below(17) as f64 - 8.0) / 8.0,
            );
            for k in 0..3 {
                p[3][k] = p[0][k] + s * (p[1][k] - p[0][k]) + t * (p[2][k] - p[0][k]);
            }
        }
        let b = bounds_for(&p);
        let staged = orient3d_sign_staged(&b, &mut st, &p[0], &p[1], &p[2], &p[3]);
        let exact = orient3d_sign(&p[0], &p[1], &p[2], &p[3]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
    }
    assert_eq!(st.orient_total(), N_TRANSLATED_ORIENT as u64);
}

/// The 48-point sign/permutation orbit of (a,b,c): every point has the same
/// distance from the origin, so any 5 of them are exactly cospherical.
fn orbit(a: i64, b: i64, c: i64) -> Vec<[f64; 3]> {
    let perms = [
        [a, b, c],
        [a, c, b],
        [b, a, c],
        [b, c, a],
        [c, a, b],
        [c, b, a],
    ];
    let mut out = Vec::with_capacity(48);
    for perm in perms {
        for signs in 0..8u32 {
            let mut q = [0.0f64; 3];
            for k in 0..3 {
                let s = if signs >> k & 1 == 1 { -1 } else { 1 };
                q[k] = (s * perm[k]) as f64;
            }
            out.push(q);
        }
    }
    out
}

#[test]
fn cospherical_orbit_insphere_agrees_with_exact() {
    let mut r = Rng(0x5eed_0004);
    let mut st = FilterStats::default();
    let mut zeros = 0usize;
    for case in 0..N_COSPHERICAL_INSPHERE {
        // distinct nonzero magnitudes => all 48 orbit points are distinct
        let a = r.int(1, 30);
        let b = a + r.int(1, 30);
        let c = b + r.int(1, 30);
        let orb = orbit(a, b, c);
        let mut p = [[0.0f64; 3]; 5];
        let mut used = [usize::MAX; 5];
        for (i, slot) in p.iter_mut().enumerate() {
            let mut j = r.below(48) as usize;
            while used.contains(&j) {
                j = r.below(48) as usize;
            }
            used[i] = j;
            *slot = orb[j];
        }
        // decenter: exact integer translate keeps cosphericity exact
        let off = [
            r.int(-100, 100) as f64,
            r.int(-100, 100) as f64,
            r.int(-100, 100) as f64,
        ];
        for pt in &mut p {
            for k in 0..3 {
                pt[k] += off[k];
            }
        }
        if case % 2 == 1 {
            let (i, k) = (r.below(5) as usize, r.below(3) as usize);
            p[i][k] += r.int(-1, 1) as f64;
        }
        let bb = bounds_for(&p);
        let staged = insphere_sign_staged(&bb, &mut st, &p[0], &p[1], &p[2], &p[3], &p[4]);
        let exact = insphere_sign(&p[0], &p[1], &p[2], &p[3], &p[4]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
        if exact == 0 {
            zeros += 1;
        }
    }
    assert_eq!(st.insphere_total(), N_COSPHERICAL_INSPHERE as u64);
    assert!(
        zeros > N_COSPHERICAL_INSPHERE / 4,
        "generator lost degeneracy"
    );
    assert!(st.insphere_exact >= zeros as u64);
}

#[test]
fn ulp_perturbed_insphere_agrees_with_exact() {
    let mut r = Rng(0x5eed_0005);
    let mut st = FilterStats::default();
    for case in 0..N_ULP_INSPHERE {
        // 5 points on (approximately) a common sphere, computed in floats —
        // the rounding already makes them adversarially near-cospherical —
        // then ulp noise on top
        let center = [r.f01(), r.f01(), r.f01()];
        let radius = 0.25 + 0.5 * r.f01();
        let mut p = [[0.0f64; 3]; 5];
        for pt in &mut p {
            let (u, v) = (r.f01() * std::f64::consts::TAU, 2.0 * r.f01() - 1.0);
            let s = (1.0 - v * v).max(0.0).sqrt();
            let dir = [s * u.cos(), s * u.sin(), v];
            for k in 0..3 {
                pt[k] = ulp_nudge(center[k] + radius * dir[k], &mut r);
            }
        }
        let bb = bounds_for(&p);
        let staged = insphere_sign_staged(&bb, &mut st, &p[0], &p[1], &p[2], &p[3], &p[4]);
        let exact = insphere_sign(&p[0], &p[1], &p[2], &p[3], &p[4]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
    }
    assert_eq!(st.insphere_total(), N_ULP_INSPHERE as u64);
    assert!(st.insphere_exact + st.insphere_filtered > 0);
}

#[test]
fn translated_insphere_agrees_with_exact() {
    let mut r = Rng(0x5eed_0006);
    let mut st = FilterStats::default();
    for case in 0..N_TRANSLATED_INSPHERE {
        let shift = [
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
        ];
        let mut p = [[0.0f64; 3]; 5];
        for pt in &mut p {
            for k in 0..3 {
                pt[k] = r.f01() + shift[k];
            }
        }
        let bb = bounds_for(&p);
        let staged = insphere_sign_staged(&bb, &mut st, &p[0], &p[1], &p[2], &p[3], &p[4]);
        let exact = insphere_sign(&p[0], &p[1], &p[2], &p[3], &p[4]);
        assert_eq!(staged, exact, "case {case}: {p:?}");
    }
    assert_eq!(st.insphere_total(), N_TRANSLATED_INSPHERE as u64);
    // translated coordinates inflate the semi-static bound (it scales with
    // the box magnitude), so generic cases must still certify early
    assert!(st.insphere_semi_static > 0);
}

#[test]
fn sos_staged_matches_sos_exact_on_ties() {
    let mut r = Rng(0x5eed_0007);
    let mut st = FilterStats::default();
    let mut broken = 0usize;
    for case in 0..N_SOS {
        let a = r.int(1, 20);
        let b = a + r.int(1, 20);
        let c = b + r.int(1, 20);
        let orb = orbit(a, b, c);
        let mut p = [[0.0f64; 3]; 5];
        let mut keys = [0u64; 5];
        let mut used = [usize::MAX; 5];
        for i in 0..5 {
            let mut j = r.below(48) as usize;
            while used.contains(&j) {
                j = r.below(48) as usize;
            }
            used[i] = j;
            p[i] = orb[j];
            keys[i] = r.next();
        }
        let bb = bounds_for(&p);
        let staged = insphere_sos_staged(&bb, &mut st, &p[0], &p[1], &p[2], &p[3], &p[4], keys);
        let exact = insphere_sos(&p[0], &p[1], &p[2], &p[3], &p[4], keys);
        assert_eq!(staged, exact, "case {case}: {p:?} keys {keys:?}");
        if staged != 0 {
            broken += 1;
        }
    }
    assert!(st.insphere_total() >= N_SOS as u64);
    // SoS breaks every cospherical tie unless the base tet itself is
    // degenerate (coplanar picks from the orbit) — the common case resolves
    assert!(
        broken > N_SOS / 2,
        "SoS broke only {broken} of {N_SOS} ties"
    );
}

// ---------------------------------------------------------------------------
// Batched-filter agreement: the same adversarial distributions, staged as
// SoA waves through the wide-lane filters. Every lane must return the
// bit-identical determinant (orient) / identical sign (insphere) as the
// scalar staged cascade, the sign must match the exact predicate, and the
// shared FilterStats must advance exactly as an all-scalar run would —
// that is the whole "batching changes the schedule, never the answer"
// contract the kernel relies on for byte-identical meshes.
// ---------------------------------------------------------------------------

fn sign_of(d: f64) -> i8 {
    if d > 0.0 {
        1
    } else if d < 0.0 {
        -1
    } else {
        0
    }
}

#[test]
fn batched_orient_agrees_on_coplanar_lattice_waves() {
    let mut r = Rng(0x5eed_1001);
    let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
    let mut bt = BatchStats::default();
    let mut zeros = 0usize;
    let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
    let mut dets = Vec::new();
    for wave in 0..N_BATCH_ORIENT_WAVES {
        // one shared query point per wave, as in a cavity boundary round
        let pd = [
            r.int(-1000, 1000) as f64,
            r.int(-1000, 1000) as f64,
            r.int(-1000, 1000) as f64,
        ];
        xs.clear();
        ys.clear();
        zs.clear();
        let mut pts: Vec<[f64; 3]> = vec![pd];
        for lane in 0..BATCH_LANES {
            let mut tri = [[0.0f64; 3]; 3];
            for k in 0..3 {
                tri[0][k] = r.int(-1000, 1000) as f64;
                tri[1][k] = r.int(-1000, 1000) as f64;
            }
            // c = d + s(a-d) + t(b-d) with integer s,t: the lane's triangle
            // is exactly coplanar with the shared query point
            let (s, t) = (r.int(-3, 3), r.int(-3, 3));
            for k in 0..3 {
                tri[2][k] = pd[k] + s as f64 * (tri[0][k] - pd[k]) + t as f64 * (tri[1][k] - pd[k]);
            }
            if lane % 2 == 1 {
                let k = r.below(3) as usize;
                tri[2][k] += r.int(-1, 1) as f64;
            }
            for p in tri {
                xs.push(p[0]);
                ys.push(p[1]);
                zs.push(p[2]);
                pts.push(p);
            }
        }
        let b = bounds_for(&pts);
        orient3d_batch(&b, &mut st_b, &mut bt, &xs, &ys, &zs, &pd, &mut dets);
        assert_eq!(dets.len(), BATCH_LANES);
        for l in 0..BATCH_LANES {
            let pa = [xs[3 * l], ys[3 * l], zs[3 * l]];
            let pb = [xs[3 * l + 1], ys[3 * l + 1], zs[3 * l + 1]];
            let pc = [xs[3 * l + 2], ys[3 * l + 2], zs[3 * l + 2]];
            let scalar = orient3d_staged(&b, &mut st_s, &pa, &pb, &pc, &pd);
            assert_eq!(
                dets[l].to_bits(),
                scalar.to_bits(),
                "wave {wave} lane {l}: batched det diverged from scalar staged"
            );
            let exact = orient3d_sign(&pa, &pb, &pc, &pd);
            assert_eq!(sign_of(dets[l]), exact, "wave {wave} lane {l}");
            if exact == 0 {
                zeros += 1;
            }
        }
    }
    assert_eq!(st_b, st_s, "filter counters must be mode-independent");
    assert_eq!(bt.orient_lanes, (N_BATCH_ORIENT_WAVES * BATCH_LANES) as u64);
    assert!(zeros > N_BATCH_ORIENT_WAVES, "generator lost degeneracy");
    // every true zero must have fallen out of the batch pass into the
    // scalar cascade — a magnitude filter cannot certify a zero
    assert!(bt.orient_fallbacks >= zeros as u64);
    assert!((bt.occupancy() - 1.0).abs() < 1e-12);
}

#[test]
fn batched_orient_agrees_on_translated_ulp_waves() {
    let mut r = Rng(0x5eed_1002);
    let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
    let mut bt = BatchStats::default();
    let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
    let mut dets = Vec::new();
    for wave in 0..N_BATCH_ORIENT_WAVES {
        let shift = [
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
            1e6 * (1.0 + r.f01()),
        ];
        let pd = [r.f01() + shift[0], r.f01() + shift[1], r.f01() + shift[2]];
        xs.clear();
        ys.clear();
        zs.clear();
        let mut pts: Vec<[f64; 3]> = vec![pd];
        for lane in 0..BATCH_LANES {
            let mut tri = [[0.0f64; 3]; 3];
            for k in 0..3 {
                tri[0][k] = r.f01() + shift[k];
                tri[1][k] = r.f01() + shift[k];
            }
            // near-coplanar with the shared query point in the translated
            // frame (rounded affine combination), then ulp noise on odd lanes
            let (s, t) = (
                (r.below(17) as f64 - 8.0) / 8.0,
                (r.below(17) as f64 - 8.0) / 8.0,
            );
            for k in 0..3 {
                tri[2][k] = pd[k] + s * (tri[0][k] - pd[k]) + t * (tri[1][k] - pd[k]);
            }
            if lane % 2 == 1 {
                for p in &mut tri {
                    for k in 0..3 {
                        p[k] = ulp_nudge(p[k], &mut r);
                    }
                }
            }
            for p in tri {
                xs.push(p[0]);
                ys.push(p[1]);
                zs.push(p[2]);
                pts.push(p);
            }
        }
        let b = bounds_for(&pts);
        orient3d_batch(&b, &mut st_b, &mut bt, &xs, &ys, &zs, &pd, &mut dets);
        for l in 0..BATCH_LANES {
            let pa = [xs[3 * l], ys[3 * l], zs[3 * l]];
            let pb = [xs[3 * l + 1], ys[3 * l + 1], zs[3 * l + 1]];
            let pc = [xs[3 * l + 2], ys[3 * l + 2], zs[3 * l + 2]];
            let scalar = orient3d_staged(&b, &mut st_s, &pa, &pb, &pc, &pd);
            assert_eq!(dets[l].to_bits(), scalar.to_bits(), "wave {wave} lane {l}");
            assert_eq!(
                sign_of(dets[l]),
                orient3d_sign(&pa, &pb, &pc, &pd),
                "wave {wave} lane {l}"
            );
        }
    }
    assert_eq!(st_b, st_s, "filter counters must be mode-independent");
    // ulp-scale determinants under a 1e6 translate sit far below the
    // (magnitude-scaled) bound: both outcomes must be represented
    assert!(bt.orient_fallbacks > 0);
    assert!(st_b.orient_semi_static > 0);
}

#[test]
fn batched_insphere_agrees_on_cospherical_orbit_waves() {
    let mut r = Rng(0x5eed_1003);
    let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
    let mut bt = BatchStats::default();
    let mut zeros = 0usize;
    let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
    let mut keys: Vec<[u64; 5]> = Vec::new();
    let mut signs = Vec::new();
    for wave in 0..N_BATCH_INSPHERE_WAVES {
        let a = r.int(1, 30);
        let b = a + r.int(1, 30);
        let c = b + r.int(1, 30);
        let orb = orbit(a, b, c);
        let off = [
            r.int(-100, 100) as f64,
            r.int(-100, 100) as f64,
            r.int(-100, 100) as f64,
        ];
        // the shared query point is itself an orbit point: every lane's
        // tetrahedron is exactly cospherical with it
        let pe_j = r.below(48) as usize;
        let pe = [
            orb[pe_j][0] + off[0],
            orb[pe_j][1] + off[1],
            orb[pe_j][2] + off[2],
        ];
        let pe_key = r.next();
        xs.clear();
        ys.clear();
        zs.clear();
        keys.clear();
        let mut pts: Vec<[f64; 3]> = vec![pe];
        for lane in 0..BATCH_LANES {
            let mut used = [pe_j, usize::MAX, usize::MAX, usize::MAX, usize::MAX];
            let mut lane_keys = [0u64; 5];
            for i in 0..4 {
                let mut j = r.below(48) as usize;
                while used.contains(&j) {
                    j = r.below(48) as usize;
                }
                used[i + 1] = j;
                let mut p = [orb[j][0] + off[0], orb[j][1] + off[1], orb[j][2] + off[2]];
                if lane % 2 == 1 && i == 3 {
                    let k = r.below(3) as usize;
                    p[k] += r.int(-1, 1) as f64;
                }
                xs.push(p[0]);
                ys.push(p[1]);
                zs.push(p[2]);
                pts.push(p);
                lane_keys[i] = r.next();
            }
            lane_keys[4] = pe_key;
            keys.push(lane_keys);
        }
        let bb = bounds_for(&pts);
        insphere_sos_batch(
            &bb, &mut st_b, &mut bt, &xs, &ys, &zs, &pe, &keys, &mut signs,
        );
        assert_eq!(signs.len(), BATCH_LANES);
        for l in 0..BATCH_LANES {
            let pa = [xs[4 * l], ys[4 * l], zs[4 * l]];
            let pb = [xs[4 * l + 1], ys[4 * l + 1], zs[4 * l + 1]];
            let pc = [xs[4 * l + 2], ys[4 * l + 2], zs[4 * l + 2]];
            let pd = [xs[4 * l + 3], ys[4 * l + 3], zs[4 * l + 3]];
            let scalar = insphere_sos_staged(&bb, &mut st_s, &pa, &pb, &pc, &pd, &pe, keys[l]);
            assert_eq!(signs[l], scalar, "wave {wave} lane {l}");
            let exact = insphere_sos(&pa, &pb, &pc, &pd, &pe, keys[l]);
            assert_eq!(signs[l], exact, "wave {wave} lane {l}");
            // where the unperturbed determinant itself is nonzero, the SoS
            // sign is the plain sign — check it against the exact predicate
            let plain = insphere_sign(&pa, &pb, &pc, &pd, &pe);
            if plain == 0 {
                zeros += 1;
            } else {
                assert_eq!(signs[l], plain, "wave {wave} lane {l}");
            }
        }
    }
    assert_eq!(st_b, st_s, "filter counters must be mode-independent");
    assert_eq!(
        bt.insphere_lanes,
        (N_BATCH_INSPHERE_WAVES * BATCH_LANES) as u64
    );
    assert!(zeros > N_BATCH_INSPHERE_WAVES, "generator lost degeneracy");
    assert!(bt.insphere_fallbacks >= zeros as u64);
}

#[test]
fn batched_insphere_agrees_on_ulp_sphere_waves() {
    let mut r = Rng(0x5eed_1004);
    let (mut st_b, mut st_s) = (FilterStats::default(), FilterStats::default());
    let mut bt = BatchStats::default();
    let (mut xs, mut ys, mut zs) = (Vec::new(), Vec::new(), Vec::new());
    let mut keys: Vec<[u64; 5]> = Vec::new();
    let mut signs = Vec::new();
    for wave in 0..N_BATCH_INSPHERE_WAVES {
        // all lanes on (approximately) one common sphere, half the waves
        // pushed out to large coordinates
        let shift = if wave % 2 == 1 {
            [
                1e6 * (1.0 + r.f01()),
                1e6 * (1.0 + r.f01()),
                1e6 * (1.0 + r.f01()),
            ]
        } else {
            [0.0; 3]
        };
        let center = [r.f01() + shift[0], r.f01() + shift[1], r.f01() + shift[2]];
        let radius = 0.25 + 0.5 * r.f01();
        let on_sphere = |r: &mut Rng| {
            let (u, v) = (r.f01() * std::f64::consts::TAU, 2.0 * r.f01() - 1.0);
            let s = (1.0 - v * v).max(0.0).sqrt();
            let dir = [s * u.cos(), s * u.sin(), v];
            let mut p = [0.0f64; 3];
            for k in 0..3 {
                p[k] = ulp_nudge(center[k] + radius * dir[k], r);
            }
            p
        };
        let pe = on_sphere(&mut r);
        let pe_key = r.next();
        xs.clear();
        ys.clear();
        zs.clear();
        keys.clear();
        let mut pts: Vec<[f64; 3]> = vec![pe];
        for _ in 0..BATCH_LANES {
            let mut lane_keys = [0u64; 5];
            for i in 0..4 {
                let p = on_sphere(&mut r);
                xs.push(p[0]);
                ys.push(p[1]);
                zs.push(p[2]);
                pts.push(p);
                lane_keys[i] = r.next();
            }
            lane_keys[4] = pe_key;
            keys.push(lane_keys);
        }
        let bb = bounds_for(&pts);
        insphere_sos_batch(
            &bb, &mut st_b, &mut bt, &xs, &ys, &zs, &pe, &keys, &mut signs,
        );
        for l in 0..BATCH_LANES {
            let pa = [xs[4 * l], ys[4 * l], zs[4 * l]];
            let pb = [xs[4 * l + 1], ys[4 * l + 1], zs[4 * l + 1]];
            let pc = [xs[4 * l + 2], ys[4 * l + 2], zs[4 * l + 2]];
            let pd = [xs[4 * l + 3], ys[4 * l + 3], zs[4 * l + 3]];
            let scalar = insphere_sos_staged(&bb, &mut st_s, &pa, &pb, &pc, &pd, &pe, keys[l]);
            assert_eq!(signs[l], scalar, "wave {wave} lane {l}");
            assert_eq!(
                signs[l],
                insphere_sos(&pa, &pb, &pc, &pd, &pe, keys[l]),
                "wave {wave} lane {l}"
            );
        }
    }
    assert_eq!(st_b, st_s, "filter counters must be mode-independent");
    // near-cospherical lanes defer, generic lanes certify: both paths of
    // the batched classifier must be exercised by this family
    assert!(bt.insphere_fallbacks > 0);
    assert!(st_b.insphere_semi_static > 0);
}
