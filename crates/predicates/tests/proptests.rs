//! Property-based tests: predicates against exact integer references, and
//! expansion algebra against i128 arithmetic.

use pi2m_predicates::{insphere_sign, orient3d_sign, Expansion};
use proptest::prelude::*;

fn p3(v: [i64; 3]) -> [f64; 3] {
    [v[0] as f64, v[1] as f64, v[2] as f64]
}

fn det3_i128(d: impl Fn(usize, usize) -> i128) -> i128 {
    d(0, 0) * (d(1, 1) * d(2, 2) - d(1, 2) * d(2, 1))
        - d(0, 1) * (d(1, 0) * d(2, 2) - d(1, 2) * d(2, 0))
        + d(0, 2) * (d(1, 0) * d(2, 1) - d(1, 1) * d(2, 0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn orient3d_matches_integer_determinant(
        pts in proptest::array::uniform4(proptest::array::uniform3(-1000i64..1000)),
    ) {
        let d = |i: usize, k: usize| (pts[i][k] - pts[3][k]) as i128;
        let det_ref = det3_i128(d);
        let s = orient3d_sign(&p3(pts[0]), &p3(pts[1]), &p3(pts[2]), &p3(pts[3]));
        prop_assert_eq!(s as i128, det_ref.signum());
    }

    #[test]
    fn insphere_matches_integer_determinant(
        pts in proptest::array::uniform5(proptest::array::uniform3(-200i64..200)),
    ) {
        let d = |i: usize, k: usize| (pts[i][k] - pts[4][k]) as i128;
        let lift = |i: usize| d(i,0)*d(i,0) + d(i,1)*d(i,1) + d(i,2)*d(i,2);
        let m = |r0: usize, r1: usize, r2: usize| det3_i128(|i, k| d([r0, r1, r2][i], k));
        let det_ref = -lift(0) * m(1,2,3) + lift(1) * m(0,2,3)
            - lift(2) * m(0,1,3) + lift(3) * m(0,1,2);
        let s = insphere_sign(&p3(pts[0]), &p3(pts[1]), &p3(pts[2]), &p3(pts[3]), &p3(pts[4]));
        prop_assert_eq!(s as i128, det_ref.signum());
    }

    #[test]
    fn expansion_ring_axioms(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
        c in -1_000_000i64..1_000_000,
    ) {
        let ea = Expansion::from_f64(a as f64);
        let eb = Expansion::from_f64(b as f64);
        let ec = Expansion::from_f64(c as f64);
        // (a+b)*c == a*c + b*c, compared exactly through integer sums
        let lhs = ea.add(&eb).mul(&ec);
        let rhs = ea.mul(&ec).add(&eb.mul(&ec));
        let exact = |e: &Expansion| -> i128 {
            e.components().iter().map(|&x| x as i128).sum()
        };
        prop_assert_eq!(exact(&lhs), (a as i128 + b as i128) * c as i128);
        prop_assert_eq!(exact(&lhs), exact(&rhs));
    }

    #[test]
    fn expansion_sub_cancels(
        a in -1_000_000i64..1_000_000,
        b in -1_000_000i64..1_000_000,
    ) {
        let ea = Expansion::from_f64(a as f64);
        let eb = Expansion::from_f64(b as f64);
        let diff = ea.add(&eb).sub(&eb);
        let exact: i128 = diff.components().iter().map(|&x| x as i128).sum();
        prop_assert_eq!(exact, a as i128);
    }

    #[test]
    fn orient3d_permutation_parity(
        pts in proptest::array::uniform4(proptest::array::uniform3(-1000i64..1000)),
    ) {
        let q = [p3(pts[0]), p3(pts[1]), p3(pts[2]), p3(pts[3])];
        let base = orient3d_sign(&q[0], &q[1], &q[2], &q[3]);
        // odd permutation flips, even permutation preserves
        prop_assert_eq!(orient3d_sign(&q[1], &q[0], &q[2], &q[3]), -base);
        prop_assert_eq!(orient3d_sign(&q[1], &q[2], &q[0], &q[3]), base);
    }
}
