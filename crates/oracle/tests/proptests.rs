//! Property tests of the isosurface oracle against randomized images.

use pi2m_geometry::Point3;
use pi2m_image::LabeledImage;
use pi2m_oracle::IsosurfaceOracle;
use proptest::prelude::*;

/// A random blobby two-label image: union of a few random balls.
fn random_image(seed: u64, n: usize) -> LabeledImage {
    let mut s = seed.max(1);
    let mut next = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    };
    let balls: Vec<(Point3, f64)> = (0..3)
        .map(|_| {
            (
                Point3::new(
                    next() * n as f64 * 0.6 + n as f64 * 0.2,
                    next() * n as f64 * 0.6 + n as f64 * 0.2,
                    next() * n as f64 * 0.6 + n as f64 * 0.2,
                ),
                next() * n as f64 * 0.2 + 2.0,
            )
        })
        .collect();
    LabeledImage::from_fn([n, n, n], [1.0; 3], |p| {
        if balls.iter().any(|&(c, r)| p.distance(c) < r) {
            1
        } else {
            0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn closest_surface_point_sits_on_an_interface(seed in 1u64..500, qx in 0.1f64..0.9, qy in 0.1f64..0.9, qz in 0.1f64..0.9) {
        let n = 16usize;
        let img = random_image(seed, n);
        if img.surface_voxels().is_empty() {
            return Ok(());
        }
        let oracle = IsosurfaceOracle::new(img, 1);
        let p = Point3::new(qx * n as f64, qy * n as f64, qz * n as f64);
        if let Some(s) = oracle.closest_surface_point(p) {
            // within a tiny step across s along p->s, the label changes
            let dir = (s - p).normalized().unwrap_or(Point3::new(1.0, 0.0, 0.0));
            let eps = 1e-6;
            let before = oracle.label_at(s - dir * eps);
            let after = oracle.label_at(s + dir * eps);
            prop_assert_ne!(before, after, "no label change across the returned point");
        }
    }

    #[test]
    fn surface_distance_bounded_by_feature_distance(seed in 1u64..500) {
        let n = 16usize;
        let img = random_image(seed, n);
        if img.surface_voxels().is_empty() {
            return Ok(());
        }
        let oracle = IsosurfaceOracle::new(img.clone(), 1);
        // query at a few fixed points
        for q in [
            Point3::new(3.0, 3.0, 3.0),
            Point3::new(8.0, 8.0, 8.0),
            Point3::new(12.0, 4.0, 9.0),
        ] {
            if let Some(d) = oracle.surface_distance(q) {
                // the interpolated interface is within one voxel diagonal of
                // the nearest surface voxel center
                let site = oracle
                    .feature_transform()
                    .nearest_site_world(q)
                    .unwrap();
                let bound = site.distance(q) + 3f64.sqrt();
                prop_assert!(d <= bound + 1e-9, "d={d} bound={bound}");
            }
        }
    }

    #[test]
    fn segment_crossing_is_consistent_with_labels(seed in 1u64..500) {
        let n = 14usize;
        let img = random_image(seed, n);
        let oracle = IsosurfaceOracle::new(img, 1);
        let a = Point3::new(2.0, 2.0, 2.0);
        let b = Point3::new(12.0, 11.0, 10.0);
        let crosses = oracle.segment_crosses_surface(a, b);
        if oracle.label_at(a) != oracle.label_at(b) {
            // endpoints in different regions: must cross
            prop_assert!(crosses);
        }
    }
}
