//! # pi2m-oracle
//!
//! Geometric queries against the segmented image — the bridge between the
//! voxel world and the continuous refinement rules:
//!
//! * [`IsosurfaceOracle::closest_surface_point`] — the point `p̂ ∈ ∂O`
//!   nearest to a query `p`, found by asking the feature transform for the
//!   nearest surface voxel and marching the ray on small intervals,
//!   interpolating the positions of different labels (paper §3).
//! * [`IsosurfaceOracle::segment_surface_intersection`] — the surface-center
//!   `c_surf(f) = V(f) ∩ ∂O` of a facet's Voronoi edge (rule R3).
//! * [`SizeFn`] — user-specified element size functions (rule R5).

pub mod oracle;
pub mod sizefn;

pub use oracle::IsosurfaceOracle;
pub use sizefn::{RadialSize, SizeFn, UniformSize};
