//! User-specified size functions (`sf(·)` in rule R5).

use pi2m_geometry::Point3;

/// A spatially varying target circumradius: rule R5 splits any tetrahedron
/// whose circumcenter `c` lies inside the object and whose circumradius
/// exceeds `sf(c)`.
pub trait SizeFn: Send + Sync {
    /// Target maximum circumradius at `p` (world units). Return
    /// `f64::INFINITY` to disable volume sizing at `p`.
    fn size_at(&self, p: Point3) -> f64;
}

/// Constant target size everywhere.
#[derive(Clone, Copy, Debug)]
pub struct UniformSize(pub f64);

impl SizeFn for UniformSize {
    #[inline]
    fn size_at(&self, _p: Point3) -> f64 {
        self.0
    }
}

/// Size growing linearly with distance from a focus point: fine elements
/// near the focus, coarser away from it — the "more elements where curvature
/// or interest is high" control the paper highlights as an advantage of
/// image-based sizing.
#[derive(Clone, Copy, Debug)]
pub struct RadialSize {
    pub focus: Point3,
    /// Size at the focus.
    pub near: f64,
    /// Additional size per unit distance.
    pub growth: f64,
    /// Upper clamp.
    pub far: f64,
}

impl SizeFn for RadialSize {
    #[inline]
    fn size_at(&self, p: Point3) -> f64 {
        (self.near + self.growth * p.distance(self.focus)).min(self.far)
    }
}

impl<F> SizeFn for F
where
    F: Fn(Point3) -> f64 + Send + Sync,
{
    #[inline]
    fn size_at(&self, p: Point3) -> f64 {
        self(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_constant() {
        let s = UniformSize(2.5);
        assert_eq!(s.size_at(Point3::ORIGIN), 2.5);
        assert_eq!(s.size_at(Point3::new(100.0, -3.0, 7.0)), 2.5);
    }

    #[test]
    fn radial_grows_and_clamps() {
        let s = RadialSize {
            focus: Point3::ORIGIN,
            near: 1.0,
            growth: 0.5,
            far: 3.0,
        };
        assert_eq!(s.size_at(Point3::ORIGIN), 1.0);
        assert_eq!(s.size_at(Point3::new(2.0, 0.0, 0.0)), 2.0);
        assert_eq!(s.size_at(Point3::new(100.0, 0.0, 0.0)), 3.0);
    }

    #[test]
    fn closures_are_size_fns() {
        let s = |p: Point3| p.x.abs() + 1.0;
        assert_eq!(s.size_at(Point3::new(4.0, 0.0, 0.0)), 5.0);
    }
}
