//! The isosurface oracle: continuous-space queries against a labeled image.

use pi2m_edt::{surface_feature_transform, surface_feature_transform_obs, FeatureTransform};
use pi2m_geometry::Point3;
use pi2m_image::{Label, LabeledImage, BACKGROUND};
use pi2m_obs::metrics::{self, ThreadRecorder};

/// Number of bisection iterations used to refine a detected label interface;
/// 24 halvings locate the crossing ~7 orders of magnitude below the interval
/// length, far below voxel precision.
const BISECT_ITERS: usize = 24;

/// Continuous-space isosurface queries for the refinement rules.
///
/// Owns the image and its surface-voxel feature transform; immutable after
/// construction, so it is shared freely across refinement threads.
pub struct IsosurfaceOracle {
    img: LabeledImage,
    ft: FeatureTransform,
    /// Ray-marching step, a fraction of the smallest voxel spacing.
    step: f64,
}

impl IsosurfaceOracle {
    /// Build the oracle, computing the surface feature transform with
    /// `threads` workers (the paper's parallel EDT preprocessing step).
    pub fn new(img: LabeledImage, threads: usize) -> Self {
        let ft = surface_feature_transform(&img, threads);
        let step = img.min_spacing() * 0.25;
        IsosurfaceOracle { img, ft, step }
    }

    /// [`IsosurfaceOracle::new`] with observability: EDT pass timings and
    /// voxel/surface-site counts are recorded into `rec`.
    pub fn new_with_obs(img: LabeledImage, threads: usize, rec: &mut ThreadRecorder) -> Self {
        let ft = surface_feature_transform_obs(&img, threads, Some(rec));
        rec.inc(metrics::ORACLE_SURFACE_VOXELS, ft.num_sites() as u64);
        let step = img.min_spacing() * 0.25;
        IsosurfaceOracle { img, ft, step }
    }

    /// Assemble an oracle from an image and a surface feature transform that
    /// was already computed (the staged pipeline runs the EDT as its own
    /// stage). `ft` must be the surface feature transform of `img`.
    pub fn from_parts(img: LabeledImage, ft: FeatureTransform) -> Self {
        assert_eq!(
            ft.dims(),
            img.dims(),
            "feature transform dims must match the image"
        );
        let step = img.min_spacing() * 0.25;
        IsosurfaceOracle { img, ft, step }
    }

    /// The underlying image.
    #[inline]
    pub fn image(&self) -> &LabeledImage {
        &self.img
    }

    /// The surface feature transform.
    #[inline]
    pub fn feature_transform(&self) -> &FeatureTransform {
        &self.ft
    }

    /// Label at a world point (background outside the image).
    #[inline]
    pub fn label_at(&self, p: Point3) -> Label {
        self.img.label_at(p)
    }

    /// Is `p` inside the object `O` (any foreground tissue)?
    #[inline]
    pub fn is_inside(&self, p: Point3) -> bool {
        self.img.is_inside(p)
    }

    /// The closest isosurface point `p̂ ∈ ∂O` for a query `p` (paper §3):
    /// the feature transform yields the nearest surface voxel `q`; the ray
    /// `p → q` is traversed on small intervals until the label changes, and
    /// the interface position is interpolated (bisection on the label field).
    ///
    /// `None` when the image has no surface at all, or no interface is found
    /// near the ray (which can only happen for degenerate images).
    pub fn closest_surface_point(&self, p: Point3) -> Option<Point3> {
        let q = self.ft.nearest_site_world(p)?;
        let lp = self.label_at(p);

        let dir = q - p;
        let len = dir.norm();
        // Past q, continue up to a voxel diagonal: the interface bounding the
        // surface voxel may lie just beyond its center.
        let sp = self.img.spacing();
        let diag = (sp[0] * sp[0] + sp[1] * sp[1] + sp[2] * sp[2]).sqrt();
        let (dir, total) = if len > 1e-12 {
            (dir / len, len + diag)
        } else {
            // p already sits at the surface voxel center: probe along the
            // direction of q's differently-labeled neighborhood by scanning
            // axis directions.
            return self.probe_around(p, lp, diag);
        };

        if let Some(hit) = self.march(p, lp, dir, total) {
            return Some(hit);
        }
        // The ray can slip past the interface (it is only guaranteed to come
        // within a voxel of it). Fall back to probing around the surface
        // voxel q, which by definition has a differently-labeled 6-neighbor,
        // so an axis probe of one voxel diagonal always finds the interface.
        let lq = self.label_at(q);
        self.probe_around(q, lq, diag)
    }

    /// March from `p` along `dir` up to distance `total`, returning the
    /// bisected position of the first label change (relative to `lp`).
    fn march(&self, p: Point3, lp: Label, dir: Point3, total: f64) -> Option<Point3> {
        let mut t_prev = 0.0;
        let mut t = self.step.min(total);
        loop {
            let x = p + dir * t;
            if self.label_at(x) != lp {
                return Some(self.bisect(p, lp, dir, t_prev, t));
            }
            if t >= total {
                return None;
            }
            t_prev = t;
            t = (t + self.step).min(total);
        }
    }

    /// Bisect the interval `[t_lo, t_hi]` along `p + dir·t` so that the label
    /// changes across it; returns the interface point.
    fn bisect(&self, p: Point3, lp: Label, dir: Point3, mut t_lo: f64, mut t_hi: f64) -> Point3 {
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (t_lo + t_hi);
            if self.label_at(p + dir * mid) == lp {
                t_lo = mid;
            } else {
                t_hi = mid;
            }
        }
        p + dir * (0.5 * (t_lo + t_hi))
    }

    /// Fallback when the query coincides with a surface voxel center: probe
    /// the 6 axis directions for the nearest label change.
    fn probe_around(&self, p: Point3, lp: Label, reach: f64) -> Option<Point3> {
        let dirs = [
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(-1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, -1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
            Point3::new(0.0, 0.0, -1.0),
        ];
        let mut best: Option<Point3> = None;
        let mut best_d = f64::INFINITY;
        for d in dirs {
            if let Some(x) = self.march(p, lp, d, reach) {
                let dist = x.distance(p);
                if dist < best_d {
                    best_d = dist;
                    best = Some(x);
                }
            }
        }
        best
    }

    /// Distance from `p` to the isosurface (via the interpolated closest
    /// surface point).
    pub fn surface_distance(&self, p: Point3) -> Option<f64> {
        self.closest_surface_point(p).map(|q| q.distance(p))
    }

    /// Does the ball centred at `c` with radius `r` intersect `∂O`?
    /// Used by rules R1/R2 ("tetrahedron whose circumball intersects ∂O").
    pub fn ball_intersects_surface(&self, c: Point3, r: f64) -> bool {
        // Cheap reject: the nearest surface *voxel center* is a lower bound
        // on surface distance minus half a voxel diagonal.
        if let Some(q) = self.ft.nearest_site_world(c) {
            let sp = self.img.spacing();
            let half_diag = 0.5 * (sp[0] * sp[0] + sp[1] * sp[1] + sp[2] * sp[2]).sqrt();
            let d = q.distance(c);
            if d - half_diag > r {
                return false;
            }
            if d + half_diag < r {
                return true;
            }
            // Borderline: use the interpolated surface point.
            match self.surface_distance(c) {
                Some(sd) => sd <= r,
                None => false,
            }
        } else {
            false
        }
    }

    /// A cheap lower bound on the distance from `p` to the isosurface: the
    /// distance to the nearest surface *voxel center* minus half a voxel
    /// diagonal (the interface lies within that ball). Zero when unknown.
    pub fn surface_distance_lower_bound(&self, p: Point3) -> f64 {
        match self.ft.nearest_site_world(p) {
            Some(q) => {
                let sp = self.img.spacing();
                let half_diag = 0.5 * (sp[0] * sp[0] + sp[1] * sp[1] + sp[2] * sp[2]).sqrt();
                (q.distance(p) - half_diag).max(0.0)
            }
            None => f64::INFINITY,
        }
    }

    /// First intersection of segment `a → b` with the isosurface (any label
    /// change), interpolated; the *surface-center* `c_surf(f)` of rule R3
    /// when `a`, `b` are the circumcenters joined by the facet's Voronoi
    /// edge.
    pub fn segment_surface_intersection(&self, a: Point3, b: Point3) -> Option<Point3> {
        let la = self.label_at(a);
        let dir = b - a;
        let len = dir.norm();
        if len <= 1e-12 {
            return None;
        }
        // Cheap reject (hot path: rule R3 tests every facet): if both
        // endpoints have the same label and the whole segment provably stays
        // farther from ∂O than its length, it cannot cross.
        if la == self.label_at(b) && self.surface_distance_lower_bound(a) > len {
            return None;
        }
        let dir = dir / len;
        self.march(a, la, dir, len)
    }

    /// True iff the segment `a → b` crosses the isosurface.
    pub fn segment_crosses_surface(&self, a: Point3, b: Point3) -> bool {
        self.segment_surface_intersection(a, b).is_some()
    }

    /// Convenience for tests/analysis: whether `p` is in the background.
    #[inline]
    pub fn is_background(&self, p: Point3) -> bool {
        self.label_at(p) == BACKGROUND
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_image::phantoms;

    fn sphere_oracle(n: usize) -> IsosurfaceOracle {
        IsosurfaceOracle::new(phantoms::sphere(n, 1.0), 2)
    }

    #[test]
    fn closest_surface_point_from_outside() {
        let o = sphere_oracle(32);
        let center = Point3::new(16.0, 16.0, 16.0);
        let radius = 0.7 * 16.0; // normalized 0.7 of half-extent
        let p = Point3::new(16.0, 16.0, 1.0); // outside, below
        let s = o.closest_surface_point(p).expect("surface must be found");
        // surface point should sit close to the analytic sphere
        let d = s.distance(center);
        assert!(
            (d - radius).abs() < 1.2,
            "surface at distance {d}, expected ≈{radius}"
        );
        // and roughly straight below the center from p's side
        assert!(s.z < 16.0);
    }

    #[test]
    fn closest_surface_point_from_inside() {
        let o = sphere_oracle(32);
        let center = Point3::new(16.0, 16.0, 16.0);
        let p = center + Point3::new(5.0, 0.0, 0.0);
        let s = o.closest_surface_point(p).unwrap();
        let d = s.distance(center);
        assert!((d - 11.2).abs() < 1.2, "{d}");
        // the interface point must sit between differing labels
        let lp = o.label_at(p);
        let eps = 0.05;
        let dir = (s - p).normalized().unwrap();
        assert_eq!(o.label_at(s - dir * eps), lp);
        assert_ne!(o.label_at(s + dir * eps), lp);
    }

    #[test]
    fn surface_point_respects_internal_interfaces() {
        let o = IsosurfaceOracle::new(phantoms::nested_spheres(32, 1.0), 1);
        let center = Point3::new(16.0, 16.0, 16.0);
        // query inside the core (label 2): nearest interface is core/shell at
        // normalized radius 0.35 → world 5.6
        let p = center + Point3::new(1.0, 0.0, 0.0);
        let s = o.closest_surface_point(p).unwrap();
        let d = s.distance(center);
        assert!(
            (d - 5.6).abs() < 1.2,
            "core interface at {d}, expected ≈5.6"
        );
    }

    #[test]
    fn segment_intersection_straddles_boundary() {
        let o = sphere_oracle(32);
        let center = Point3::new(16.0, 16.0, 16.0);
        let a = center; // inside
        let b = Point3::new(31.0, 16.0, 16.0); // outside
        let x = o.segment_surface_intersection(a, b).unwrap();
        assert!((x.distance(center) - 11.2).abs() < 1.0);
        assert!(o.segment_crosses_surface(a, b));
        // a segment fully inside does not cross
        assert!(!o.segment_crosses_surface(a, center + Point3::new(2.0, 0.0, 0.0)));
    }

    #[test]
    fn ball_intersection_cases() {
        let o = sphere_oracle(32);
        let center = Point3::new(16.0, 16.0, 16.0);
        // small ball at the center: far from surface
        assert!(!o.ball_intersects_surface(center, 2.0));
        // huge ball at the center: swallows the surface
        assert!(o.ball_intersects_surface(center, 14.0));
        // ball centered on the surface
        let on_surface = center + Point3::new(11.2, 0.0, 0.0);
        assert!(o.ball_intersects_surface(on_surface, 1.0));
    }

    #[test]
    fn inside_outside() {
        let o = sphere_oracle(16);
        assert!(o.is_inside(Point3::new(8.0, 8.0, 8.0)));
        assert!(o.is_background(Point3::new(0.5, 0.5, 0.5)));
        assert!(o.is_background(Point3::new(-5.0, 8.0, 8.0))); // off-image
    }

    #[test]
    fn surface_distance_monotone_towards_surface() {
        let o = sphere_oracle(32);
        let center = Point3::new(16.0, 16.0, 16.0);
        let d1 = o
            .surface_distance(center + Point3::new(2.0, 0.0, 0.0))
            .unwrap();
        let d2 = o
            .surface_distance(center + Point3::new(8.0, 0.0, 0.0))
            .unwrap();
        assert!(d2 < d1);
    }
}
