//! A minimal 3D point/vector type.
//!
//! Kept deliberately small: the meshing kernel stores raw `[f64; 3]` in hot
//! arrays and converts at use sites, so `Point3` only needs ergonomic math.

use std::ops::{Add, Div, Index, Mul, Neg, Sub};

/// A point (or vector) in 3D with `f64` coordinates.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Point3 {
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }

    #[inline]
    pub fn from_array(a: [f64; 3]) -> Self {
        Point3::new(a[0], a[1], a[2])
    }

    #[inline]
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    #[inline]
    pub fn dot(self, o: Point3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Point3) -> Point3 {
        Point3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm_squared(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_squared().sqrt()
    }

    #[inline]
    pub fn distance(self, o: Point3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn distance_squared(self, o: Point3) -> f64 {
        (self - o).norm_squared()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    #[inline]
    pub fn normalized(self) -> Option<Point3> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Point3, t: f64) -> Point3 {
        self + (o - self) * t
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Point3) -> Point3 {
        Point3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Point3) -> Point3 {
        Point3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Point3 {
    type Output = Point3;
    #[inline]
    fn add(self, o: Point3) -> Point3 {
        Point3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Point3 {
    type Output = Point3;
    #[inline]
    fn sub(self, o: Point3) -> Point3 {
        Point3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn mul(self, s: f64) -> Point3 {
        Point3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Point3 {
    type Output = Point3;
    #[inline]
    fn div(self, s: f64) -> Point3 {
        Point3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Point3 {
    type Output = Point3;
    #[inline]
    fn neg(self) -> Point3 {
        Point3::new(-self.x, -self.y, -self.z)
    }
}

impl Index<usize> for Point3 {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        match i {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Point3 index out of range: {i}"),
        }
    }
}

impl From<[f64; 3]> for Point3 {
    #[inline]
    fn from(a: [f64; 3]) -> Self {
        Point3::from_array(a)
    }
}

impl From<Point3> for [f64; 3] {
    #[inline]
    fn from(p: Point3) -> Self {
        p.to_array()
    }
}

/// An axis-aligned bounding box.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Aabb {
    pub min: Point3,
    pub max: Point3,
}

impl Aabb {
    /// The empty box (inverted bounds); grows via [`Aabb::include`].
    pub fn empty() -> Self {
        Aabb {
            min: Point3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY),
            max: Point3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    pub fn new(min: Point3, max: Point3) -> Self {
        Aabb { min, max }
    }

    pub fn include(&mut self, p: Point3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    pub fn contains(&self, p: Point3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    pub fn center(&self) -> Point3 {
        (self.min + self.max) * 0.5
    }

    pub fn extent(&self) -> Point3 {
        self.max - self.min
    }

    /// Uniformly inflate by `margin` in every direction.
    pub fn inflated(&self, margin: f64) -> Aabb {
        let m = Point3::new(margin, margin, margin);
        Aabb::new(self.min - m, self.max + m)
    }

    pub fn diagonal(&self) -> f64 {
        self.extent().norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_algebra() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-4.0, 5.0, 0.5);
        assert_eq!(a + b, Point3::new(-3.0, 7.0, 3.5));
        assert_eq!(a - b, Point3::new(5.0, -3.0, 2.5));
        assert_eq!(a * 2.0, Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 1.0 * -4.0 + 2.0 * 5.0 + 3.0 * 0.5);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(-4.0, 5.0, 0.5);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < 1e-12);
        assert!(c.dot(b).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(2.0, 4.0, 8.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point3::new(1.0, 2.0, 4.0));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Point3::ORIGIN.normalized().is_none());
        let n = Point3::new(3.0, 0.0, 4.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn aabb_grows_and_contains() {
        let mut b = Aabb::empty();
        b.include(Point3::new(1.0, -1.0, 0.0));
        b.include(Point3::new(-2.0, 3.0, 5.0));
        assert!(b.contains(Point3::new(0.0, 0.0, 2.0)));
        assert!(!b.contains(Point3::new(0.0, 0.0, 6.0)));
        assert_eq!(b.center(), Point3::new(-0.5, 1.0, 2.5));
        let infl = b.inflated(1.0);
        assert!(infl.contains(Point3::new(0.0, 0.0, 5.9)));
    }
}
