//! Tetrahedron measures: circumsphere, volume, edges, and the quality
//! functionals the paper's refinement rules are driven by (radius-edge ratio,
//! circumradius vs. size function).

use crate::point::Point3;

/// Signed volume of tetrahedron `(a, b, c, d)`, with the same sign convention
/// as the robust `orient3d` predicate: positive exactly when
/// `orient3d(a, b, c, d) > 0` (the kernel's "positively oriented" cells).
#[inline]
pub fn signed_volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    (a - d).dot((b - d).cross(c - d)) / 6.0
}

/// Absolute volume.
#[inline]
pub fn volume(a: Point3, b: Point3, c: Point3, d: Point3) -> f64 {
    signed_volume(a, b, c, d).abs()
}

/// Circumcenter of a tetrahedron, solving the 3×3 linear system
/// `2 (b-a)·p = |b|²-|a|²` (etc.) by Cramer's rule relative to `a`.
///
/// Returns `None` for (near-)degenerate tetrahedra whose determinant
/// underflows to a value that cannot be inverted meaningfully.
pub fn circumcenter(a: Point3, b: Point3, c: Point3, d: Point3) -> Option<Point3> {
    let ba = b - a;
    let ca = c - a;
    let da = d - a;

    let det = 2.0 * ba.dot(ca.cross(da));
    if det == 0.0 || !det.is_finite() {
        return None;
    }

    let ba2 = ba.norm_squared();
    let ca2 = ca.norm_squared();
    let da2 = da.norm_squared();

    let rel = (ca.cross(da) * ba2 + da.cross(ba) * ca2 + ba.cross(ca) * da2) / det;
    let center = a + rel;
    if center.is_finite() {
        Some(center)
    } else {
        None
    }
}

/// Circumradius (distance from circumcenter to any vertex).
pub fn circumradius(a: Point3, b: Point3, c: Point3, d: Point3) -> Option<f64> {
    circumcenter(a, b, c, d).map(|cc| cc.distance(a))
}

/// All 6 edges of a tetrahedron as vertex-index pairs into `[a, b, c, d]`.
pub const TET_EDGES: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

/// The 4 faces of a tetrahedron as vertex-index triples into `[a, b, c, d]`;
/// face `i` is the one *opposite* vertex `i`, oriented so its normal points
/// away from vertex `i` when the tetrahedron is positively oriented.
pub const TET_FACES: [[usize; 3]; 4] = [[1, 3, 2], [0, 2, 3], [0, 3, 1], [0, 1, 2]];

/// Length of the shortest edge.
pub fn shortest_edge(p: &[Point3; 4]) -> f64 {
    TET_EDGES
        .iter()
        .map(|&(i, j)| p[i].distance(p[j]))
        .fold(f64::INFINITY, f64::min)
}

/// Length of the longest edge.
pub fn longest_edge(p: &[Point3; 4]) -> f64 {
    TET_EDGES
        .iter()
        .map(|&(i, j)| p[i].distance(p[j]))
        .fold(0.0, f64::max)
}

/// Radius-edge ratio `R / l_min` — the quality functional bounded by rule R4
/// (paper: ratio ≤ 2 in the final mesh). `None` for degenerate tetrahedra.
pub fn radius_edge_ratio(p: &[Point3; 4]) -> Option<f64> {
    let r = circumradius(p[0], p[1], p[2], p[3])?;
    let e = shortest_edge(p);
    if e > 0.0 {
        Some(r / e)
    } else {
        None
    }
}

/// The 6 interior dihedral angles (degrees), one per edge.
///
/// For the edge `(i, j)` the dihedral angle is measured between the two faces
/// sharing that edge, computed from their outward normals.
pub fn dihedral_angles(p: &[Point3; 4]) -> [f64; 6] {
    let mut out = [0.0; 6];
    for (slot, &(i, j)) in TET_EDGES.iter().enumerate() {
        // the two vertices not on the edge
        let mut others = [0usize; 2];
        let mut n = 0;
        for k in 0..4 {
            if k != i && k != j {
                others[n] = k;
                n += 1;
            }
        }
        let (k, l) = (others[0], others[1]);
        let e = p[j] - p[i];
        // normals of faces (i, j, k) and (i, j, l)
        let n1 = e.cross(p[k] - p[i]);
        let n2 = e.cross(p[l] - p[i]);
        let denom = n1.norm() * n2.norm();
        let angle = if denom > 0.0 {
            // interior dihedral: pi - angle between these normals, but using
            // this construction the angle between half-planes is direct.
            let c = (n1.dot(n2) / denom).clamp(-1.0, 1.0);
            c.acos().to_degrees()
        } else {
            0.0
        };
        out[slot] = angle;
    }
    out
}

/// Minimum and maximum dihedral angle (degrees).
pub fn dihedral_extremes(p: &[Point3; 4]) -> (f64, f64) {
    let a = dihedral_angles(p);
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    (lo, hi)
}

/// The 3 planar angles of a triangle (degrees), in vertex order.
pub fn triangle_angles(a: Point3, b: Point3, c: Point3) -> [f64; 3] {
    let ang = |apex: Point3, u: Point3, v: Point3| {
        let d1 = u - apex;
        let d2 = v - apex;
        let denom = d1.norm() * d2.norm();
        if denom > 0.0 {
            (d1.dot(d2) / denom).clamp(-1.0, 1.0).acos().to_degrees()
        } else {
            0.0
        }
    };
    [ang(a, b, c), ang(b, c, a), ang(c, a, b)]
}

/// Smallest planar angle of a triangle (degrees).
pub fn min_triangle_angle(a: Point3, b: Point3, c: Point3) -> f64 {
    triangle_angles(a, b, c)
        .into_iter()
        .fold(f64::INFINITY, f64::min)
}

/// Circumcenter of a triangle embedded in 3D (center of its circumscribed
/// circle, lying in the triangle's plane).
pub fn triangle_circumcenter(a: Point3, b: Point3, c: Point3) -> Option<Point3> {
    let ab = b - a;
    let ac = c - a;
    let n = ab.cross(ac);
    let d = 2.0 * n.norm_squared();
    if d == 0.0 || !d.is_finite() {
        return None;
    }
    let rel = (n.cross(ab) * ac.norm_squared() + ac.cross(n) * ab.norm_squared()) / d;
    let center = a + rel;
    center.is_finite().then_some(center)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular_tet() -> [Point3; 4] {
        // vertices of a regular tetrahedron inscribed in a cube
        [
            Point3::new(1.0, 1.0, 1.0),
            Point3::new(1.0, -1.0, -1.0),
            Point3::new(-1.0, 1.0, -1.0),
            Point3::new(-1.0, -1.0, 1.0),
        ]
    }

    #[test]
    fn unit_tet_volume() {
        // (0,0,-1) is on the positive orient3d side of ccw (a, b, c)
        let v = signed_volume(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, -1.0),
        );
        assert!((v - 1.0 / 6.0).abs() < 1e-15);
        // and the mirrored tet is negative
        let w = signed_volume(
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, 1.0),
        );
        assert!((w + 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn signed_volume_sign_matches_orient3d() {
        use pi2m_predicates::orient3d_sign;
        let pts = [
            Point3::new(0.3, 1.2, -0.7),
            Point3::new(2.0, 0.1, 0.4),
            Point3::new(-1.0, 0.8, 1.5),
            Point3::new(0.2, -0.9, 0.6),
        ];
        let v = signed_volume(pts[0], pts[1], pts[2], pts[3]);
        let s = orient3d_sign(
            &pts[0].to_array(),
            &pts[1].to_array(),
            &pts[2].to_array(),
            &pts[3].to_array(),
        );
        assert_eq!(v.signum() as i8, s);
    }

    #[test]
    fn circumcenter_equidistant() {
        let p = regular_tet();
        let cc = circumcenter(p[0], p[1], p[2], p[3]).unwrap();
        let r0 = cc.distance(p[0]);
        for q in &p[1..] {
            assert!((cc.distance(*q) - r0).abs() < 1e-12);
        }
        // regular tet inscribed in cube: circumcenter is the origin
        assert!(cc.norm() < 1e-12);
    }

    #[test]
    fn degenerate_tet_has_no_circumcenter() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(2.0, 0.0, 0.0);
        let d = Point3::new(3.0, 0.0, 0.0);
        assert!(circumcenter(a, b, c, d).is_none());
    }

    #[test]
    fn regular_tet_quality() {
        let p = regular_tet();
        // regular tetrahedron: radius-edge ratio = sqrt(3/8) ≈ 0.6124
        let q = radius_edge_ratio(&p).unwrap();
        assert!((q - (3.0f64 / 8.0).sqrt()).abs() < 1e-12);
        // dihedral angles all ≈ 70.5288°
        let (lo, hi) = dihedral_extremes(&p);
        assert!((lo - 70.528779).abs() < 1e-4);
        assert!((hi - 70.528779).abs() < 1e-4);
    }

    #[test]
    fn triangle_angles_sum_to_180() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(4.0, 0.0, 1.0);
        let c = Point3::new(1.0, 3.0, -2.0);
        let s: f64 = triangle_angles(a, b, c).iter().sum();
        assert!((s - 180.0).abs() < 1e-9);
    }

    #[test]
    fn equilateral_min_angle() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(1.0, 0.0, 0.0);
        let c = Point3::new(0.5, 3f64.sqrt() / 2.0, 0.0);
        assert!((min_triangle_angle(a, b, c) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_circumcenter_equidistant() {
        let a = Point3::new(0.0, 0.0, 1.0);
        let b = Point3::new(3.0, 0.5, 1.0);
        let c = Point3::new(1.0, 2.0, 0.0);
        let cc = triangle_circumcenter(a, b, c).unwrap();
        let r = cc.distance(a);
        assert!((cc.distance(b) - r).abs() < 1e-10);
        assert!((cc.distance(c) - r).abs() < 1e-10);
    }

    #[test]
    fn face_orientation_convention() {
        // For a positively oriented tet, each face's normal (right-hand rule)
        // must point away from the opposite vertex.
        let p = [
            Point3::new(0.0, 0.0, 0.0),
            Point3::new(1.0, 0.0, 0.0),
            Point3::new(0.0, 1.0, 0.0),
            Point3::new(0.0, 0.0, -1.0), // positively oriented per orient3d
        ];
        for (i, f) in TET_FACES.iter().enumerate() {
            let n = (p[f[1]] - p[f[0]]).cross(p[f[2]] - p[f[0]]);
            let to_opposite = p[i] - p[f[0]];
            assert!(
                n.dot(to_opposite) < 0.0,
                "face {i} normal must point away from opposite vertex"
            );
        }
    }
}
