//! # pi2m-geometry
//!
//! Geometry kernel shared by the PI2M Delaunay mesher, the baselines, and the
//! quality analyzers: a small [`Point3`] vector type, axis-aligned boxes, and
//! tetrahedron/triangle measures (circumspheres, volumes, radius-edge ratio,
//! dihedral and planar angles) — the functionals driving the paper's
//! refinement rules R1–R6 and the quality columns of its Table 6.
//!
//! Robust orientation/insphere *decisions* live in `pi2m-predicates`;
//! this crate provides the non-robust metric computations (circumcenters
//! etc.) where floating point is appropriate.

pub mod point;
pub mod tet;

pub use point::{Aabb, Point3};
pub use tet::{
    circumcenter, circumradius, dihedral_angles, dihedral_extremes, longest_edge,
    min_triangle_angle, radius_edge_ratio, shortest_edge, signed_volume, triangle_angles,
    triangle_circumcenter, volume, TET_EDGES, TET_FACES,
};

/// Re-exported predicate entry points so downstream crates can depend on one
/// geometry facade.
pub use pi2m_predicates::{
    insphere, insphere_sign, insphere_sos, insphere_sos_batch, insphere_sos_staged,
    insphere_staged, orient3d, orient3d_batch, orient3d_batch4, orient3d_sign,
    orient3d_sign_staged, orient3d_staged, BatchStats, FilterStats, SemiStaticBounds, BATCH_LANES,
};
