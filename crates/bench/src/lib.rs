//! # pi2m-bench
//!
//! Shared plumbing for the per-table/per-figure harnesses (see DESIGN.md's
//! experiment index). Every harness prints the same rows/series the paper
//! reports; EXPERIMENTS.md records paper-vs-measured values.
//!
//! Knobs (environment variables):
//! * `PI2M_FULL=1` — run closer-to-paper problem sizes (slower).
//! * `PI2M_EPT` — target elements per virtual thread in scaling studies.
//! * `PI2M_REPORT_DIR` — when set, harnesses drop a machine-readable JSON
//!   run report per configuration into that directory (see `emit_report`).

pub mod kernel;
pub mod scaling;

use pi2m_obs::{OverheadBreakdown, RunReport};
use pi2m_refine::CmKind;
use pi2m_sim::SimStats;
use std::path::PathBuf;

/// True when `PI2M_FULL=1`: larger problems, longer runs.
pub fn full_mode() -> bool {
    std::env::var("PI2M_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Target elements per thread for weak-scaling studies.
pub fn elements_per_thread() -> f64 {
    std::env::var("PI2M_EPT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if full_mode() { 4000.0 } else { 1200.0 })
}

/// The weak-scaling δ for `n` threads given the 1-thread δ: the paper's
/// volume argument (§6.3) — "a decrease of δ by a factor of x results in an
/// x³ times increase of the mesh size" — so δ(n) = δ(1)·n^(-1/3) keeps
/// elements per thread constant.
pub fn weak_scaling_delta(delta1: f64, n: usize) -> f64 {
    delta1 * (n as f64).powf(-1.0 / 3.0)
}

/// All four contention managers in the paper's column order.
pub fn all_cms() -> [CmKind; 4] {
    [
        CmKind::Aggressive,
        CmKind::Random,
        CmKind::Global,
        CmKind::Local,
    ]
}

/// The wasted-cycle breakdown of one simulated run, in the shape the
/// `pi2m-obs` exporters consume.
pub fn sim_breakdown(stats: &SimStats) -> OverheadBreakdown {
    OverheadBreakdown {
        contention_s: stats.contention_overhead(),
        load_balance_s: stats.load_balance_overhead(),
        rollback_s: stats.rollback_overhead(),
        rollbacks: stats.total_rollbacks(),
        livelock: stats.livelock,
    }
}

/// Build a JSON run report for one simulated configuration. Harness-agnostic:
/// the caller adds any extra `config` keys before emitting.
pub fn sim_report(
    tool: &str,
    cm: CmKind,
    vthreads: usize,
    delta: f64,
    stats: &SimStats,
) -> RunReport {
    let mut r = RunReport::new(tool);
    r.config("cm", format!("{cm:?}"))
        .config("vthreads", vthreads)
        .config("delta", delta)
        .config("full_mode", full_mode());
    r.overheads = sim_breakdown(stats);
    r.threads = vthreads;
    r.wall_s = stats.vtime;
    r.elements = stats.final_elements as u64;
    r
}

/// Write `report` to `$PI2M_REPORT_DIR/<tool>-<suffix>.json` and return the
/// path; `None` (and no I/O) when the variable is unset. Harnesses call this
/// after each configuration so table/figure runs leave machine-readable
/// artifacts next to their printed output.
pub fn emit_report(report: &RunReport, suffix: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(std::env::var_os("PI2M_REPORT_DIR")?);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("PI2M_REPORT_DIR {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{}-{suffix}.json", report.tool));
    match std::fs::write(&path, report.to_json_string()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("{}: {e}", path.display());
            None
        }
    }
}

/// Pretty horizontal rule for harness output.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

/// Format a float with engineering-style compactness.
pub fn eng(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a >= 1e6 {
        format!(
            "{:.2}e{}",
            v / 10f64.powi(a.log10() as i32),
            a.log10() as i32
        )
    } else if a >= 100.0 {
        format!("{v:.0}")
    } else if a >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weak_delta_scales_cubically() {
        let d1 = 2.0;
        let d8 = weak_scaling_delta(d1, 8);
        assert!((d8 - 1.0).abs() < 1e-12);
        // elements ratio (d1/d8)^3 == 8
        assert!(((d1 / d8).powi(3) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn sim_report_round_trips_overheads() {
        let stats = SimStats {
            vtime: 2.0,
            final_elements: 500,
            ..Default::default()
        };
        let r = sim_report("table1_cm", CmKind::Local, 128, 1.1, &stats);
        assert_eq!(r.tool, "table1_cm");
        assert_eq!(r.threads, 128);
        assert_eq!(r.elements, 500);
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        assert_eq!(
            j.get("config").unwrap().get("cm").unwrap().as_str(),
            Some("Local")
        );
        assert_eq!(j.get("wall_s").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn eng_formats() {
        assert_eq!(eng(1234567.0), "1.23e6");
        assert_eq!(eng(123.4), "123");
        assert_eq!(eng(1.5), "1.50");
        assert_eq!(eng(0.0123), "0.0123");
    }
}
