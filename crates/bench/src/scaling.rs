//! Strong-scaling benchmark: the standard refinement workload at a ladder
//! of thread counts over ONE warm [`MeshingSession`], reported as
//! `BENCH_scaling.json` — the fig5-style speedup curve as a tracked
//! artifact, with the per-worker wall-time attribution explaining *where*
//! the non-scaling time went at every rung.
//!
//! Driven by `pi2m bench --scaling` (see the CLI) and by the CI
//! scaling-smoke job, which gates parallel efficiency against the committed
//! `ci/scaling_baseline.json` with a relative tolerance like the kernel
//! gate. Efficiency is compared *relatively* because absolute values are a
//! property of the host (a single-core CI runner legitimately reports
//! efficiency ~1/n — threads just timeshare the core).
//!
//! Schema of the emitted JSON (`schema_version` 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "pi2m-bench-scaling",
//!   "quick": false,
//!   "host_threads": 8,
//!   "workload": {"phantom": "sphere", "res": 32, "delta": 0.8},
//!   "points": [
//!     {"threads": 1, "ops": 31415, "elements": 9000, "seconds": 2.7,
//!      "ops_per_sec": 11635.0, "speedup": 1.0, "efficiency": 1.0,
//!      "rollbacks": 0, "rollback_rate": 0.0,
//!      "time_attribution": {"wall_s": 2.7, "totals": {...},
//!                           "fractions": {...}, "workers": [...]}},
//!     ...
//!   ]
//! }
//! ```
//!
//! `ops` counts committed refinement operations; `seconds` is the
//! refinement-section wall time (not whole-pipeline), so `ops_per_sec`
//! isolates the part of the pipeline that actually scales with threads.

use pi2m_obs::attribution::TimeAttribution;
use pi2m_obs::json::Json;
use pi2m_refine::{mesh_sharded, MachineTopology, MesherConfig, MeshingSession, ShardSpec};

/// Options for one scaling-bench run.
#[derive(Clone, Debug)]
pub struct ScalingBenchOpts {
    /// Smaller workload and a shorter thread ladder for CI smoke runs.
    pub quick: bool,
    /// Thread ladder. `None` picks 1/2/4/8/16 (quick: 1/2/4).
    pub threads: Option<Vec<usize>>,
    /// Phantom sphere resolution override (`None` = mode default).
    pub res: Option<usize>,
    /// Refinement δ override (`None` = mode default).
    pub delta: Option<f64>,
    /// Timed runs per rung; the best (highest ops/sec) is kept.
    pub runs_per_point: usize,
}

impl Default for ScalingBenchOpts {
    fn default() -> Self {
        ScalingBenchOpts {
            quick: false,
            threads: None,
            res: None,
            delta: None,
            runs_per_point: 2,
        }
    }
}

impl ScalingBenchOpts {
    fn thread_ladder(&self) -> Vec<usize> {
        match &self.threads {
            Some(t) => t.clone(),
            None if self.quick => vec![1, 2, 4],
            None => vec![1, 2, 4, 8, 16],
        }
    }

    fn workload(&self) -> (usize, f64) {
        let res = self.res.unwrap_or(if self.quick { 16 } else { 32 });
        let delta = self.delta.unwrap_or(if self.quick { 2.0 } else { 0.8 });
        (res, delta)
    }
}

/// One rung of the thread ladder.
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    pub threads: usize,
    /// Committed refinement operations.
    pub ops: u64,
    /// Final mesh elements.
    pub elements: u64,
    /// Refinement-section wall time, seconds.
    pub seconds: f64,
    pub rollbacks: u64,
    /// Per-worker wall-time decomposition of the kept run.
    pub attribution: TimeAttribution,
}

impl ScalingPoint {
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    /// Rollbacks per attempted operation (committed + rolled back).
    pub fn rollback_rate(&self) -> f64 {
        let attempts = self.ops + self.rollbacks;
        if attempts > 0 {
            self.rollbacks as f64 / attempts as f64
        } else {
            0.0
        }
    }
}

/// The sharded rung: the same workload meshed as a 2x1x1 chunk
/// decomposition with seam stitching at the widest thread count, so the
/// shard overhead (chunk meshing + stitch vs one monolithic run) is tracked
/// in the scaling baseline alongside the thread ladder. Recorded, not gated:
/// overhead is a property of the workload size, and the tiny CI workloads
/// legitimately pay proportionally more stitch.
#[derive(Clone, Debug)]
pub struct ShardRung {
    pub grid: [usize; 3],
    pub halo: usize,
    pub lanes: usize,
    /// Whole sharded-run wall time, seconds.
    pub wall_s: f64,
    /// Summed per-chunk meshing wall time, seconds.
    pub chunk_wall_s: f64,
    /// Seam-stitch pass wall time, seconds.
    pub stitch_wall_s: f64,
    /// Final stitched-mesh elements.
    pub elements: u64,
}

/// The full report of one `pi2m bench --scaling` run.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    pub quick: bool,
    /// `std::thread::available_parallelism()` of the measuring host — the
    /// context needed to read the efficiency column (a 1-core host cannot
    /// speed up, only timeshare).
    pub host_threads: usize,
    /// Workload identity: phantom sphere resolution and refinement δ.
    pub res: usize,
    pub delta: f64,
    pub points: Vec<ScalingPoint>,
    /// The sharded rung, when the bench ran one (see [`ShardRung`]).
    pub shard: Option<ShardRung>,
}

impl ScalingReport {
    fn base_ops_per_sec(&self) -> f64 {
        self.points
            .iter()
            .find(|p| p.threads == 1)
            .or(self.points.first())
            .map(ScalingPoint::ops_per_sec)
            .unwrap_or(0.0)
    }

    /// Throughput relative to the 1-thread rung.
    pub fn speedup(&self, p: &ScalingPoint) -> f64 {
        let base = self.base_ops_per_sec();
        if base > 0.0 {
            p.ops_per_sec() / base
        } else {
            0.0
        }
    }

    /// Parallel efficiency: speedup over thread count.
    pub fn efficiency(&self, p: &ScalingPoint) -> f64 {
        if p.threads > 0 {
            self.speedup(p) / p.threads as f64
        } else {
            0.0
        }
    }

    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::int(1)),
            ("tool", Json::str("pi2m-bench-scaling")),
            ("quick", Json::Bool(self.quick)),
            ("host_threads", Json::int(self.host_threads as u64)),
            (
                "workload",
                Json::obj(vec![
                    ("phantom", Json::str("sphere")),
                    ("res", Json::int(self.res as u64)),
                    ("delta", Json::num(self.delta)),
                ]),
            ),
            (
                "points",
                Json::Arr(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::obj(vec![
                                ("threads", Json::int(p.threads as u64)),
                                ("ops", Json::int(p.ops)),
                                ("elements", Json::int(p.elements)),
                                ("seconds", Json::num(p.seconds)),
                                ("ops_per_sec", Json::num(p.ops_per_sec())),
                                ("speedup", Json::num(self.speedup(p))),
                                ("efficiency", Json::num(self.efficiency(p))),
                                ("rollbacks", Json::int(p.rollbacks)),
                                ("rollback_rate", Json::num(p.rollback_rate())),
                                ("time_attribution", p.attribution.to_json()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(s) = &self.shard {
            fields.push((
                "shard",
                Json::obj(vec![
                    (
                        "grid",
                        Json::str(format!("{}x{}x{}", s.grid[0], s.grid[1], s.grid[2])),
                    ),
                    ("halo", Json::int(s.halo as u64)),
                    ("lanes", Json::int(s.lanes as u64)),
                    ("wall_s", Json::num(s.wall_s)),
                    ("chunk_wall_s", Json::num(s.chunk_wall_s)),
                    ("stitch_wall_s", Json::num(s.stitch_wall_s)),
                    ("elements", Json::int(s.elements)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().dump_pretty()
    }
}

/// Run the refinement workload up the thread ladder over one warm session.
pub fn run_scaling_bench(opts: ScalingBenchOpts) -> ScalingReport {
    let ladder = opts.thread_ladder();
    let (res, delta) = opts.workload();
    let max_threads = ladder.iter().copied().max().unwrap_or(1);
    let runs = opts.runs_per_point.max(1);

    let cfg_for = |threads: usize| MesherConfig {
        delta,
        threads,
        topology: MachineTopology::flat(threads),
        ..Default::default()
    };
    // One session for the whole ladder: pool sized to the widest rung up
    // front so no rung pays thread-spawn cost, arenas and grid stay warm.
    let mut session = MeshingSession::new(max_threads);
    let _warmup = session
        .mesh(pi2m_image::phantoms::sphere(res, 1.0), cfg_for(max_threads))
        .expect("scaling warmup run failed");

    let mut points = Vec::with_capacity(ladder.len());
    for &threads in &ladder {
        let mut best: Option<ScalingPoint> = None;
        for _ in 0..runs {
            let img = pi2m_image::phantoms::sphere(res, 1.0);
            let out = session
                .mesh(img, cfg_for(threads))
                .expect("scaling run failed");
            let point = ScalingPoint {
                threads,
                ops: out.stats.total_operations(),
                elements: out.mesh.num_tets() as u64,
                seconds: out.stats.wall_time,
                rollbacks: out.stats.total_rollbacks(),
                attribution: pi2m_obs::attribution::attribute(
                    &out.flight,
                    threads,
                    out.stats.wall_time,
                ),
            };
            let better = best
                .as_ref()
                .is_none_or(|b| point.ops_per_sec() > b.ops_per_sec());
            if better {
                best = Some(point);
            }
        }
        points.push(best.expect("at least one run per rung"));
    }

    // The sharded rung: same workload, 2x1x1 decomposition + stitch at the
    // widest thread count. The halo is the δ-derived default clamped below
    // the chunk core so tiny smoke workloads stay plannable.
    let grid = [2usize, 1, 1];
    let halo = pi2m_refine::shard::auto_halo(delta, 1.0).min((res / grid[0]).saturating_sub(1));
    let t0 = std::time::Instant::now();
    let run = mesh_sharded(
        &mut session,
        pi2m_image::phantoms::sphere(res, 1.0),
        cfg_for(max_threads),
        &Default::default(),
        &ShardSpec {
            grid,
            halo: Some(halo),
            lanes: None,
        },
    )
    .expect("sharded scaling rung failed");
    let phase_total = |name: &str| -> f64 {
        run.out
            .phases
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.dur_s)
            .sum()
    };
    let shard = Some(ShardRung {
        grid,
        halo: run.halo,
        lanes: run.lanes,
        wall_s: t0.elapsed().as_secs_f64(),
        chunk_wall_s: phase_total("shard_chunk"),
        stitch_wall_s: phase_total("shard_stitch"),
        elements: run.out.mesh.num_tets() as u64,
    });

    ScalingReport {
        quick: opts.quick,
        host_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        res,
        delta,
        points,
        shard,
    }
}

/// Render the human-readable ladder table printed by `pi2m bench --scaling`.
pub fn render_scaling_table(report: &ScalingReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>9} {:>10} {:>8} {:>10} {:>9} {:>9} {:>7}",
        "threads",
        "ops",
        "seconds",
        "ops/sec",
        "speedup",
        "efficiency",
        "rollbacks",
        "rb-rate",
        "idle"
    );
    for p in &report.points {
        let _ = writeln!(
            out,
            "{:>7} {:>10} {:>9.3} {:>10.0} {:>8.2} {:>10.3} {:>9} {:>9.4} {:>6.0}%",
            p.threads,
            p.ops,
            p.seconds,
            p.ops_per_sec(),
            report.speedup(p),
            report.efficiency(p),
            p.rollbacks,
            p.rollback_rate(),
            p.attribution
                .fraction(pi2m_obs::attribution::Category::Idle)
                * 100.0,
        );
    }
    if let Some(s) = &report.shard {
        let _ = writeln!(
            out,
            "sharded {}x{}x{} (halo {}, {} lane{}): {:.3}s wall \
             ({:.3}s chunks + {:.3}s stitch), {} elements",
            s.grid[0],
            s.grid[1],
            s.grid[2],
            s.halo,
            s.lanes,
            if s.lanes == 1 { "" } else { "s" },
            s.wall_s,
            s.chunk_wall_s,
            s.stitch_wall_s,
            s.elements
        );
    }
    out
}

/// Gate a fresh scaling report against a checked-in baseline JSON: for every
/// thread count present in both, parallel efficiency must be at least
/// `(1 - tolerance)` of the baseline's. The 1-thread rung anchors both
/// curves, so it is exempt (its efficiency is 1.0 by construction); absolute
/// throughput is the kernel gate's job. Returns the human-readable
/// comparison lines; `Err` lists the regressions.
pub fn check_scaling_baseline(
    report: &ScalingReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let base = pi2m_obs::json::parse(baseline_json).map_err(|e| format!("bad baseline: {e}"))?;
    let base_points = base
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("baseline missing 'points'")?;
    let base_eff = |threads: usize| -> Option<f64> {
        base_points
            .iter()
            .find(|p| p.get("threads").and_then(Json::as_f64) == Some(threads as f64))
            .and_then(|p| p.get("efficiency"))
            .and_then(Json::as_f64)
    };
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    let mut matched = 0usize;
    for p in &report.points {
        if p.threads <= 1 {
            continue;
        }
        let Some(b) = base_eff(p.threads) else {
            continue; // rung not in the baseline (quick vs full ladders)
        };
        matched += 1;
        let now = report.efficiency(p);
        let ratio = if b > 0.0 { now / b } else { f64::INFINITY };
        lines.push(format!(
            "{} threads: efficiency {now:.3} vs baseline {b:.3} (x{ratio:.2})",
            p.threads
        ));
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{} threads: efficiency {now:.3} is {:.0}% below baseline {b:.3}",
                p.threads,
                (1.0 - ratio) * 100.0
            ));
        }
    }
    if matched == 0 {
        return Err("no thread count overlaps between report and baseline".into());
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_attr(threads: usize, wall_s: f64) -> TimeAttribution {
        pi2m_obs::attribution::attribute(&[], threads, wall_s)
    }

    fn tiny_report() -> ScalingReport {
        let p = |threads: usize, ops: u64, seconds: f64, rollbacks: u64| ScalingPoint {
            threads,
            ops,
            elements: ops / 2,
            seconds,
            rollbacks,
            attribution: flat_attr(threads, seconds),
        };
        ScalingReport {
            quick: true,
            host_threads: 8,
            res: 16,
            delta: 2.0,
            points: vec![
                p(1, 10_000, 1.0, 0),
                p(2, 10_000, 0.55, 40),   // speedup 1.82, efficiency 0.91
                p(4, 10_000, 0.3125, 90), // speedup 3.2, efficiency 0.8
            ],
            shard: Some(ShardRung {
                grid: [2, 1, 1],
                halo: 4,
                lanes: 2,
                wall_s: 0.9,
                chunk_wall_s: 0.5,
                stitch_wall_s: 0.35,
                elements: 5_000,
            }),
        }
    }

    #[test]
    fn speedup_and_efficiency_math() {
        let r = tiny_report();
        assert!((r.speedup(&r.points[0]) - 1.0).abs() < 1e-12);
        assert!((r.speedup(&r.points[1]) - 1.0 / 0.55).abs() < 1e-9);
        assert!((r.efficiency(&r.points[2]) - 0.8).abs() < 1e-9);
        let rate = r.points[1].rollback_rate();
        assert!((rate - 40.0 / 10_040.0).abs() < 1e-12);
    }

    #[test]
    fn report_json_round_trips() {
        let r = tiny_report();
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        assert_eq!(j.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(j.get("tool").unwrap().as_str(), Some("pi2m-bench-scaling"));
        assert_eq!(
            j.get("workload").unwrap().get("res").unwrap().as_f64(),
            Some(16.0)
        );
        let points = j.get("points").unwrap().as_arr().unwrap();
        assert_eq!(points.len(), 3);
        let p4 = &points[2];
        assert_eq!(p4.get("threads").unwrap().as_f64(), Some(4.0));
        assert!((p4.get("efficiency").unwrap().as_f64().unwrap() - 0.8).abs() < 1e-9);
        // every rung carries its attribution with per-worker fractions
        let at = p4.get("time_attribution").expect("attribution");
        assert_eq!(at.get("workers").unwrap().as_arr().unwrap().len(), 4);
        // the sharded rung is recorded alongside the ladder
        let s = j.get("shard").expect("shard rung");
        assert_eq!(s.get("grid").unwrap().as_str(), Some("2x1x1"));
        assert_eq!(s.get("elements").unwrap().as_f64(), Some(5000.0));
        // ...and a baseline predating the rung still gates (points only)
        let mut old = tiny_report();
        old.shard = None;
        check_scaling_baseline(&tiny_report(), &old.to_json_string(), 0.25).unwrap();
    }

    #[test]
    fn baseline_gate_passes_on_itself_and_flags_regression() {
        let r = tiny_report();
        let baseline = r.to_json_string();
        let lines = check_scaling_baseline(&r, &baseline, 0.25).unwrap();
        assert_eq!(lines.len(), 2); // rungs 2 and 4; rung 1 exempt

        // halve the 4-thread throughput: efficiency drops 50%, over tolerance
        let mut slow = tiny_report();
        slow.points[2].seconds *= 2.0;
        let err = check_scaling_baseline(&slow, &baseline, 0.25).unwrap_err();
        assert!(err.contains("4 threads"), "{err}");
        // ...but a generous tolerance tolerates it
        check_scaling_baseline(&slow, &baseline, 0.6).unwrap();
    }

    #[test]
    fn baseline_gate_rejects_malformed_or_disjoint() {
        let r = tiny_report();
        assert!(check_scaling_baseline(&r, "{}", 0.25).is_err());
        assert!(check_scaling_baseline(&r, "not json", 0.25).is_err());
        let disjoint = "{\"points\": [{\"threads\": 32, \"efficiency\": 0.5}]}";
        let err = check_scaling_baseline(&r, disjoint, 0.25).unwrap_err();
        assert!(err.contains("overlap"), "{err}");
    }

    #[test]
    fn table_renders_every_rung() {
        let r = tiny_report();
        let t = render_scaling_table(&r);
        assert!(t.contains("threads"));
        assert_eq!(t.lines().count(), 5); // header + 3 rungs + shard line
        assert!(t.contains("0.800"));
        assert!(t.contains("sharded 2x1x1"), "{t}");
    }

    #[test]
    fn tiny_scaling_bench_runs_end_to_end() {
        // minimal smoke: a 2-rung ladder on a tiny phantom must complete,
        // measure real work, and produce unit attribution per worker
        let rep = run_scaling_bench(ScalingBenchOpts {
            quick: true,
            threads: Some(vec![1, 2]),
            res: Some(10),
            delta: Some(3.0),
            runs_per_point: 1,
        });
        assert_eq!(rep.points.len(), 2);
        for p in &rep.points {
            assert!(p.ops > 0, "{} threads measured no ops", p.threads);
            assert!(p.seconds > 0.0);
            assert_eq!(p.attribution.per_worker.len(), p.threads);
            for w in &p.attribution.per_worker {
                let sum: f64 = w.fractions().iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-6,
                    "threads {} tid {} fractions sum {sum}",
                    p.threads,
                    w.tid
                );
            }
        }
        // the sharded rung ran on the same warm session and measured work
        let s = rep.shard.as_ref().expect("shard rung");
        assert_eq!(s.grid, [2, 1, 1]);
        assert!(s.elements > 0);
        assert!(s.wall_s > 0.0);
        let j = pi2m_obs::json::parse(&rep.to_json_string()).unwrap();
        assert_eq!(j.get("points").unwrap().as_arr().unwrap().len(), 2);
        assert!(j.get("shard").is_some());
    }
}
