//! Kernel hot-path benchmark: fixed-seed insertion / removal / refinement
//! workloads, reported as `BENCH_kernel.json`.
//!
//! Driven by `pi2m bench` (see the CLI) and by the CI smoke job. The
//! workloads are deterministic in their *inputs* (seeded xorshift point
//! streams, fixed phantoms) so runs are comparable; wall-clock numbers vary
//! with the machine, which is why the regression check uses a generous
//! relative tolerance instead of exact values.
//!
//! Schema of the emitted JSON (`schema_version` 1):
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "tool": "pi2m-bench-kernel",
//!   "quick": false,
//!   "seed": 42,
//!   "workloads": {
//!     "insertion":  {"ops": 20000, "seconds": 1.9, "ops_per_sec": 10526.0},
//!     "removal":    {"ops": 4000,  "seconds": 1.1, "ops_per_sec": 3636.0},
//!     "refinement": {"ops": 31415, "seconds": 2.7, "ops_per_sec": 11635.0}
//!   },
//!   "predicates": {"orient_semi_static": 0, "orient_filtered": 0,
//!                  "orient_exact": 0, "insphere_semi_static": 0,
//!                  "insphere_filtered": 0, "insphere_exact": 0},
//!   "scratch": {"reuses": 0, "allocs": 0, "allocs_avoided": 0,
//!               "footprint_elems": 0},
//!   "flight_overhead": {"on": {...}, "off": {...}, "overhead_frac": 0.01},
//!   "batch": {"on": {...}, "off": {...}, "speedup": 1.2,
//!             "occupancy": 0.9, "fallback_rate": 0.02},
//!   "session": {"warm": {...}, "cold": {...}, "setup_saving_frac": 0.05},
//!   "parent_comparison": {"commit": "abc1234", "insertion_ops_per_sec": 0.0,
//!                         "insertion_speedup": 0.0}
//! }
//! ```
//!
//! `parent_comparison` is optional: an A/B record of an older kernel run on
//! the identical insertion workload (`--parent-commit`/`--parent-insertion`).
//!
//! `refinement.ops` counts finished tetrahedra (elements/second); the other
//! two count committed kernel operations.

use pi2m_delaunay::{SharedMesh, VertexKind};
use pi2m_geometry::{Aabb, BatchStats, FilterStats, Point3};
use pi2m_obs::json::Json;
use pi2m_refine::{MachineTopology, Mesher, MesherConfig, MeshingSession};
use std::time::Instant;

/// Options for one benchmark run.
#[derive(Clone, Copy, Debug)]
pub struct KernelBenchOpts {
    /// Smaller workloads for CI smoke runs.
    pub quick: bool,
    /// Seed of the deterministic point streams.
    pub seed: u64,
}

impl Default for KernelBenchOpts {
    fn default() -> Self {
        KernelBenchOpts {
            quick: false,
            seed: 42,
        }
    }
}

/// One timed workload.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadResult {
    /// Committed operations (or finished elements for refinement).
    pub ops: u64,
    /// Wall time spent in the timed section.
    pub seconds: f64,
}

impl WorkloadResult {
    pub fn ops_per_sec(&self) -> f64 {
        if self.seconds > 0.0 {
            self.ops as f64 / self.seconds
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("ops", Json::int(self.ops)),
            ("seconds", Json::num(self.seconds)),
            ("ops_per_sec", Json::num(self.ops_per_sec())),
        ])
    }
}

/// The refinement workload measured with the concurrency flight recorder on
/// and off (best of two runs each, to cut scheduler noise). The recorder is
/// always-on in production, so its cost is budgeted and gated in CI.
#[derive(Clone, Copy, Debug)]
pub struct FlightOverhead {
    pub on: WorkloadResult,
    pub off: WorkloadResult,
}

impl FlightOverhead {
    /// Fraction of throughput lost to the recorder (negative = noise made
    /// the recorded run faster).
    pub fn overhead_frac(&self) -> f64 {
        let (on, off) = (self.on.ops_per_sec(), self.off.ops_per_sec());
        if off > 0.0 {
            1.0 - on / off
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("on", self.on.to_json()),
            ("off", self.off.to_json()),
            ("overhead_frac", Json::num(self.overhead_frac())),
        ])
    }
}

/// The insertion workload with the batched SoA kernel path on vs off.
///
/// Measured chunk-interleaved: two meshes consume the identical point
/// stream in lockstep, in small chunks, alternating which mode goes first
/// within each chunk, and each side is timed in *thread CPU time* — so
/// slow machine drift (frequency scaling, noisy neighbors) hits both modes
/// nearly equally and scheduler preemption is excluded outright. The
/// median rep by on/off ratio discards pairs a hiccup skewed anyway.
/// `seconds` in `on`/`off` is therefore CPU seconds, not wall time.
///
/// The batched path is result-identical to the scalar one, so this is a
/// pure throughput A/B; `occupancy` and `fallback_rate` come from the
/// batched side's [`pi2m_geometry::BatchStats`] and explain the speedup
/// (full waves with few scalar fallbacks is where the wide lanes pay).
#[derive(Clone, Copy, Debug)]
pub struct BatchComparison {
    /// Insertion with the batched path (the production default).
    pub on: WorkloadResult,
    /// Insertion forced down the scalar path (`--no-batch`).
    pub off: WorkloadResult,
    /// Mean wave fill relative to `BATCH_LANES`, from the batched run.
    pub occupancy: f64,
    /// Fraction of lanes that fell back to the scalar cascade.
    pub fallback_rate: f64,
}

impl BatchComparison {
    /// Batched-on throughput relative to batched-off (>1 = batching wins).
    pub fn speedup(&self) -> f64 {
        let off = self.off.ops_per_sec();
        if off > 0.0 {
            self.on.ops_per_sec() / off
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("on", self.on.to_json()),
            ("off", self.off.to_json()),
            ("speedup", Json::num(self.speedup())),
            ("occupancy", Json::num(self.occupancy)),
            ("fallback_rate", Json::num(self.fallback_rate)),
        ])
    }
}

/// Full pipeline runs over one warm [`MeshingSession`] vs fresh cold
/// [`Mesher`] runs on the identical input. `ops` counts *runs*, so
/// `ops_per_sec()` is runs/second; the gap is pure per-run setup cost
/// (thread spawning, arena/grid/ring allocation) that the session amortizes.
#[derive(Clone, Copy, Debug)]
pub struct SessionComparison {
    pub warm: WorkloadResult,
    pub cold: WorkloadResult,
}

impl SessionComparison {
    /// Fraction of a cold run's wall time saved by reusing a warm session
    /// (negative = noise made the cold runs faster).
    pub fn setup_saving_frac(&self) -> f64 {
        let (warm, cold) = (self.warm.ops_per_sec(), self.cold.ops_per_sec());
        if warm > 0.0 {
            1.0 - cold / warm
        } else {
            0.0
        }
    }

    fn to_json(self) -> Json {
        Json::obj(vec![
            ("warm", self.warm.to_json()),
            ("cold", self.cold.to_json()),
            ("setup_saving_frac", Json::num(self.setup_saving_frac())),
        ])
    }
}

/// A reference measurement of an older kernel on the identical insertion
/// workload (recorded with `pi2m bench --parent-commit --parent-insertion`,
/// measured via the same point stream on the same machine).
pub struct ParentComparison {
    /// Commit of the reference kernel.
    pub commit: String,
    /// Its single-thread insertion throughput.
    pub insertion_ops_per_sec: f64,
}

/// The full report of one `pi2m bench` run.
pub struct KernelBenchReport {
    pub opts: KernelBenchOpts,
    pub insertion: WorkloadResult,
    pub removal: WorkloadResult,
    pub refinement: WorkloadResult,
    /// Optional A/B record against a pre-change kernel.
    pub parent: Option<ParentComparison>,
    /// Predicate stage hits summed over the insertion + removal workloads.
    pub pred: FilterStats,
    /// Scratch reuse counters summed over the insertion + removal workloads.
    pub scratch_reuses: u64,
    pub scratch_allocs: u64,
    /// Arena capacity high-water mark at the end (elements, not bytes).
    pub scratch_footprint: usize,
    /// Refinement throughput with the flight recorder on vs off.
    pub flight: FlightOverhead,
    /// Insertion throughput with the batched kernel path on vs off.
    pub batch: BatchComparison,
    /// Whole-pipeline runs over one warm session vs fresh cold meshers.
    pub session: SessionComparison,
}

impl KernelBenchReport {
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("schema_version", Json::int(1)),
            ("tool", Json::str("pi2m-bench-kernel")),
            ("quick", Json::Bool(self.opts.quick)),
            ("seed", Json::int(self.opts.seed)),
            (
                "workloads",
                Json::obj(vec![
                    ("insertion", self.insertion.to_json()),
                    ("removal", self.removal.to_json()),
                    ("refinement", self.refinement.to_json()),
                ]),
            ),
            (
                "predicates",
                Json::obj(vec![
                    (
                        "orient_semi_static",
                        Json::int(self.pred.orient_semi_static),
                    ),
                    ("orient_filtered", Json::int(self.pred.orient_filtered)),
                    ("orient_exact", Json::int(self.pred.orient_exact)),
                    (
                        "insphere_semi_static",
                        Json::int(self.pred.insphere_semi_static),
                    ),
                    ("insphere_filtered", Json::int(self.pred.insphere_filtered)),
                    ("insphere_exact", Json::int(self.pred.insphere_exact)),
                ]),
            ),
            (
                "scratch",
                Json::obj(vec![
                    ("reuses", Json::int(self.scratch_reuses)),
                    ("allocs", Json::int(self.scratch_allocs)),
                    // every reuse is a buffer that did not have to grow cold
                    ("allocs_avoided", Json::int(self.scratch_reuses)),
                    ("footprint_elems", Json::int(self.scratch_footprint as u64)),
                ]),
            ),
            ("flight_overhead", self.flight.to_json()),
            ("batch", self.batch.to_json()),
            ("session", self.session.to_json()),
        ];
        if let Some(p) = &self.parent {
            let speedup = if p.insertion_ops_per_sec > 0.0 {
                self.insertion.ops_per_sec() / p.insertion_ops_per_sec
            } else {
                0.0
            };
            fields.push((
                "parent_comparison",
                Json::obj(vec![
                    ("commit", Json::str(&p.commit)),
                    ("insertion_ops_per_sec", Json::num(p.insertion_ops_per_sec)),
                    ("insertion_speedup", Json::num(speedup)),
                ]),
            ));
        }
        Json::obj(fields)
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().dump_pretty()
    }
}

/// Current thread CPU time in seconds, from `/proc/self/schedstat` (field
/// one: nanoseconds actually spent on-CPU). Unlike wall time this excludes
/// preemption by other processes, which is exactly the noise the
/// chunk-interleaved batch A/B wants gone. Falls back to wall time where
/// schedstat is unavailable (non-Linux); deltas stay meaningful either way.
fn cpu_seconds() -> f64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    if let Some(ns) = std::fs::read_to_string("/proc/self/schedstat")
        .ok()
        .and_then(|s| {
            s.split_whitespace()
                .next()
                .and_then(|v| v.parse::<u64>().ok())
        })
    {
        ns as f64 / 1e9
    } else {
        EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
    }
}

fn xorshift_stream(seed: u64) -> impl FnMut() -> f64 {
    let mut s = seed.max(1);
    move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        (s >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run the three workloads and collect the report.
pub fn run_kernel_bench(opts: KernelBenchOpts) -> KernelBenchReport {
    let (n_insert, sphere_res) = if opts.quick {
        (4_000, 16)
    } else {
        (20_000, 24)
    };

    // ---- insertion: N seeded pseudo-random points, one worker ----
    let mesh = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));
    let mut ctx = mesh.make_ctx(0);
    let mut next = xorshift_stream(opts.seed);
    let points: Vec<[f64; 3]> = (0..n_insert)
        .map(|_| {
            [
                next() * 0.98 + 0.01,
                next() * 0.98 + 0.01,
                next() * 0.98 + 0.01,
            ]
        })
        .collect();
    let t0 = Instant::now();
    let mut inserted = Vec::with_capacity(points.len());
    for &p in &points {
        if let Ok(r) = ctx.insert(p, VertexKind::Circumcenter) {
            inserted.push(r.vertex);
            ctx.recycle_insert(r);
        }
    }
    let insertion = WorkloadResult {
        ops: inserted.len() as u64,
        seconds: t0.elapsed().as_secs_f64(),
    };

    // ---- removal: every 4th inserted vertex, same mesh ----
    let t0 = Instant::now();
    let mut removed = 0u64;
    for v in inserted.iter().copied().step_by(4) {
        if let Ok(r) = ctx.remove(v) {
            removed += 1;
            ctx.recycle_remove(r);
        }
    }
    let removal = WorkloadResult {
        ops: removed,
        seconds: t0.elapsed().as_secs_f64(),
    };

    let pred = ctx.take_pred_stats();
    let ss = ctx.take_scratch_stats();
    let footprint = ctx.scratch_footprint();

    // ---- batch A/B: the identical single-thread insertion workload with
    // the batched SoA path on vs off. Chunk-interleaved lockstep: both
    // meshes advance through the same point stream in 2000-point chunks,
    // alternating which mode goes first within each chunk, each side timed
    // in thread CPU time. Whole-run pairing (the old scheme) left each
    // side exposed to seconds of machine drift; interleaving at chunk
    // granularity bounds the drift either side can absorb alone to one
    // chunk's worth, and CPU time removes preemption from the measurement
    // entirely. Median rep by on/off ratio, after a discarded warmup.
    //
    // The A/B gets its own, longer point stream: real meshes outgrow the
    // last-level cache, and the batched path's advantage (snapshot reuse,
    // lookahead prefetching) is largely a cache-pressure effect that the
    // small headline workload does not generate.
    let batch_points: Vec<[f64; 3]> = if opts.quick {
        points.clone()
    } else {
        (0..100_000)
            .map(|_| {
                [
                    next() * 0.98 + 0.01,
                    next() * 0.98 + 0.01,
                    next() * 0.98 + 0.01,
                ]
            })
            .collect()
    };
    let run_pair = || -> (WorkloadResult, WorkloadResult, BatchStats) {
        let mesh_on = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));
        let mesh_off = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));
        let mut ctx_on = mesh_on.make_ctx(0);
        ctx_on.set_batch(true);
        let mut ctx_off = mesh_off.make_ctx(0);
        ctx_off.set_batch(false);
        let (mut t_on, mut t_off) = (0.0f64, 0.0f64);
        let (mut ops_on, mut ops_off) = (0u64, 0u64);
        for (ci, chunk) in batch_points.chunks(2000).enumerate() {
            let one = |ctx: &mut pi2m_delaunay::OpCtx, t: &mut f64, ops: &mut u64| {
                let t0 = cpu_seconds();
                for &p in chunk {
                    if let Ok(r) = ctx.insert(p, VertexKind::Circumcenter) {
                        *ops += 1;
                        ctx.recycle_insert(r);
                    }
                }
                *t += cpu_seconds() - t0;
            };
            if ci % 2 == 0 {
                one(&mut ctx_on, &mut t_on, &mut ops_on);
                one(&mut ctx_off, &mut t_off, &mut ops_off);
            } else {
                one(&mut ctx_off, &mut t_off, &mut ops_off);
                one(&mut ctx_on, &mut t_on, &mut ops_on);
            }
        }
        (
            WorkloadResult {
                ops: ops_on,
                seconds: t_on,
            },
            WorkloadResult {
                ops: ops_off,
                seconds: t_off,
            },
            ctx_on.take_batch_stats(),
        )
    };
    let _warmup = run_pair();
    let breps = if opts.quick { 3 } else { 7 };
    let mut brecs: Vec<(WorkloadResult, WorkloadResult, BatchStats)> =
        (0..breps).map(|_| run_pair()).collect();
    let bratio = |r: &(WorkloadResult, WorkloadResult, BatchStats)| {
        r.0.ops_per_sec() / r.1.ops_per_sec().max(1e-12)
    };
    brecs.sort_by(|p, q| bratio(p).total_cmp(&bratio(q)));
    let (batch_on, batch_off, batch_stats) = brecs[brecs.len() / 2];
    let batch = BatchComparison {
        on: batch_on,
        off: batch_off,
        occupancy: batch_stats.occupancy(),
        fallback_rate: batch_stats.fallback_rate(),
    };

    // ---- refinement: the full pipeline on a phantom, one thread ----
    // The recorder-on/off comparison runs as back-to-back (on, off) pairs
    // after a discarded warmup and keeps the *median* pair by on/off ratio:
    // pairing makes slow scheduler/frequency drift hit both sides of each
    // ratio equally, and the median discards pairs a CPU hiccup skewed
    // either way. The flight-on number is the headline `refinement`
    // workload because the recorder is on in production.
    let delta = if opts.quick { 2.0 } else { 1.5 };
    let run_refinement = |flight: bool| -> WorkloadResult {
        let img = pi2m_image::phantoms::sphere(sphere_res, 1.0);
        let t0 = Instant::now();
        let out = Mesher::new(
            img,
            MesherConfig {
                delta,
                threads: 1,
                topology: MachineTopology::flat(1),
                flight,
                ..Default::default()
            },
        )
        .run();
        WorkloadResult {
            ops: out.mesh.num_tets() as u64,
            seconds: t0.elapsed().as_secs_f64(),
        }
    };
    let _warmup = run_refinement(true);
    let mut pairs: Vec<(WorkloadResult, WorkloadResult)> = (0..7)
        .map(|_| (run_refinement(true), run_refinement(false)))
        .collect();
    let ratio =
        |p: &(WorkloadResult, WorkloadResult)| p.0.ops_per_sec() / p.1.ops_per_sec().max(1e-12);
    pairs.sort_by(|p, q| ratio(p).total_cmp(&ratio(q)));
    let (flight_on, flight_off) = pairs[pairs.len() / 2];

    // ---- session: warm MeshingSession vs cold Mesher, identical input ----
    // Small input + several threads so per-run setup (thread spawn, arena /
    // grid / flight-ring allocation) is a visible slice of the wall time.
    // Runs are interleaved warm,cold,warm,cold,... so machine drift hits
    // both sides equally.
    let (session_runs, session_res, session_threads) =
        if opts.quick { (4, 12, 2) } else { (8, 16, 4) };
    let session_cfg = || MesherConfig {
        delta: 2.0,
        threads: session_threads,
        topology: MachineTopology::flat(session_threads),
        ..Default::default()
    };
    let mut session = MeshingSession::new(session_threads);
    // prime the pool so the first timed warm run is actually warm
    let _ = session
        .mesh(
            pi2m_image::phantoms::sphere(session_res, 1.0),
            session_cfg(),
        )
        .expect("session warmup run failed");
    let (mut warm_s, mut cold_s) = (0.0f64, 0.0f64);
    for _ in 0..session_runs {
        let img = pi2m_image::phantoms::sphere(session_res, 1.0);
        let t0 = Instant::now();
        let _ = session
            .mesh(img, session_cfg())
            .expect("warm session run failed");
        warm_s += t0.elapsed().as_secs_f64();

        let img = pi2m_image::phantoms::sphere(session_res, 1.0);
        let t0 = Instant::now();
        let _ = Mesher::new(img, session_cfg()).run();
        cold_s += t0.elapsed().as_secs_f64();
    }
    let session = SessionComparison {
        warm: WorkloadResult {
            ops: session_runs,
            seconds: warm_s,
        },
        cold: WorkloadResult {
            ops: session_runs,
            seconds: cold_s,
        },
    };

    KernelBenchReport {
        opts,
        insertion,
        removal,
        refinement: flight_on,
        parent: None,
        pred,
        scratch_reuses: ss.reuses,
        scratch_allocs: ss.allocs,
        scratch_footprint: footprint,
        flight: FlightOverhead {
            on: flight_on,
            off: flight_off,
        },
        batch,
        session,
    }
}

/// Gate the flight-recorder cost: the refinement workload with the recorder
/// on must lose no more than `max_frac` of its recorder-off throughput.
/// Returns the human-readable comparison line; `Err` carries the same line
/// when the gate fails.
pub fn check_flight_overhead(report: &KernelBenchReport, max_frac: f64) -> Result<String, String> {
    let f = &report.flight;
    let line = format!(
        "flight overhead {:+.2}% (on {:.0} vs off {:.0} ops/s, gate {:.0}%)",
        f.overhead_frac() * 100.0,
        f.on.ops_per_sec(),
        f.off.ops_per_sec(),
        max_frac * 100.0
    );
    if f.overhead_frac() > max_frac {
        Err(line)
    } else {
        Ok(line)
    }
}

/// Compare a fresh report against a checked-in baseline JSON: each workload's
/// `ops_per_sec` must be at least `(1 - tolerance)` of the baseline's.
/// Returns the human-readable comparison lines; `Err` lists the regressions.
pub fn check_against_baseline(
    report: &KernelBenchReport,
    baseline_json: &str,
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let base = pi2m_obs::json::parse(baseline_json).map_err(|e| format!("bad baseline: {e}"))?;
    let workloads = base
        .get("workloads")
        .ok_or("baseline missing 'workloads'")?;
    let current = [
        ("insertion", report.insertion.ops_per_sec()),
        ("removal", report.removal.ops_per_sec()),
        ("refinement", report.refinement.ops_per_sec()),
    ];
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for (name, now) in current {
        let Some(b) = workloads
            .get(name)
            .and_then(|w| w.get("ops_per_sec"))
            .and_then(Json::as_f64)
        else {
            return Err(format!("baseline missing workloads.{name}.ops_per_sec"));
        };
        let ratio = if b > 0.0 { now / b } else { f64::INFINITY };
        lines.push(format!(
            "{name:<10} {now:>12.0} ops/s vs baseline {b:>12.0} (x{ratio:.2})"
        ));
        if ratio < 1.0 - tolerance {
            regressions.push(format!(
                "{name}: {now:.0} ops/s is {:.0}% below baseline {b:.0}",
                (1.0 - ratio) * 100.0
            ));
        }
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(regressions.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> KernelBenchReport {
        KernelBenchReport {
            opts: KernelBenchOpts {
                quick: true,
                seed: 1,
            },
            insertion: WorkloadResult {
                ops: 1000,
                seconds: 0.5,
            },
            removal: WorkloadResult {
                ops: 100,
                seconds: 0.25,
            },
            refinement: WorkloadResult {
                ops: 5000,
                seconds: 1.0,
            },
            parent: None,
            pred: FilterStats::default(),
            scratch_reuses: 10,
            scratch_allocs: 2,
            scratch_footprint: 1234,
            flight: FlightOverhead {
                on: WorkloadResult {
                    ops: 5000,
                    seconds: 1.01,
                },
                off: WorkloadResult {
                    ops: 5000,
                    seconds: 1.0,
                },
            },
            batch: BatchComparison {
                on: WorkloadResult {
                    ops: 1000,
                    seconds: 0.4,
                },
                off: WorkloadResult {
                    ops: 1000,
                    seconds: 0.5,
                },
                occupancy: 0.9,
                fallback_rate: 0.02,
            },
            session: SessionComparison {
                warm: WorkloadResult {
                    ops: 8,
                    seconds: 1.9,
                },
                cold: WorkloadResult {
                    ops: 8,
                    seconds: 2.0,
                },
            },
        }
    }

    #[test]
    fn report_json_round_trips() {
        let r = tiny_report();
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        assert_eq!(j.get("schema_version").unwrap().as_f64(), Some(1.0));
        assert_eq!(
            j.get("workloads")
                .unwrap()
                .get("insertion")
                .unwrap()
                .get("ops_per_sec")
                .unwrap()
                .as_f64(),
            Some(2000.0)
        );
        assert_eq!(
            j.get("scratch")
                .unwrap()
                .get("allocs_avoided")
                .unwrap()
                .as_f64(),
            Some(10.0)
        );
    }

    #[test]
    fn parent_comparison_round_trips_with_speedup() {
        let mut r = tiny_report();
        r.parent = Some(ParentComparison {
            commit: "abc1234".into(),
            insertion_ops_per_sec: 1000.0,
        });
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        let p = j.get("parent_comparison").expect("parent block");
        assert_eq!(p.get("commit").unwrap().as_str(), Some("abc1234"));
        // 1000 ops / 0.5 s = 2000 ops/s now vs 1000 then: 2x
        assert_eq!(p.get("insertion_speedup").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn flight_overhead_round_trips_and_gates() {
        let r = tiny_report();
        // 5000/1.01 vs 5000/1.0: ~0.99% overhead
        let frac = r.flight.overhead_frac();
        assert!(frac > 0.0 && frac < 0.02, "frac {frac}");
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        let fo = j.get("flight_overhead").expect("flight_overhead block");
        assert!(fo.get("on").unwrap().get("ops_per_sec").is_some());
        assert!(fo.get("off").unwrap().get("ops_per_sec").is_some());
        assert_eq!(fo.get("overhead_frac").unwrap().as_f64(), Some(frac));
        // within a 5% gate
        check_flight_overhead(&r, 0.05).unwrap();
        // a 10% slowdown trips the same gate
        let mut slow = tiny_report();
        slow.flight.on.seconds = 1.12;
        let err = check_flight_overhead(&slow, 0.05).unwrap_err();
        assert!(err.contains("flight overhead"), "{err}");
    }

    #[test]
    fn batch_comparison_round_trips() {
        let r = tiny_report();
        // 1000/0.4 vs 1000/0.5: 1.25x
        assert!((r.batch.speedup() - 1.25).abs() < 1e-9);
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        let b = j.get("batch").expect("batch block");
        assert_eq!(b.get("speedup").unwrap().as_f64(), Some(1.25));
        assert_eq!(b.get("occupancy").unwrap().as_f64(), Some(0.9));
        assert_eq!(b.get("fallback_rate").unwrap().as_f64(), Some(0.02));
        assert!(b.get("on").unwrap().get("ops_per_sec").is_some());
        assert!(b.get("off").unwrap().get("ops_per_sec").is_some());
        // the baseline gate reads only the three kernel workloads: a
        // baseline that predates the batch block still checks (see
        // session_comparison_round_trips)
    }

    #[test]
    fn session_comparison_round_trips() {
        let r = tiny_report();
        // 8 runs / 1.9 s warm vs 8 / 2.0 s cold: 5% of a cold run saved
        let frac = r.session.setup_saving_frac();
        assert!((frac - 0.05).abs() < 1e-9, "frac {frac}");
        let j = pi2m_obs::json::parse(&r.to_json_string()).unwrap();
        let s = j.get("session").expect("session block");
        assert!(s.get("warm").unwrap().get("ops_per_sec").is_some());
        assert!(s.get("cold").unwrap().get("ops_per_sec").is_some());
        assert_eq!(s.get("setup_saving_frac").unwrap().as_f64(), Some(frac));
        // the baseline gate only reads the three kernel workloads, so a
        // baseline written before the session block existed still checks
        check_against_baseline(&r, "{\"workloads\": {\"insertion\": {\"ops_per_sec\": 2000.0}, \"removal\": {\"ops_per_sec\": 400.0}, \"refinement\": {\"ops_per_sec\": 5000.0}}}", 0.25).unwrap();
    }

    #[test]
    fn baseline_check_passes_within_tolerance() {
        let r = tiny_report();
        let baseline = r.to_json_string();
        let lines = check_against_baseline(&r, &baseline, 0.25).unwrap();
        assert_eq!(lines.len(), 3);
    }

    #[test]
    fn baseline_check_flags_regression() {
        let mut r = tiny_report();
        let baseline = r.to_json_string();
        // halve throughput: 50% below baseline, over the 25% tolerance
        r.insertion.seconds *= 2.0;
        let err = check_against_baseline(&r, &baseline, 0.25).unwrap_err();
        assert!(err.contains("insertion"), "{err}");
    }

    #[test]
    fn baseline_check_rejects_malformed() {
        let r = tiny_report();
        assert!(check_against_baseline(&r, "{}", 0.25).is_err());
        assert!(check_against_baseline(&r, "not json", 0.25).is_err());
    }

    #[test]
    fn quick_bench_runs_end_to_end() {
        // minimal smoke: the harness itself must complete and observe work
        let rep = run_kernel_bench(KernelBenchOpts {
            quick: true,
            seed: 7,
        });
        assert!(rep.insertion.ops > 3_000);
        assert!(rep.removal.ops > 100);
        assert!(rep.refinement.ops > 100);
        assert!(rep.pred.orient_total() > 0);
        assert!(rep.pred.insphere_total() > 0);
        assert!(
            rep.pred.orient_semi_static > rep.pred.orient_exact,
            "semi-static stage should dominate on generic input"
        );
        assert!(rep.scratch_reuses > rep.scratch_allocs);
        // the batched A/B must have observed real waves on the on-side
        assert!(rep.batch.on.ops > 3_000);
        assert!(rep.batch.off.ops > 3_000);
        assert!(rep.batch.occupancy > 0.0, "no waves recorded");
        assert!(rep.batch.fallback_rate < 1.0, "nothing certified");
        let j = pi2m_obs::json::parse(&rep.to_json_string()).unwrap();
        assert!(j.get("workloads").is_some());
        assert!(j.get("batch").is_some());
    }
}
