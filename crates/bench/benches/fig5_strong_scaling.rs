//! **Figure 5** — strong scaling: Random Work Stealing (RWS) vs Hierarchical
//! Work Stealing (HWS) on the simulated Blacklight with a *fixed* problem
//! size:
//!
//! * (a) speedup curves — RWS deteriorates past 64 cores, HWS keeps
//!   improving through 176;
//! * (b) inter-blade accesses — HWS cuts them (paper: −28.8% at 176 cores,
//!   98.9% of donations served within the blade);
//! * (c) overhead breakdown per thread for HWS across core counts.
//!
//! Run: `cargo bench -p pi2m-bench --bench fig5_strong_scaling`

use pi2m_bench::full_mode;
use pi2m_image::phantoms;
use pi2m_refine::BalancerKind;
use pi2m_sim::{SimConfig, SimMachine, SimMesher, SimStats};

fn main() {
    let thread_counts = [1usize, 16, 32, 64, 128, 144, 160, 176];
    let delta = if full_mode() { 0.7 } else { 1.1 };
    let img = phantoms::abdominal(1.0);

    let run = |bal: BalancerKind, n: usize| -> SimStats {
        let cfg = SimConfig {
            vthreads: n,
            machine: SimMachine::blacklight(),
            delta,
            balancer: bal,
            livelock_vtime: 2.0,
            ..Default::default()
        };
        SimMesher::new(img.clone(), cfg).run().stats
    };

    let mut rws: Vec<SimStats> = Vec::new();
    let mut hws: Vec<SimStats> = Vec::new();
    for &n in &thread_counts {
        rws.push(run(BalancerKind::Rws, n));
        hws.push(run(BalancerKind::Hws, n));
    }
    let t1 = hws[0].vtime.min(rws[0].vtime);

    println!(
        "Figure 5a — strong scaling speedup (fixed problem, {} elements)",
        hws[0].final_elements
    );
    println!("{:<10} {:>12} {:>12}", "#Threads", "RWS", "HWS");
    for (i, &n) in thread_counts.iter().enumerate() {
        println!(
            "{n:<10} {:>12.2} {:>12.2}",
            t1 / rws[i].vtime,
            t1 / hws[i].vtime
        );
    }

    println!("\nFigure 5b — inter-blade accesses");
    println!(
        "{:<10} {:>14} {:>14} {:>12}",
        "#Threads", "RWS", "HWS", "reduction"
    );
    for (i, &n) in thread_counts.iter().enumerate() {
        let (a, b) = (rws[i].inter_blade_touches, hws[i].inter_blade_touches);
        let red = if a > 0 {
            100.0 * (a.saturating_sub(b)) as f64 / a as f64
        } else {
            0.0
        };
        println!("{n:<10} {a:>14} {b:>14} {red:>11.1}%");
    }
    // donation locality at the largest count
    let last = hws.last().unwrap();
    let total_don = last.total_donations();
    let cross = last.inter_blade_donations();
    if total_don > 0 {
        println!(
            "\nHWS at {} threads: {:.1}% of donations served within the blade",
            thread_counts.last().unwrap(),
            100.0 * (total_don - cross) as f64 / total_don as f64
        );
    }

    println!("\nFigure 5c — HWS overhead breakdown (total seconds across threads)");
    println!(
        "{:<10} {:>14} {:>14} {:>14} {:>14}",
        "#Threads", "contention", "load balance", "rollback", "per-thread"
    );
    for (i, &n) in thread_counts.iter().enumerate() {
        let s = &hws[i];
        println!(
            "{n:<10} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            s.contention_overhead(),
            s.load_balance_overhead(),
            s.rollback_overhead(),
            s.overhead_per_thread()
        );
    }
}
