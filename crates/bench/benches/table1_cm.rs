//! **Table 1** — contention manager comparison on the simulated Blacklight
//! at 128 and 256 cores: execution time, rollbacks, the three overhead
//! categories, speedup, and livelock occurrence.
//!
//! Paper reference points (150M-element abdominal mesh):
//! * 128 cores: Aggressive livelocks; Random 64.2 s / 2.48e6 rollbacks;
//!   Global 23.7 s (speedup 45.6); Local 19.3 s (speedup 56.0).
//! * 256 cores: Random also livelocks; Global 22.3 s (48.4);
//!   Local 14.1 s (76.6), with Local showing *more* rollbacks but *less*
//!   contention overhead than Global.
//!
//! Run: `cargo bench -p pi2m-bench --bench table1_cm` (set `PI2M_FULL=1`
//! for a larger mesh).

//!
//! Set `PI2M_REPORT_DIR` to also drop a JSON run report per configuration.

use pi2m_bench::{all_cms, emit_report, eng, full_mode, rule, sim_report};
use pi2m_image::phantoms;
use pi2m_sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let scale = if full_mode() { 1.4 } else { 1.0 };
    let delta1 = if full_mode() { 0.7 } else { 1.1 };
    let img = phantoms::abdominal(scale);

    // sequential reference for speedups
    let seq = SimMesher::new(
        img.clone(),
        SimConfig {
            vthreads: 1,
            machine: SimMachine::blacklight(),
            delta: delta1,
            ..Default::default()
        },
    )
    .run();
    println!(
        "single-threaded reference: {} elements in {:.3} virtual s\n",
        seq.stats.final_elements, seq.stats.vtime
    );

    for cores in [128usize, 256] {
        println!(
            "Table 1{} — {cores} cores",
            if cores == 128 { "a" } else { "b" }
        );
        println!(
            "{:<28} {:>12} {:>12} {:>12} {:>12}",
            "", "Aggressive", "Random", "Global", "Local"
        );
        let mut rows: Vec<Vec<String>> = vec![Vec::new(); 8];
        for cm in all_cms() {
            let cfg = SimConfig {
                vthreads: cores,
                machine: SimMachine::blacklight(),
                delta: delta1,
                cm,
                livelock_vtime: 0.25,
                max_events: 25_000_000,
                max_real_seconds: 75.0,
                ..Default::default()
            };
            let out = SimMesher::new(img.clone(), cfg).run();
            let s = &out.stats;
            let report = sim_report("table1_cm", cm, cores, delta1, s);
            emit_report(&report, &format!("{cores}c-{cm:?}"));
            if s.livelock || s.aborted {
                for row in rows.iter_mut().take(7) {
                    row.push("n/a".into());
                }
                rows[7].push("yes".into());
            } else {
                rows[0].push(format!("{:.3}", s.vtime));
                rows[1].push(format!("{}", s.total_rollbacks()));
                rows[2].push(eng(s.contention_overhead()));
                rows[3].push(eng(s.load_balance_overhead()));
                rows[4].push(eng(s.rollback_overhead()));
                rows[5].push(eng(s.total_overhead()));
                rows[6].push(format!("{:.1}", seq.stats.vtime / s.vtime));
                rows[7].push(match cm {
                    pi2m_refine::CmKind::Global | pi2m_refine::CmKind::Local => {
                        "not possible".into()
                    }
                    _ => "no".into(),
                });
            }
        }
        let labels = [
            "time (virtual secs)",
            "rollbacks",
            "contention overhead (s)",
            "load balance overhead (s)",
            "rollback overhead (s)",
            "total overhead (s)",
            "speedup",
            "livelock",
        ];
        for (label, row) in labels.iter().zip(&rows) {
            print!("{label:<28}");
            for cell in row {
                print!(" {cell:>12}");
            }
            println!();
        }
        println!("{}\n", rule(80));
    }
}
