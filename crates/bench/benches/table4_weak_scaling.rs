//! **Table 4** — weak scaling on the simulated Blacklight: elements, time,
//! elements/second, speedup, efficiency, and overhead seconds per thread,
//! for the abdominal (4a) and knee (4b) inputs.
//!
//! Paper reference shape: ≥82% efficiency through 144 cores (peak rate
//! 14.3M elements/s), collapsing to 0.59/0.49 at 160/176 cores as traffic
//! crosses the 5-hop root switches.
//!
//! The weak-scaling speedup follows the paper's definition:
//! `Elements(n)·Time(1) / (Time(n)·Elements(1))`.
//!
//! Run: `cargo bench -p pi2m-bench --bench table4_weak_scaling`

use pi2m_bench::{eng, full_mode, weak_scaling_delta};
use pi2m_image::phantoms;
use pi2m_sim::{CostModel, SimConfig, SimMachine, SimMesher};

/// Blacklight with a zero-latency interconnect: the reference that isolates
/// how much of the >144-core degradation the network is responsible for
/// (the paper's §6.3 argument: "the real bottleneck is the overhead spent on
/// (often remote) memory loads/stores").
fn ideal_network() -> SimMachine {
    let mut m = SimMachine::blacklight();
    m.cost = CostModel {
        remote_socket: 0.0,
        per_hop: 0.0,
        congestion_per_blade: 0.0,
        ..m.cost
    };
    m
}

fn main() {
    // same ladder in both modes; PI2M_FULL only raises the mesh size
    let thread_counts: Vec<usize> = vec![1, 16, 32, 64, 128, 144, 160, 176];
    let delta1 = if full_mode() { 1.2 } else { 2.2 };

    for (tag, name, img) in [
        ("4a", "abdominal atlas", phantoms::abdominal(1.0)),
        ("4b", "knee atlas", phantoms::knee(1.0)),
    ] {
        println!("Table {tag} — weak scaling, {name}");
        println!(
            "{:<22} {}",
            "#Threads",
            thread_counts
                .iter()
                .map(|n| format!("{n:>10}"))
                .collect::<String>()
        );
        let mut elements = Vec::new();
        let mut times = Vec::new();
        let mut rates = Vec::new();
        let mut overheads = Vec::new();
        let mut net_slowdown = Vec::new();
        for &n in &thread_counts {
            let delta = weak_scaling_delta(delta1, n);
            let cfg = SimConfig {
                vthreads: n,
                machine: SimMachine::blacklight(),
                delta,
                livelock_vtime: 2.0,
                ..Default::default()
            };
            let out = SimMesher::new(img.clone(), cfg).run();
            let s = out.stats;
            assert!(!s.livelock, "unexpected livelock at {n} threads");
            elements.push(s.final_elements as f64);
            times.push(s.vtime);
            rates.push(s.elements_per_second());
            overheads.push(s.overhead_per_thread());
            // isolate the network's contribution at the large counts
            if n == 144 || n == 176 {
                let ideal = SimMesher::new(
                    img.clone(),
                    SimConfig {
                        vthreads: n,
                        machine: ideal_network(),
                        delta,
                        livelock_vtime: 2.0,
                        ..Default::default()
                    },
                )
                .run();
                net_slowdown.push(Some(s.vtime / ideal.stats.vtime.max(1e-12)));
            } else {
                net_slowdown.push(None);
            }
        }
        let print_row = |label: &str, vals: &[String]| {
            print!("{label:<22}");
            for v in vals {
                print!("{v:>10}");
            }
            println!();
        };
        print_row(
            "#Elements",
            &elements.iter().map(|&v| eng(v)).collect::<Vec<_>>(),
        );
        print_row(
            "Time (virtual secs)",
            &times.iter().map(|&v| format!("{v:.3}")).collect::<Vec<_>>(),
        );
        print_row(
            "Elements per second",
            &rates.iter().map(|&v| eng(v)).collect::<Vec<_>>(),
        );
        let speedups: Vec<f64> = (0..thread_counts.len())
            .map(|i| (elements[i] * times[0]) / (times[i] * elements[0]))
            .collect();
        print_row(
            "Speedup",
            &speedups
                .iter()
                .map(|&v| format!("{v:.2}"))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Efficiency",
            &speedups
                .iter()
                .zip(&thread_counts)
                .map(|(&s, &n)| format!("{:.2}", s / n as f64))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Overhead s/thread",
            &overheads
                .iter()
                .map(|&v| format!("{v:.4}"))
                .collect::<Vec<_>>(),
        );
        print_row(
            "Network slowdown",
            &net_slowdown
                .iter()
                .map(|v| match v {
                    Some(x) => format!("{x:.2}x"),
                    None => "-".into(),
                })
                .collect::<Vec<_>>(),
        );
        println!();
    }
}
