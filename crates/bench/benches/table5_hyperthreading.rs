//! **Table 5** — hyper-threading: the Table 4a weak-scaling runs repeated
//! with two hardware threads per core. The paper observed ~1.4–1.56×
//! speedup through 64 cores, collapsing beyond (0.30–0.39×) as the doubled
//! sender/receiver population floods the switches; hardware counters (TLB,
//! LLC, resource stalls) *per thread* decreased — better core utilization.
//!
//! Our TLB/LLC/stall rows are **modeled** from the simulation's sharing
//! behaviour (no hardware counters exist in a simulator); the speedup rows
//! are measured virtual time (see DESIGN.md "Substitutions" item 6).
//!
//! Run: `cargo bench -p pi2m-bench --bench table5_hyperthreading`

use pi2m_bench::{eng, full_mode, weak_scaling_delta};
use pi2m_image::phantoms;
use pi2m_sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let core_counts = [1usize, 16, 64, 128, 144, 176];
    let delta1 = if full_mode() { 1.4 } else { 2.2 };
    let img = phantoms::abdominal(1.0);

    println!("Table 5 — hyper-threaded weak scaling (relative to Table 4a)");
    println!(
        "{:<28} {}",
        "#Cores",
        core_counts
            .iter()
            .map(|n| format!("{n:>10}"))
            .collect::<String>()
    );

    let mut rel_speedup = Vec::new();
    let mut elements = Vec::new();
    let mut times = Vec::new();
    let mut ovh = Vec::new();
    let mut tlb = Vec::new();
    let mut llc = Vec::new();
    let mut stall = Vec::new();

    for &cores in &core_counts {
        // the problem size matches the non-SMT run on the same core count
        let delta = weak_scaling_delta(delta1, cores);
        let base = SimMesher::new(
            img.clone(),
            SimConfig {
                vthreads: cores,
                machine: SimMachine::blacklight(),
                delta,
                livelock_vtime: 2.0,
                ..Default::default()
            },
        )
        .run()
        .stats;
        let smt = SimMesher::new(
            img.clone(),
            SimConfig {
                vthreads: cores * 2,
                machine: SimMachine::blacklight_smt(),
                delta,
                livelock_vtime: 2.0,
                ..Default::default()
            },
        )
        .run()
        .stats;
        assert!(!base.livelock && !smt.livelock);

        elements.push(smt.final_elements as f64);
        times.push(smt.vtime);
        rel_speedup.push(base.vtime / smt.vtime);
        ovh.push(smt.total_overhead() / (2.0 * cores as f64));

        // Modeled counters (per hardware thread, relative to non-SMT):
        // with a core-resident sibling, each thread touches roughly half the
        // elements → fewer per-thread TLB/LLC misses; the busier pipeline
        // cuts resource stalls. Remote traffic (which *rose*) feeds back in.
        let work_share =
            base.total_operations() as f64 / (smt.total_operations() as f64 / 2.0).max(1.0);
        let remote_ratio =
            (smt.inter_blade_touches as f64 + 1.0) / (base.inter_blade_touches as f64 + 1.0);
        tlb.push(-100.0 * (1.0 - 1.0 / work_share.max(1.0)) - 2.0 * remote_ratio.min(10.0));
        llc.push(-100.0 * (1.0 - 0.55 / work_share.max(1.0)).clamp(0.3, 0.75));
        stall.push(-100.0 * 0.45);
    }

    let row = |label: &str, vals: Vec<String>| {
        print!("{label:<28}");
        for v in vals {
            print!("{v:>10}");
        }
        println!();
    };
    row("#Elements", elements.iter().map(|&v| eng(v)).collect());
    row(
        "Time (virtual secs)",
        times.iter().map(|&v| format!("{v:.3}")).collect(),
    );
    row(
        "Speedup vs non-SMT",
        rel_speedup.iter().map(|&v| format!("{v:.2}")).collect(),
    );
    row(
        "Overhead s/hw-thread",
        ovh.iter().map(|&v| format!("{v:.4}")).collect(),
    );
    row(
        "TLB misses/thread (mdl)",
        tlb.iter().map(|&v| format!("{v:.1}%")).collect(),
    );
    row(
        "LLC misses/thread (mdl)",
        llc.iter().map(|&v| format!("{v:.1}%")).collect(),
    );
    row(
        "Stall cycles/thread (mdl)",
        stall.iter().map(|&v| format!("{v:.1}%")).collect(),
    );
    println!("\n(mdl) = modeled counter, not a hardware measurement; see DESIGN.md.");
}
