//! Criterion micro-benchmarks of the substrates: robust predicates,
//! expansion arithmetic, the EDT, point location, and raw kernel
//! insertion/removal throughput (the quantities behind the paper's
//! "fastest sequential performance" claim).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pi2m_delaunay::{SharedMesh, VertexKind};
use pi2m_edt::surface_feature_transform;
use pi2m_geometry::{Aabb, Point3};
use pi2m_image::phantoms;
use pi2m_predicates::{insphere, insphere_sos, orient3d, Expansion};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_predicates(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let pts: Vec<[f64; 3]> = (0..1000)
        .map(|_| [rng.gen::<f64>(), rng.gen::<f64>(), rng.gen::<f64>()])
        .collect();
    c.bench_function("orient3d/generic", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &pts[i % 996..];
            i += 1;
            black_box(orient3d(&p[0], &p[1], &p[2], &p[3]))
        })
    });
    c.bench_function("insphere/generic", |b| {
        let mut i = 0;
        b.iter(|| {
            let p = &pts[i % 995..];
            i += 1;
            black_box(insphere(&p[0], &p[1], &p[2], &p[3], &p[4]))
        })
    });
    // exactly cospherical: exercises the exact + SoS path
    let a = [0.0, 0.0, 0.0];
    let bb = [1.0, 0.0, 0.0];
    let cc = [0.0, 1.0, 0.0];
    let d = [0.0, 0.0, -1.0];
    let e = [1.0, 1.0, -1.0];
    c.bench_function("insphere/degenerate_exact", |b| {
        b.iter(|| black_box(insphere_sos(&a, &bb, &cc, &d, &e, [0, 1, 2, 3, 4])))
    });
    c.bench_function("expansion/mul", |b| {
        let x = Expansion::from_diff(1.0 + 2f64.powi(-30), 2f64.powi(-52));
        let y = Expansion::from_diff(3.0, 2f64.powi(-40));
        b.iter(|| black_box(x.mul(&y)))
    });
}

fn bench_edt(c: &mut Criterion) {
    let img = phantoms::abdominal(1.0);
    c.bench_function("edt/abdominal_1thread", |b| {
        b.iter(|| black_box(surface_feature_transform(&img, 1)))
    });
}

fn bench_kernel(c: &mut Criterion) {
    c.bench_function("kernel/insert_1k_random", |b| {
        b.iter(|| {
            let m = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));
            let mut ctx = m.make_ctx(0);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            for _ in 0..1000 {
                let p = [
                    rng.gen_range(0.01..0.99),
                    rng.gen_range(0.01..0.99),
                    rng.gen_range(0.01..0.99),
                ];
                let _ = ctx.insert(p, VertexKind::Circumcenter);
            }
            black_box(m.num_vertices())
        })
    });
    c.bench_function("kernel/insert_remove_cycle", |b| {
        b.iter(|| {
            let m = SharedMesh::with_box(Aabb::new(Point3::ORIGIN, Point3::new(1.0, 1.0, 1.0)));
            let mut ctx = m.make_ctx(0);
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let mut vs = Vec::new();
            for _ in 0..200 {
                let p = [
                    rng.gen_range(0.01..0.99),
                    rng.gen_range(0.01..0.99),
                    rng.gen_range(0.01..0.99),
                ];
                if let Ok(r) = ctx.insert(p, VertexKind::Circumcenter) {
                    vs.push(r.vertex);
                }
            }
            for v in vs {
                let _ = ctx.remove(v);
            }
            black_box(m.num_alive_cells())
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_predicates, bench_edt, bench_kernel
);
criterion_main!(benches);
