//! Ablation studies of PI2M's design choices (DESIGN.md's "Quality/fidelity
//! guarantees carried over" list):
//!
//! 1. **Removals (rule R6) on/off** — the paper argues removals enable richer
//!    refinement schemes and guarantee termination; this shows their effect
//!    on element count, quality, and operation count.
//! 2. **δ sweep — fidelity** — Theorem 1 predicts Hausdorff error shrinking
//!    with the sampling density; measured directly.
//! 3. **Energy** — paper §8: threads idling in contention/begging lists
//!    create an opportunity to throttle cores; the Elements/(second·Watt)
//!    figure of merit per contention manager, with and without idle
//!    throttling.
//!
//! Run: `cargo bench -p pi2m-bench --bench ablations`

use pi2m_bench::full_mode;
use pi2m_image::phantoms;
use pi2m_quality::{hausdorff_distance, mesh_quality};
use pi2m_refine::{CmKind, MachineTopology, Mesher, MesherConfig};
use pi2m_sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let n = if full_mode() { 28 } else { 20 };

    // ---- 1. removals on/off (real engine, single thread) ----
    println!("Ablation 1 — rule R6 removals");
    println!(
        "{:<14} {:>9} {:>9} {:>10} {:>10} {:>12}",
        "config", "#tets", "ops", "removals", "max R/e", "min dih (°)"
    );
    for (label, removals) in [("with R6", true), ("without R6", false)] {
        let out = Mesher::new(
            phantoms::sphere(n, 1.0),
            MesherConfig {
                delta: 1.2,
                threads: 1,
                enable_removals: removals,
                topology: MachineTopology::flat(1),
                max_operations: 2_000_000,
                ..Default::default()
            },
        )
        .run();
        let q = mesh_quality(&out.mesh);
        println!(
            "{:<14} {:>9} {:>9} {:>10} {:>10.3} {:>12.2}",
            label,
            out.mesh.num_tets(),
            out.stats.total_operations(),
            out.stats.total_removals(),
            q.max_radius_edge,
            q.min_dihedral_deg
        );
    }

    // ---- 2. δ sweep: fidelity (Theorem 1) ----
    println!("\nAblation 2 — sampling density δ vs fidelity (Theorem 1: error = O(δ²))");
    println!(
        "{:<8} {:>9} {:>12} {:>14}",
        "δ", "#tets", "Hausdorff", "Hausdorff/δ"
    );
    for delta in [4.0, 3.0, 2.0, 1.5, 1.0] {
        let out = Mesher::new(
            phantoms::sphere(n, 1.0),
            MesherConfig {
                delta,
                threads: 2,
                topology: MachineTopology::flat(2),
                ..Default::default()
            },
        )
        .run();
        let tris = out.mesh.boundary_triangles();
        let hd = hausdorff_distance(&out.mesh.points, &tris, &out.oracle, 7);
        println!(
            "{:<8} {:>9} {:>12.3} {:>14.3}",
            delta,
            out.mesh.num_tets(),
            hd,
            hd / delta
        );
    }

    // ---- 3. energy per CM (simulated Blacklight, §8) ----
    println!("\nAblation 3 — energy efficiency by contention manager (64 simulated cores)");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>14} {:>10}",
        "CM", "vtime(s)", "energy (J)", "el/J (idle)", "el/J (throttl)", "gain"
    );
    for cm in [CmKind::Random, CmKind::Global, CmKind::Local] {
        let out = SimMesher::new(
            phantoms::abdominal(1.0),
            SimConfig {
                vthreads: 64,
                machine: SimMachine::blacklight(),
                delta: 1.0,
                cm,
                livelock_vtime: 2.0,
                ..Default::default()
            },
        )
        .run();
        let s = out.stats;
        if s.livelock {
            println!("{:<12} {:>10}", format!("{cm:?}"), "livelock");
            continue;
        }
        let epj = s.elements_per_joule();
        let epj_t = s.final_elements as f64 / s.energy_joules_throttled.max(1e-12);
        println!(
            "{:<12} {:>10.4} {:>12.2} {:>14.1} {:>14.1} {:>9.1}%",
            format!("{cm:?}"),
            s.vtime,
            s.energy_joules,
            epj,
            epj_t,
            100.0 * (epj_t / epj - 1.0)
        );
    }
}
