//! **Figure 6** — cumulative overhead vs. wall time for the 176-core weak
//! scaling run: the early "Phase 1" burst of contention/load imbalance while
//! the mesh is still tiny (strong-scaling-like behaviour right after the
//! 6-tetrahedron box), flattening as parallelism becomes available.
//!
//! Prints (wall-time, cumulative overhead) series per category; the paper
//! overlays them as stacked lines.
//!
//! Run: `cargo bench -p pi2m-bench --bench fig6_overhead_timeline`

use pi2m_bench::{full_mode, weak_scaling_delta};
use pi2m_image::phantoms;
use pi2m_refine::OverheadKind;
use pi2m_sim::{SimConfig, SimMachine, SimMesher};

fn main() {
    let n = 176usize;
    let delta1 = if full_mode() { 1.5 } else { 2.2 };
    let cfg = SimConfig {
        vthreads: n,
        machine: SimMachine::blacklight(),
        delta: weak_scaling_delta(delta1, n),
        trace: true,
        livelock_vtime: 2.0,
        ..Default::default()
    };
    let out = SimMesher::new(phantoms::abdominal(1.0), cfg).run();
    let stats = out.stats;
    assert!(!stats.livelock);

    let trace = stats.merged_trace();
    let t_end = stats.vtime.max(1e-9);
    let bins = 40usize;
    let mut cum = [[0.0f64; 3]; 1024];
    for ev in &trace {
        let b = ((ev.at / t_end * bins as f64) as usize).min(bins - 1);
        let k = match ev.kind {
            OverheadKind::Contention => 0,
            OverheadKind::LoadBalance => 1,
            OverheadKind::Rollback => 2,
        };
        cum[b][k] += ev.dur;
    }
    println!(
        "Figure 6 — overhead vs wall time ({} vthreads, {} elements, makespan {:.3} vs)",
        n, stats.final_elements, stats.vtime
    );
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>14}",
        "wall(s)", "contention", "load balance", "rollback", "total(cum)"
    );
    let mut totals = [0.0f64; 3];
    for (b, bin) in cum.iter().enumerate().take(bins) {
        for k in 0..3 {
            totals[k] += bin[k];
        }
        println!(
            "{:>10.4} {:>14.4} {:>14.4} {:>14.4} {:>14.4}",
            (b + 1) as f64 / bins as f64 * t_end,
            totals[0],
            totals[1],
            totals[2],
            totals.iter().sum::<f64>()
        );
    }
    // Phase-1 utilisation figure like the paper's "73% of the first 14s"
    let early_end = t_end * 0.1;
    let early: f64 = trace
        .iter()
        .filter(|e| e.at < early_end)
        .map(|e| e.dur)
        .sum();
    let budget = early_end * n as f64;
    println!(
        "\nPhase 1 (first {:.1}% of the run): {:.1}% of thread-time was useful work",
        10.0,
        100.0 * (budget - early).max(0.0) / budget
    );
}
