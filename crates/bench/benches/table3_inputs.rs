//! **Table 3** — the input images: paper atlas vs. the phantom standing in
//! for it (dimensions, spacing, tissue counts).
//!
//! Run: `cargo bench -p pi2m-bench --bench table3_inputs`

use pi2m_bench::full_mode;
use pi2m_image::phantoms;

fn main() {
    let scale = if full_mode() { 2.0 } else { 1.0 };
    println!("Table 3 — inputs (phantom scale {scale})\n");
    println!(
        "{:<12} {:<28} {:>16} {:>18} {:>8}  {:>16} {:>18} {:>8}",
        "phantom",
        "paper analog",
        "paper dims",
        "paper spacing",
        "tissues",
        "our dims",
        "our spacing",
        "tissues"
    );
    for s in phantoms::specs(scale) {
        println!(
            "{:<12} {:<28} {:>16} {:>18} {:>8}  {:>16} {:>18} {:>8}",
            s.name,
            s.paper_analog,
            format!(
                "{}x{}x{}",
                s.paper_dims[0], s.paper_dims[1], s.paper_dims[2]
            ),
            format!(
                "{}x{}x{} mm",
                s.paper_spacing[0], s.paper_spacing[1], s.paper_spacing[2]
            ),
            s.paper_tissues,
            format!("{}x{}x{}", s.dims[0], s.dims[1], s.dims[2]),
            format!("{}x{}x{} mm", s.spacing[0], s.spacing[1], s.spacing[2]),
            s.tissues,
        );
    }
    println!("\n(Phantoms substitute the clinical atlases; see DESIGN.md \"Substitutions\".)");
}
