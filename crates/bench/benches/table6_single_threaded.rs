//! **Table 6** — single-threaded evaluation, *real wall-clock*: PI2M (one
//! thread, full synchronization machinery in place) vs. the CGAL-like and
//! TetGen-like baselines on the knee and head-neck phantoms: rate, time,
//! element count, max radius-edge ratio, smallest boundary planar angle,
//! dihedral extremes, and two-sided Hausdorff distance.
//!
//! Paper reference shape: PI2M beats CGAL by 40–80% in rate with comparable
//! quality; TetGen (fed PI2M's recovered surface, no EDT) wins on small
//! meshes but loses on large ones and has worse dihedral quality.
//!
//! Run: `cargo bench -p pi2m-bench --bench table6_single_threaded`
//! (PI2M_FULL=1 for larger meshes).

use pi2m_baseline::isosurface::IsosurfaceBaselineConfig;
use pi2m_baseline::plc::PlcBaselineConfig;
use pi2m_baseline::{IsosurfaceBaseline, PlcBaseline};
use pi2m_bench::full_mode;
use pi2m_image::phantoms;
use pi2m_oracle::IsosurfaceOracle;
use pi2m_quality::{boundary_report, hausdorff_distance, mesh_quality};
use pi2m_refine::{FinalMesh, Mesher, MesherConfig};
use std::sync::Arc;

struct Row {
    name: &'static str,
    tets: usize,
    time: f64,
    edt: f64,
    rate: f64,
    max_re: f64,
    min_planar: f64,
    dih: (f64, f64),
    hausdorff: f64,
    removals: u64,
    ops: u64,
}

fn measure(
    name: &'static str,
    mesh: &FinalMesh,
    time: f64,
    edt: f64,
    oracle: &IsosurfaceOracle,
    removals: u64,
    ops: u64,
) -> Row {
    let q = mesh_quality(mesh);
    let b = boundary_report(mesh);
    let tris = mesh.boundary_triangles();
    let hd = hausdorff_distance(&mesh.points, &tris, oracle, 7);
    Row {
        name,
        tets: mesh.num_tets(),
        time,
        edt,
        rate: mesh.num_tets() as f64 / time.max(1e-9),
        max_re: q.max_radius_edge,
        min_planar: b.min_planar_angle_deg,
        dih: (q.min_dihedral_deg, q.max_dihedral_deg),
        hausdorff: hd,
        removals,
        ops,
    }
}

fn main() {
    let scale = if full_mode() { 2.2 } else { 1.2 };
    let delta_base = if full_mode() { 1.2 } else { 1.8 };

    for (tag, img) in [
        ("knee atlas", phantoms::knee(scale)),
        ("head-neck atlas", phantoms::head_neck(scale)),
    ] {
        println!("Table 6 — {tag} (phantom scale {scale})");
        let mut rows = Vec::new();

        // PI2M, single thread, real wall clock
        let t0 = std::time::Instant::now();
        let out = Mesher::new(
            img.clone(),
            MesherConfig {
                delta: delta_base,
                threads: 1,
                ..Default::default()
            },
        )
        .run();
        let t_pi2m = t0.elapsed().as_secs_f64();
        rows.push(measure(
            "PI2M (1 thread)",
            &out.mesh,
            t_pi2m,
            out.stats.edt_time,
            &out.oracle,
            out.stats.total_removals(),
            out.stats.total_operations(),
        ));

        // CGAL-like
        let cgal = IsosurfaceBaseline::new(
            img.clone(),
            IsosurfaceBaselineConfig {
                delta: delta_base,
                ..Default::default()
            },
        )
        .run();
        rows.push(measure(
            "CGAL-like",
            &cgal.mesh,
            cgal.total_time,
            cgal.edt_time,
            &out.oracle,
            0,
            cgal.operations,
        ));

        // TetGen-like, fed PI2M's recovered surface
        let tet = PlcBaseline::from_surface(
            out.mesh.points.clone(),
            out.mesh.boundary_triangles(),
            Arc::clone(&out.oracle),
            PlcBaselineConfig::default(),
        )
        .run();
        rows.push(measure(
            "TetGen-like",
            &tet.mesh,
            tet.total_time,
            0.0,
            &out.oracle,
            0,
            tet.operations,
        ));

        println!(
            "{:<18} {:>10} {:>9} {:>9} {:>12} {:>8} {:>10} {:>16} {:>10}",
            "",
            "#tets",
            "time(s)",
            "edt(s)",
            "tets/sec",
            "max R/e",
            "min∠bnd",
            "dihedral(°)",
            "Hausdorff"
        );
        for r in &rows {
            println!(
                "{:<18} {:>10} {:>9.3} {:>9.3} {:>12.0} {:>8.2} {:>9.1}° {:>7.1}°/{:<7.1}° {:>9.2}",
                r.name,
                r.tets,
                r.time,
                r.edt,
                r.rate,
                r.max_re,
                r.min_planar,
                r.dih.0,
                r.dih.1,
                r.hausdorff
            );
        }
        let pi2m = &rows[0];
        println!(
            "removal share of PI2M operations: {:.1}% ({} of {})",
            100.0 * pi2m.removals as f64 / pi2m.ops.max(1) as f64,
            pi2m.removals,
            pi2m.ops
        );
        println!(
            "PI2M rate vs CGAL-like: {:+.1}%   vs TetGen-like: {:+.1}%\n",
            100.0 * (pi2m.rate / rows[1].rate - 1.0),
            100.0 * (pi2m.rate / rows[2].rate - 1.0),
        );
    }
}
