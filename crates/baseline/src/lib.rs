//! # pi2m-baseline
//!
//! Sequential comparison meshers standing in for CGAL and TetGen in the
//! paper's Table 6 (see DESIGN.md "Substitutions"). Both share PI2M's
//! Bowyer–Watson kernel — the paper stresses that CGAL, TetGen and PI2M all
//! insert through the same kernel, which is what makes rate comparisons
//! meaningful — but reproduce the *algorithmic structure* of the originals:
//!
//! * [`IsosurfaceBaseline`] ("CGAL-like"): an Isosurface-based sequential
//!   refiner driven by a priority queue of poor elements, with eager
//!   reclassification of every created cell and **no removals** — the
//!   heavier bookkeeping PI2M's lazy PELs avoid.
//! * [`PlcBaseline`] ("TetGen-like"): a PLC-based volume mesher that takes a
//!   recovered boundary surface as input (exactly how the paper feeds
//!   TetGen), inserts its vertices, and refines only interior quality/size —
//!   no EDT preprocessing, so it wins on small meshes and loses on large
//!   ones, matching the paper's observation.

pub mod isosurface;
pub mod plc;

pub use isosurface::IsosurfaceBaseline;
pub use plc::PlcBaseline;

/// Timing/throughput results shared by both baselines.
#[derive(Clone, Debug, Default)]
pub struct BaselineOutput {
    pub mesh: pi2m_refine::FinalMesh,
    /// Everything except disk I/O (paper's accounting), seconds.
    pub total_time: f64,
    /// EDT preprocessing component (zero for the PLC baseline).
    pub edt_time: f64,
    /// Point-insertion operations performed.
    pub operations: u64,
}

impl BaselineOutput {
    pub fn tets_per_second(&self) -> f64 {
        if self.total_time > 0.0 {
            self.mesh.num_tets() as f64 / self.total_time
        } else {
            0.0
        }
    }
}
