//! The "TetGen-like" sequential PLC-based volume mesher.
//!
//! TetGen takes a piecewise linear complex — here, the triangulated
//! isosurface recovered by PI2M, exactly as the paper's comparison does
//! (§7: "we pass to TetGen the triangulated iso-surfaces as recovered by
//! our method, and then let TetGen fill the underlying volume"). It inserts
//! all boundary vertices, then refines interior tetrahedra for quality and
//! size. No isosurface sampling, no EDT: fast on small meshes, overtaken by
//! PI2M on large ones (paper Table 6).

use crate::BaselineOutput;
use pi2m_delaunay::{CellId, SharedMesh, VertexKind};
use pi2m_geometry::{circumcenter, Aabb, Point3, TET_EDGES};
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use pi2m_refine::FinalMesh;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Configuration for the TetGen-like baseline.
#[derive(Clone)]
pub struct PlcBaselineConfig {
    pub radius_edge_bound: f64,
    pub size_fn: Option<Arc<dyn SizeFn>>,
    pub max_operations: u64,
}

impl Default for PlcBaselineConfig {
    fn default() -> Self {
        PlcBaselineConfig {
            radius_edge_bound: 2.0,
            size_fn: None,
            max_operations: 0,
        }
    }
}

/// Sequential PLC-based volume mesher (TetGen stand-in).
///
/// `points`/`triangles` describe the input boundary complex; the oracle
/// plays the role of TetGen's region seeds (point-in-subdomain tests and
/// element labels).
pub struct PlcBaseline {
    pub points: Vec<Point3>,
    pub triangles: Vec<[u32; 3]>,
    pub oracle: Arc<IsosurfaceOracle>,
    pub cfg: PlcBaselineConfig,
}

impl PlcBaseline {
    /// Build from a recovered boundary mesh (e.g.
    /// [`FinalMesh::boundary_triangles`] of a PI2M output).
    pub fn from_surface(
        points: Vec<Point3>,
        triangles: Vec<[u32; 3]>,
        oracle: Arc<IsosurfaceOracle>,
        cfg: PlcBaselineConfig,
    ) -> Self {
        PlcBaseline {
            points,
            triangles,
            oracle,
            cfg,
        }
    }

    pub fn run(self) -> BaselineOutput {
        let t_all = Instant::now();
        // referenced boundary vertices only
        let mut used = vec![false; self.points.len()];
        for t in &self.triangles {
            for &v in t {
                used[v as usize] = true;
            }
        }
        let mut bb = Aabb::empty();
        for (p, &u) in self.points.iter().zip(&used) {
            if u {
                bb.include(*p);
            }
        }
        if bb.min.x > bb.max.x {
            return BaselineOutput::default();
        }
        let mesh = SharedMesh::enclosing(&bb);
        let mut ctx = mesh.make_ctx(0);
        let mut operations = 0u64;

        // Phase 1: insert the PLC vertices.
        for (p, &u) in self.points.iter().zip(&used) {
            if !u {
                continue;
            }
            if ctx.insert(p.to_array(), VertexKind::Isosurface).is_ok() {
                operations += 1;
            }
        }

        // Phase 2: refine interior cells (quality + size).
        let mut queue: BinaryHeap<(u64, CellId, u32)> = BinaryHeap::new();
        let key = |r: f64| (r * 1e9) as u64;
        let classify = |mesh: &SharedMesh, c: CellId| -> Option<([f64; 3], f64)> {
            let p = mesh.cell_points(c);
            let cc = circumcenter(p[0], p[1], p[2], p[3])?;
            if !self.oracle.is_inside(cc) {
                return None;
            }
            let r = cc.distance(p[0]);
            let mut shortest = f64::INFINITY;
            for (a, b) in TET_EDGES {
                shortest = shortest.min(p[a].distance(p[b]));
            }
            let poor_quality = shortest > 0.0 && r / shortest > self.cfg.radius_edge_bound;
            let poor_size = self
                .cfg
                .size_fn
                .as_ref()
                .is_some_and(|sf| r > sf.size_at(cc));
            (poor_quality || poor_size).then(|| (cc.to_array(), r))
        };
        for c in mesh.alive_cells() {
            if let Some((_, r)) = classify(&mesh, c) {
                queue.push((key(r), c, mesh.cell(c).gen()));
            }
        }
        while let Some((_, c, gen)) = queue.pop() {
            let cell = mesh.cell(c);
            if !cell.is_alive() || cell.gen() != gen {
                continue;
            }
            let Some((cc, _)) = classify(&mesh, c) else {
                continue;
            };
            if let Ok(res) = ctx.insert(cc, VertexKind::Circumcenter) {
                operations += 1;
                for &nc in &res.created {
                    if let Some((_, r)) = classify(&mesh, nc) {
                        queue.push((key(r), nc, mesh.cell(nc).gen()));
                    }
                }
            }
            if self.cfg.max_operations > 0 && operations >= self.cfg.max_operations {
                break;
            }
        }

        let final_mesh = FinalMesh::extract(&mesh, &self.oracle, None);
        BaselineOutput {
            mesh: final_mesh,
            total_time: t_all.elapsed().as_secs_f64(),
            edt_time: 0.0,
            operations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_image::phantoms;
    use pi2m_refine::{Mesher, MesherConfig};

    #[test]
    fn fills_a_recovered_surface() {
        let img = phantoms::sphere(16, 1.0);
        let pi2m = Mesher::new(
            img,
            MesherConfig {
                delta: 2.0,
                threads: 1,
                ..Default::default()
            },
        )
        .run();
        let tris = pi2m.mesh.boundary_triangles();
        assert!(!tris.is_empty());
        let out = PlcBaseline::from_surface(
            pi2m.mesh.points.clone(),
            tris,
            Arc::clone(&pi2m.oracle),
            PlcBaselineConfig::default(),
        )
        .run();
        assert!(out.mesh.num_tets() > 50);
        assert_eq!(out.edt_time, 0.0);
        // volume comparable with the PI2M mesh volume
        let (a, b) = (out.mesh.volume(), pi2m.mesh.volume());
        assert!((a - b).abs() / b < 0.35, "plc volume {a} vs pi2m {b}");
    }

    #[test]
    fn empty_input_is_empty_output() {
        let img = phantoms::sphere(8, 1.0);
        let oracle = Arc::new(IsosurfaceOracle::new(img, 1));
        let out =
            PlcBaseline::from_surface(Vec::new(), Vec::new(), oracle, Default::default()).run();
        assert_eq!(out.mesh.num_tets(), 0);
    }
}
