//! The "CGAL-like" sequential Isosurface-based mesher.
//!
//! Structure mirrors CGAL's `Mesh_3` refinement loop: a max-priority queue
//! of poor elements ordered by circumradius (biggest first), eager
//! classification of every cell the moment it is created, and no vertex
//! removals. Rules are the same R1–R5 evaluations PI2M uses, so quality and
//! fidelity are comparable (paper Table 6) while the per-operation
//! bookkeeping is heavier than PI2M's lazy poor-element lists.

use crate::BaselineOutput;
use pi2m_delaunay::{CellId, SharedMesh};
use pi2m_geometry::circumcenter;
use pi2m_image::LabeledImage;
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use pi2m_refine::{FinalMesh, PointGrid, RuleConfig, Rules};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Priority-queue entry: larger circumradius = higher priority.
struct QEntry {
    radius: f64,
    cell: CellId,
    gen: u32,
}

impl PartialEq for QEntry {
    fn eq(&self, other: &Self) -> bool {
        self.radius == other.radius
    }
}
impl Eq for QEntry {}
impl PartialOrd for QEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.radius.total_cmp(&other.radius)
    }
}

/// Configuration for the CGAL-like baseline.
#[derive(Clone)]
pub struct IsosurfaceBaselineConfig {
    pub delta: f64,
    pub radius_edge_bound: f64,
    pub planar_angle_min_deg: f64,
    pub size_fn: Option<Arc<dyn SizeFn>>,
    /// Safety cap (0 = unlimited).
    pub max_operations: u64,
}

impl Default for IsosurfaceBaselineConfig {
    fn default() -> Self {
        IsosurfaceBaselineConfig {
            delta: 2.0,
            radius_edge_bound: 2.0,
            planar_angle_min_deg: 30.0,
            size_fn: None,
            max_operations: 0,
        }
    }
}

/// Sequential Isosurface-based Delaunay refiner (CGAL `Mesh_3` stand-in).
pub struct IsosurfaceBaseline {
    img: LabeledImage,
    cfg: IsosurfaceBaselineConfig,
}

impl IsosurfaceBaseline {
    pub fn new(img: LabeledImage, cfg: IsosurfaceBaselineConfig) -> Self {
        IsosurfaceBaseline { img, cfg }
    }

    pub fn run(self) -> BaselineOutput {
        let t_all = Instant::now();
        let t_edt = Instant::now();
        // sequential tool: single-threaded EDT
        let oracle = Arc::new(IsosurfaceOracle::new(self.img, 1));
        let edt_time = t_edt.elapsed().as_secs_f64();

        let domain = oracle
            .image()
            .foreground_bounds()
            .unwrap_or_else(|| oracle.image().bounds());
        let mesh = SharedMesh::enclosing(&domain);
        let grid = Arc::new(PointGrid::new(self.cfg.delta));
        let rules = Rules::new(
            RuleConfig {
                delta: self.cfg.delta,
                radius_edge_bound: self.cfg.radius_edge_bound,
                planar_angle_min_deg: self.cfg.planar_angle_min_deg,
                size_fn: self.cfg.size_fn.clone(),
                surface_size_fn: None,
            },
            Arc::clone(&oracle),
            grid,
        );

        let mut ctx = mesh.make_ctx(0);
        let mut queue: BinaryHeap<QEntry> = BinaryHeap::new();
        let enqueue = |queue: &mut BinaryHeap<QEntry>, mesh: &SharedMesh, c: CellId| {
            let p = mesh.cell_points(c);
            if let Some(cc) = circumcenter(p[0], p[1], p[2], p[3]) {
                queue.push(QEntry {
                    radius: cc.distance(p[0]),
                    cell: c,
                    gen: mesh.cell(c).gen(),
                });
            }
        };
        for c in mesh.alive_cells() {
            enqueue(&mut queue, &mesh, c);
        }

        let mut operations = 0u64;
        while let Some(e) = queue.pop() {
            // eager revalidation (cells die under the queue)
            let cell = mesh.cell(e.cell);
            if !cell.is_alive() || cell.gen() != e.gen {
                continue;
            }
            let Some(action) = rules.classify(&mesh, e.cell, e.gen) else {
                continue;
            };
            match ctx.insert(action.point, action.kind) {
                Ok(res) => {
                    operations += 1;
                    rules.grid.insert(res.vertex, action.point);
                    // eager: classify (and requeue) every created cell now —
                    // CGAL-style immediate re-checking
                    for &nc in &res.created {
                        let gen = mesh.cell(nc).gen();
                        if rules.classify(&mesh, nc, gen).is_some() {
                            enqueue(&mut queue, &mesh, nc);
                        }
                    }
                    // re-examine the element itself if it survived (it
                    // didn't: the triggering cell is always in the cavity of
                    // its own remedy or dies; nothing to do)
                }
                Err(_) => {
                    // duplicate/outside/degenerate: drop
                }
            }
            if self.cfg.max_operations > 0 && operations >= self.cfg.max_operations {
                break;
            }
        }

        let final_mesh = FinalMesh::extract(&mesh, &oracle, None);
        BaselineOutput {
            mesh: final_mesh,
            total_time: t_all.elapsed().as_secs_f64(),
            edt_time,
            operations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_image::phantoms;

    #[test]
    fn meshes_a_sphere() {
        let out = IsosurfaceBaseline::new(
            phantoms::sphere(16, 1.0),
            IsosurfaceBaselineConfig {
                delta: 2.0,
                ..Default::default()
            },
        )
        .run();
        assert!(out.mesh.num_tets() > 50);
        assert!(out.operations > 0);
        assert!(out.total_time >= out.edt_time);
        assert!(out.tets_per_second() > 0.0);
    }

    #[test]
    fn similar_size_to_pi2m() {
        use pi2m_refine::{Mesher, MesherConfig};
        let img = phantoms::sphere(16, 1.0);
        let base = IsosurfaceBaseline::new(
            img.clone(),
            IsosurfaceBaselineConfig {
                delta: 2.0,
                ..Default::default()
            },
        )
        .run();
        let pi2m = Mesher::new(
            img,
            MesherConfig {
                delta: 2.0,
                threads: 1,
                ..Default::default()
            },
        )
        .run();
        let (a, b) = (base.mesh.num_tets() as f64, pi2m.mesh.num_tets() as f64);
        assert!((a - b).abs() / b < 0.5, "baseline {a} vs pi2m {b} elements");
    }
}
