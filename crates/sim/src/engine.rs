//! The discrete-event simulated execution of PI2M on a cc-NUMA machine.
//!
//! Virtual threads run the *actual* algorithm — real mesh, real rules, real
//! speculative conflicts — under a virtual clock. Each operation is split
//! into the kernel's `prepare` (locks acquired, nothing mutated) and
//! `commit` (applied at the operation's virtual completion time), so an
//! in-flight operation genuinely excludes overlapping operations. Lock
//! acquisition is charged incrementally: when a starting operation hits a
//! vertex an in-flight one holds, virtual acquisition times decide who rolls
//! back — either side can lose, which is what lets the Aggressive and
//! Random contention managers livelock in the simulator exactly as the
//! paper observed on hardware (Table 1).
//!
//! See DESIGN.md "Substitutions" for why this reproduces the paper's
//! measured quantities (rollbacks, overhead decomposition, speedups,
//! inter-blade traffic) without the retired 256-core Blacklight.

use crate::machine::SimMachine;
use pi2m_delaunay::{CellId, OpCtx, OpError, SharedMesh, VertexId, VertexKind};
use pi2m_geometry::circumcenter;
use pi2m_image::LabeledImage;
use pi2m_oracle::{IsosurfaceOracle, SizeFn};
use pi2m_refine::{
    BalancerKind, CmKind, FinalMesh, OverheadKind, PointGrid, RuleConfig, Rules, ThreadStats,
    DONATE_THRESHOLD, R_PLUS, S_PLUS,
};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Configuration of a simulated PI2M run.
#[derive(Clone)]
pub struct SimConfig {
    /// Number of virtual threads (≤ machine capacity).
    pub vthreads: usize,
    pub machine: SimMachine,
    pub delta: f64,
    pub radius_edge_bound: f64,
    pub planar_angle_min_deg: f64,
    pub size_fn: Option<Arc<dyn SizeFn>>,
    pub cm: CmKind,
    pub balancer: BalancerKind,
    pub enable_removals: bool,
    /// Virtual seconds without a committed operation before declaring a
    /// livelock (paper §5.5 observed real livelocks for Aggressive/Random).
    pub livelock_vtime: f64,
    /// Real-safety cap on processed events (0 = a generous default).
    pub max_events: u64,
    /// Real (wall-clock) seconds budget; exceeded ⇒ `aborted` (0 = none).
    /// Guards against quasi-livelocked configurations that crawl in virtual
    /// time while burning real time.
    pub max_real_seconds: f64,
    /// Record overhead traces (Figure 6).
    pub trace: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            vthreads: 16,
            machine: SimMachine::blacklight(),
            delta: 2.0,
            radius_edge_bound: 2.0,
            planar_angle_min_deg: 30.0,
            size_fn: None,
            cm: CmKind::Local,
            balancer: BalancerKind::Hws,
            enable_removals: true,
            livelock_vtime: 0.5,
            max_events: 0,
            max_real_seconds: 0.0,
            trace: false,
        }
    }
}

/// Statistics of a simulated run. Overheads are virtual seconds.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Virtual makespan of the refinement (excludes EDT).
    pub vtime: f64,
    /// Modeled virtual time of the parallel EDT preprocessing.
    pub edt_vtime: f64,
    pub per_thread: Vec<ThreadStats>,
    pub livelock: bool,
    pub final_elements: usize,
    pub vertices_allocated: usize,
    /// Cavity cells touched that were homed on the same socket.
    pub local_touches: u64,
    /// Touched cells homed on the other socket of the same blade.
    pub remote_socket_touches: u64,
    /// Touched cells homed on a different blade (Figure 5b's inter-blade
    /// accesses).
    pub inter_blade_touches: u64,
    /// Real events processed (diagnostics).
    pub events: u64,
    /// Wake sources: [streak, before_beg, driver_fallback, termination]
    /// (diagnostics).
    pub wake_sources: [u64; 4],
    /// The run exhausted its event budget before terminating (reported as
    /// non-termination, like the paper's hour-long livelock runs).
    pub aborted: bool,
    /// Modeled energy of the run with cores busy-waiting at full idle power
    /// (joules).
    pub energy_joules: f64,
    /// Modeled energy if idling cores were dropped into a deep low-power
    /// state (the paper §8's Elements/(second·Watt) opportunity).
    pub energy_joules_throttled: f64,
}

impl SimStats {
    pub fn total_rollbacks(&self) -> u64 {
        self.per_thread.iter().map(|t| t.rollbacks).sum()
    }
    pub fn total_operations(&self) -> u64 {
        self.per_thread.iter().map(|t| t.operations).sum()
    }
    pub fn total_removals(&self) -> u64 {
        self.per_thread.iter().map(|t| t.removals).sum()
    }
    pub fn contention_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.contention_overhead).sum()
    }
    pub fn load_balance_overhead(&self) -> f64 {
        self.per_thread
            .iter()
            .map(|t| t.load_balance_overhead)
            .sum()
    }
    pub fn rollback_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.rollback_overhead).sum()
    }
    pub fn total_overhead(&self) -> f64 {
        self.per_thread.iter().map(|t| t.total_overhead()).sum()
    }
    pub fn total_donations(&self) -> u64 {
        self.per_thread.iter().map(|t| t.donations_made).sum()
    }
    pub fn inter_blade_donations(&self) -> u64 {
        self.per_thread
            .iter()
            .map(|t| t.inter_blade_donations)
            .sum()
    }
    /// Elements per virtual second.
    pub fn elements_per_second(&self) -> f64 {
        if self.vtime > 0.0 {
            self.final_elements as f64 / self.vtime
        } else {
            0.0
        }
    }
    /// Overhead seconds per thread (Table 4 row).
    pub fn overhead_per_thread(&self) -> f64 {
        if self.per_thread.is_empty() {
            0.0
        } else {
            self.total_overhead() / self.per_thread.len() as f64
        }
    }
    /// Elements per joule (paper §8's energy-efficiency figure of merit).
    pub fn elements_per_joule(&self) -> f64 {
        if self.energy_joules > 0.0 {
            self.final_elements as f64 / self.energy_joules
        } else {
            0.0
        }
    }

    /// Merged overhead trace (Figure 6), `tid`-stamped and deterministically
    /// ordered (time, then thread id) like [`pi2m_refine::RefineStats`].
    pub fn merged_trace(&self) -> Vec<pi2m_refine::TraceEvent> {
        let mut all: Vec<pi2m_refine::TraceEvent> = self
            .per_thread
            .iter()
            .enumerate()
            .flat_map(|(tid, t)| {
                t.trace.iter().map(move |e| pi2m_refine::TraceEvent {
                    tid: tid as u32,
                    ..*e
                })
            })
            .collect();
        all.sort_by(|a, b| a.at.total_cmp(&b.at).then(a.tid.cmp(&b.tid)));
        all
    }
}

/// Result of a simulated run.
pub struct SimOutput {
    pub mesh: FinalMesh,
    pub stats: SimStats,
}

/// Run the simulated mesher.
pub struct SimMesher {
    img: LabeledImage,
    cfg: SimConfig,
}

// ---------------------------------------------------------------------------

enum Prep {
    Insert(pi2m_delaunay::PreparedInsert, pi2m_refine::InsertAction),
    Remove(pi2m_delaunay::PreparedRemove, VertexId),
}

struct InFlight {
    prep: Prep,
    lock_order: Vec<VertexId>,
    t_start: f64,
    complete_at: f64,
    /// PEL element that triggered this op (re-enqueued on preemption).
    element: Option<(u32, u32)>,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum VtState {
    Ready(f64),
    InFlight,
    Begging(f64),
    CmBlocked(f64),
}

enum Work {
    Element(u32, u32),
    Removal(VertexId),
}

struct SimCm {
    kind: CmKind,
    consecutive: Vec<u32>,
    streak: Vec<u32>,
    cl_global: VecDeque<usize>,
    cl_local: Vec<VecDeque<usize>>,
    busy: Vec<bool>,
    rng: u64,
}

impl SimCm {
    fn new(kind: CmKind, n: usize) -> Self {
        SimCm {
            kind,
            consecutive: vec![0; n],
            streak: vec![0; n],
            cl_global: VecDeque::new(),
            cl_local: (0..n).map(|_| VecDeque::new()).collect(),
            busy: vec![false; n],
            rng: 0x2545F4914F6CDD1D,
        }
    }

    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x
    }

    /// Returns the next-ready time, or None = block (CmBlocked). `sleep_out`
    /// receives any backoff charged as contention overhead.
    fn on_rollback(
        &mut self,
        vt: usize,
        owner: usize,
        t: f64,
        active: usize,
        sleep_out: &mut f64,
    ) -> Option<f64> {
        match self.kind {
            CmKind::Aggressive => Some(t),
            CmKind::Random => {
                self.consecutive[vt] += 1;
                if self.consecutive[vt] > R_PLUS {
                    let ms = 1 + self.rand() % R_PLUS as u64;
                    let dur = ms as f64 * 1e-3;
                    *sleep_out = dur;
                    Some(t + dur)
                } else {
                    Some(t)
                }
            }
            CmKind::Global => {
                self.streak[vt] = 0;
                if active <= 1 {
                    return Some(t);
                }
                self.cl_global.push_back(vt);
                None
            }
            CmKind::Local => {
                self.streak[vt] = 0;
                if active <= 1 || owner == vt {
                    return Some(t);
                }
                if self.busy[owner] {
                    // conflicting thread already blocked: do not block
                    // (cycle-breaking, paper Fig. 2c)
                    return Some(t);
                }
                self.busy[vt] = true;
                self.cl_local[owner].push_back(vt);
                None
            }
        }
    }

    fn on_success(&mut self, vt: usize) -> Option<usize> {
        match self.kind {
            CmKind::Aggressive => None,
            CmKind::Random => {
                self.consecutive[vt] = 0;
                None
            }
            CmKind::Global => {
                // streak not reset on wake (paper Fig. 2b)
                self.streak[vt] += 1;
                if self.streak[vt] >= S_PLUS {
                    self.cl_global.pop_front()
                } else {
                    None
                }
            }
            CmKind::Local => {
                self.streak[vt] += 1;
                if self.streak[vt] >= S_PLUS {
                    let w = self.cl_local[vt].pop_front();
                    if let Some(w) = w {
                        self.busy[w] = false;
                    }
                    w
                } else {
                    None
                }
            }
        }
    }

    /// Wake one blocked thread unconditionally (drain-time liveness).
    fn release_one(&mut self) -> Option<usize> {
        if let Some(w) = self.cl_global.pop_front() {
            return Some(w);
        }
        for cl in &mut self.cl_local {
            if let Some(w) = cl.pop_front() {
                self.busy[w] = false;
                return Some(w);
            }
        }
        None
    }

    /// Wake anybody parked on `vt`'s list when `vt` goes begging.
    fn before_beg(&mut self, vt: usize, woken: &mut Vec<usize>) {
        if self.kind == CmKind::Local {
            while let Some(w) = self.cl_local[vt].pop_front() {
                self.busy[w] = false;
                woken.push(w);
            }
        } else if self.kind == CmKind::Global {
            if let Some(w) = self.cl_global.pop_front() {
                woken.push(w);
            }
        }
    }
}

struct SimBalancer {
    kind: BalancerKind,
    topo: pi2m_refine::MachineTopology,
    bl1: Vec<VecDeque<usize>>,
    bl2: Vec<VecDeque<usize>>,
    bl3: VecDeque<usize>,
}

impl SimBalancer {
    fn new(kind: BalancerKind, topo: pi2m_refine::MachineTopology, n: usize) -> Self {
        let sockets = n.div_ceil(topo.threads_per_socket()).max(1);
        let blades = n.div_ceil(topo.threads_per_blade()).max(1);
        SimBalancer {
            kind,
            topo,
            bl1: (0..sockets).map(|_| VecDeque::new()).collect(),
            bl2: (0..blades).map(|_| VecDeque::new()).collect(),
            bl3: VecDeque::new(),
        }
    }

    fn register(&mut self, vt: usize) {
        match self.kind {
            BalancerKind::Rws => self.bl3.push_back(vt),
            BalancerKind::Hws => {
                let socket = self.topo.socket_of(vt);
                let blade = self.topo.blade_of(vt);
                if self.bl1[socket].len() < self.topo.threads_per_socket().saturating_sub(1) {
                    self.bl1[socket].push_back(vt);
                } else if self.bl2[blade].len() < self.topo.sockets_per_blade.saturating_sub(1) {
                    self.bl2[blade].push_back(vt);
                } else {
                    self.bl3.push_back(vt);
                }
            }
        }
    }

    fn pick(&mut self, donor: usize) -> Option<usize> {
        match self.kind {
            BalancerKind::Rws => self.bl3.pop_front(),
            BalancerKind::Hws => {
                let socket = self.topo.socket_of(donor);
                let blade = self.topo.blade_of(donor);
                if let Some(t) = self.bl1[socket].pop_front() {
                    return Some(t);
                }
                if let Some(t) = self.bl2[blade].pop_front() {
                    return Some(t);
                }
                if let Some(t) = self.bl3.pop_front() {
                    return Some(t);
                }
                for l in self.bl1.iter_mut().chain(self.bl2.iter_mut()) {
                    if let Some(t) = l.pop_front() {
                        return Some(t);
                    }
                }
                None
            }
        }
    }
}

// ---------------------------------------------------------------------------

impl SimMesher {
    pub fn new(img: LabeledImage, cfg: SimConfig) -> Self {
        assert!(cfg.vthreads >= 1);
        assert!(
            cfg.vthreads <= cfg.machine.topo.capacity(),
            "more virtual threads than the machine has hardware threads"
        );
        SimMesher { img, cfg }
    }

    pub fn run(self) -> SimOutput {
        let cfg = self.cfg;
        let n = cfg.vthreads;
        let machine = &cfg.machine;
        let blades_in_use = n.div_ceil(machine.topo.threads_per_blade()).max(1);

        // Modeled EDT virtual time: linear in voxels, scales linearly with
        // threads (the paper's parallel Maurer filter).
        let voxels = self.img.num_voxels() as f64;
        let edt_vtime = voxels * 40e-9 / n as f64;

        let oracle = Arc::new(IsosurfaceOracle::new(self.img, 1));
        let domain = oracle
            .image()
            .foreground_bounds()
            .unwrap_or_else(|| oracle.image().bounds());
        let mesh = SharedMesh::enclosing(&domain);
        let grid = Arc::new(PointGrid::new(cfg.delta));
        let rules = Rules::new(
            RuleConfig {
                delta: cfg.delta,
                radius_edge_bound: cfg.radius_edge_bound,
                planar_angle_min_deg: cfg.planar_angle_min_deg,
                size_fn: cfg.size_fn.clone(),
                surface_size_fn: None,
            },
            Arc::clone(&oracle),
            grid,
        );

        let mut ctxs: Vec<OpCtx> = (0..n).map(|t| mesh.make_ctx(t as u32)).collect();
        let mut pels: Vec<VecDeque<(u32, u32)>> = vec![VecDeque::new(); n];
        let mut pending_removals: Vec<VecDeque<VertexId>> = vec![VecDeque::new(); n];
        let mut states: Vec<VtState> = vec![VtState::Ready(0.0); n];
        let mut inflight: Vec<Option<InFlight>> = (0..n).map(|_| None).collect();
        let mut stats: Vec<ThreadStats> = vec![ThreadStats::default(); n];
        let mut final_list: Vec<(CellId, u32)> = Vec::new();
        let mut cm = SimCm::new(cfg.cm, n);
        let mut bal = SimBalancer::new(cfg.balancer, machine.topo, n);
        let mut sim = SimStats::default();

        // seed thread 0's PEL
        for c in mesh.alive_cells() {
            pels[0].push_back((c.0, mesh.cell(c).gen()));
        }

        let max_events = if cfg.max_events > 0 {
            cfg.max_events
        } else {
            2_000_000_000
        };
        let mut last_commit_t = 0.0f64;
        let mut t_now = 0.0f64;
        let mut livelock = false;
        let mut hit_real_cap = false;
        let wall_start = std::time::Instant::now();

        let cost = &machine.cost;
        let trace = cfg.trace;

        // ---------------- event loop ----------------
        'driver: while sim.events < max_events {
            if cfg.max_real_seconds > 0.0
                && sim.events % 65_536 == 0
                && wall_start.elapsed().as_secs_f64() > cfg.max_real_seconds
            {
                hit_real_cap = true;
                break 'driver;
            }
            // pick the earliest runnable event
            let mut best: Option<(f64, usize, bool)> = None;
            for vt in 0..n {
                let cand = match states[vt] {
                    VtState::Ready(at) => Some((at, vt, false)),
                    VtState::InFlight => {
                        let c = inflight[vt].as_ref().unwrap().complete_at;
                        Some((c, vt, true))
                    }
                    _ => None,
                };
                if let Some(c) = cand {
                    if best.is_none() || c.0 < best.unwrap().0 {
                        best = Some(c);
                    }
                }
            }

            let Some((t, vt, completion)) = best else {
                // nobody runnable: wake a CM-blocked thread or terminate
                let blocked: Vec<usize> = (0..n)
                    .filter(|&v| matches!(states[v], VtState::CmBlocked(_)))
                    .collect();
                if !blocked.is_empty() {
                    // deadlock-breaking wake (mirrors the real engine)
                    sim.wake_sources[2] += 1;
                    let w = cm.release_one().unwrap_or(blocked[0]);
                    if let VtState::CmBlocked(since) = states[w] {
                        stats[w].add_overhead(
                            OverheadKind::Contention,
                            t_now - since,
                            trace.then_some(t_now),
                        );
                    }
                    if cm.kind == CmKind::Local {
                        cm.busy[w] = false;
                    }
                    states[w] = VtState::Ready(t_now);
                    continue 'driver;
                }
                // all begging: account final waits and terminate
                for v in 0..n {
                    if let VtState::Begging(since) = states[v] {
                        stats[v].add_overhead(
                            OverheadKind::LoadBalance,
                            t_now - since,
                            trace.then_some(t_now),
                        );
                    }
                }
                break 'driver;
            };

            sim.events += 1;
            t_now = t_now.max(t);

            // virtual-time livelock watchdog
            if t - last_commit_t > cfg.livelock_vtime {
                livelock = true;
                break 'driver;
            }

            if completion {
                // ---- commit ----
                let fl = inflight[vt].take().unwrap();
                states[vt] = VtState::Ready(t);
                let ctx = &mut ctxs[vt];
                type CommitEffect = (Vec<CellId>, bool, Option<(VertexId, [f64; 3], VertexKind)>);
                let (created, removal, vertex_info): CommitEffect = match fl.prep {
                    Prep::Insert(p, action) => {
                        let res = ctx.commit_insert(p);
                        ctx.release_locks();
                        (
                            res.created,
                            false,
                            Some((res.vertex, action.point, action.kind)),
                        )
                    }
                    Prep::Remove(p, _victim) => {
                        let res = ctx.commit_remove(p);
                        ctx.release_locks();
                        (res.created, true, None)
                    }
                };
                last_commit_t = t;
                stats[vt].operations += 1;
                if removal {
                    stats[vt].removals += 1;
                } else {
                    stats[vt].insertions += 1;
                }
                stats[vt].cells_created += created.len() as u64;

                // home the new cells on this thread
                for &c in &created {
                    mesh.cell(c).tag.store(vt as u64 + 1, Ordering::Relaxed);
                }
                if let Some((v, point, kind)) = vertex_info {
                    rules.grid.insert(v, point);
                    if kind == VertexKind::Isosurface && cfg.enable_removals {
                        for victim in rules.r6_victims(&mesh, point) {
                            pending_removals[vt].push_back(victim);
                        }
                    }
                }
                // final-mesh candidates
                for &nc in &created {
                    let p = mesh.cell_points(nc);
                    if let Some(cc) = circumcenter(p[0], p[1], p[2], p[3]) {
                        if rules.oracle.is_inside(cc) {
                            final_list.push((nc, mesh.cell(nc).gen()));
                        }
                    }
                }
                // enqueue / donate
                if !created.is_empty() {
                    let target = if pels[vt].len() as i64 >= DONATE_THRESHOLD {
                        bal.pick(vt)
                    } else {
                        None
                    };
                    match target {
                        Some(b) if b != vt => {
                            for &nc in &created {
                                pels[b].push_back((nc.0, mesh.cell(nc).gen()));
                            }
                            stats[vt].donations_made += 1;
                            stats[b].donations_received += 1;
                            let cross_blade = machine.topo.blade_of(vt) != machine.topo.blade_of(b);
                            if cross_blade {
                                stats[vt].inter_blade_donations += 1;
                            }
                            let t_wake = t + machine.wake_penalty(vt, b, blades_in_use);
                            if let VtState::Begging(since) = states[b] {
                                stats[b].add_overhead(
                                    OverheadKind::LoadBalance,
                                    t_wake - since,
                                    trace.then_some(t_wake),
                                );
                            }
                            states[b] = VtState::Ready(t_wake);
                        }
                        _ => {
                            for &nc in &created {
                                pels[vt].push_back((nc.0, mesh.cell(nc).gen()));
                            }
                        }
                    }
                }
                // CM success
                if let Some(w) = cm.on_success(vt) {
                    sim.wake_sources[0] += 1;
                    if let VtState::CmBlocked(since) = states[w] {
                        stats[w].add_overhead(
                            OverheadKind::Contention,
                            t - since,
                            trace.then_some(t),
                        );
                        states[w] = VtState::Ready(t);
                    }
                }
                continue 'driver;
            }

            // ---- step: pick work ----
            let cf = machine.compute_factor(vt, n);
            let work = if let Some(victim) = pending_removals[vt].pop_front() {
                Some(Work::Removal(victim))
            } else {
                pels[vt].pop_front().map(|(c, g)| Work::Element(c, g))
            };
            let Some(work) = work else {
                // beg for work
                let mut woken = Vec::new();
                cm.before_beg(vt, &mut woken);
                for w in woken {
                    sim.wake_sources[1] += 1;
                    if let VtState::CmBlocked(since) = states[w] {
                        stats[w].add_overhead(
                            OverheadKind::Contention,
                            t - since,
                            trace.then_some(t),
                        );
                        states[w] = VtState::Ready(t);
                    }
                }
                states[vt] = VtState::Begging(t);
                bal.register(vt);
                continue 'driver;
            };

            // classify / resolve the action
            let (action_point, action_kind, element, is_removal, victim) = match work {
                Work::Element(cid, gen) => {
                    let t_cls = t + cost.classify * cf;
                    match rules.classify(&mesh, CellId(cid), gen) {
                        None => {
                            states[vt] = VtState::Ready(t_cls);
                            continue 'driver;
                        }
                        Some(a) => (a.point, a.kind, Some((cid, gen)), false, VertexId(0)),
                    }
                }
                Work::Removal(victim) => ([0.0; 3], VertexKind::Circumcenter, None, true, victim),
            };
            let t_op = if is_removal {
                t
            } else {
                t + cost.classify * cf
            };

            // ---- attempt prepare with incremental-acquisition preemption ----
            let mut t_try = t_op;
            let mut retries = 0usize;
            loop {
                retries += 1;
                let prep_result: Result<Prep, OpError> = if is_removal {
                    ctxs[vt]
                        .prepare_remove(victim)
                        .map(|p| Prep::Remove(p, victim))
                } else {
                    ctxs[vt].prepare_insert(action_point, action_kind).map(|p| {
                        Prep::Insert(
                            p,
                            pi2m_refine::InsertAction {
                                point: action_point,
                                kind: action_kind,
                                rule: 0,
                            },
                        )
                    })
                };
                match prep_result {
                    Ok(prep) => {
                        let lock_order = ctxs[vt].locked_vertices().to_vec();
                        // cost: locks + base + per-cell + NUMA touches
                        let (ncells, base) = match &prep {
                            Prep::Insert(p, _) => (p.cavity_size(), cost.insert_base),
                            Prep::Remove(p, _) => {
                                (p.ball_size(), cost.insert_base * cost.remove_factor)
                            }
                        };
                        let touched: Vec<CellId> = match &prep {
                            Prep::Insert(p, _) => p.cavity().to_vec(),
                            Prep::Remove(p, _) => p.ball().to_vec(),
                        };
                        let mut mem = 0.0;
                        for &c in &touched {
                            let home = mesh.cell(c).tag.load(Ordering::Relaxed) as usize;
                            let home_vt = home.saturating_sub(1).min(n - 1);
                            let pen = machine.touch_penalty(vt, home_vt, blades_in_use);
                            if pen == 0.0 {
                                sim.local_touches += 1;
                            } else if machine.topo.blade_of(vt) == machine.topo.blade_of(home_vt) {
                                sim.remote_socket_touches += 1;
                            } else {
                                sim.inter_blade_touches += 1;
                            }
                            mem += pen;
                        }
                        let dur = (lock_order.len() as f64 * cost.lock_step
                            + base
                            + ncells as f64 * cost.per_cavity_cell)
                            * cf
                            + mem;
                        inflight[vt] = Some(InFlight {
                            prep,
                            lock_order,
                            t_start: t_try,
                            complete_at: t_try + dur,
                            element,
                        });
                        states[vt] = VtState::InFlight;
                        break;
                    }
                    Err(OpError::Conflict {
                        owner,
                        vertex,
                        held,
                    }) => {
                        let owner = owner as usize;
                        let a = cost.lock_step;
                        let t_me = t_try + (held as f64 + 1.0) * a * cf;
                        let owner_fl = inflight[owner].as_ref();
                        let t_owner_acq = owner_fl
                            .map(|fl| {
                                let pos = fl
                                    .lock_order
                                    .iter()
                                    .position(|&u| u == vertex)
                                    .unwrap_or(fl.lock_order.len());
                                fl.t_start
                                    + (pos as f64 + 1.0) * a * machine.compute_factor(owner, n)
                            })
                            .unwrap_or(f64::NEG_INFINITY);

                        if owner_fl.is_some() && t_me < t_owner_acq && retries < 8 {
                            // I reach the vertex first: the owner is wounded
                            // and rolls back at its (virtual) acquisition time
                            let fl = inflight[owner].take().unwrap();
                            let owner_victim = match &fl.prep {
                                Prep::Remove(_, v) => Some(*v),
                                Prep::Insert(..) => None,
                            };
                            let owner_started = fl.t_start;
                            let owner_element = fl.element;
                            drop(fl.prep);
                            ctxs[owner].abort();
                            stats[owner].rollbacks += 1;
                            stats[owner].add_overhead(
                                OverheadKind::Rollback,
                                t_owner_acq - owner_started,
                                trace.then_some(t_owner_acq),
                            );
                            if let Some(el) = owner_element {
                                pels[owner].push_back(el);
                            } else if let Some(v) = owner_victim {
                                pending_removals[owner].push_front(v);
                            }
                            let active = count_active(&states);
                            let mut slept = 0.0;
                            match cm.on_rollback(owner, vt, t_owner_acq, active, &mut slept) {
                                Some(at) => {
                                    if slept > 0.0 {
                                        stats[owner].add_overhead(
                                            OverheadKind::Contention,
                                            slept,
                                            trace.then_some(at),
                                        );
                                    }
                                    states[owner] = VtState::Ready(at);
                                }
                                None => states[owner] = VtState::CmBlocked(t_owner_acq),
                            }
                            // retry my prepare from the moment I claimed it
                            t_try = t_me;
                            continue;
                        }
                        // I lose: rollback
                        stats[vt].rollbacks += 1;
                        stats[vt].add_overhead(
                            OverheadKind::Rollback,
                            t_me - t_try,
                            trace.then_some(t_me),
                        );
                        if is_removal {
                            pending_removals[vt].push_front(victim);
                        } else if let Some(el) = element {
                            pels[vt].push_back(el);
                        }
                        let active = count_active(&states);
                        let mut slept = 0.0;
                        match cm.on_rollback(vt, owner, t_me, active, &mut slept) {
                            Some(at) => {
                                if slept > 0.0 {
                                    stats[vt].add_overhead(
                                        OverheadKind::Contention,
                                        slept,
                                        trace.then_some(at),
                                    );
                                }
                                states[vt] = VtState::Ready(at);
                            }
                            None => states[vt] = VtState::CmBlocked(t_me),
                        }
                        break;
                    }
                    Err(OpError::RemovalBlocked) => {
                        stats[vt].removals_blocked += 1;
                        states[vt] = VtState::Ready(t_try + cost.skip * cf);
                        break;
                    }
                    Err(_) => {
                        stats[vt].skipped += 1;
                        states[vt] = VtState::Ready(t_try + cost.skip * cf);
                        break;
                    }
                }
            }
        }

        sim.aborted = sim.events >= max_events || hit_real_cap;
        // abort anything still in flight (livelock/cap exits)
        for vt in 0..n {
            if let Some(fl) = inflight[vt].take() {
                drop(fl.prep);
                ctxs[vt].abort();
            }
        }
        drop(ctxs);

        let final_mesh = FinalMesh::extract(&mesh, &oracle, Some(&final_list));
        sim.vtime = t_now;
        sim.edt_vtime = edt_vtime;
        // energy model: parked time (contention + load-balance waits) draws
        // idle power; everything else draws busy power.
        let mut e_full = 0.0;
        let mut e_throttled = 0.0;
        for st in &stats {
            let parked = (st.contention_overhead + st.load_balance_overhead).min(t_now);
            let busy = (t_now - parked).max(0.0);
            e_full += busy * cost.busy_watts + parked * cost.idle_watts;
            e_throttled += busy * cost.busy_watts + parked * cost.throttled_idle_watts;
        }
        sim.energy_joules = e_full;
        sim.energy_joules_throttled = e_throttled;
        sim.per_thread = stats;
        sim.livelock = livelock;
        sim.final_elements = final_mesh.num_tets();
        sim.vertices_allocated = mesh.num_vertices();

        SimOutput {
            mesh: final_mesh,
            stats: sim,
        }
    }
}

fn count_active(states: &[VtState]) -> usize {
    states
        .iter()
        .filter(|s| matches!(s, VtState::Ready(_) | VtState::InFlight))
        .count()
}
