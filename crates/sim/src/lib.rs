//! # pi2m-sim
//!
//! A discrete-event simulated cc-NUMA machine executing the PI2M
//! speculative refinement algorithm in virtual time. The paper's scaling
//! studies ran on PSC Blacklight (256 blades, cc-NUMA, retired); this crate
//! substitutes it (see DESIGN.md), executing the *real* algorithm over the
//! real concurrent mesh kernel with virtual threads, an incremental
//! lock-acquisition model that admits genuine mutual rollbacks and
//! livelocks, and a calibrated NUMA/congestion cost model — reproducing the
//! paper's Tables 1, 4, 5 and Figures 5–6 shapes on a single host core.

pub mod engine;
pub mod machine;

pub use engine::{SimConfig, SimMesher, SimOutput, SimStats};
pub use machine::{CostModel, SimMachine};
