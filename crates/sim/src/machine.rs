//! The simulated machine: topology plus a virtual-time cost model.
//!
//! The simulator executes the *real* speculative algorithm (actual mesh,
//! actual rules, actual conflicts) but charges operations in virtual seconds
//! using this model: compute costs per classification/operation, incremental
//! lock-acquisition steps (which enable mutual preemption and hence genuine
//! livelocks for the non-blocking contention managers), and a cc-NUMA memory
//! model — touched cells homed on another socket or blade cost extra, with
//! hop counts and a root-switch congestion term reproducing the paper's
//! degradation beyond 144 cores (§6.3: each hop adds a ~2000 cycle penalty
//! and the upper-level switches saturate).

use pi2m_refine::MachineTopology;

/// Virtual-time costs, in seconds. Defaults are loosely calibrated so a
/// single virtual thread generates on the order of 10⁵ elements per virtual
/// second — the paper's single-core rate (Table 4: 1.18×10⁵).
#[derive(Clone, Debug)]
pub struct CostModel {
    /// Classifying one element against R1–R6 (includes oracle queries).
    pub classify: f64,
    /// Acquiring one vertex lock (the incremental-acquisition step).
    pub lock_step: f64,
    /// Fixed cost of a Bowyer–Watson insertion.
    pub insert_base: f64,
    /// Additional cost per cavity cell.
    pub per_cavity_cell: f64,
    /// Removal cost multiplier (ball gathering + local triangulation).
    pub remove_factor: f64,
    /// Cost of skipping an unrealizable element.
    pub skip: f64,
    /// Extra cost per touched cell homed on another socket of the same blade.
    pub remote_socket: f64,
    /// Extra cost per touched cell per hop when homed on another blade.
    pub per_hop: f64,
    /// Root-switch congestion: extra factor on cross-group traffic per
    /// active blade beyond the first switch group (8 blades).
    pub congestion_per_blade: f64,
    /// Latency of waking a begging thread (same blade).
    pub wake_latency: f64,
    /// Per-thread compute slowdown when two hardware threads share a core
    /// (the shared pipeline; combined throughput ≈ 2/factor).
    pub smt_compute_factor: f64,
    /// Power draw of a busy core, watts (X7560: 130 W / 8 cores ≈ 16 W).
    pub busy_watts: f64,
    /// Power draw of a core busy-waiting in a contention/begging list.
    pub idle_watts: f64,
    /// Power draw of an idling core dropped into a deep low-power state —
    /// the opportunity the paper's §8 highlights ("the CPU frequency could
    /// be decreased during such an idling").
    pub throttled_idle_watts: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            classify: 0.9e-6,
            lock_step: 0.05e-6,
            insert_base: 1.15e-6,
            per_cavity_cell: 0.07e-6,
            remove_factor: 3.0,
            skip: 0.15e-6,
            remote_socket: 0.08e-6,
            per_hop: 0.9e-6, // ~2000 cycles at 2.27 GHz (paper §6.3)
            congestion_per_blade: 0.18,
            wake_latency: 1.0e-6,
            smt_compute_factor: 1.28,
            busy_watts: 16.0,
            idle_watts: 10.0,
            throttled_idle_watts: 3.0,
        }
    }
}

/// A machine to simulate: shape + costs.
#[derive(Clone, Debug)]
pub struct SimMachine {
    pub topo: MachineTopology,
    pub cost: CostModel,
}

impl SimMachine {
    /// PSC Blacklight (paper Table 2).
    pub fn blacklight() -> Self {
        SimMachine {
            topo: MachineTopology::blacklight(),
            cost: CostModel::default(),
        }
    }

    /// Blacklight with hyper-threading enabled (Table 5).
    pub fn blacklight_smt() -> Self {
        SimMachine {
            topo: MachineTopology::blacklight().with_smt(2),
            cost: CostModel::default(),
        }
    }

    /// CRTC single-blade workstation (paper Table 2).
    pub fn crtc() -> Self {
        SimMachine {
            topo: MachineTopology::crtc(),
            cost: CostModel::default(),
        }
    }

    /// Compute-cost multiplier for thread `vt` given the total virtual
    /// thread count: hardware threads whose core sibling is also in use run
    /// slower.
    pub fn compute_factor(&self, vt: usize, vthreads: usize) -> f64 {
        if self.topo.smt < 2 {
            return 1.0;
        }
        let core = self.topo.core_of(vt);
        // sibling occupied iff the other hw thread index on this core < n
        let sibling_busy = (0..self.topo.smt)
            .map(|k| core * self.topo.smt + k)
            .any(|t| t != vt && t < vthreads);
        if sibling_busy {
            self.cost.smt_compute_factor
        } else {
            1.0
        }
    }

    /// Memory penalty for touching a cell homed on `home_vt` from `vt`, with
    /// `blades_in_use` active blades (congestion input).
    pub fn touch_penalty(&self, vt: usize, home_vt: usize, blades_in_use: usize) -> f64 {
        let (s1, s2) = (self.topo.socket_of(vt), self.topo.socket_of(home_vt));
        if s1 == s2 {
            return 0.0;
        }
        let (b1, b2) = (self.topo.blade_of(vt), self.topo.blade_of(home_vt));
        if b1 == b2 {
            return self.cost.remote_socket;
        }
        let hops = self.topo.hops_between(b1, b2) as f64;
        let congestion = if hops > 3.0 {
            // cross-group traffic rides the shared root switches
            1.0 + self.cost.congestion_per_blade * (blades_in_use.saturating_sub(8)) as f64
        } else {
            1.0
        };
        hops * self.cost.per_hop * congestion
    }

    /// Wake latency from `from` to `to` (cross-blade wakes ride the network).
    pub fn wake_penalty(&self, from: usize, to: usize, blades_in_use: usize) -> f64 {
        let base = self.cost.wake_latency;
        let (b1, b2) = (self.topo.blade_of(from), self.topo.blade_of(to));
        if b1 == b2 {
            base
        } else {
            base + self.touch_penalty(from, to, blades_in_use)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_touch_is_free() {
        let m = SimMachine::blacklight();
        assert_eq!(m.touch_penalty(0, 1, 16), 0.0); // same socket
    }

    #[test]
    fn penalties_grow_with_distance() {
        let m = SimMachine::blacklight();
        let same_blade = m.touch_penalty(0, 8, 16); // other socket, same blade
        let near_blade = m.touch_penalty(0, 16, 8); // blade 1
        let far_blade = m.touch_penalty(0, 16 * 9, 12); // blade 9: cross-group
        assert!(same_blade > 0.0);
        assert!(near_blade > same_blade);
        assert!(far_blade > near_blade);
    }

    #[test]
    fn congestion_kicks_in_beyond_eight_blades() {
        let m = SimMachine::blacklight();
        let quiet = m.touch_penalty(0, 16 * 9, 8);
        let busy = m.touch_penalty(0, 16 * 9, 11);
        assert!(busy > quiet);
    }

    #[test]
    fn smt_factor() {
        let m = SimMachine::blacklight_smt();
        // 2 hw threads per core: vt 0 and 1 share core 0
        assert!(m.compute_factor(0, 2) > 1.0);
        assert_eq!(m.compute_factor(0, 1), 1.0); // sibling idle
        let m1 = SimMachine::blacklight();
        assert_eq!(m1.compute_factor(0, 128), 1.0);
    }
}
