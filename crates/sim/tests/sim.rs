//! Simulator behaviour tests: correctness of the produced mesh, policy
//! orderings matching the paper, and determinism.

use pi2m_image::phantoms;
use pi2m_refine::{BalancerKind, CmKind};
use pi2m_sim::{SimConfig, SimMachine, SimMesher};

fn base_cfg(vthreads: usize) -> SimConfig {
    SimConfig {
        vthreads,
        machine: SimMachine::blacklight(),
        delta: 2.0,
        ..Default::default()
    }
}

#[test]
fn single_vthread_produces_valid_mesh() {
    let out = SimMesher::new(phantoms::sphere(16, 1.0), base_cfg(1)).run();
    assert!(!out.stats.livelock);
    assert!(out.mesh.num_tets() > 50, "{} tets", out.mesh.num_tets());
    assert_eq!(out.stats.total_rollbacks(), 0);
    assert!(out.stats.vtime > 0.0);
    assert!(out.stats.elements_per_second() > 0.0);
}

#[test]
fn parallel_sim_matches_sequential_mesh_size() {
    let a = SimMesher::new(phantoms::sphere(16, 1.0), base_cfg(1)).run();
    let b = SimMesher::new(phantoms::sphere(16, 1.0), base_cfg(8)).run();
    assert!(!b.stats.livelock);
    let (na, nb) = (a.mesh.num_tets() as f64, b.mesh.num_tets() as f64);
    assert!((na - nb).abs() / na < 0.5, "1 vt {na} vs 8 vt {nb}");
}

#[test]
fn sim_is_deterministic() {
    let r1 = SimMesher::new(phantoms::sphere(16, 1.0), base_cfg(8)).run();
    let r2 = SimMesher::new(phantoms::sphere(16, 1.0), base_cfg(8)).run();
    assert_eq!(r1.mesh.num_tets(), r2.mesh.num_tets());
    assert_eq!(r1.stats.total_rollbacks(), r2.stats.total_rollbacks());
    assert_eq!(r1.stats.vtime, r2.stats.vtime);
}

#[test]
fn parallel_speedup_in_virtual_time() {
    let img = phantoms::sphere(24, 1.0);
    // enough elements per thread that the serial early phase amortizes
    let mut cfg1 = base_cfg(1);
    cfg1.delta = 0.5;
    let mut cfg16 = base_cfg(16);
    cfg16.delta = 0.5;
    let a = SimMesher::new(img.clone(), cfg1).run();
    let b = SimMesher::new(img, cfg16).run();
    assert!(!b.stats.livelock);
    let speedup = a.stats.vtime / b.stats.vtime;
    assert!(
        speedup > 4.0,
        "expected decent virtual speedup on 16 cores, got {speedup:.2} \
         (t1={:.4}s t16={:.4}s)",
        a.stats.vtime,
        b.stats.vtime
    );
}

#[test]
fn rollbacks_occur_under_contention() {
    let mut cfg = base_cfg(32);
    cfg.delta = 1.5;
    let out = SimMesher::new(phantoms::sphere(20, 1.0), cfg).run();
    assert!(!out.stats.livelock);
    assert!(
        out.stats.total_rollbacks() > 0,
        "32 contending vthreads must produce rollbacks"
    );
}

#[test]
fn hws_keeps_donations_local() {
    let img = phantoms::sphere(24, 1.0);
    let mk = |bal| {
        let mut cfg = base_cfg(64); // 4 blades
        cfg.delta = 0.7;
        cfg.balancer = bal;
        SimMesher::new(img.clone(), cfg).run()
    };
    let rws = mk(BalancerKind::Rws);
    let hws = mk(BalancerKind::Hws);
    assert!(!rws.stats.livelock && !hws.stats.livelock);
    // HWS's defining property: donated work preferentially stays within the
    // donor's socket/blade (paper §6.1: 98.9% of requests served in-blade).
    let cross_frac = |s: &pi2m_sim::SimStats| {
        s.inter_blade_donations() as f64 / s.total_donations().max(1) as f64
    };
    let (fr, fh) = (cross_frac(&rws.stats), cross_frac(&hws.stats));
    assert!(
        fh < fr,
        "HWS cross-blade donation fraction {fh:.3} must undercut RWS {fr:.3}"
    );
}

#[test]
fn blocking_cms_never_livelock() {
    for cm in [CmKind::Global, CmKind::Local] {
        let mut cfg = base_cfg(32);
        cfg.cm = cm;
        cfg.delta = 1.5;
        let out = SimMesher::new(phantoms::sphere(20, 1.0), cfg).run();
        assert!(!out.stats.livelock, "{cm:?} must not livelock");
        assert!(out.mesh.num_tets() > 100);
    }
}

#[test]
fn removals_happen_in_sim() {
    let mut cfg = base_cfg(4);
    cfg.delta = 1.5;
    let out = SimMesher::new(phantoms::sphere(20, 1.0), cfg).run();
    assert!(out.stats.total_removals() > 0);
}

#[test]
fn smt_mode_runs() {
    let mut cfg = base_cfg(16);
    cfg.machine = SimMachine::blacklight_smt();
    let out = SimMesher::new(phantoms::sphere(16, 1.0), cfg).run();
    assert!(!out.stats.livelock);
    assert!(out.mesh.num_tets() > 50);
}

#[test]
fn trace_records_events() {
    let mut cfg = base_cfg(8);
    cfg.trace = true;
    cfg.delta = 1.5;
    let out = SimMesher::new(phantoms::sphere(16, 1.0), cfg).run();
    // some overhead events must exist on 8 contending threads
    assert!(!out.stats.merged_trace().is_empty());
}
