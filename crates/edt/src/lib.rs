//! # pi2m-edt
//!
//! Exact Euclidean distance **and feature** transform of 3D label images,
//! parallelized over scan lines — the stand-in for the parallel Maurer
//! filter of Staubs et al. that the paper uses as a preprocessing step (§4).
//!
//! The refinement rules need, for an arbitrary query point `p`, the *surface
//! voxel* closest to `p` (the feature); the isosurface oracle then marches
//! along the ray towards it to find the exact label interface. We compute
//! the feature transform once, up front, with the separable lower-envelope
//! algorithm (Felzenszwalb & Huttenlocher generalized to anisotropic spacing
//! and argmin propagation), which produces exactly the same result as
//! Maurer's algorithm: for every voxel, a nearest site under the Euclidean
//! metric.
//!
//! Each dimensional pass processes independent scan lines, so the passes
//! parallelize embarrassingly; like the paper's EDT, throughput scales
//! linearly with threads.

mod transform;

pub use transform::{
    batch_default, feature_transform, feature_transform_obs, surface_feature_transform,
    surface_feature_transform_obs, try_feature_transform_obs, try_feature_transform_opts,
    try_surface_feature_transform_obs, try_surface_feature_transform_opts, FeatureTransform,
    EDT_BATCH_WIDTH, NO_SITE,
};
