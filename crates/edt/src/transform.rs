//! Separable exact Euclidean feature transform.

use pi2m_geometry::Point3;
use pi2m_image::LabeledImage;
use pi2m_obs::cancel::{CancelToken, Cancelled};
use pi2m_obs::metrics::{self, ThreadRecorder};
use std::cell::UnsafeCell;
use std::time::Instant;

/// Sentinel feature value when the image contains no sites at all.
pub const NO_SITE: u32 = u32::MAX;

/// Voxels processed per inner step of the batched query sweep (see `dt1d`).
pub const EDT_BATCH_WIDTH: usize = 8;

/// Runtime default for the batched sweep: enabled unless `PI2M_BATCH=0`.
/// Mirrors the Delaunay kernel's batch kill switch so one environment
/// variable flips every batched code path in the pipeline.
pub fn batch_default() -> bool {
    std::env::var("PI2M_BATCH").map_or(true, |v| v != "0")
}

/// The result of a feature transform: for every voxel, the linear index of a
/// nearest site voxel and the squared world-space distance to it.
#[derive(Clone, Debug)]
pub struct FeatureTransform {
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    feat: Vec<u32>,
    dist2: Vec<f64>,
}

impl FeatureTransform {
    #[inline]
    pub fn dims(&self) -> [usize; 3] {
        self.dims
    }

    #[inline]
    fn linear(&self, i: usize, j: usize, k: usize) -> usize {
        (k * self.dims[1] + j) * self.dims[0] + i
    }

    /// Decompose a linear voxel index back into `(i, j, k)`.
    #[inline]
    pub fn delinearize(&self, idx: u32) -> [usize; 3] {
        let idx = idx as usize;
        let i = idx % self.dims[0];
        let j = (idx / self.dims[0]) % self.dims[1];
        let k = idx / (self.dims[0] * self.dims[1]);
        [i, j, k]
    }

    /// Nearest site voxel (as indices) for voxel `(i, j, k)`; `None` when the
    /// image has no sites.
    pub fn nearest_site(&self, i: usize, j: usize, k: usize) -> Option<[usize; 3]> {
        let f = self.feat[self.linear(i, j, k)];
        (f != NO_SITE).then(|| self.delinearize(f))
    }

    /// Squared world distance from voxel `(i, j, k)` to its nearest site.
    pub fn dist2(&self, i: usize, j: usize, k: usize) -> f64 {
        self.dist2[self.linear(i, j, k)]
    }

    /// Euclidean world distance.
    pub fn dist(&self, i: usize, j: usize, k: usize) -> f64 {
        self.dist2(i, j, k).sqrt()
    }

    /// Number of site voxels (distance exactly zero). O(voxels); intended
    /// for reporting, not hot paths.
    pub fn num_sites(&self) -> usize {
        self.dist2.iter().filter(|&&d| d == 0.0).count()
    }

    /// World coordinates of the nearest site's voxel center for an arbitrary
    /// world point `p` (clamped to the image grid, matching the paper's use:
    /// "the EDT returns the surface voxel q which is closest to p").
    pub fn nearest_site_world(&self, p: Point3) -> Option<Point3> {
        let rel = p - self.origin;
        let clamp = |v: f64, n: usize| -> usize {
            if v < 0.0 {
                0
            } else {
                (v as usize).min(n - 1)
            }
        };
        let i = clamp(rel.x / self.spacing[0], self.dims[0]);
        let j = clamp(rel.y / self.spacing[1], self.dims[1]);
        let k = clamp(rel.z / self.spacing[2], self.dims[2]);
        let [si, sj, sk] = self.nearest_site(i, j, k)?;
        Some(
            self.origin
                + Point3::new(
                    (si as f64 + 0.5) * self.spacing[0],
                    (sj as f64 + 0.5) * self.spacing[1],
                    (sk as f64 + 0.5) * self.spacing[2],
                ),
        )
    }
}

/// Shared-output wrapper letting worker threads write disjoint scan lines of
/// the same buffer without locks.
///
/// Safety contract: callers must hand each element index to at most one
/// thread. The dimensional passes partition output by line, so element sets
/// are disjoint by construction.
struct LineOutput<'a, T> {
    cells: &'a [UnsafeCell<T>],
}

unsafe impl<T: Send> Sync for LineOutput<'_, T> {}

impl<'a, T> LineOutput<'a, T> {
    fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T`.
        let cells = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        LineOutput { cells }
    }

    /// SAFETY: each index must be written by exactly one thread per pass.
    #[inline]
    unsafe fn write(&self, idx: usize, v: T) {
        *self.cells[idx].get() = v;
    }
}

/// Run `f(line_index)` for all `0..lines` across `threads` workers.
///
/// When `cancel` is provided, workers stop claiming new line chunks as soon
/// as the token trips; the caller is responsible for checking the token
/// afterwards and discarding the partially written pass output.
fn parallel_lines(
    lines: usize,
    threads: usize,
    cancel: Option<&CancelToken>,
    f: impl Fn(usize) + Sync,
) {
    let cancelled = || cancel.is_some_and(|c| c.is_cancelled());
    let threads = threads.clamp(1, lines.max(1));
    let chunk = (lines / (threads * 8)).max(1);
    if threads == 1 {
        for start in (0..lines).step_by(chunk) {
            if cancelled() {
                return;
            }
            for l in start..(start + chunk).min(lines) {
                f(l);
            }
        }
        return;
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                if cancelled() {
                    break;
                }
                let start = next.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                if start >= lines {
                    break;
                }
                for l in start..(start + chunk).min(lines) {
                    f(l);
                }
            });
        }
    });
}

/// One 1D lower-envelope pass over a scan line.
///
/// `fvals[q]` is the squared distance achieved so far for position `q`,
/// `sites[q]` the corresponding feature; positions are at `q * step` in world
/// units. Writes the updated squared distances/features into `out_f`,
/// `out_site`.
///
/// With `batch` set, the query sweep processes [`EDT_BATCH_WIDTH`] voxels per
/// inner step: the envelope segment index `k` is monotone in `q` (breakpoints
/// `z` are sorted), so if the first and last voxel of a block land on the
/// same parabola, the whole block does — and it is evaluated as one
/// straight-line loop with a constant parabola, using the *same* expression
/// as the scalar sweep (bit-identical output). Blocks straddling a
/// breakpoint fall back to the scalar per-voxel advance.
#[allow(clippy::too_many_arguments)]
fn dt1d(
    fvals: &[f64],
    sites: &[u32],
    step: f64,
    out_f: &mut [f64],
    out_site: &mut [u32],
    v: &mut Vec<usize>,
    z: &mut Vec<f64>,
    batch: bool,
) {
    let n = fvals.len();
    v.clear();
    z.clear();

    // envelope of parabolas q -> (x - x_q)^2 + f(q), skipping infinite f
    for q in 0..n {
        if fvals[q] == f64::INFINITY {
            continue;
        }
        let xq = q as f64 * step;
        loop {
            match v.last() {
                None => {
                    v.push(q);
                    z.push(f64::NEG_INFINITY);
                    break;
                }
                Some(&p) => {
                    let xp = p as f64 * step;
                    // intersection of parabolas at p and q
                    let s = ((fvals[q] + xq * xq) - (fvals[p] + xp * xp)) / (2.0 * (xq - xp));
                    if s <= *z.last().unwrap() {
                        v.pop();
                        z.pop();
                    } else {
                        v.push(q);
                        z.push(s);
                        break;
                    }
                }
            }
        }
    }

    if v.is_empty() {
        out_f.copy_from_slice(fvals);
        out_site.fill(NO_SITE);
        return;
    }

    let mut k = 0usize;
    if batch {
        let mut q0 = 0usize;
        while q0 < n {
            let qe = (q0 + EDT_BATCH_WIDTH).min(n);
            let x0 = q0 as f64 * step;
            while k + 1 < v.len() && z[k + 1] < x0 {
                k += 1;
            }
            let xl = (qe - 1) as f64 * step;
            let mut ke = k;
            while ke + 1 < v.len() && z[ke + 1] < xl {
                ke += 1;
            }
            if ke == k {
                // One parabola covers the block: straight-line evaluation.
                let p = v[k];
                let xp = p as f64 * step;
                let (fp, sp) = (fvals[p], sites[p]);
                for q in q0..qe {
                    let xq = q as f64 * step;
                    out_f[q] = (xq - xp) * (xq - xp) + fp;
                    out_site[q] = sp;
                }
            } else {
                for q in q0..qe {
                    let xq = q as f64 * step;
                    while k + 1 < v.len() && z[k + 1] < xq {
                        k += 1;
                    }
                    let p = v[k];
                    let xp = p as f64 * step;
                    out_f[q] = (xq - xp) * (xq - xp) + fvals[p];
                    out_site[q] = sites[p];
                }
            }
            q0 = qe;
        }
    } else {
        for q in 0..n {
            let xq = q as f64 * step;
            while k + 1 < v.len() && z[k + 1] < xq {
                k += 1;
            }
            let p = v[k];
            let xp = p as f64 * step;
            out_f[q] = (xq - xp) * (xq - xp) + fvals[p];
            out_site[q] = sites[p];
        }
    }
}

/// Compute the exact feature transform of an arbitrary site set.
///
/// `is_site(i, j, k)` marks the voxels whose union forms the feature set;
/// every voxel of the output maps to a Euclidean-nearest site voxel (world
/// metric, anisotropic `spacing`).
pub fn feature_transform(
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    is_site: impl Fn(usize, usize, usize) -> bool + Sync,
    threads: usize,
) -> FeatureTransform {
    feature_transform_obs(dims, spacing, origin, is_site, threads, None)
}

/// [`feature_transform`] with observability: records voxel count, pass
/// count, and per-axis pass wall time into `rec` when provided. The recorder
/// belongs to the calling (pipeline) thread; worker threads inside the
/// passes record nothing, keeping the hot loops untouched.
pub fn feature_transform_obs(
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    is_site: impl Fn(usize, usize, usize) -> bool + Sync,
    threads: usize,
    rec: Option<&mut ThreadRecorder>,
) -> FeatureTransform {
    try_feature_transform_obs(dims, spacing, origin, is_site, threads, rec, None)
        .expect("infallible without a cancel token")
}

/// [`feature_transform_obs`] with cooperative cancellation: the token is
/// polled between line chunks inside each pass and between passes; a tripped
/// token aborts the sweep and returns `Err(Cancelled)` (any partial pass
/// output is discarded with the transform).
pub fn try_feature_transform_obs(
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    is_site: impl Fn(usize, usize, usize) -> bool + Sync,
    threads: usize,
    rec: Option<&mut ThreadRecorder>,
    cancel: Option<&CancelToken>,
) -> Result<FeatureTransform, Cancelled> {
    try_feature_transform_opts(
        dims,
        spacing,
        origin,
        is_site,
        threads,
        rec,
        cancel,
        batch_default(),
    )
}

/// [`try_feature_transform_obs`] with an explicit batched-sweep selector
/// (the engine threads its `--no-batch` / `PI2M_BATCH=0` kill switch through
/// here; both settings produce bit-identical output).
#[allow(clippy::too_many_arguments)]
pub fn try_feature_transform_opts(
    dims: [usize; 3],
    spacing: [f64; 3],
    origin: Point3,
    is_site: impl Fn(usize, usize, usize) -> bool + Sync,
    threads: usize,
    mut rec: Option<&mut ThreadRecorder>,
    cancel: Option<&CancelToken>,
    batch: bool,
) -> Result<FeatureTransform, Cancelled> {
    let [nx, ny, nz] = dims;
    let n = nx * ny * nz;
    let mut dist2 = vec![f64::INFINITY; n];
    let mut feat = vec![NO_SITE; n];
    let lin = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;

    if let Some(r) = rec.as_deref_mut() {
        r.inc(metrics::EDT_VOXELS, n as u64);
    }
    let pass_done = |rec: &mut Option<&mut ThreadRecorder>, t0: Instant| {
        if let Some(r) = rec.as_deref_mut() {
            r.inc(metrics::EDT_PASSES, 1);
            r.observe(metrics::EDT_PASS_SECONDS, t0.elapsed().as_secs_f64());
        }
    };

    // ---- pass X: initialize from sites and sweep along i ----
    let t_pass = Instant::now();
    {
        let df = LineOutput::new(&mut dist2);
        let sf = LineOutput::new(&mut feat);
        parallel_lines(ny * nz, threads, cancel, |line| {
            let j = line % ny;
            let k = line / ny;
            let mut f0 = vec![f64::INFINITY; nx];
            let mut s0 = vec![NO_SITE; nx];
            for (i, (fv, sv)) in f0.iter_mut().zip(s0.iter_mut()).enumerate() {
                if is_site(i, j, k) {
                    *fv = 0.0;
                    *sv = lin(i, j, k) as u32;
                }
            }
            let mut of = vec![0.0; nx];
            let mut os = vec![0u32; nx];
            let (mut v, mut z) = (Vec::new(), Vec::new());
            dt1d(
                &f0, &s0, spacing[0], &mut of, &mut os, &mut v, &mut z, batch,
            );
            for i in 0..nx {
                // SAFETY: line (j,k) is processed by exactly one worker.
                unsafe {
                    df.write(lin(i, j, k), of[i]);
                    sf.write(lin(i, j, k), os[i]);
                }
            }
        });
    }

    if let Some(c) = cancel {
        c.check()?;
    }
    pass_done(&mut rec, t_pass);

    // ---- pass Y: sweep along j ----
    let t_pass = Instant::now();
    {
        let src_f = dist2.clone();
        let src_s = feat.clone();
        let df = LineOutput::new(&mut dist2);
        let sf = LineOutput::new(&mut feat);
        parallel_lines(nx * nz, threads, cancel, |line| {
            let i = line % nx;
            let k = line / nx;
            let mut f0 = vec![0.0; ny];
            let mut s0 = vec![0u32; ny];
            for j in 0..ny {
                f0[j] = src_f[lin(i, j, k)];
                s0[j] = src_s[lin(i, j, k)];
            }
            let mut of = vec![0.0; ny];
            let mut os = vec![0u32; ny];
            let (mut v, mut z) = (Vec::new(), Vec::new());
            dt1d(
                &f0, &s0, spacing[1], &mut of, &mut os, &mut v, &mut z, batch,
            );
            for j in 0..ny {
                // SAFETY: line (i,k) is processed by exactly one worker.
                unsafe {
                    df.write(lin(i, j, k), of[j]);
                    sf.write(lin(i, j, k), os[j]);
                }
            }
        });
    }

    if let Some(c) = cancel {
        c.check()?;
    }
    pass_done(&mut rec, t_pass);

    // ---- pass Z: sweep along k ----
    let t_pass = Instant::now();
    {
        let src_f = dist2.clone();
        let src_s = feat.clone();
        let df = LineOutput::new(&mut dist2);
        let sf = LineOutput::new(&mut feat);
        parallel_lines(nx * ny, threads, cancel, |line| {
            let i = line % nx;
            let j = line / nx;
            let mut f0 = vec![0.0; nz];
            let mut s0 = vec![0u32; nz];
            for k in 0..nz {
                f0[k] = src_f[lin(i, j, k)];
                s0[k] = src_s[lin(i, j, k)];
            }
            let mut of = vec![0.0; nz];
            let mut os = vec![0u32; nz];
            let (mut v, mut z) = (Vec::new(), Vec::new());
            dt1d(
                &f0, &s0, spacing[2], &mut of, &mut os, &mut v, &mut z, batch,
            );
            for k in 0..nz {
                // SAFETY: line (i,j) is processed by exactly one worker.
                unsafe {
                    df.write(lin(i, j, k), of[k]);
                    sf.write(lin(i, j, k), os[k]);
                }
            }
        });
    }

    if let Some(c) = cancel {
        c.check()?;
    }
    pass_done(&mut rec, t_pass);

    Ok(FeatureTransform {
        dims,
        spacing,
        origin,
        feat,
        dist2,
    })
}

/// Feature transform whose sites are the image's *surface voxels* — exactly
/// what the refinement rules query (paper §3: "the EDT returns the surface
/// voxel q which is closest to p").
pub fn surface_feature_transform(img: &LabeledImage, threads: usize) -> FeatureTransform {
    surface_feature_transform_obs(img, threads, None)
}

/// [`surface_feature_transform`] with observability (see
/// [`feature_transform_obs`]).
pub fn surface_feature_transform_obs(
    img: &LabeledImage,
    threads: usize,
    rec: Option<&mut ThreadRecorder>,
) -> FeatureTransform {
    feature_transform_obs(
        img.dims(),
        img.spacing(),
        img.origin(),
        |i, j, k| img.is_surface_voxel(i, j, k),
        threads,
        rec,
    )
}

/// [`surface_feature_transform_obs`] with cooperative cancellation (see
/// [`try_feature_transform_obs`]).
pub fn try_surface_feature_transform_obs(
    img: &LabeledImage,
    threads: usize,
    rec: Option<&mut ThreadRecorder>,
    cancel: Option<&CancelToken>,
) -> Result<FeatureTransform, Cancelled> {
    try_surface_feature_transform_opts(img, threads, rec, cancel, batch_default())
}

/// [`try_surface_feature_transform_obs`] with an explicit batched-sweep
/// selector (see [`try_feature_transform_opts`]).
pub fn try_surface_feature_transform_opts(
    img: &LabeledImage,
    threads: usize,
    rec: Option<&mut ThreadRecorder>,
    cancel: Option<&CancelToken>,
    batch: bool,
) -> Result<FeatureTransform, Cancelled> {
    try_feature_transform_opts(
        img.dims(),
        img.spacing(),
        img.origin(),
        |i, j, k| img.is_surface_voxel(i, j, k),
        threads,
        rec,
        cancel,
        batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pi2m_image::phantoms;

    /// O(n · sites) brute-force reference.
    fn brute_force(dims: [usize; 3], spacing: [f64; 3], sites: &[[usize; 3]]) -> Vec<f64> {
        let [nx, ny, nz] = dims;
        let mut out = vec![f64::INFINITY; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let mut best = f64::INFINITY;
                    for s in sites {
                        let dx = (i as f64 - s[0] as f64) * spacing[0];
                        let dy = (j as f64 - s[1] as f64) * spacing[1];
                        let dz = (k as f64 - s[2] as f64) * spacing[2];
                        best = best.min(dx * dx + dy * dy + dz * dz);
                    }
                    out[(k * ny + j) * nx + i] = best;
                }
            }
        }
        out
    }

    #[test]
    fn single_site() {
        let dims = [7, 5, 6];
        let ft = feature_transform(
            dims,
            [1.0, 1.0, 1.0],
            Point3::ORIGIN,
            |i, j, k| (i, j, k) == (3, 2, 4),
            1,
        );
        assert_eq!(ft.nearest_site(0, 0, 0), Some([3, 2, 4]));
        assert_eq!(ft.dist2(3, 2, 4), 0.0);
        assert_eq!(ft.dist2(3, 2, 0), 16.0);
        assert_eq!(ft.dist2(0, 0, 0), 9.0 + 4.0 + 16.0);
    }

    #[test]
    fn no_sites_yields_sentinels() {
        let ft = feature_transform([4, 4, 4], [1.0; 3], Point3::ORIGIN, |_, _, _| false, 1);
        assert_eq!(ft.nearest_site(1, 1, 1), None);
        assert_eq!(ft.dist2(1, 1, 1), f64::INFINITY);
        assert!(ft.nearest_site_world(Point3::new(1.0, 1.0, 1.0)).is_none());
    }

    #[test]
    fn matches_brute_force_pattern() {
        let dims = [9, 8, 7];
        let spacing = [0.5, 1.0, 2.0];
        let sites = [[0, 0, 0], [8, 7, 6], [4, 3, 2], [1, 6, 5]];
        let ft = feature_transform(
            dims,
            spacing,
            Point3::ORIGIN,
            |i, j, k| sites.contains(&[i, j, k]),
            2,
        );
        let bf = brute_force(dims, spacing, &sites);
        for k in 0..dims[2] {
            for j in 0..dims[1] {
                for i in 0..dims[0] {
                    let got = ft.dist2(i, j, k);
                    let want = bf[(k * dims[1] + j) * dims[0] + i];
                    assert!(
                        (got - want).abs() < 1e-9,
                        "voxel ({i},{j},{k}): {got} vs {want}"
                    );
                    // the feature must achieve the reported distance
                    let [si, sj, sk] = ft.nearest_site(i, j, k).unwrap();
                    let dx = (i as f64 - si as f64) * spacing[0];
                    let dy = (j as f64 - sj as f64) * spacing[1];
                    let dz = (k as f64 - sk as f64) * spacing[2];
                    assert!((dx * dx + dy * dy + dz * dz - got).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let img = phantoms::nested_spheres(20, 1.0);
        let ft1 = surface_feature_transform(&img, 1);
        let ft4 = surface_feature_transform(&img, 4);
        for k in 0..20 {
            for j in 0..20 {
                for i in 0..20 {
                    assert_eq!(ft1.dist2(i, j, k), ft4.dist2(i, j, k));
                }
            }
        }
    }

    #[test]
    fn surface_sites_have_zero_distance() {
        let img = phantoms::sphere(16, 1.0);
        let ft = surface_feature_transform(&img, 2);
        for [i, j, k] in img.surface_voxels() {
            assert_eq!(ft.dist2(i, j, k), 0.0);
            assert_eq!(ft.nearest_site(i, j, k), Some([i, j, k]));
        }
    }

    #[test]
    fn nearest_site_world_clamps() {
        let img = phantoms::sphere(16, 1.0);
        let ft = surface_feature_transform(&img, 1);
        // far outside the grid still answers via clamping
        let q = ft
            .nearest_site_world(Point3::new(-100.0, 8.0, 8.0))
            .unwrap();
        // nearest surface point from the -x direction is on the -x side
        assert!(q.x < 8.0);
    }

    #[test]
    fn batched_sweep_is_bitwise_scalar() {
        // Batched vs scalar query sweep must agree to the bit on every voxel,
        // including anisotropic spacing and dense breakpoint envelopes.
        for (img, threads) in [
            (phantoms::nested_spheres(21, 1.0), 1),
            (phantoms::sphere(17, 0.7), 3),
        ] {
            let on = try_surface_feature_transform_opts(&img, threads, None, None, true).unwrap();
            let off = try_surface_feature_transform_opts(&img, threads, None, None, false).unwrap();
            let [nx, ny, nz] = img.dims();
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        assert_eq!(
                            on.dist2(i, j, k).to_bits(),
                            off.dist2(i, j, k).to_bits(),
                            "voxel ({i},{j},{k})"
                        );
                        assert_eq!(on.nearest_site(i, j, k), off.nearest_site(i, j, k));
                    }
                }
            }
        }
    }

    #[test]
    fn anisotropic_prefers_cheap_axis() {
        // two sites equidistant in index space; spacing makes z expensive
        let dims = [9, 3, 9];
        let ft = feature_transform(
            dims,
            [1.0, 1.0, 10.0],
            Point3::ORIGIN,
            |i, j, k| (i, j, k) == (8, 1, 4) || (i, j, k) == (4, 1, 8),
            1,
        );
        // from (4,1,4): site (8,1,4) costs 16, site (4,1,8) costs 1600
        assert_eq!(ft.nearest_site(4, 1, 4), Some([8, 1, 4]));
    }
}
