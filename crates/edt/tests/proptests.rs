//! Property test: the separable feature transform equals brute force on
//! random site sets and anisotropic spacings.

use pi2m_edt::feature_transform;
use pi2m_geometry::Point3;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matches_brute_force(
        seed in 1u64..10_000,
        nx in 3usize..10,
        ny in 3usize..10,
        nz in 3usize..10,
        sx in 0.25f64..4.0,
        sy in 0.25f64..4.0,
        sz in 0.25f64..4.0,
        density in 0.02f64..0.4,
    ) {
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let dims = [nx, ny, nz];
        let spacing = [sx, sy, sz];
        let mut sites = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if next() < density {
                        sites.push([i, j, k]);
                    }
                }
            }
        }
        let ft = feature_transform(
            dims,
            spacing,
            Point3::ORIGIN,
            |i, j, k| sites.contains(&[i, j, k]),
            2,
        );
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let mut best = f64::INFINITY;
                    for t in &sites {
                        let dx = (i as f64 - t[0] as f64) * sx;
                        let dy = (j as f64 - t[1] as f64) * sy;
                        let dz = (k as f64 - t[2] as f64) * sz;
                        best = best.min(dx * dx + dy * dy + dz * dz);
                    }
                    let got = ft.dist2(i, j, k);
                    if sites.is_empty() {
                        prop_assert_eq!(got, f64::INFINITY);
                    } else {
                        prop_assert!((got - best).abs() < 1e-9 * best.max(1.0),
                            "({i},{j},{k}): {got} vs {best}");
                        // the reported feature achieves the distance
                        let [si, sj, sk] = ft.nearest_site(i, j, k).unwrap();
                        let dx = (i as f64 - si as f64) * sx;
                        let dy = (j as f64 - sj as f64) * sy;
                        let dz = (k as f64 - sk as f64) * sz;
                        prop_assert!((dx*dx + dy*dy + dz*dz - got).abs() < 1e-9 * best.max(1.0));
                    }
                }
            }
        }
    }
}
