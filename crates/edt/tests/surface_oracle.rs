//! Oracle cross-check of the surface feature transform on random
//! multi-label images.
//!
//! The oracle reimplements the paper's definitions from scratch — a surface
//! voxel is a foreground voxel with a 6-neighbor of a different label (or on
//! the image border), and the feature of a voxel is its nearest surface
//! voxel — as a brute-force O(n·m) scan, independent of both
//! `LabeledImage::is_surface_voxel` and the separable lower-envelope passes.
//! At spacing `[1, 1, 1]` every squared distance is a small integer, exactly
//! representable in f64, so the transform is required to match the oracle
//! *bit-for-bit*, at 1 thread and at 4.

use pi2m_edt::surface_feature_transform;
use pi2m_image::{LabeledImage, BACKGROUND};
use proptest::prelude::*;

/// Brute-force surface-voxel predicate, written directly from the paper's
/// wording rather than calling the image crate's implementation.
fn oracle_is_surface(labels: &[u8], dims: [usize; 3], i: usize, j: usize, k: usize) -> bool {
    let at = |i: usize, j: usize, k: usize| labels[(k * dims[1] + j) * dims[0] + i];
    let me = at(i, j, k);
    if me == BACKGROUND {
        return false;
    }
    let (i, j, k) = (i as isize, j as isize, k as isize);
    for (di, dj, dk) in [
        (-1, 0, 0),
        (1, 0, 0),
        (0, -1, 0),
        (0, 1, 0),
        (0, 0, -1),
        (0, 0, 1),
    ] {
        let (ni, nj, nk) = (i + di, j + dj, k + dk);
        if ni < 0
            || nj < 0
            || nk < 0
            || ni >= dims[0] as isize
            || nj >= dims[1] as isize
            || nk >= dims[2] as isize
        {
            return true;
        }
        if at(ni as usize, nj as usize, nk as usize) != me {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn surface_transform_matches_brute_force_oracle(
        seed in 1u64..100_000,
        nx in 3usize..12,
        ny in 3usize..12,
        nz in 3usize..12,
        n_labels in 1u8..4,
        density in 0.05f64..0.9,
    ) {
        let mut s = seed;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 11) as f64 / (1u64 << 53) as f64
        };
        let dims = [nx, ny, nz];
        let mut img = LabeledImage::new(dims, [1.0, 1.0, 1.0]);
        let mut labels = vec![BACKGROUND; nx * ny * nz];
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if next() < density {
                        let l = 1 + (next() * n_labels as f64) as u8;
                        img.set(i, j, k, l.min(n_labels));
                        labels[(k * ny + j) * nx + i] = l.min(n_labels);
                    }
                }
            }
        }

        // O(n·m) oracle: enumerate surface voxels, then scan all of them per
        // query voxel with exact integer arithmetic.
        let mut sites = Vec::new();
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    if oracle_is_surface(&labels, dims, i, j, k) {
                        sites.push([i as i64, j as i64, k as i64]);
                    }
                }
            }
        }

        let ft1 = surface_feature_transform(&img, 1);
        let ft4 = surface_feature_transform(&img, 4);

        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let mut best = i64::MAX;
                    for t in &sites {
                        let (dx, dy, dz) =
                            (i as i64 - t[0], j as i64 - t[1], k as i64 - t[2]);
                        best = best.min(dx * dx + dy * dy + dz * dz);
                    }
                    let got = ft1.dist2(i, j, k);
                    if sites.is_empty() {
                        prop_assert_eq!(got, f64::INFINITY);
                        prop_assert!(ft1.nearest_site(i, j, k).is_none());
                    } else {
                        // integer distances: the match must be exact
                        prop_assert_eq!(got, best as f64,
                            "({i},{j},{k}): transform {got} vs oracle {best}");
                        // the reported feature is a surface voxel achieving it
                        let [si, sj, sk] = ft1.nearest_site(i, j, k).unwrap();
                        prop_assert!(
                            oracle_is_surface(&labels, dims, si, sj, sk),
                            "({i},{j},{k}): feature ({si},{sj},{sk}) is not a surface voxel"
                        );
                        let (dx, dy, dz) = (
                            i as i64 - si as i64,
                            j as i64 - sj as i64,
                            k as i64 - sk as i64,
                        );
                        prop_assert_eq!((dx * dx + dy * dy + dz * dz) as f64, got);
                    }
                    // thread count must not change the distance field
                    prop_assert_eq!(got, ft4.dist2(i, j, k));
                }
            }
        }
    }
}
