//! # pi2m-quality
//!
//! Quality and fidelity measurement for PI2M meshes — the quantities of the
//! paper's Table 6: radius-edge ratios, dihedral angle extremes, smallest
//! boundary planar angles, and the two-sided Hausdorff distance between the
//! mesh boundary and the image isosurface; plus structural sanity checks
//! (manifoldness of the boundary).

pub mod hausdorff;
pub mod report;

pub use hausdorff::{hausdorff_distance, point_triangle_distance, TriangleSet};
pub use report::{boundary_report, mesh_quality, BoundaryReport, QualityReport};
